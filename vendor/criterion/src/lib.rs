//! Minimal offline stand-in for [criterion](https://bheisler.github.io/criterion.rs/book/).
//!
//! Provides `Criterion::bench_function`, `Bencher::iter`, [`black_box`]
//! and the [`criterion_group!`]/[`criterion_main!`] macros. Each benchmark
//! is warmed up, then timed over enough iterations to fill a short
//! measurement window; mean and minimum wall-clock times are printed.
//! No statistics, baselines or HTML reports.

#![deny(missing_docs)]

use std::time::{Duration, Instant};

/// Prevents the compiler from optimising away a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Times closures registered through [`Criterion::bench_function`].
pub struct Criterion {
    warmup: Duration,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warmup: Duration::from_millis(200),
            measure: Duration::from_millis(600),
        }
    }
}

impl Criterion {
    /// Runs `f` with a [`Bencher`] and prints the benchmark's timings.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warmup: self.warmup,
            measure: self.measure,
            samples: Vec::new(),
        };
        f(&mut b);
        b.report(name);
        self
    }
}

/// Handed to benchmark closures; [`Bencher::iter`] does the timing.
pub struct Bencher {
    warmup: Duration,
    measure: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times repeated calls of `routine` (after a warm-up period).
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warmup {
            black_box(routine());
            warm_iters += 1;
        }
        // Batch size aiming for ~50 samples in the measurement window.
        let per_iter = warm_start.elapsed() / (warm_iters.max(1) as u32);
        let batch = (self.measure.as_nanos() / 50 / per_iter.as_nanos().max(1)).max(1) as u64;

        let measure_start = Instant::now();
        while measure_start.elapsed() < self.measure {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(t.elapsed() / batch as u32);
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().copied().unwrap_or_default();
        println!(
            "{name:<40} mean {mean:>12?}   min {min:>12?}   ({} samples)",
            self.samples.len()
        );
    }
}

/// Collects benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
