//! Minimal offline stand-in for [proptest](https://proptest-rs.github.io/proptest/).
//!
//! Implements the subset this workspace uses: the [`proptest!`] /
//! [`prop_assert!`] / [`prop_assert_eq!`] macros,
//! `ProptestConfig::with_cases`, the [`strategy::Strategy`] trait with
//! `prop_map`, numeric-range and tuple strategies,
//! `prop::collection::vec`, and regex-subset string strategies.
//! Generation is deterministic per test (seeded from the test's module
//! path and case index) and there is no shrinking: a failing case panics
//! with the case number so it can be replayed.

#![deny(missing_docs)]

pub mod test_runner {
    //! Deterministic RNG, config and failure plumbing for [`crate::proptest!`].

    use std::fmt;

    /// How many cases each property runs (`with_cases` mirrors proptest).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to execute per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real crate defaults to 256; 64 keeps the offline suite quick
            // while still exercising each property broadly.
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed property case (carries the assertion message).
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        msg: String,
    }

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError { msg: msg.into() }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.msg)
        }
    }

    /// Deterministic splitmix64-based RNG used for value generation.
    #[derive(Debug, Clone)]
    pub struct Rng {
        state: u64,
    }

    impl Rng {
        /// RNG seeded from a test identifier and case index, so every run
        /// of the suite generates the same inputs.
        pub fn deterministic(test_id: &str, case: u32) -> Self {
            let mut seed = 0xcbf29ce484222325u64; // FNV offset basis
            for b in test_id.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x100000001b3);
            }
            seed ^= (case as u64).wrapping_mul(0x9e3779b97f4a7c15);
            Rng { state: seed }
        }

        /// Next raw 64-bit value (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::Rng;
    use std::ops::Range;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value from the strategy.
        fn generate(&self, rng: &mut Rng) -> Self::Value;

        /// Maps generated values through `f` (no shrinking to invert).
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;

        fn generate(&self, rng: &mut Rng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut Rng) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128 as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut Rng) -> $t {
                    let (a, b) = (self.start as f64, self.end as f64);
                    (a + rng.unit_f64() * (b - a)) as $t
                }
            }
        )*};
    }

    impl_float_range!(f32, f64);

    macro_rules! impl_tuple {
        ($(($($n:tt $s:ident),+),)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut Rng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple! {
        (0 A, 1 B),
        (0 A, 1 B, 2 C),
        (0 A, 1 B, 2 C, 3 D),
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut Rng) -> S::Value {
            (**self).generate(rng)
        }
    }

    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut Rng) -> String {
            crate::string::generate(self, rng)
        }
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::Rng;
    use std::ops::Range;

    /// Inclusive-exclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vec of values from `element`, with length drawn from `size`
    /// (a fixed `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut Rng) -> Vec<S::Value> {
            let SizeRange { lo, hi } = self.size;
            assert!(lo < hi, "empty vec length range");
            let len = lo + rng.below((hi - lo) as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod string {
    //! Regex-subset string generation backing `&str` strategies.
    //!
    //! Supported: literal characters, `\t`/`\n`/`\\` escapes, character
    //! classes `[...]` with ranges, the `\PC` "any printable" class, and
    //! the quantifiers `*`, `+`, `{n}`, `{lo,hi}`.

    use crate::test_runner::Rng;

    enum Atom {
        Literal(char),
        Class(Vec<(char, char)>), // inclusive ranges
        AnyPrintable,
    }

    struct Piece {
        atom: Atom,
        min: usize,
        max: usize, // inclusive
    }

    /// Generates a string matching the regex-subset `pattern`.
    pub fn generate(pattern: &str, rng: &mut Rng) -> String {
        let pieces = parse(pattern);
        let mut out = String::new();
        for p in &pieces {
            let span = (p.max - p.min + 1) as u64;
            let n = p.min + rng.below(span) as usize;
            for _ in 0..n {
                out.push(sample_atom(&p.atom, rng));
            }
        }
        out
    }

    fn sample_atom(atom: &Atom, rng: &mut Rng) -> char {
        match atom {
            Atom::Literal(c) => *c,
            Atom::Class(ranges) => {
                let total: u64 = ranges
                    .iter()
                    .map(|(a, b)| (*b as u64) - (*a as u64) + 1)
                    .sum();
                let mut idx = rng.below(total);
                for (a, b) in ranges {
                    let span = (*b as u64) - (*a as u64) + 1;
                    if idx < span {
                        return char::from_u32(*a as u32 + idx as u32).unwrap_or('?');
                    }
                    idx -= span;
                }
                unreachable!("class sampling out of range")
            }
            Atom::AnyPrintable => {
                // \PC: anything outside Unicode category C. Sample mostly
                // ASCII with occasional wider printable scalars.
                match rng.below(10) {
                    0..=6 => char::from_u32(0x20 + rng.below(0x5f) as u32).unwrap(),
                    7 => char::from_u32(0xA1 + rng.below(0xFF) as u32).unwrap_or('é'),
                    8 => char::from_u32(0x3041 + rng.below(0x50) as u32).unwrap_or('あ'),
                    _ => char::from_u32(0x1F300 + rng.below(0xFF) as u32).unwrap_or('🌀'),
                }
            }
        }
    }

    fn parse(pattern: &str) -> Vec<Piece> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pieces = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let atom = match chars[i] {
                '\\' => {
                    i += 1;
                    match chars.get(i) {
                        Some('P') => {
                            // `\PC` — the only \P class used here.
                            i += 1; // past 'P'
                            Atom::AnyPrintable
                        }
                        Some('t') => Atom::Literal('\t'),
                        Some('n') => Atom::Literal('\n'),
                        Some('r') => Atom::Literal('\r'),
                        Some(c) => Atom::Literal(*c),
                        None => break,
                    }
                }
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .map(|off| i + off)
                        .expect("unterminated character class");
                    let atom = Atom::Class(parse_class(&chars[i + 1..close]));
                    i = close;
                    atom
                }
                c => Atom::Literal(c),
            };
            i += 1;
            let (min, max) = match chars.get(i) {
                Some('*') => {
                    i += 1;
                    (0, 32)
                }
                Some('+') => {
                    i += 1;
                    (1, 32)
                }
                Some('{') => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .map(|off| i + off)
                        .expect("unterminated quantifier");
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse().expect("bad quantifier"),
                            hi.trim().parse().expect("bad quantifier"),
                        ),
                        None => {
                            let n = body.trim().parse().expect("bad quantifier");
                            (n, n)
                        }
                    }
                }
                _ => (1, 1),
            };
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }

    fn parse_class(body: &[char]) -> Vec<(char, char)> {
        let mut ranges = Vec::new();
        let mut i = 0;
        while i < body.len() {
            let c = match body[i] {
                '\\' => {
                    i += 1;
                    match body.get(i) {
                        Some('t') => '\t',
                        Some('n') => '\n',
                        Some('r') => '\r',
                        Some(c) => *c,
                        None => break,
                    }
                }
                c => c,
            };
            // `a-z` range (a `-` not followed by anything is a literal).
            if body.get(i + 1) == Some(&'-') && i + 2 < body.len() {
                ranges.push((c, body[i + 2]));
                i += 3;
            } else {
                ranges.push((c, c));
                i += 1;
            }
        }
        ranges
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};

    /// Namespace mirroring the real crate's `prop` re-export module.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests: `proptest! { #[test] fn p(x in strat) { ... } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::Rng::deterministic(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest `{}` failed at case {}/{}: {}",
                            stringify!($name), case, config.cases, e
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body (fails the case,
/// reporting the condition or a custom formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{:?} != {:?}", __l, __r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} ({:?} != {:?})", format!($($fmt)+), __l, __r),
            ));
        }
    }};
}
