//! Hand-written stand-in for `serde_derive`, built directly on
//! [`proc_macro`] (no `syn`/`quote`, so it compiles offline).
//!
//! Supports non-generic structs with named fields and non-generic enums
//! with unit, tuple and struct variants — the shapes this workspace
//! actually derives — plus the `#[serde(skip)]` field attribute. The
//! generated impls target the local `serde` stand-in's `Value` data model.

#![deny(missing_docs)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    skip: bool,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Item {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Consumes a run of `#[...]` attributes starting at `i`, returning the
/// next index and whether any of them was `#[serde(skip)]`.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> (usize, bool) {
    let mut skip = false;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    if g.delimiter() == Delimiter::Bracket {
                        if is_serde_skip(&g.stream()) {
                            skip = true;
                        }
                        i += 2;
                        continue;
                    }
                }
                break;
            }
            _ => break,
        }
    }
    (i, skip)
}

fn is_serde_skip(attr: &TokenStream) -> bool {
    let toks: Vec<TokenTree> = attr.clone().into_iter().collect();
    match (toks.first(), toks.get(1)) {
        (Some(TokenTree::Ident(name)), Some(TokenTree::Group(args)))
            if name.to_string() == "serde" =>
        {
            args.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "skip"))
        }
        _ => false,
    }
}

/// Consumes a visibility qualifier (`pub`, `pub(crate)`, …) if present.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if matches!(&tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        i += 1;
        if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    i
}

/// Advances past a type (or any token run) until a top-level `,`,
/// treating `<`/`>` as nesting so `Vec<(A, B)>`-style generics survive.
fn skip_until_comma(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut angle = 0i32;
    while i < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[i] {
            match p.as_char() {
                '<' => angle += 1,
                // A `->` return-type arrow (e.g. `fn(f32) -> f32`) is not a
                // closing angle bracket; skip the pair as one unit.
                '-' if matches!(
                    tokens.get(i + 1),
                    Some(TokenTree::Punct(n)) if n.as_char() == '>'
                ) =>
                {
                    i += 1;
                }
                '>' if angle > 0 => angle -= 1,
                ',' if angle == 0 => return i,
                _ => {}
            }
        }
        i += 1;
    }
    i
}

fn parse_named_fields(body: &TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = body.clone().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (next, skip) = skip_attrs(&tokens, i);
        i = skip_vis(&tokens, next);
        let name = match &tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => break,
        };
        i += 1; // name
        i += 1; // ':'
        i = skip_until_comma(&tokens, i);
        i += 1; // ','
        fields.push(Field { name, skip });
    }
    fields
}

fn count_tuple_fields(body: &TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.clone().into_iter().collect();
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        count += 1;
        i = skip_until_comma(&tokens, i) + 1;
    }
    count
}

fn parse_variants(body: &TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.clone().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (next, _) = skip_attrs(&tokens, i);
        i = next;
        let name = match &tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => break,
        };
        i += 1;
        let kind = match &tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(&g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(&g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Trailing discriminant (`= expr`) or separator comma.
        i = skip_until_comma(&tokens, i) + 1;
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (mut i, _) = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);
    let keyword = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive(Serialize/Deserialize): expected struct or enum, got {other:?}"),
    };
    i += 1;
    let name = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive(Serialize/Deserialize): expected item name, got {other:?}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive(Serialize/Deserialize) stand-in does not support generic types ({name})");
    }
    let body = match &tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Group(g))
            if g.delimiter() == Delimiter::Parenthesis && keyword == "struct" =>
        {
            panic!("derive stand-in does not support tuple structs ({name})");
        }
        _ => TokenStream::new(), // unit struct
    };
    match keyword.as_str() {
        "struct" => Item::Struct {
            name,
            fields: parse_named_fields(&body),
        },
        "enum" => Item::Enum {
            name,
            variants: parse_variants(&body),
        },
        other => panic!("derive(Serialize/Deserialize): unsupported item kind `{other}`"),
    }
}

/// Derives the stand-in `serde::Serialize` (lowering into `serde::Value`).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let out = match parse_item(input) {
        Item::Struct { name, fields } => {
            let mut pushes = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                pushes.push_str(&format!(
                    "__m.push((\"{n}\".to_string(), ::serde::Serialize::to_value(&self.{n})));\n",
                    n = f.name
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{
                    fn to_value(&self) -> ::serde::Value {{
                        let mut __m: Vec<(String, ::serde::Value)> = Vec::new();
                        {pushes}
                        ::serde::Value::Map(__m)
                    }}
                }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in &variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "Self::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            format!(
                                "::serde::Value::Seq(vec![{}])",
                                binders
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect::<Vec<_>>()
                                    .join(", ")
                            )
                        };
                        arms.push_str(&format!(
                            "Self::{vn}({bind}) => ::serde::Value::Map(vec![(\"{vn}\".to_string(), {payload})]),\n",
                            bind = binders.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let names: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let entries = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| {
                                format!(
                                    "(\"{n}\".to_string(), ::serde::Serialize::to_value({n}))",
                                    n = f.name
                                )
                            })
                            .collect::<Vec<_>>()
                            .join(", ");
                        arms.push_str(&format!(
                            "Self::{vn} {{ {bind} }} => ::serde::Value::Map(vec![(\"{vn}\".to_string(), ::serde::Value::Map(vec![{entries}]))]),\n",
                            bind = names.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{
                    fn to_value(&self) -> ::serde::Value {{
                        match self {{ {arms} }}
                    }}
                }}"
            )
        }
    };
    out.parse()
        .expect("derive(Serialize): generated code failed to parse")
}

/// Derives the stand-in `serde::Deserialize` (rebuilding from `serde::Value`).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let out = match parse_item(input) {
        Item::Struct { name, fields } => {
            let inits = fields
                .iter()
                .map(|f| {
                    if f.skip {
                        format!("{n}: ::std::default::Default::default(),", n = f.name)
                    } else {
                        format!("{n}: ::serde::de::field(__v, \"{n}\")?,", n = f.name)
                    }
                })
                .collect::<Vec<_>>()
                .join("\n");
            format!(
                "impl ::serde::Deserialize for {name} {{
                    fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::de::Error> {{
                        Ok(Self {{ {inits} }})
                    }}
                }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in &variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        arms.push_str(&format!("\"{vn}\" => Ok(Self::{vn}),\n"));
                    }
                    VariantKind::Tuple(n) => {
                        let body = if *n == 1 {
                            format!(
                                "Ok(Self::{vn}(::serde::de::from_value(::serde::de::payload(__p, \"{vn}\")?)?))"
                            )
                        } else {
                            let items = (0..*n)
                                .map(|k| format!("::serde::de::seq_field(__payload, {k})?"))
                                .collect::<Vec<_>>()
                                .join(", ");
                            format!(
                                "{{ let __payload = ::serde::de::payload(__p, \"{vn}\")?; Ok(Self::{vn}({items})) }}"
                            )
                        };
                        arms.push_str(&format!("\"{vn}\" => {body},\n"));
                    }
                    VariantKind::Struct(fields) => {
                        let inits = fields
                            .iter()
                            .map(|f| {
                                if f.skip {
                                    format!("{n}: ::std::default::Default::default(),", n = f.name)
                                } else {
                                    format!(
                                        "{n}: ::serde::de::field(__payload, \"{n}\")?,",
                                        n = f.name
                                    )
                                }
                            })
                            .collect::<Vec<_>>()
                            .join("\n");
                        arms.push_str(&format!(
                            "\"{vn}\" => {{ let __payload = ::serde::de::payload(__p, \"{vn}\")?; Ok(Self::{vn} {{ {inits} }}) }},\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{
                    fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::de::Error> {{
                        let (__name, __p) = ::serde::de::variant(__v)?;
                        match __name {{
                            {arms}
                            __other => Err(::serde::de::Error::custom(format!(
                                \"unknown {name} variant `{{__other}}`\"
                            ))),
                        }}
                    }}
                }}"
            )
        }
    };
    out.parse()
        .expect("derive(Deserialize): generated code failed to parse")
}
