//! Minimal offline stand-in for [serde](https://serde.rs).
//!
//! Provides the `Serialize`/`Deserialize` traits over an owned [`Value`]
//! data model, implementations for the std types this workspace uses, and
//! (behind the `derive` feature) re-exported derive macros from the local
//! `serde_derive` proc-macro crate. Only the API subset exercised by the
//! SpecEE workspace is implemented; see `vendor/README.md`.

#![deny(missing_docs)]

use std::collections::{BTreeMap, HashMap};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Self-describing data model every `Serialize` type lowers to and every
/// `Deserialize` type is rebuilt from. Mirrors the JSON data model plus a
/// signed/unsigned integer split.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absence of a value (`null`, `None`).
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer (negative values).
    Int(i64),
    /// Unsigned integer (non-negative values).
    UInt(u64),
    /// Floating point number.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Ordered sequence.
    Seq(Vec<Value>),
    /// Ordered string-keyed map (insertion order preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in a [`Value::Map`].
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// A type that can lower itself into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// A type that can be rebuilt from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`], or reports what didn't match.
    fn from_value(v: &Value) -> Result<Self, de::Error>;
}

/// Deserialization error type and the helper functions the derive macro
/// expands to.
pub mod de {
    use super::{Deserialize, Value};
    use std::fmt;

    /// Why deserialization failed (type mismatch, missing field, …).
    #[derive(Debug, Clone)]
    pub struct Error {
        msg: String,
    }

    impl Error {
        /// Builds an error with a custom message.
        pub fn custom(msg: impl Into<String>) -> Self {
            Error { msg: msg.into() }
        }
    }

    impl fmt::Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.msg)
        }
    }

    impl std::error::Error for Error {}

    /// Deserializes any `T` from a value (used for enum payloads).
    pub fn from_value<T: Deserialize>(v: &Value) -> Result<T, Error> {
        T::from_value(v)
    }

    /// Reads struct field `name` out of a map value.
    pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
        match v.get(name) {
            Some(inner) => {
                T::from_value(inner).map_err(|e| Error::custom(format!("field `{name}`: {e}")))
            }
            None => Err(Error::custom(format!("missing field `{name}`"))),
        }
    }

    /// Splits an externally tagged enum value into `(variant_name, payload)`.
    pub fn variant(v: &Value) -> Result<(&str, Option<&Value>), Error> {
        match v {
            Value::Str(name) => Ok((name, None)),
            Value::Map(entries) if entries.len() == 1 => Ok((&entries[0].0, Some(&entries[0].1))),
            other => Err(Error::custom(format!(
                "expected enum (string or single-entry map), got {other:?}"
            ))),
        }
    }

    /// Unwraps the payload of a data-carrying enum variant.
    pub fn payload<'v>(p: Option<&'v Value>, variant: &str) -> Result<&'v Value, Error> {
        p.ok_or_else(|| Error::custom(format!("variant `{variant}` expects a payload")))
    }

    /// Reads element `idx` of a tuple-variant payload sequence.
    pub fn seq_field<T: Deserialize>(v: &Value, idx: usize) -> Result<T, Error> {
        match v {
            Value::Seq(items) => match items.get(idx) {
                Some(item) => T::from_value(item),
                None => Err(Error::custom(format!("missing tuple field {idx}"))),
            },
            other => Err(Error::custom(format!("expected sequence, got {other:?}"))),
        }
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, de::Error> {
                match v {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| de::Error::custom("integer out of range")),
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| de::Error::custom("integer out of range")),
                    other => Err(de::Error::custom(format!(
                        "expected unsigned integer, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n < 0 { Value::Int(n) } else { Value::UInt(n as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, de::Error> {
                match v {
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| de::Error::custom("integer out of range")),
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| de::Error::custom("integer out of range")),
                    other => Err(de::Error::custom(format!(
                        "expected integer, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);
impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, de::Error> {
                match v {
                    Value::Float(x) => Ok(*x as $t),
                    Value::Int(n) => Ok(*n as $t),
                    Value::UInt(n) => Ok(*n as $t),
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(de::Error::custom(format!(
                        "expected number, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(de::Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(de::Error::custom(format!("expected char, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(de::Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(de::Error::custom(format!(
                "expected sequence, got {other:?}"
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(de::Error::custom(format!(
                "expected sequence, got {other:?}"
            ))),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        <[T; N]>::try_from(items).map_err(|items| {
            de::Error::custom(format!("expected {N} elements, got {}", items.len()))
        })
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+),)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, de::Error> {
                Ok(($(de::seq_field::<$t>(v, $n)?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
}

/// Types usable as map keys: printed to / parsed from the string keys of
/// [`Value::Map`].
pub trait MapKey: Sized {
    /// Renders the key as a map-entry string.
    fn to_key(&self) -> String;
    /// Parses the key back from a map-entry string.
    fn from_key(s: &str) -> Result<Self, de::Error>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<Self, de::Error> {
        Ok(s.to_string())
    }
}

macro_rules! impl_numeric_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(s: &str) -> Result<Self, de::Error> {
                s.parse()
                    .map_err(|_| de::Error::custom(format!("bad numeric map key `{s}`")))
            }
        }
    )*};
}

impl_numeric_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey, V: Serialize, S: std::hash::BuildHasher> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: MapKey + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, val)| Ok((K::from_key(k)?, V::from_value(val)?)))
                .collect(),
            other => Err(de::Error::custom(format!("expected map, got {other:?}"))),
        }
    }
}

impl<K: MapKey + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, val)| Ok((K::from_key(k)?, V::from_value(val)?)))
                .collect(),
            other => Err(de::Error::custom(format!("expected map, got {other:?}"))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        Ok(v.clone())
    }
}
