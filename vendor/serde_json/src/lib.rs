//! Minimal offline stand-in for `serde_json`: [`to_string`], [`from_str`]
//! and [`Error`] over the local `serde` stand-in's `Value` data model,
//! backed by a spec-compliant JSON writer and recursive-descent parser.

#![deny(missing_docs)]

use serde::{de, Deserialize, Serialize, Value};
use std::fmt;

/// Error produced by JSON serialization or parsing.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<de::Error> for Error {
    fn from(e: de::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Parses a JSON string into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // `{:?}` keeps a decimal point or exponent, so the value
                // parses back as a float rather than an integer.
                out.push_str(&format!("{x:?}"));
            } else {
                // Like real serde_json's default behaviour for non-finite
                // floats in `Value`: emit null.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

/// Maximum container nesting (arrays/objects), mirroring real
/// serde_json's 128-level recursion limit so malformed input returns
/// `Err` instead of overflowing the stack.
const MAX_DEPTH: usize = 128;

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
        depth: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        if self.depth >= MAX_DEPTH {
            return Err(Error::new(format!(
                "recursion limit ({MAX_DEPTH}) exceeded at byte {}",
                self.pos
            )));
        }
        self.depth += 1;
        let v = self.value_inner();
        self.depth -= 1;
        v
    }

    fn value_inner(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => self.string().map(Value::Str),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut entries = Vec::new();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.expect(b':')?;
                    entries.push((key, self.value()?));
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            _ => self.number(),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(Error::new("invalid low surrogate"));
                                    }
                                    let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(code)
                                        .ok_or_else(|| Error::new("bad surrogate pair"))?
                                } else {
                                    return Err(Error::new("lone high surrogate"));
                                }
                            } else {
                                char::from_u32(hi).ok_or_else(|| Error::new("bad \\u escape"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(Error::new(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| Error::new("bad \\u escape"))?;
        let n = u32::from_str_radix(s, 16).map_err(|_| Error::new("bad \\u escape"))?;
        self.pos = end;
        Ok(n)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if text.is_empty() || text == "-" {
            return Err(Error::new(format!("bad number at byte {start}")));
        }
        if float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("bad number `{text}`")))
        } else if text.starts_with('-') {
            // Parse the full signed text (so i64::MIN round-trips) and fall
            // back to f64 for magnitudes beyond i64, like the unsigned arm.
            text.parse::<i64>()
                .map(Value::Int)
                .or_else(|_| text.parse::<f64>().map(Value::Float))
                .map_err(|_| Error::new(format!("bad number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .or_else(|_| text.parse::<f64>().map(Value::Float))
                .map_err(|_| Error::new(format!("bad number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn i64_min_round_trips() {
        let s = to_string(&i64::MIN).unwrap();
        assert_eq!(s, "-9223372036854775808");
        let back: i64 = from_str(&s).unwrap();
        assert_eq!(back, i64::MIN);
    }

    #[test]
    fn negative_beyond_i64_falls_back_to_float() {
        let v: f64 = from_str("-18446744073709551615").unwrap();
        assert_eq!(v, -18446744073709551615.0);
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        let s = "[".repeat(100_000);
        let err = from_str::<Vec<f64>>(&s).unwrap_err();
        assert!(err.to_string().contains("recursion limit"), "{err}");
    }

    #[test]
    fn invalid_low_surrogate_rejected() {
        let err = from_str::<String>("\"\\uD800\\u0041\"").unwrap_err();
        assert!(err.to_string().contains("low surrogate"), "{err}");
    }

    #[test]
    fn valid_surrogate_pair_decodes() {
        let s: String = from_str("\"\\uD83C\\uDF00\"").unwrap();
        assert_eq!(s, "\u{1F300}");
    }

    #[test]
    fn string_and_float_round_trip() {
        let text = "quote \" backslash \\ tab \t unicode \u{1F300}".to_string();
        let back: String = from_str(&to_string(&text).unwrap()).unwrap();
        assert_eq!(back, text);
        let back: f32 = from_str(&to_string(&1.25f32).unwrap()).unwrap();
        assert_eq!(back, 1.25);
    }
}
