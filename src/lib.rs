//! SpecEE reproduction — umbrella crate.
//!
//! Re-exports the whole workspace so examples and integration tests can use
//! one `specee::` namespace. The paper's contribution lives in
//! [`specee_core`]; the substrates it depends on are the other crates.
//!
//! # Quick start
//!
//! ```
//! use specee::tensor::Matrix;
//! let m = Matrix::zeros(2, 2); assert_eq!(m.rows(), 2);
//! ```

#![deny(missing_docs)]

pub use specee_batch as batch;
pub use specee_cluster as cluster;
pub use specee_control as control;
pub use specee_core as core;
pub use specee_draft as draft;
pub use specee_metrics as metrics;
pub use specee_model as model;
pub use specee_nn as nn;
pub use specee_obs as obs;
pub use specee_serve as serve;
pub use specee_synth as synth;
pub use specee_tensor as tensor;
pub use specee_text as text;
