//! `specee` — command-line front end for the SpecEE reproduction.
//!
//! ```text
//! specee info                         # model / hardware / dataset tables
//! specee generate [OPTIONS]           # decode with a chosen engine
//! specee train [OPTIONS]              # offline predictor training (§7.4.4)
//! specee tokenize [--vocab N] TEXT    # train a BPE vocab, encode TEXT
//! specee serve [OPTIONS]              # continuous-batching simulation
//! ```
//!
//! Every run is deterministic for a fixed `--seed`.

use std::collections::HashMap;
use std::process::ExitCode;

use specee::batch::{Admission, BatchedEngine};
use specee::cluster::{Cluster, ClusterConfig, ClusterRequest, RouterPolicy};
use specee::control::{ControllerPolicy, ControllerSummary};
use specee::core::collect::{collect_training_data, train_bank};
use specee::core::engine::{DenseEngine, SpecEeEngine};
use specee::core::predictor::PredictorBank;
use specee::core::skip_layer::{calibrate_calm_threshold, CalmEngine};
use specee::core::{agreement, GenOutput, ScheduleEngine, SpecEeConfig};
use specee::draft::{SelfDraft, SelfDraftSpec, TreeShape};
use specee::metrics::{FrameworkProfile, HardwareProfile, Roofline};
use specee::model::{LayeredLm, ModelConfig, TokenId};
use specee::nn::TrainConfig;
use specee::obs::{
    chrome_trace_json, fold_dropped_events, fold_events, fold_meter, fold_roofline,
    prometheus_text, Event, MetricsRegistry, Recorder, SloSpec,
};
use specee::serve::{BatcherConfig, ContinuousBatcher, PoissonArrivals, RequestTrace};
use specee::synth::{DatasetProfile, OracleDraft, SyntheticLm, SyntheticLmBuilder};
use specee::tensor::rng::Pcg;
use specee::tensor::BackendKind;
use specee::text::{BpeTrainer, CorpusConfig, SyntheticCorpus};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        print_help();
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "info" => cmd_info(),
        "generate" => cmd_generate(&args[1..]),
        "train" => cmd_train(&args[1..]),
        "tokenize" => cmd_tokenize(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "help" | "--help" | "-h" => {
            print_help();
            Ok(())
        }
        other => Err(format!("unknown command `{other}` (try `specee help`)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn print_help() {
    println!(
        "specee — speculative early exiting for LLM inference (ISCA 2025 reproduction)\n\n\
         USAGE: specee <COMMAND> [OPTIONS]\n\n\
         COMMANDS:\n  \
           info       list model presets, dataset profiles and hardware targets\n  \
           generate   decode a prompt (--model 7b|13b|70b --dataset NAME --tokens N\n             \
                      --engine dense|specee|calm --seed N\n             \
                      --backend reference|blocked|quant: CPU compute kernels for\n             \
                      every projection mat-vec (blocked is bit-identical to the\n             \
                      reference oracle on dense weights, quant runs an i8\n             \
                      integer inner loop)\n             \
                      --controller static|pid|bandit: run the specee engine at\n             \
                      batch 1 with online exit-threshold control; policies take\n             \
                      inline knobs, e.g. pid:target=0.05,kp=0.3 or\n             \
                      bandit:floor=0.9,grid=0.2|0.5|1.0\n             \
                      --draft self:exit=N,tree=AxBxC: self-speculative\n             \
                      decoding — the target's own first N layers draft an\n             \
                      AxBxC token tree per round, verified in one batched\n             \
                      full-depth sweep; bit-identical greedy tokens with\n             \
                      fewer full-depth passes)\n  \
           train      offline predictor pipeline; prints per-layer accuracy\n             \
                      (--model, --dataset, --seed as above)\n  \
           tokenize   train a byte-level BPE vocabulary and encode TEXT (--vocab N)\n  \
           serve      continuous batching (--batch N --requests N --rate R\n             \
                      --mode replay|live|cluster: replay prices recorded traces,\n             \
                      live runs the lock-step batched engine and prices measured\n             \
                      steps, cluster shards live decoding over --workers N threads\n             \
                      routed by --router round-robin|shortest-queue|exit-aware;\n             \
                      --controller static|pid|bandit adapts exit thresholds\n             \
                      online in live and cluster modes;\n             \
                      paged-KV memory plane (live and cluster modes):\n             \
                      --pages N caps each engine's physical KV pages and\n             \
                      parks/resumes the lowest-priority resident under\n             \
                      pressure (bit-identical outputs), --prefix-share on\n             \
                      leases matching prompt-prefix pages copy-on-write,\n             \
                      --lanes N assigns request id mod N as its priority\n             \
                      lane, lower = higher priority)\n  \
           help       this message\n\n\
         OBSERVABILITY (generate with --engine specee, serve in any mode):\n  \
           --trace-out FILE    write the run's event timeline as Chrome\n                       \
                               trace-event JSON (open in Perfetto or\n                       \
                               chrome://tracing; one lane per worker)\n  \
           --metrics-out FILE  write counters/gauges/histograms as\n                       \
                               Prometheus text exposition\n  \
           --trace-sample N    keep a deterministic 1-in-N of each event\n                       \
                               kind (default 1 = keep all); drops are\n                       \
                               counted in specee_trace_dropped_events_total\n  \
           Recording is a pure observer: traced runs decode bit-identically\n  \
           to untraced runs.\n\n\
         SLO PLANE (serve --mode live|cluster):\n  \
           --slo SPEC          track objectives and bend exit thresholds\n                       \
                               under burn pressure, e.g.\n                       \
                               --slo p99_ttft=0.25,false_exit_rate=0.1;\n                       \
                               wraps the chosen --controller (summaries\n                       \
                               report e.g. `slo+bandit`), and SloFired /\n                       \
                               SloCleared transitions land in the trace\n  \
           --controller slo+pid|slo+bandit|slo+static  wrap explicitly\n                       \
                               (requires --slo for the burn-rate tracker)"
    );
}

/// `--trace-out FILE` / `--metrics-out FILE` export destinations. Either
/// flag switches the run into recorded mode (which is still bit-identical
/// to the unrecorded run — recording never feeds back into the
/// simulation).
fn export_paths(opts: &HashMap<String, String>) -> (Option<String>, Option<String>) {
    (
        opts.get("trace-out").cloned(),
        opts.get("metrics-out").cloned(),
    )
}

/// `--trace-sample N`: keep a deterministic 1-in-N of each event kind
/// (per-kind counters, so rare kinds are not starved by frequent ones).
/// Drops are counted and exported as
/// `specee_trace_dropped_events_total`. `1` keeps everything.
fn parse_trace_sample(opts: &HashMap<String, String>) -> Result<u32, String> {
    let n: u32 = parse_num(opts, "trace-sample", 1)?;
    if n == 0 {
        return Err("--trace-sample must be at least 1 (N keeps 1-in-N events per kind)".into());
    }
    Ok(n)
}

/// Applies the `--trace-sample` rate to a recorder (no-op at 1).
fn sampled(rec: Recorder, every: u32) -> Recorder {
    if every > 1 {
        rec.with_sample_every(every)
    } else {
        rec
    }
}

/// `--slo SPEC`: comma-separated objectives, e.g.
/// `p99_ttft=0.25,false_exit_rate=0.1`.
fn parse_slo(opts: &HashMap<String, String>) -> Result<Option<SloSpec>, String> {
    match opts.get("slo") {
        None => Ok(None),
        Some(spec) => SloSpec::parse(spec)
            .map(Some)
            .map_err(|e| format!("--slo: {e}")),
    }
}

/// Writes the requested exports: the event timeline as Chrome trace-event
/// JSON (open in Perfetto or `chrome://tracing`) and the metrics registry
/// as Prometheus text exposition.
fn write_exports(
    trace_out: Option<&str>,
    metrics_out: Option<&str>,
    events: &[Event],
    registry: &MetricsRegistry,
) -> Result<(), String> {
    if let Some(path) = trace_out {
        std::fs::write(path, chrome_trace_json(events))
            .map_err(|e| format!("--trace-out {path}: {e}"))?;
        println!(
            "trace  : {} events -> {path} (open in Perfetto / chrome://tracing)",
            events.len()
        );
    }
    if let Some(path) = metrics_out {
        std::fs::write(path, prometheus_text(registry))
            .map_err(|e| format!("--metrics-out {path}: {e}"))?;
        println!("metrics: -> {path} (Prometheus text exposition)");
    }
    Ok(())
}

/// Parses `--key value` options; positional arguments are returned in order.
fn parse_opts(args: &[String]) -> Result<(HashMap<String, String>, Vec<String>), String> {
    let mut opts = HashMap::new();
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(key) = a.strip_prefix("--") {
            let value = it
                .next()
                .ok_or_else(|| format!("--{key} expects a value"))?;
            opts.insert(key.to_string(), value.clone());
        } else {
            positional.push(a.clone());
        }
    }
    Ok((opts, positional))
}

fn model_by_name(name: &str) -> Result<ModelConfig, String> {
    match name {
        "7b" => Ok(ModelConfig::sim_llama2_7b()),
        "13b" => Ok(ModelConfig::sim_llama2_13b()),
        "70b" => Ok(ModelConfig::sim_llama2_70b()),
        "tiny" => Ok(ModelConfig::tiny()),
        other => Err(format!("unknown model `{other}` (7b, 13b, 70b, tiny)")),
    }
}

fn dataset_by_name(name: &str) -> Result<DatasetProfile, String> {
    DatasetProfile::all()
        .into_iter()
        .find(|p| p.name.eq_ignore_ascii_case(name))
        .ok_or_else(|| {
            let names: Vec<String> = DatasetProfile::all()
                .iter()
                .map(|p| p.name.clone())
                .collect();
            format!("unknown dataset `{name}` (one of: {})", names.join(", "))
        })
}

/// `--key on|off` boolean flags (absent = off).
fn parse_switch(opts: &HashMap<String, String>, key: &str) -> Result<bool, String> {
    match opts.get(key).map(String::as_str) {
        None | Some("off") => Ok(false),
        Some("on") => Ok(true),
        Some(v) => Err(format!("--{key}: expected on|off, got `{v}`")),
    }
}

fn parse_num<T: std::str::FromStr>(
    opts: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match opts.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("--{key}: bad value `{v}`")),
    }
}

struct Pipeline {
    cfg: ModelConfig,
    profile: DatasetProfile,
    seed: u64,
    backend: BackendKind,
}

impl Pipeline {
    fn from_opts(opts: &HashMap<String, String>) -> Result<Self, String> {
        let cfg = model_by_name(opts.get("model").map_or("7b", String::as_str))?;
        let profile = dataset_by_name(opts.get("dataset").map_or("QA", String::as_str))?;
        let seed = parse_num(opts, "seed", 2025u64)?;
        let backend = match opts.get("backend") {
            None => BackendKind::default(),
            Some(v) => v.parse().map_err(|e| format!("--backend: {e}"))?,
        };
        Ok(Pipeline {
            cfg,
            profile,
            seed,
            backend,
        })
    }

    fn lm(&self) -> SyntheticLm {
        let mut lm = SyntheticLmBuilder::new(self.cfg.clone(), self.profile.clone())
            .seed(self.seed)
            .build();
        lm.set_backend(self.backend);
        lm
    }

    fn draft(&self, lm: &SyntheticLm) -> OracleDraft {
        OracleDraft::new(
            *lm.language(),
            self.profile.hit_rate,
            &self.cfg,
            self.seed ^ 0xd,
        )
    }

    fn prompts(&self, lm: &SyntheticLm, n: usize, gen: usize) -> Vec<(Vec<TokenId>, usize)> {
        (0..n)
            .map(|i| {
                let start = (self.seed as u32 + i as u32 * 7) % self.cfg.vocab_size as u32;
                (
                    lm.language()
                        .sample_sequence(start, 12, self.seed ^ i as u64),
                    gen,
                )
            })
            .collect()
    }

    fn trained_bank(&self) -> (PredictorBank, Vec<f64>) {
        let mut lm = self.lm();
        let mut draft = self.draft(&lm);
        let prompts = self.prompts(&lm, 6, 16);
        let data = collect_training_data(&mut lm, &mut draft, &prompts, 4);
        let config = SpecEeConfig::default();
        let mut bank = PredictorBank::new(
            self.cfg.n_layers,
            &config.predictor,
            &mut Pcg::seed(self.seed),
        );
        train_bank(
            &mut bank,
            &data.samples,
            1.0,
            &TrainConfig {
                epochs: 16,
                lr: 3e-3,
                ..TrainConfig::default()
            },
            self.seed,
        );
        (bank, data.exit_frequencies)
    }
}

fn cmd_info() -> Result<(), String> {
    println!("models (executed dims, metered at full scale):");
    for name in ["7b", "13b", "70b"] {
        let cfg = model_by_name(name)?;
        let cost = cfg.cost.expect("sim presets carry cost twins");
        println!(
            "  {:<14} {} layers, hidden {} (metered {}), vocab {} (metered {}), ~{:.1} GB f16",
            cfg.name,
            cfg.n_layers,
            cfg.hidden_dim,
            cost.hidden_dim,
            cfg.vocab_size,
            cost.vocab_size,
            cost.weight_bytes_total() / 1e9
        );
    }
    println!("\ndataset profiles:");
    for p in DatasetProfile::all() {
        println!("  {:<16} draft hit rate {:.2}", p.name, p.hit_rate);
    }
    println!("\nhardware targets:");
    for hw in [
        HardwareProfile::a100_80g(),
        HardwareProfile::rtx4090(),
        HardwareProfile::rtx4060_laptop(),
        HardwareProfile::cpu_i7_13650hx(),
    ] {
        println!(
            "  {:<28} {:>6.1} TFLOP/s, {:>7.1} GB/s, TDP {:.0} W",
            hw.name,
            hw.peak_flops / 1e12,
            hw.mem_bw / 1e9,
            hw.tdp_w
        );
    }
    Ok(())
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let (opts, _) = parse_opts(args)?;
    let pipe = Pipeline::from_opts(&opts)?;
    let tokens: usize = parse_num(&opts, "tokens", 24)?;
    let engine_name = opts.get("engine").map_or("specee", String::as_str);
    if !matches!(engine_name, "dense" | "specee" | "calm") {
        return Err(format!(
            "unknown engine `{engine_name}` (dense, specee, calm)"
        ));
    }
    let controller = parse_controller(&opts)?;
    if controller.is_some() && engine_name != "specee" {
        return Err("--controller requires --engine specee".to_string());
    }
    if opts.contains_key("slo") {
        return Err(
            "--slo tracks burn rates over serve-tier request timing; generate \
             decodes a single stream (use `serve --mode live|cluster --slo …`)"
                .to_string(),
        );
    }
    if matches!(controller, Some(ControllerPolicy::SloAdaptive { .. })) {
        return Err(
            "slo+ controllers bend thresholds from the serve-tier SLO tracker; \
             generate has no request timing (use `serve --mode live|cluster --slo …`)"
                .to_string(),
        );
    }
    let self_draft = match opts.get("draft") {
        None => None,
        Some(spec) => Some(parse_draft_spec(spec)?),
    };
    if let Some(spec) = &self_draft {
        if engine_name != "specee" {
            return Err(
                "--draft requires --engine specee (self-draft speculates through \
                 the target's own shallow layers)"
                    .to_string(),
            );
        }
        if controller.is_some() {
            return Err(
                "--draft does not compose with --controller: self-draft verifies \
                 every token at full depth, so there are no exit thresholds to steer"
                    .to_string(),
            );
        }
        spec.validate_for_depth(pipe.cfg.n_layers)
            .map_err(|e| format!("--draft: {e}"))?;
    }
    let trace_sample = parse_trace_sample(&opts)?;
    let (trace_out, metrics_out) = export_paths(&opts);
    let observing = trace_out.is_some() || metrics_out.is_some();
    if observing && engine_name != "specee" {
        return Err(
            "--trace-out/--metrics-out record the exit-scan event stream; \
             they require --engine specee"
                .to_string(),
        );
    }
    if tokens == 0 {
        // The engines require a positive decode length; zero tokens is a
        // valid request with an empty completion.
        println!("engine        : {engine_name} on {}", pipe.cfg.name);
        println!("dataset       : {}", pipe.profile.name);
        println!("tokens        : [] (0 requested)");
        println!("exit layers   : []");
        return Ok(());
    }

    let lm = pipe.lm();
    let prompt = lm.language().sample_sequence(5, 12, pipe.seed ^ 0x9e);
    let mut controller_summary: Option<ControllerSummary> = None;
    let mut events: Vec<Event> = Vec::new();
    let mut dropped: u64 = 0;
    let out: GenOutput = match engine_name {
        "dense" => DenseEngine::new(pipe.lm()).generate(&prompt, tokens),
        "specee" if self_draft.is_some() => {
            // Self-speculative drafting: the target's own shallow layers
            // draft a token tree per round, verified in one batched
            // full-depth sweep. Runs through the batch-1 BatchedEngine,
            // whose lock-step self-draft path is structurally
            // parity-identical to the single-stream SpeculativeEngine.
            // The predictor bank is inert here (self-draft never consults
            // exit predictors), so an untrained bank suffices.
            let spec = self_draft.clone().expect("guarded by the match arm");
            let config = SpecEeConfig::default();
            let bank = PredictorBank::new(
                pipe.cfg.n_layers,
                &config.predictor,
                &mut Pcg::seed(pipe.seed ^ 0x5d),
            );
            let schedule = ScheduleEngine::all_layers(pipe.cfg.n_layers);
            let mut engine = BatchedEngine::new(1, 16, pipe.cfg.n_layers, bank, schedule, config);
            if observing {
                engine.set_recorder(Some(sampled(Recorder::new(), trace_sample)));
            }
            let out = match engine.admit(0, pipe.lm(), SelfDraft::new(spec), &prompt, tokens) {
                Admission::Done(out) => out,
                Admission::Seated { .. } => engine.drain().remove(0),
            };
            let rec = engine.take_recorder();
            dropped = rec.as_ref().map_or(0, |r| r.dropped_events());
            events = rec.map(|r| r.into_events()).unwrap_or_default();
            GenOutput {
                tokens: out.tokens,
                exit_layers: out.exit_layers,
                ce_sum: out.ce_sum,
                meter: engine.meter().clone(),
                predictor_calls: out.predictor_calls,
                verify_calls: out.verify_calls,
                rounds: out.verify_calls,
                draft_calls: out.draft_calls,
                self_draft_calls: out.self_draft_calls,
            }
        }
        "specee" => {
            let (bank, freqs) = pipe.trained_bank();
            let config = SpecEeConfig::default();
            let schedule = config.build_schedule(pipe.cfg.n_layers, Some(&freqs));
            let draft = pipe.draft(&lm);
            match controller {
                None => {
                    let mut engine = SpecEeEngine::new(pipe.lm(), draft, bank, schedule, config);
                    if observing {
                        engine.set_recorder(Some(sampled(Recorder::new(), trace_sample)));
                    }
                    let out = engine.generate(&prompt, tokens);
                    let rec = engine.take_recorder();
                    dropped = rec.as_ref().map_or(0, |r| r.dropped_events());
                    events = rec.map(|r| r.into_events()).unwrap_or_default();
                    out
                }
                Some(policy) => {
                    // Controlled decoding runs the same ExitScan dataflow
                    // through a batch-1 BatchedEngine (structurally
                    // parity-identical to the single-stream engine), which
                    // closes the threshold loop after every token.
                    let n_predictors = bank.len();
                    let base = config.predictor.threshold;
                    let mut engine =
                        BatchedEngine::new(1, 16, pipe.cfg.n_layers, bank, schedule, config);
                    engine.set_controller(policy.build_classed(n_predictors, base));
                    if observing {
                        engine.set_recorder(Some(sampled(Recorder::new(), trace_sample)));
                    }
                    let out = match engine.admit(0, pipe.lm(), draft, &prompt, tokens) {
                        Admission::Done(out) => out,
                        Admission::Seated { .. } => engine.drain().remove(0),
                    };
                    controller_summary = engine.controller_summary();
                    let rec = engine.take_recorder();
                    dropped = rec.as_ref().map_or(0, |r| r.dropped_events());
                    events = rec.map(|r| r.into_events()).unwrap_or_default();
                    GenOutput {
                        tokens: out.tokens,
                        exit_layers: out.exit_layers,
                        ce_sum: out.ce_sum,
                        meter: engine.meter().clone(),
                        predictor_calls: out.predictor_calls,
                        verify_calls: out.verify_calls,
                        rounds: 0,
                        draft_calls: out.draft_calls,
                        self_draft_calls: out.self_draft_calls,
                    }
                }
            }
        }
        "calm" => {
            let mut calib = pipe.lm();
            let prompts = pipe.prompts(&calib, 4, 12);
            let thr = calibrate_calm_threshold(&mut calib, &prompts);
            CalmEngine::new(pipe.lm(), thr).generate(&prompt, tokens)
        }
        _ => unreachable!("engine name validated above"),
    };

    let dense = DenseEngine::new(pipe.lm()).generate(&prompt, tokens);
    let cost = Roofline::with_framework(
        HardwareProfile::a100_80g(),
        FrameworkProfile::hugging_face(),
    )
    .cost(&out.meter);
    println!("engine        : {engine_name} on {}", pipe.cfg.name);
    println!("dataset       : {}", pipe.profile.name);
    println!("backend       : {}", pipe.backend);
    println!("tokens        : {:?}", out.tokens);
    println!("exit layers   : {:?}", out.exit_layers);
    println!(
        "avg layers    : {:.2} / {}",
        out.avg_layers(),
        pipe.cfg.n_layers
    );
    println!(
        "agreement     : {:.1}% vs dense",
        agreement(&out.tokens, &dense.tokens) * 100.0
    );
    println!(
        "modelled tok/s: {:.2} @ A100/HuggingFace",
        cost.tokens_per_s()
    );
    if let Some(summary) = &controller_summary {
        println!("controller    : {}", controller_line(summary));
    }
    if let Some(spec) = &self_draft {
        let shape = spec
            .shape
            .branching()
            .iter()
            .map(usize::to_string)
            .collect::<Vec<_>>()
            .join("x");
        println!(
            "self-draft    : exit {} of {} layers, tree {shape} | \
             {} shallow layer-runs, {} verify rounds",
            spec.exit_layer, pipe.cfg.n_layers, out.self_draft_calls, out.rounds
        );
    }
    if observing {
        let mut registry = MetricsRegistry::new();
        fold_events(&mut registry, &events);
        fold_dropped_events(&mut registry, dropped);
        fold_meter(&mut registry, &out.meter);
        fold_roofline(&mut registry, &cost);
        write_exports(
            trace_out.as_deref(),
            metrics_out.as_deref(),
            &events,
            &registry,
        )?;
    }
    Ok(())
}

/// Parses `--controller <spec>` (absent means no controller).
fn parse_controller(opts: &HashMap<String, String>) -> Result<Option<ControllerPolicy>, String> {
    match opts.get("controller") {
        None => Ok(None),
        Some(spec) => parse_controller_spec(spec).map(Some),
    }
}

/// Parses a controller spec: a policy name with optional inline knobs,
/// `<policy>[:key=value[,key=value]*]` — e.g. `pid:target=0.05,kp=0.3`
/// or `bandit:floor=0.9,epoch=16,grid=0.2|0.5|1.0`. Every malformed
/// spec yields an error naming the offending fragment and the knobs the
/// policy accepts.
fn parse_controller_spec(spec: &str) -> Result<ControllerPolicy, String> {
    // `slo+<policy>[:knobs]` wraps the inner policy in the SLO-adaptive
    // decorator; knobs apply to the inner policy (the wrapper's bend
    // range is fixed by `SloAdaptiveConfig::default`).
    if let Some(inner) = spec.strip_prefix("slo+") {
        return parse_controller_spec(inner).map(ControllerPolicy::slo_adaptive);
    }
    let (name, knobs) = match spec.split_once(':') {
        Some((name, rest)) => (name, rest),
        None => (spec, ""),
    };
    let mut policy = ControllerPolicy::parse(name).ok_or_else(|| {
        format!("unknown controller `{name}` (static, pid, bandit, or slo+ any of those)")
    })?;
    if knobs.is_empty() {
        if spec.contains(':') {
            return Err(format!("controller spec `{spec}` has an empty knob list"));
        }
        return Ok(policy);
    }
    for knob in knobs.split(',') {
        let (key, value) = knob
            .split_once('=')
            .ok_or_else(|| format!("controller knob `{knob}` is not key=value (in `{spec}`)"))?;
        let bad = |what: &str| format!("controller knob `{key}`: bad {what} `{value}`");
        let num = || {
            value
                .parse::<f64>()
                .ok()
                .filter(|v| v.is_finite())
                .ok_or_else(|| bad("number"))
        };
        match &mut policy {
            ControllerPolicy::SloAdaptive { .. } => {
                unreachable!("slo+ specs are unwrapped before knob parsing")
            }
            ControllerPolicy::Static => {
                return Err(format!("controller `static` takes no knobs (got `{knob}`)"));
            }
            ControllerPolicy::Pid(config) => match key {
                "target" => config.target_false_exit = num()?,
                "kp" => config.kp = num()?,
                "ki" => config.ki = num()?,
                "alpha" => config.ewma_alpha = num()?,
                "idle" => config.idle_decay = num()? as f32,
                "min" => config.min_threshold = num()? as f32,
                "max" => config.max_threshold = num()? as f32,
                _ => {
                    return Err(format!(
                        "unknown pid knob `{key}` \
                         (target, kp, ki, alpha, idle, min, max)"
                    ));
                }
            },
            ControllerPolicy::Bandit(config) => match key {
                "floor" => config.accuracy_floor = num()?,
                "epoch" => {
                    config.epoch_tokens = value.parse().map_err(|_| bad("integer"))?;
                    if config.epoch_tokens == 0 {
                        return Err("bandit knob `epoch` must be at least 1".to_string());
                    }
                }
                "discount" => config.discount = num()?,
                "evidence" => config.epoch_evidence = num()?,
                "gossip-evidence" => config.gossip_evidence = num()?,
                "reject-cost" => config.reject_cost_layers = num()?,
                "seed" => config.seed = value.parse().map_err(|_| bad("integer"))?,
                "grid" => {
                    let arms: Result<Vec<f32>, String> = value
                        .split('|')
                        .map(|a| a.parse::<f32>().map_err(|_| bad("grid")))
                        .collect();
                    let arms = arms?;
                    if arms.is_empty() || arms.iter().any(|a| !a.is_finite()) {
                        return Err(bad("grid"));
                    }
                    config.grid = arms;
                }
                _ => {
                    return Err(format!(
                        "unknown bandit knob `{key}` (floor, epoch, discount, \
                         evidence, gossip-evidence, reject-cost, seed, grid)"
                    ));
                }
            },
        }
    }
    // Cross-knob consistency: an inverted clamp range would otherwise
    // panic inside `f32::clamp` when the controller is built.
    if let ControllerPolicy::Pid(config) = &policy {
        if config.min_threshold > config.max_threshold {
            return Err(format!(
                "pid knobs min={} > max={} (the threshold clamp range is empty)",
                config.min_threshold, config.max_threshold
            ));
        }
    }
    Ok(policy)
}

/// Parses a `--draft` spec: a draft kind with inline knobs,
/// `self:exit=N,tree=AxBxC` — e.g. `self:exit=8,tree=3x2x2` drafts a
/// 3-wide root level with two binary levels below it through the
/// target's first 8 layers. Every malformed spec yields an error naming
/// the offending fragment and the knobs the kind accepts.
fn parse_draft_spec(spec: &str) -> Result<SelfDraftSpec, String> {
    let (kind, knobs) = match spec.split_once(':') {
        Some((kind, rest)) => (kind, rest),
        None => (spec, ""),
    };
    if kind != "self" {
        return Err(format!(
            "unknown draft kind `{kind}` (only `self`, e.g. `self:exit=8,tree=3x2x2`)"
        ));
    }
    if knobs.is_empty() {
        return Err(format!(
            "draft spec `{spec}` needs `exit=N,tree=AxBxC` knobs \
             (e.g. `self:exit=8,tree=3x2x2`)"
        ));
    }
    let mut exit: Option<usize> = None;
    let mut shape: Option<Vec<usize>> = None;
    for knob in knobs.split(',') {
        let (key, value) = knob
            .split_once('=')
            .ok_or_else(|| format!("draft knob `{knob}` is not key=value (in `{spec}`)"))?;
        match key {
            "exit" => {
                let n = value
                    .parse::<usize>()
                    .map_err(|_| format!("draft knob `exit`: bad layer index `{value}`"))?;
                if n == 0 {
                    return Err("draft knob `exit` must be at least 1 (the shallow \
                         draft pass needs a layer to run)"
                        .to_string());
                }
                exit = Some(n);
            }
            "tree" => {
                let levels = value
                    .split('x')
                    .map(|b| {
                        b.parse::<usize>().ok().filter(|&n| n > 0).ok_or_else(|| {
                            format!(
                                "draft knob `tree`: bad branching factor `{b}` in \
                                 `{value}` (positive integers joined by `x`, e.g. 3x2x2)"
                            )
                        })
                    })
                    .collect::<Result<Vec<usize>, String>>()?;
                shape = Some(levels);
            }
            _ => return Err(format!("unknown draft knob `{key}` (exit, tree)")),
        }
    }
    let exit = exit.ok_or_else(|| format!("draft spec `{spec}` is missing `exit=N`"))?;
    let shape = shape.ok_or_else(|| format!("draft spec `{spec}` is missing `tree=AxBxC`"))?;
    Ok(SelfDraftSpec::new(exit, TreeShape::new(shape)))
}

/// One-line controller summary for CLI output.
fn controller_line(summary: &ControllerSummary) -> String {
    let false_exit = summary
        .false_exit_rate()
        .map(|r| format!(", false-exit {:.0}%", r * 100.0))
        .unwrap_or_default();
    format!(
        "{} | mean threshold {:.3} | {} fires ({} accept / {} reject{false_exit})",
        summary.policy,
        summary.mean_threshold,
        summary.accepts + summary.rejects,
        summary.accepts,
        summary.rejects,
    )
}

fn cmd_train(args: &[String]) -> Result<(), String> {
    let (opts, _) = parse_opts(args)?;
    let pipe = Pipeline::from_opts(&opts)?;
    let mut lm = pipe.lm();
    let mut draft = pipe.draft(&lm);
    let prompts = pipe.prompts(&lm, 6, 16);
    let data = collect_training_data(&mut lm, &mut draft, &prompts, 4);
    println!(
        "collected {} samples over {} tokens; theoretical average exit {:.2} layers",
        data.samples.len(),
        data.tokens,
        data.theoretical_layers
    );
    let config = SpecEeConfig::default();
    let mut bank = PredictorBank::new(
        pipe.cfg.n_layers,
        &config.predictor,
        &mut Pcg::seed(pipe.seed),
    );
    let report = train_bank(
        &mut bank,
        &data.samples,
        1.0,
        &TrainConfig::default(),
        pipe.seed,
    );
    println!(
        "mean predictor accuracy: {:.1}%",
        report.mean_accuracy * 100.0
    );
    if let Some(path) = opts.get("out") {
        let json = bank.to_json().map_err(|e| e.to_string())?;
        std::fs::write(path, json).map_err(|e| e.to_string())?;
        println!("predictor bank written to {path}");
    }
    Ok(())
}

fn cmd_tokenize(args: &[String]) -> Result<(), String> {
    let (opts, positional) = parse_opts(args)?;
    let vocab: usize = parse_num(&opts, "vocab", 1024)?;
    let text = if positional.is_empty() {
        "the speculative predictor exits the layer early".to_string()
    } else {
        positional.join(" ")
    };
    let corpus = SyntheticCorpus::new(CorpusConfig::default(), 301).paragraphs(200);
    let tok = BpeTrainer::new(vocab).train(&corpus);
    let ids = tok.encode(&text);
    println!(
        "vocabulary    : {} tokens ({} merges)",
        tok.vocab().len(),
        tok.merges().len()
    );
    println!("input         : {text}");
    println!("ids           : {ids:?}");
    println!("roundtrip     : {}", tok.decode(&ids));
    let stats = tok.stats(&text);
    println!(
        "compression   : {:.2} bytes/token, {:.2} tokens/word",
        stats.bytes_per_token(),
        stats.tokens_per_word()
    );
    println!(
        "search space  : full vocabulary {} -> 4 speculative candidates ({}x reduction)",
        tok.vocab().len(),
        tok.vocab().len() / 4
    );
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let (opts, _) = parse_opts(args)?;
    let pipe = Pipeline::from_opts(&opts)?;
    let batch: usize = parse_num(&opts, "batch", 8)?;
    let n_requests: usize = parse_num(&opts, "requests", 12)?;
    let rate: f64 = parse_num(&opts, "rate", 6.0)?;
    let workers: usize = parse_num(&opts, "workers", 2)?;
    let router_name = opts.get("router").map_or("round-robin", String::as_str);
    let router = RouterPolicy::parse(router_name).ok_or_else(|| {
        format!("unknown router `{router_name}` (round-robin, shortest-queue, exit-aware)")
    })?;
    let mode = opts.get("mode").map_or("replay", String::as_str);
    if !matches!(mode, "replay" | "live" | "cluster") {
        return Err(format!("unknown mode `{mode}` (replay, live, cluster)"));
    }
    if workers == 0 {
        return Err("--workers must be at least 1".to_string());
    }
    let mut controller = parse_controller(&opts)?.unwrap_or(ControllerPolicy::Static);
    if mode == "replay" && controller != ControllerPolicy::Static {
        return Err(
            "--controller pid|bandit adapts thresholds from live verify outcomes; \
             replay mode prices prerecorded traces (use --mode live or cluster)"
                .to_string(),
        );
    }
    let slo = parse_slo(&opts)?;
    let trace_sample = parse_trace_sample(&opts)?;
    if slo.is_some() && mode == "replay" {
        return Err(
            "--slo tracks burn rates over live decode timing; replay mode prices \
             prerecorded traces (use --mode live or cluster)"
                .to_string(),
        );
    }
    if slo.is_some() {
        // The SLO plane bends whatever controller was chosen: wrap it in
        // the pressure-driven decorator unless the spec already did.
        if !matches!(controller, ControllerPolicy::SloAdaptive { .. }) {
            controller = controller.slo_adaptive();
        }
    } else if matches!(controller, ControllerPolicy::SloAdaptive { .. }) {
        return Err(
            "--controller slo+… bends thresholds from SLO burn pressure; pass \
             --slo to define the objectives (e.g. --slo p99_ttft=0.25)"
                .to_string(),
        );
    }
    let lanes_n: usize = parse_num(&opts, "lanes", 0)?;
    let pages: usize = parse_num(&opts, "pages", 0)?;
    let prefix_share = parse_switch(&opts, "prefix-share")?;
    if mode == "replay" && (lanes_n > 0 || pages > 0 || prefix_share) {
        return Err(
            "--lanes/--pages/--prefix-share drive the live engine's paged-KV memory \
             plane; replay mode prices prerecorded traces (use --mode live or cluster)"
                .to_string(),
        );
    }
    if lanes_n > u8::MAX as usize + 1 {
        return Err("--lanes: at most 256 priority lanes".to_string());
    }
    let page_capacity = (pages > 0).then_some(pages);
    // A capped pool parks/resumes under pressure instead of aborting;
    // preemption rides the cap on the CLI.
    let preemption = page_capacity.is_some();
    let lane_of = |id: u64| {
        if lanes_n > 0 {
            specee::core::Lane::new((id % lanes_n as u64) as u8)
        } else {
            specee::core::Lane::DEFAULT
        }
    };
    let (trace_out, metrics_out) = export_paths(&opts);
    let observing = trace_out.is_some() || metrics_out.is_some();
    let mut events: Vec<Event> = Vec::new();
    let mut registry = MetricsRegistry::new();
    let gen = 16usize;

    match mode {
        "cluster" => println!(
            "{} requests, Poisson {rate}/s, {workers} workers x batch cap {batch}, {} on \
             A100/vllm (cluster mode, {} routing)",
            n_requests,
            pipe.cfg.name,
            router.name()
        ),
        _ => println!(
            "{} requests, Poisson {rate}/s, batch cap {batch}, {} on A100/vllm ({mode} mode)",
            n_requests, pipe.cfg.name
        ),
    }
    if n_requests == 0 {
        // Nothing arrives, nothing decodes: report an explicit empty
        // summary instead of 0/0 ratios.
        println!("dense  : 0 tokens served");
        println!("SpecEE : 0 tokens served (speedup n/a)");
        return Ok(());
    }

    let (bank, freqs) = pipe.trained_bank();
    let config = SpecEeConfig::default();
    let schedule = config.build_schedule(pipe.cfg.n_layers, Some(&freqs));
    let mut dense_engine = DenseEngine::new(pipe.lm());
    let specs: Vec<(Vec<TokenId>, usize)> = pipe.prompts(dense_engine.model(), n_requests, gen);

    // The dense reference is always replayed from recorded traces (dense
    // decode is batch-invariant in both values and per-step shape).
    let mut dense_traces = Vec::new();
    for (prompt, g) in &specs {
        dense_traces.push(RequestTrace::from_output(
            &dense_engine.generate(prompt, *g),
            false,
        ));
    }
    let requests = PoissonArrivals::new(rate, pipe.seed ^ 0x11).requests(&specs);
    // The dense reference replays at the deployment's total slot budget:
    // the monolithic alternative to a sharded cluster is one big batch.
    let dense_cap = if mode == "cluster" {
        batch * workers
    } else {
        batch
    };
    let cost = pipe.cfg.cost.ok_or("model has no cost twin")?;
    let make_batcher = |max_batch: usize| {
        ContinuousBatcher::new(BatcherConfig {
            max_batch,
            hardware: HardwareProfile::a100_80g(),
            framework: FrameworkProfile::vllm(),
            cost,
        })
    };
    let batcher = match &slo {
        // Only the live path consumes the spec (replay rejects `--slo`
        // above; cluster threads it through `ClusterConfig` instead).
        Some(spec) => make_batcher(batch).with_slo(spec.clone()),
        None => make_batcher(batch),
    };
    let d = make_batcher(dense_cap)
        .run(&requests, &dense_traces)
        .stats();

    let s = match mode {
        "replay" => {
            // Record per-request SpecEE traces, then replay their timing.
            // A fresh engine per request keeps every trace's schedule and
            // model state independent — exactly how the live engine seats
            // each sequence — so the two modes decode the same workload.
            let mut spec_traces = Vec::new();
            for (prompt, g) in &specs {
                let lm = pipe.lm();
                let draft = pipe.draft(&lm);
                let mut spec_engine =
                    SpecEeEngine::new(lm, draft, bank.clone(), schedule.clone(), config.clone());
                spec_traces.push(RequestTrace::from_output(
                    &spec_engine.generate(prompt, *g),
                    true,
                ));
            }
            let mut rec = observing.then(|| sampled(Recorder::new(), trace_sample));
            let report = batcher.run_recorded(&requests, &spec_traces, rec.as_mut());
            if let Some(rec) = rec {
                fold_dropped_events(&mut registry, rec.dropped_events());
                events = rec.into_events();
                fold_events(&mut registry, &events);
            }
            report.stats()
        }
        "cluster" => {
            // Cluster: shard live decoding over worker threads behind the
            // chosen routing policy. The workload is homogeneous, so every
            // request carries the same offline expected-exit hint (the
            // exit-aware policy then degrades gracefully to load-aware
            // routing; heterogeneous deployments pass per-class hints).
            let mass: f64 = freqs.iter().sum();
            let expected_depth = if mass > 0.0 {
                freqs
                    .iter()
                    .enumerate()
                    .map(|(l, f)| (l + 1) as f64 * f)
                    .sum::<f64>()
                    / mass
            } else {
                pipe.cfg.n_layers as f64
            };
            let seq_pipe = Pipeline {
                cfg: pipe.cfg.clone(),
                profile: pipe.profile.clone(),
                seed: pipe.seed,
                backend: pipe.backend,
            };
            let mut cluster: Cluster<SyntheticLm, OracleDraft> = Cluster::spawn(
                &ClusterConfig {
                    workers,
                    page_size: 16,
                    page_capacity,
                    prefix_share,
                    preemption,
                    admission: specee::serve::AdmissionPolicy::Fcfs,
                    batcher: BatcherConfig {
                        max_batch: batch,
                        hardware: HardwareProfile::a100_80g(),
                        framework: FrameworkProfile::vllm(),
                        cost,
                    },
                    controller: controller.clone(),
                    gossip: true,
                    trace: observing,
                    trace_sample,
                    slo: slo.clone(),
                },
                router.build(),
                &bank,
                &schedule,
                &config,
                std::sync::Arc::new(move |_req: &ClusterRequest| {
                    let lm = seq_pipe.lm();
                    let draft = seq_pipe.draft(&lm);
                    (lm, draft)
                }),
            );
            for req in &requests {
                let lane = lane_of(req.id);
                cluster.submit(
                    ClusterRequest::new(req.clone())
                        .with_exit_hint(expected_depth)
                        .with_lane(lane),
                );
            }
            let report = cluster.drain();
            if page_capacity.is_some() || prefix_share || lanes_n > 0 {
                println!(
                    "kv     : peak {} pages{} | preempt {} / resume {}",
                    report.kv_pages_peak(),
                    page_capacity
                        .map(|c| format!(" (cap {c}/worker)"))
                        .unwrap_or_default(),
                    report.preemptions(),
                    report.resumes()
                );
            }
            if observing {
                events = report.events.clone();
                registry = report.metrics(Some(&HardwareProfile::a100_80g()));
            }
            for w in &report.workers {
                let threshold = w
                    .controller
                    .as_ref()
                    .map(|c| format!(" | thr {:.2}", c.mean_threshold))
                    .unwrap_or_default();
                println!(
                    "worker {} : {:>3} requests | {:>6} steps | makespan {:>6.0} ms | \
                     observed depth {:>4.1}/{}{}{}",
                    w.worker,
                    w.report.completions.len(),
                    w.report.steps,
                    w.report.makespan_s * 1e3,
                    w.observed_depth.unwrap_or(0.0),
                    pipe.cfg.n_layers,
                    threshold,
                    w.panic
                        .as_deref()
                        .map(|m| format!(" | FAILED: {m}"))
                        .unwrap_or_default()
                );
            }
            if controller != ControllerPolicy::Static {
                for w in &report.workers {
                    if let Some(summary) = &w.controller {
                        println!(
                            "worker {} controller: {}",
                            w.worker,
                            controller_line(summary)
                        );
                    }
                }
            }
            // Per-traffic-class breakdown (classes derive from exit
            // hints at admission; the homogeneous CLI workload maps to
            // one depth band).
            let breakdown = report.class_breakdown();
            if !breakdown.is_empty() {
                for row in &breakdown {
                    println!(
                        "{:<7}: {:>3} requests | {:>5} tokens | avg layers {:>4.1}/{}{}",
                        row.class.to_string(),
                        row.requests,
                        row.tokens,
                        row.mean_layers().unwrap_or(0.0),
                        pipe.cfg.n_layers,
                        row.mean_threshold
                            .map(|t| format!(" | thr {t:.2}"))
                            .unwrap_or_default()
                    );
                }
            }
            report.stats()
        }
        _ => {
            // Live: admit requests into batched-engine slots and price the
            // measured lock-step decode, with the chosen controller
            // closing the threshold loop after every step.
            let n_predictors = bank.len();
            let base = config.predictor.threshold;
            let mut engine =
                BatchedEngine::new(batch, 16, pipe.cfg.n_layers, bank, schedule, config);
            engine.set_page_capacity(page_capacity);
            engine.enable_prefix_share(prefix_share);
            engine.set_preemption_enabled(preemption);
            engine.set_controller(controller.build_classed(n_predictors, base));
            if observing {
                engine.set_recorder(Some(sampled(Recorder::for_worker(0), trace_sample)));
            }
            let lanes: Vec<specee::core::Lane> = requests.iter().map(|r| lane_of(r.id)).collect();
            let outcome =
                batcher.run_live_laned(&requests, &lanes, preemption, &mut engine, |_req| {
                    let lm = pipe.lm();
                    let draft = pipe.draft(&lm);
                    (lm, draft)
                });
            if page_capacity.is_some() || prefix_share || lanes_n > 0 {
                let kv = engine.kv_stats();
                println!(
                    "kv     : peak {} pages{} | shared {} | cow {} | preempt {} / resume {}",
                    kv.pages_peak,
                    kv.capacity
                        .map(|c| format!(" (cap {c})"))
                        .unwrap_or_default(),
                    kv.shared_pages,
                    kv.cow_copies,
                    engine.preemptions(),
                    engine.resumes()
                );
            }
            if controller != ControllerPolicy::Static {
                if let Some(summary) = engine.controller_summary() {
                    println!("controller: {}", controller_line(&summary));
                }
            }
            if observing {
                let rec = engine.take_recorder();
                fold_dropped_events(
                    &mut registry,
                    rec.as_ref().map_or(0, |r| r.dropped_events()),
                );
                events = rec.map(|r| r.into_events()).unwrap_or_default();
                fold_events(&mut registry, &events);
                fold_meter(&mut registry, engine.meter());
                fold_roofline(
                    &mut registry,
                    &Roofline::with_framework(
                        HardwareProfile::a100_80g(),
                        FrameworkProfile::vllm(),
                    )
                    .cost(engine.meter()),
                );
            }
            outcome.report.stats()
        }
    };
    let dense_label = if mode == "cluster" {
        format!("dense 1x{dense_cap}")
    } else {
        "dense  ".to_string()
    };
    println!(
        "{dense_label}: {:>8.2} tok/s | TTFT {:>6.0} ms | latency p50/p95/p99 \
         {:>5.0}/{:>5.0}/{:>5.0} ms",
        d.throughput_tok_s,
        d.mean_ttft_s * 1e3,
        d.p50_latency_s * 1e3,
        d.p95_latency_s * 1e3,
        d.p99_latency_s * 1e3
    );
    println!(
        "SpecEE : {:>8.2} tok/s | TTFT {:>6.0} ms | latency p50/p95/p99 \
         {:>5.0}/{:>5.0}/{:>5.0} ms  ({:.2}x, {mode})",
        s.throughput_tok_s,
        s.mean_ttft_s * 1e3,
        s.p50_latency_s * 1e3,
        s.p95_latency_s * 1e3,
        s.p99_latency_s * 1e3,
        s.throughput_tok_s / d.throughput_tok_s
    );
    if observing {
        write_exports(
            trace_out.as_deref(),
            metrics_out.as_deref(),
            &events,
            &registry,
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use specee::control::{BanditConfig, PidConfig};

    fn parse(spec: &str) -> ControllerPolicy {
        parse_controller_spec(spec).expect("valid spec")
    }

    fn err(spec: &str) -> String {
        parse_controller_spec(spec).expect_err("invalid spec")
    }

    #[test]
    fn name_only_specs_use_default_configs() {
        assert_eq!(parse("static"), ControllerPolicy::Static);
        assert_eq!(parse("pid"), ControllerPolicy::Pid(PidConfig::default()));
        assert_eq!(
            parse("bandit"),
            ControllerPolicy::Bandit(BanditConfig::default())
        );
    }

    #[test]
    fn pid_knobs_override_defaults() {
        let ControllerPolicy::Pid(config) =
            parse("pid:target=0.05,kp=0.3,ki=0.01,alpha=0.5,idle=0.1,min=0.2,max=0.8")
        else {
            panic!("expected pid");
        };
        assert_eq!(config.target_false_exit, 0.05);
        assert_eq!(config.kp, 0.3);
        assert_eq!(config.ki, 0.01);
        assert_eq!(config.ewma_alpha, 0.5);
        assert_eq!(config.idle_decay, 0.1);
        assert_eq!(config.min_threshold, 0.2);
        assert_eq!(config.max_threshold, 0.8);
        // Untouched knobs keep their defaults.
        let ControllerPolicy::Pid(partial) = parse("pid:target=0.05") else {
            panic!("expected pid");
        };
        assert_eq!(partial.target_false_exit, 0.05);
        assert_eq!(partial.kp, PidConfig::default().kp);
    }

    #[test]
    fn bandit_knobs_override_defaults() {
        let ControllerPolicy::Bandit(config) = parse(
            "bandit:floor=0.9,epoch=16,discount=0.99,evidence=3,gossip-evidence=1.5,\
             reject-cost=4,seed=7,grid=0.2|0.5|1.0",
        ) else {
            panic!("expected bandit");
        };
        assert_eq!(config.accuracy_floor, 0.9);
        assert_eq!(config.epoch_tokens, 16);
        assert_eq!(config.discount, 0.99);
        assert_eq!(config.epoch_evidence, 3.0);
        assert_eq!(config.gossip_evidence, 1.5);
        assert_eq!(config.reject_cost_layers, 4.0);
        assert_eq!(config.seed, 7);
        assert_eq!(config.grid, vec![0.2, 0.5, 1.0]);
    }

    #[test]
    fn slo_prefix_wraps_the_inner_policy_and_knobs_reach_it() {
        let ControllerPolicy::SloAdaptive { inner, .. } = parse("slo+pid:target=0.05") else {
            panic!("expected slo+pid");
        };
        let ControllerPolicy::Pid(config) = *inner else {
            panic!("expected pid inner");
        };
        assert_eq!(config.target_false_exit, 0.05);
        assert_eq!(parse("slo+static").name(), "slo+static");
        assert!(err("slo+sgd").contains("unknown controller `sgd`"));
    }

    #[test]
    fn malformed_specs_name_the_offense() {
        assert!(err("sgd").contains("unknown controller `sgd`"));
        assert!(err("pid:").contains("empty knob list"));
        assert!(err("pid:target").contains("not key=value"));
        assert!(err("pid:warp=1").contains("unknown pid knob `warp`"));
        assert!(err("pid:target=fast").contains("bad number `fast`"));
        assert!(err("bandit:epoch=0").contains("at least 1"));
        assert!(err("pid:target=nan").contains("bad number `nan`"));
        assert!(err("pid:min=0.8,max=0.2").contains("clamp range is empty"));
        assert!(err("bandit:epoch=2.5").contains("bad integer"));
        assert!(err("bandit:grid=0.2|x").contains("bad grid"));
        assert!(err("bandit:altitude=9").contains("unknown bandit knob"));
        assert!(err("static:target=0.1").contains("takes no knobs"));
    }

    fn draft(spec: &str) -> SelfDraftSpec {
        parse_draft_spec(spec).expect("valid draft spec")
    }

    fn draft_err(spec: &str) -> String {
        parse_draft_spec(spec).expect_err("invalid draft spec")
    }

    #[test]
    fn draft_specs_parse_exit_and_tree() {
        let spec = draft("self:exit=8,tree=3x2x2");
        assert_eq!(spec.exit_layer, 8);
        assert_eq!(spec.shape.branching(), &[3, 2, 2]);
        // Knob order is free, and a single-level chain is a valid tree.
        let spec = draft("self:tree=2,exit=1");
        assert_eq!(spec.exit_layer, 1);
        assert_eq!(spec.shape.branching(), &[2]);
    }

    #[test]
    fn malformed_draft_specs_name_the_offense() {
        assert!(draft_err("eagle:exit=2,tree=2").contains("unknown draft kind `eagle`"));
        assert!(draft_err("self").contains("needs `exit=N,tree=AxBxC`"));
        assert!(draft_err("self:").contains("needs `exit=N,tree=AxBxC`"));
        assert!(draft_err("self:exit=2").contains("missing `tree=AxBxC`"));
        assert!(draft_err("self:tree=2x2").contains("missing `exit=N`"));
        assert!(draft_err("self:exit=2,tree").contains("not key=value"));
        assert!(draft_err("self:exit=0,tree=2").contains("at least 1"));
        assert!(draft_err("self:exit=two,tree=2").contains("bad layer index `two`"));
        assert!(draft_err("self:exit=2,tree=2x0").contains("bad branching factor `0`"));
        assert!(draft_err("self:exit=2,tree=2xq").contains("bad branching factor `q`"));
        assert!(draft_err("self:exit=2,width=3").contains("unknown draft knob `width`"));
    }

    #[test]
    fn controller_line_formats_the_summary() {
        let line = controller_line(&ControllerSummary {
            policy: "pid",
            mean_threshold: 0.525,
            accepts: 6,
            rejects: 2,
            tokens: 40,
        });
        assert!(line.contains("pid"));
        assert!(line.contains("0.525"));
        assert!(line.contains("8 fires (6 accept / 2 reject, false-exit 25%)"));
    }
}
