//! The id ↔ byte-string vocabulary table.

use serde::{Deserialize, Serialize};

use crate::TokenId;

/// Special tokens reserved at the bottom of every vocabulary.
///
/// Their ids are fixed (`<pad>` = 0 … `<unk>` = 3) so engines can hard-code
/// them, mirroring how Llama2 reserves its control tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpecialToken {
    /// Padding (id 0).
    Pad,
    /// Beginning of sequence (id 1).
    Bos,
    /// End of sequence (id 2).
    Eos,
    /// Unknown/fallback (id 3). Never produced by the byte-level encoder
    /// (all bytes are representable); present for API compatibility.
    Unk,
}

impl SpecialToken {
    /// All specials in id order.
    pub const ALL: [SpecialToken; 4] = [
        SpecialToken::Pad,
        SpecialToken::Bos,
        SpecialToken::Eos,
        SpecialToken::Unk,
    ];

    /// The fixed id of this special token.
    pub fn id(self) -> TokenId {
        match self {
            SpecialToken::Pad => 0,
            SpecialToken::Bos => 1,
            SpecialToken::Eos => 2,
            SpecialToken::Unk => 3,
        }
    }

    /// The display form (e.g. `"<bos>"`).
    pub fn as_str(self) -> &'static str {
        match self {
            SpecialToken::Pad => "<pad>",
            SpecialToken::Bos => "<bos>",
            SpecialToken::Eos => "<eos>",
            SpecialToken::Unk => "<unk>",
        }
    }
}

/// Number of reserved special-token ids.
pub const NUM_SPECIALS: usize = SpecialToken::ALL.len();

/// Id of the first base byte token (byte `b` has id `BYTE_BASE + b`).
pub const BYTE_BASE: usize = NUM_SPECIALS;

/// A trained vocabulary: specials, the 256 base bytes, then one entry per
/// BPE merge, in merge order.
///
/// # Examples
///
/// ```
/// use specee_text::{SpecialToken, Vocabulary};
///
/// let vocab = Vocabulary::base();
/// assert_eq!(vocab.len(), 4 + 256);
/// assert_eq!(vocab.bytes(SpecialToken::Bos.id()), b"");
/// assert_eq!(vocab.bytes(vocab.byte_id(b'a')), b"a");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Vocabulary {
    tokens: Vec<Vec<u8>>,
}

impl Vocabulary {
    /// The minimal vocabulary: specials + 256 byte tokens, no merges.
    pub fn base() -> Self {
        let mut tokens = Vec::with_capacity(BYTE_BASE + 256);
        for special in SpecialToken::ALL {
            // Specials decode to nothing; their text form is metadata.
            let _ = special;
            tokens.push(Vec::new());
        }
        for b in 0..=255u8 {
            tokens.push(vec![b]);
        }
        Vocabulary { tokens }
    }

    /// The id of base byte `b`.
    pub fn byte_id(&self, b: u8) -> TokenId {
        (BYTE_BASE + b as usize) as TokenId
    }

    /// Appends a merged token with the given byte expansion and returns its
    /// id.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is empty: every non-special token must decode to
    /// at least one byte.
    pub fn push_merged(&mut self, bytes: Vec<u8>) -> TokenId {
        assert!(!bytes.is_empty(), "merged token must be non-empty");
        let id = self.tokens.len() as TokenId;
        self.tokens.push(bytes);
        id
    }

    /// The byte expansion of `id` (empty for specials).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn bytes(&self, id: TokenId) -> &[u8] {
        &self.tokens[id as usize]
    }

    /// Whether `id` is one of the reserved specials.
    pub fn is_special(&self, id: TokenId) -> bool {
        (id as usize) < NUM_SPECIALS
    }

    /// Total number of tokens (specials + bytes + merges).
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the vocabulary is empty (never true for constructed values).
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Decodes a token sequence to a string (lossy UTF-8, specials skipped).
    pub fn decode(&self, ids: &[TokenId]) -> String {
        let mut bytes = Vec::new();
        for &id in ids {
            bytes.extend_from_slice(self.bytes(id));
        }
        String::from_utf8_lossy(&bytes).into_owned()
    }
}

impl Default for Vocabulary {
    fn default() -> Self {
        Vocabulary::base()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specials_have_fixed_ids() {
        assert_eq!(SpecialToken::Pad.id(), 0);
        assert_eq!(SpecialToken::Bos.id(), 1);
        assert_eq!(SpecialToken::Eos.id(), 2);
        assert_eq!(SpecialToken::Unk.id(), 3);
        for (i, s) in SpecialToken::ALL.iter().enumerate() {
            assert_eq!(s.id() as usize, i);
        }
    }

    #[test]
    fn base_covers_all_bytes() {
        let v = Vocabulary::base();
        for b in 0..=255u8 {
            assert_eq!(v.bytes(v.byte_id(b)), &[b]);
        }
    }

    #[test]
    fn merged_tokens_extend_the_table() {
        let mut v = Vocabulary::base();
        let id = v.push_merged(b"th".to_vec());
        assert_eq!(id as usize, BYTE_BASE + 256);
        assert_eq!(v.bytes(id), b"th");
        assert!(!v.is_special(id));
        assert!(v.is_special(SpecialToken::Eos.id()));
    }

    #[test]
    fn decode_skips_specials() {
        let mut v = Vocabulary::base();
        let th = v.push_merged(b"th".to_vec());
        let ids = [
            SpecialToken::Bos.id(),
            th,
            v.byte_id(b'e'),
            SpecialToken::Eos.id(),
        ];
        assert_eq!(v.decode(&ids), "the");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_merge_rejected() {
        Vocabulary::base().push_merged(Vec::new());
    }
}
