//! Deterministic synthetic corpus generation.
//!
//! BPE merge statistics only need a text whose word-frequency distribution
//! is Zipf-like and whose words share sub-word structure (prefixes,
//! suffixes, inflections) — which a seeded template grammar over inflected
//! word stems provides without any external data. The paper's datasets
//! enter the evaluation through the *vocabulary they induce*, so corpus
//! realism beyond those two statistics is irrelevant here.

use specee_tensor::rng::Pcg;

/// Corpus shape knobs.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CorpusConfig {
    /// Sentences per generated paragraph.
    pub sentences_per_paragraph: usize,
    /// Zipf exponent for stem selection (1.0 ≈ natural language).
    pub zipf_s: f64,
    /// Probability a noun phrase carries an adjective.
    pub adjective_p: f64,
    /// Probability a sentence is compound (joined with a conjunction).
    pub compound_p: f64,
    /// Probability a noun phrase carries a numeric quantifier. Numbers
    /// give the corpus combinatorial surface diversity, which keeps BPE
    /// merge statistics productive at large target vocabularies.
    pub number_p: f64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            sentences_per_paragraph: 5,
            zipf_s: 1.07,
            adjective_p: 0.45,
            compound_p: 0.3,
            number_p: 0.15,
        }
    }
}

const NOUNS: &[&str] = &[
    "system",
    "model",
    "layer",
    "token",
    "cache",
    "kernel",
    "vector",
    "matrix",
    "predictor",
    "engine",
    "schedule",
    "latency",
    "memory",
    "thread",
    "batch",
    "tree",
    "path",
    "node",
    "head",
    "weight",
    "gradient",
    "budget",
    "queue",
    "buffer",
    "device",
    "tensor",
    "router",
    "sample",
    "prompt",
    "answer",
    "question",
    "paper",
    "result",
    "figure",
    "table",
    "bandwidth",
    "compute",
    "worker",
    "request",
    "server",
    "client",
    "draft",
    "target",
    "feature",
    "metric",
    "profile",
    "dataset",
    "language",
    "corpus",
    "word",
];

const VERBS: &[&str] = &[
    "measure",
    "reduce",
    "accelerate",
    "predict",
    "verify",
    "schedule",
    "merge",
    "exit",
    "skip",
    "decode",
    "encode",
    "train",
    "evaluate",
    "compute",
    "store",
    "load",
    "stream",
    "batch",
    "prune",
    "quantize",
    "sample",
    "accept",
    "reject",
    "propose",
    "commit",
    "allocate",
    "trace",
    "price",
    "record",
    "report",
];

const ADJECTIVES: &[&str] = &[
    "fast",
    "slow",
    "sparse",
    "dense",
    "early",
    "late",
    "speculative",
    "lightweight",
    "heavy",
    "shallow",
    "deep",
    "linear",
    "quadratic",
    "skewed",
    "stable",
    "dynamic",
    "static",
    "greedy",
    "optimal",
    "contextual",
    "local",
    "global",
    "partial",
    "full",
    "small",
    "large",
    "quick",
    "warm",
    "cold",
    "hybrid",
];

const ADVERBS: &[&str] = &[
    "quickly",
    "slowly",
    "eagerly",
    "lazily",
    "often",
    "rarely",
    "timely",
    "jointly",
    "independently",
    "consistently",
];

const CONJUNCTIONS: &[&str] = &["and", "but", "while", "because", "so"];

const DETERMINERS: &[&str] = &["the", "a", "each", "every", "this", "that"];

const SUFFIXES: &[&str] = &["", "s", "ed", "ing", "er"];

/// A seeded generator of English-like text.
///
/// # Examples
///
/// ```
/// use specee_text::{CorpusConfig, SyntheticCorpus};
///
/// let a = SyntheticCorpus::new(CorpusConfig::default(), 9).paragraphs(3);
/// let b = SyntheticCorpus::new(CorpusConfig::default(), 9).paragraphs(3);
/// assert_eq!(a, b); // fully deterministic
/// assert!(a.split_whitespace().count() > 40);
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticCorpus {
    config: CorpusConfig,
    rng: Pcg,
}

impl SyntheticCorpus {
    /// Creates a generator with the given shape and seed.
    pub fn new(config: CorpusConfig, seed: u64) -> Self {
        SyntheticCorpus {
            config,
            rng: Pcg::seed_stream(seed, 0x7e47),
        }
    }

    fn pick<'a>(&mut self, words: &[&'a str]) -> &'a str {
        words[self.rng.zipf(words.len(), self.config.zipf_s)]
    }

    fn inflect(&mut self, stem: &str) -> String {
        let suffix = SUFFIXES[self.rng.zipf(SUFFIXES.len(), 1.3)];
        // Drop a trailing 'e' before vowel-initial suffixes ("measure" +
        // "ing" -> "measuring"), the one spelling rule that matters for
        // realistic merge statistics.
        if (suffix.starts_with('e') || suffix.starts_with('i')) && stem.ends_with('e') {
            format!("{}{}", &stem[..stem.len() - 1], suffix)
        } else {
            format!("{stem}{suffix}")
        }
    }

    fn noun_phrase(&mut self, out: &mut String) {
        if self.rng.chance(self.config.number_p) {
            // Zipf over magnitudes: small numbers dominate, as in text.
            let digits = 1 + self.rng.zipf(4, 1.2);
            let mut n = 0u64;
            for _ in 0..digits {
                n = n * 10 + self.rng.below(10) as u64;
            }
            out.push_str(&n.to_string());
            out.push(' ');
        } else {
            out.push_str(self.pick(DETERMINERS));
            out.push(' ');
            if self.rng.chance(self.config.adjective_p) {
                out.push_str(self.pick(ADJECTIVES));
                out.push(' ');
            }
        }
        let noun = self.pick(NOUNS);
        let inflected = self.inflect(noun);
        out.push_str(&inflected);
    }

    fn clause(&mut self, out: &mut String) {
        self.noun_phrase(out);
        out.push(' ');
        if self.rng.chance(0.25) {
            out.push_str(self.pick(ADVERBS));
            out.push(' ');
        }
        let verb = self.pick(VERBS);
        let inflected = self.inflect(verb);
        out.push_str(&inflected);
        out.push(' ');
        self.noun_phrase(out);
    }

    /// Generates one sentence.
    pub fn sentence(&mut self) -> String {
        let mut s = String::new();
        self.clause(&mut s);
        if self.rng.chance(self.config.compound_p) {
            s.push(' ');
            s.push_str(self.pick(CONJUNCTIONS));
            s.push(' ');
            self.clause(&mut s);
        }
        s.push('.');
        s
    }

    /// Generates `n` paragraphs joined by blank lines.
    pub fn paragraphs(&mut self, n: usize) -> String {
        let mut out = String::new();
        for p in 0..n {
            if p > 0 {
                out.push_str("\n\n");
            }
            for s in 0..self.config.sentences_per_paragraph {
                if s > 0 {
                    out.push(' ');
                }
                let sentence = self.sentence();
                out.push_str(&sentence);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn deterministic_across_instances() {
        let a = SyntheticCorpus::new(CorpusConfig::default(), 3).paragraphs(5);
        let b = SyntheticCorpus::new(CorpusConfig::default(), 3).paragraphs(5);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = SyntheticCorpus::new(CorpusConfig::default(), 3).paragraphs(5);
        let b = SyntheticCorpus::new(CorpusConfig::default(), 4).paragraphs(5);
        assert_ne!(a, b);
    }

    #[test]
    fn word_frequencies_are_skewed() {
        let text = SyntheticCorpus::new(CorpusConfig::default(), 11).paragraphs(100);
        let mut freq: HashMap<&str, usize> = HashMap::new();
        for w in text.split_whitespace() {
            *freq.entry(w.trim_end_matches('.')).or_default() += 1;
        }
        let mut counts: Vec<usize> = freq.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let total: usize = counts.iter().sum();
        let top10: usize = counts.iter().take(10).sum();
        // Zipf-like: a handful of words dominates.
        assert!(
            top10 as f64 > 0.25 * total as f64,
            "top-10 share {} of {total}",
            top10
        );
        assert!(counts.len() > 100, "vocabulary too small: {}", counts.len());
    }

    #[test]
    fn sentences_end_with_period() {
        let mut gen = SyntheticCorpus::new(CorpusConfig::default(), 5);
        for _ in 0..20 {
            let s = gen.sentence();
            assert!(s.ends_with('.'), "{s}");
            assert!(s.split_whitespace().count() >= 4, "{s}");
        }
    }

    #[test]
    fn inflection_spelling_rule() {
        let mut gen = SyntheticCorpus::new(CorpusConfig::default(), 5);
        // "measure" + "ing" must drop the trailing 'e'.
        let mut saw_rule = false;
        for _ in 0..2000 {
            let w = gen.inflect("measure");
            assert!(!w.contains("eing") && !w.contains("eed"), "{w}");
            if w == "measuring" {
                saw_rule = true;
            }
        }
        assert!(saw_rule);
    }
}
