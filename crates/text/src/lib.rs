//! Byte-level BPE tokenizer and synthetic corpus substrate.
//!
//! SpecEE's key insight (paper §3) is that the LLM *vocabulary* is the
//! online search space of the early-exit predictor: AdaInfer-style
//! predictors multiply every layer's hidden state with the full
//! `hidden_dim × vocab_size` LM head (~3 × 10⁴ columns in Llama2), while
//! SpecEE's draft-reduced slice touches only K ≈ 4 columns — a ~10⁴×
//! search-space reduction (Fig. 2(b)).
//!
//! To make that claim reproducible rather than asserted, this crate builds
//! real vocabularies of parametric size from scratch:
//!
//! * [`corpus`] — a deterministic synthetic English-like corpus generator
//!   (Zipf-distributed word choice over template grammars), so training
//!   needs no external data;
//! * [`bpe`] — a byte-pair-encoding trainer with incremental pair-count
//!   maintenance (the classic merge loop, not a quadratic rescan);
//! * [`tokenizer`] — the runtime encoder/decoder over trained merges;
//! * [`vocab`] — the id ↔ byte-string table with special tokens.
//!
//! The vocabulary-size ablation bench (`ablation_vocab_size`) trains
//! tokenizers at several target sizes and prices the per-layer predictor
//! workload of a full-vocabulary baseline against SpecEE's K-column slice.
//!
//! # Examples
//!
//! ```
//! use specee_text::{BpeTrainer, CorpusConfig, SyntheticCorpus};
//!
//! let corpus = SyntheticCorpus::new(CorpusConfig::default(), 7).paragraphs(50);
//! let tokenizer = BpeTrainer::new(600).train(&corpus);
//! let ids = tokenizer.encode("the quick system measures the cache");
//! assert_eq!(tokenizer.decode(&ids), "the quick system measures the cache");
//! assert!(tokenizer.vocab().len() <= 600);
//! ```

#![deny(missing_docs)]

pub mod bpe;
pub mod corpus;
pub mod tokenizer;
pub mod vocab;

pub use bpe::{BpeTrainer, MergeRule};
pub use corpus::{CorpusConfig, SyntheticCorpus};
pub use tokenizer::{TokenStats, Tokenizer};
pub use vocab::{SpecialToken, Vocabulary};

/// Token identifier, compatible with `specee_model::TokenId`.
pub type TokenId = u32;
