//! Byte-pair-encoding training.
//!
//! The trainer runs the classic merge loop: count adjacent symbol pairs
//! across the pre-tokenized corpus, merge the most frequent pair into a new
//! token, repeat until the target vocabulary size. Pair counts are
//! maintained *incrementally* — each merge touches only the words that
//! contain the merged pair — so training cost scales with the number of
//! affected words, not with a full corpus rescan per merge.

use std::collections::{BTreeSet, HashMap};

use serde::{Deserialize, Serialize};

use crate::tokenizer::Tokenizer;
use crate::vocab::Vocabulary;
use crate::TokenId;

/// One learned merge: `left` followed by `right` rewrites to `result`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MergeRule {
    /// Left symbol of the pair.
    pub left: TokenId,
    /// Right symbol of the pair.
    pub right: TokenId,
    /// The merged token id.
    pub result: TokenId,
}

/// Splits `text` into chunks whose concatenation is exactly `text`.
///
/// A chunk is an optional single leading space plus a maximal run of
/// letters or digits (GPT-2's "space belongs to the following word"), or a
/// single non-alphanumeric byte. Operating on bytes keeps the partition
/// exact for arbitrary (including non-UTF-8-boundary-aligned) input.
pub(crate) fn pretokenize(text: &[u8]) -> Vec<&[u8]> {
    let mut chunks = Vec::new();
    let mut i = 0;
    while i < text.len() {
        let start = i;
        let mut j = i;
        if text[j] == b' ' && j + 1 < text.len() && text[j + 1].is_ascii_alphanumeric() {
            j += 1;
        }
        if j < text.len() && text[j].is_ascii_alphabetic() {
            while j < text.len() && text[j].is_ascii_alphabetic() {
                j += 1;
            }
        } else if j < text.len() && text[j].is_ascii_digit() {
            while j < text.len() && text[j].is_ascii_digit() {
                j += 1;
            }
        } else {
            j += 1;
        }
        chunks.push(&text[start..j]);
        i = j;
    }
    chunks
}

/// Adjacent pairs of a symbol sequence.
fn pairs_of(word: &[TokenId]) -> Vec<(TokenId, TokenId)> {
    word.windows(2).map(|w| (w[0], w[1])).collect()
}

/// A BPE trainer targeting a vocabulary size.
///
/// # Examples
///
/// ```
/// use specee_text::BpeTrainer;
///
/// let tok = BpeTrainer::new(300).train("low lower lowest low low slow slower");
/// assert!(tok.vocab().len() <= 300);
/// assert_eq!(tok.decode(&tok.encode("slower lowest")), "slower lowest");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BpeTrainer {
    target_vocab: usize,
    min_pair_freq: usize,
}

impl BpeTrainer {
    /// Creates a trainer that stops at `target_vocab` total tokens
    /// (specials + 256 bytes + merges).
    ///
    /// # Panics
    ///
    /// Panics if `target_vocab` is smaller than the base table
    /// (specials + 256).
    pub fn new(target_vocab: usize) -> Self {
        let base = Vocabulary::base().len();
        assert!(
            target_vocab >= base,
            "target vocab {target_vocab} below base table {base}"
        );
        BpeTrainer {
            target_vocab,
            min_pair_freq: 2,
        }
    }

    /// Sets the minimum pair frequency worth merging (default 2).
    pub fn min_pair_freq(mut self, freq: usize) -> Self {
        self.min_pair_freq = freq.max(1);
        self
    }

    /// Trains on `corpus` and returns the runtime tokenizer.
    pub fn train(&self, corpus: &str) -> Tokenizer {
        let mut vocab = Vocabulary::base();

        // Unique chunk -> (symbols, frequency).
        let mut chunk_freq: HashMap<&[u8], usize> = HashMap::new();
        for chunk in pretokenize(corpus.as_bytes()) {
            *chunk_freq.entry(chunk).or_default() += 1;
        }
        let mut words: Vec<(Vec<TokenId>, usize)> = chunk_freq
            .iter()
            .map(|(chunk, &freq)| (chunk.iter().map(|&b| vocab.byte_id(b)).collect(), freq))
            .collect();
        // Deterministic order regardless of hash iteration.
        words.sort_unstable();

        let mut pair_counts: HashMap<(TokenId, TokenId), i64> = HashMap::new();
        let mut pair_words: HashMap<(TokenId, TokenId), BTreeSet<usize>> = HashMap::new();
        for (idx, (word, freq)) in words.iter().enumerate() {
            for pair in pairs_of(word) {
                *pair_counts.entry(pair).or_default() += *freq as i64;
                pair_words.entry(pair).or_default().insert(idx);
            }
        }

        let mut merges = Vec::new();
        while vocab.len() < self.target_vocab {
            // Most frequent pair; ties break to the smallest (left, right)
            // so training is independent of hash-map iteration order.
            let best = pair_counts
                .iter()
                .filter(|(_, &c)| c >= self.min_pair_freq as i64)
                .max_by(|(pa, ca), (pb, cb)| ca.cmp(cb).then_with(|| pb.cmp(pa)));
            let (&pair, _) = match best {
                Some(b) => b,
                None => break,
            };

            let mut bytes = vocab.bytes(pair.0).to_vec();
            bytes.extend_from_slice(vocab.bytes(pair.1));
            let new_id = vocab.push_merged(bytes);
            merges.push(MergeRule {
                left: pair.0,
                right: pair.1,
                result: new_id,
            });

            let affected: Vec<usize> = pair_words
                .get(&pair)
                .map(|s| s.iter().copied().collect())
                .unwrap_or_default();
            for idx in affected {
                let (word, freq) = &mut words[idx];
                let old_pairs = pairs_of(word);

                let mut merged = Vec::with_capacity(word.len());
                let mut k = 0;
                while k < word.len() {
                    if k + 1 < word.len() && word[k] == pair.0 && word[k + 1] == pair.1 {
                        merged.push(new_id);
                        k += 2;
                    } else {
                        merged.push(word[k]);
                        k += 1;
                    }
                }
                *word = merged;
                let new_pairs = pairs_of(word);
                let freq = *freq as i64;

                for p in &old_pairs {
                    let c = pair_counts.entry(*p).or_default();
                    *c -= freq;
                    if *c <= 0 {
                        pair_counts.remove(p);
                    }
                }
                for p in &new_pairs {
                    *pair_counts.entry(*p).or_default() += freq;
                }
                for p in &old_pairs {
                    if !new_pairs.contains(p) {
                        if let Some(set) = pair_words.get_mut(p) {
                            set.remove(&idx);
                        }
                    }
                }
                for p in new_pairs {
                    pair_words.entry(p).or_default().insert(idx);
                }
            }
            pair_counts.remove(&pair);
            pair_words.remove(&pair);
        }

        Tokenizer::from_parts(vocab, merges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{CorpusConfig, SyntheticCorpus};
    use crate::vocab::BYTE_BASE;

    #[test]
    fn pretokenize_partitions_exactly() {
        let cases = [
            "the quick brown fox",
            "  leading spaces",
            "mixed 123 numbers, punct! and\nnewlines",
            "",
            " ",
            "a",
            "...",
            "tabs\tand spaces  double",
        ];
        for case in cases {
            let chunks = pretokenize(case.as_bytes());
            let rebuilt: Vec<u8> = chunks.concat();
            assert_eq!(rebuilt, case.as_bytes(), "case {case:?}");
        }
    }

    #[test]
    fn pretokenize_attaches_leading_space_to_words() {
        let chunks = pretokenize(b"the cache layer");
        assert_eq!(chunks[0], b"the");
        assert_eq!(chunks[1], b" cache");
        assert_eq!(chunks[2], b" layer");
    }

    #[test]
    fn merges_concatenate_their_parts() {
        let corpus = SyntheticCorpus::new(CorpusConfig::default(), 17).paragraphs(40);
        let tok = BpeTrainer::new(500).train(&corpus);
        for rule in tok.merges() {
            let mut expect = tok.vocab().bytes(rule.left).to_vec();
            expect.extend_from_slice(tok.vocab().bytes(rule.right));
            assert_eq!(tok.vocab().bytes(rule.result), &expect[..]);
        }
        assert!(!tok.merges().is_empty());
    }

    #[test]
    fn target_vocab_respected_and_monotone() {
        let corpus = SyntheticCorpus::new(CorpusConfig::default(), 17).paragraphs(40);
        let small = BpeTrainer::new(400).train(&corpus);
        let large = BpeTrainer::new(800).train(&corpus);
        assert!(small.vocab().len() <= 400);
        assert!(large.vocab().len() <= 800);
        assert!(large.vocab().len() > small.vocab().len());
        // The first merges agree: training is a deterministic prefix.
        for (a, b) in small.merges().iter().zip(large.merges()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn training_is_deterministic() {
        let corpus = SyntheticCorpus::new(CorpusConfig::default(), 23).paragraphs(30);
        let a = BpeTrainer::new(600).train(&corpus);
        let b = BpeTrainer::new(600).train(&corpus);
        assert_eq!(a.merges(), b.merges());
    }

    #[test]
    fn min_pair_freq_stops_early() {
        // A corpus of unique words: no pair ever repeats at freq >= 3.
        let tok = BpeTrainer::new(5000)
            .min_pair_freq(3)
            .train("ab cd ef gh ij kl");
        assert_eq!(tok.vocab().len(), BYTE_BASE + 256);
    }

    #[test]
    fn frequent_word_becomes_single_token() {
        let corpus =
            "the ".repeat(200) + &SyntheticCorpus::new(CorpusConfig::default(), 3).paragraphs(20);
        let tok = BpeTrainer::new(700).train(&corpus);
        let ids = tok.encode("the the");
        // "the" and " the" each collapse to one token.
        assert_eq!(ids.len(), 2, "ids {ids:?}");
    }
}
