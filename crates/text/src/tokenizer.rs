//! The runtime encoder/decoder over trained merges.

use std::cell::RefCell;
use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::bpe::{pretokenize, MergeRule};
use crate::vocab::{SpecialToken, Vocabulary};
use crate::TokenId;

/// A trained byte-level BPE tokenizer.
///
/// Encoding applies merges in rank order (lowest-rank pair first), exactly
/// inverse to training, so `decode(encode(text)) == text` for any input.
///
/// # Examples
///
/// ```
/// use specee_text::{BpeTrainer, CorpusConfig, SyntheticCorpus};
///
/// let corpus = SyntheticCorpus::new(CorpusConfig::default(), 1).paragraphs(30);
/// let tok = BpeTrainer::new(500).train(&corpus);
/// let ids = tok.encode_with_specials("the fast cache");
/// assert_eq!(ids[0], 1); // <bos>
/// assert_eq!(*ids.last().unwrap(), 2); // <eos>
/// assert_eq!(tok.decode(&ids), "the fast cache");
/// ```
#[derive(Debug, Serialize, Deserialize)]
pub struct Tokenizer {
    vocab: Vocabulary,
    merges: Vec<MergeRule>,
    /// (left, right) -> (rank, merged id), rebuilt from `merges` on load.
    #[serde(skip)]
    ranks: HashMap<(TokenId, TokenId), (usize, TokenId)>,
    /// Per-chunk encode cache (word -> ids).
    #[serde(skip)]
    cache: RefCell<HashMap<Vec<u8>, Vec<TokenId>>>,
}

impl Clone for Tokenizer {
    fn clone(&self) -> Self {
        Tokenizer::from_parts(self.vocab.clone(), self.merges.clone())
    }
}

impl PartialEq for Tokenizer {
    fn eq(&self, other: &Self) -> bool {
        self.vocab == other.vocab && self.merges == other.merges
    }
}

impl Tokenizer {
    /// Assembles a tokenizer from a vocabulary and its merge list.
    pub fn from_parts(vocab: Vocabulary, merges: Vec<MergeRule>) -> Self {
        let ranks = merges
            .iter()
            .enumerate()
            .map(|(rank, m)| ((m.left, m.right), (rank, m.result)))
            .collect();
        Tokenizer {
            vocab,
            merges,
            ranks,
            cache: RefCell::new(HashMap::new()),
        }
    }

    /// The vocabulary table.
    pub fn vocab(&self) -> &Vocabulary {
        &self.vocab
    }

    /// The learned merges in training order.
    pub fn merges(&self) -> &[MergeRule] {
        &self.merges
    }

    fn encode_chunk(&self, chunk: &[u8]) -> Vec<TokenId> {
        if let Some(ids) = self.cache.borrow().get(chunk) {
            return ids.clone();
        }
        let mut ids: Vec<TokenId> = chunk.iter().map(|&b| self.vocab.byte_id(b)).collect();
        loop {
            let mut best: Option<(usize, usize, TokenId)> = None; // (rank, pos, result)
            for pos in 0..ids.len().saturating_sub(1) {
                if let Some(&(rank, result)) = self.ranks.get(&(ids[pos], ids[pos + 1])) {
                    if best.is_none_or(|(r, _, _)| rank < r) {
                        best = Some((rank, pos, result));
                    }
                }
            }
            match best {
                Some((_, pos, result)) => {
                    ids[pos] = result;
                    ids.remove(pos + 1);
                }
                None => break,
            }
        }
        self.cache.borrow_mut().insert(chunk.to_vec(), ids.clone());
        ids
    }

    /// Encodes `text` to token ids (no specials).
    pub fn encode(&self, text: &str) -> Vec<TokenId> {
        let mut out = Vec::new();
        for chunk in pretokenize(text.as_bytes()) {
            out.extend(self.encode_chunk(chunk));
        }
        out
    }

    /// Encodes with `<bos>` / `<eos>` wrapping.
    pub fn encode_with_specials(&self, text: &str) -> Vec<TokenId> {
        let mut out = vec![SpecialToken::Bos.id()];
        out.extend(self.encode(text));
        out.push(SpecialToken::Eos.id());
        out
    }

    /// Decodes ids back to text (specials skipped, lossy UTF-8).
    pub fn decode(&self, ids: &[TokenId]) -> String {
        self.vocab.decode(ids)
    }

    /// Token statistics of `text` under this tokenizer.
    pub fn stats(&self, text: &str) -> TokenStats {
        let ids = self.encode(text);
        let words = text.split_whitespace().count();
        TokenStats {
            tokens: ids.len(),
            bytes: text.len(),
            words,
        }
    }

    /// Serializes to JSON.
    ///
    /// # Errors
    ///
    /// Returns any `serde_json` serialization error.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Deserializes from JSON (rebuilding the rank index).
    ///
    /// # Errors
    ///
    /// Returns any `serde_json` parse error.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        let raw: Tokenizer = serde_json::from_str(json)?;
        Ok(Tokenizer::from_parts(raw.vocab, raw.merges))
    }
}

/// Encoding statistics over a text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TokenStats {
    /// Tokens produced.
    pub tokens: usize,
    /// Input bytes.
    pub bytes: usize,
    /// Whitespace-separated words.
    pub words: usize,
}

impl TokenStats {
    /// Mean bytes encoded per token (compression; higher is better).
    pub fn bytes_per_token(&self) -> f64 {
        if self.tokens == 0 {
            0.0
        } else {
            self.bytes as f64 / self.tokens as f64
        }
    }

    /// Mean tokens per word (fertility; lower is better).
    pub fn tokens_per_word(&self) -> f64 {
        if self.words == 0 {
            0.0
        } else {
            self.tokens as f64 / self.words as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bpe::BpeTrainer;
    use crate::corpus::{CorpusConfig, SyntheticCorpus};

    fn trained(vocab: usize) -> (Tokenizer, String) {
        let corpus = SyntheticCorpus::new(CorpusConfig::default(), 29).paragraphs(40);
        (BpeTrainer::new(vocab).train(&corpus), corpus)
    }

    #[test]
    fn roundtrip_on_training_text() {
        let (tok, corpus) = trained(700);
        let ids = tok.encode(&corpus);
        assert_eq!(tok.decode(&ids), corpus);
    }

    #[test]
    fn roundtrip_on_unseen_text_with_unseen_bytes() {
        let (tok, _) = trained(700);
        let text = "zzz überraschung 北京 -- bytes the trainer never saw!";
        assert_eq!(tok.decode(&tok.encode(text)), text);
    }

    #[test]
    fn encode_never_emits_specials() {
        let (tok, corpus) = trained(700);
        for id in tok.encode(&corpus) {
            assert!(!tok.vocab().is_special(id));
        }
    }

    #[test]
    fn larger_vocab_compresses_better() {
        let corpus = SyntheticCorpus::new(CorpusConfig::default(), 31).paragraphs(60);
        let eval = SyntheticCorpus::new(CorpusConfig::default(), 99).paragraphs(10);
        let small = BpeTrainer::new(300).train(&corpus).stats(&eval);
        let large = BpeTrainer::new(1200).train(&corpus).stats(&eval);
        assert!(
            large.bytes_per_token() > small.bytes_per_token(),
            "large {} <= small {}",
            large.bytes_per_token(),
            small.bytes_per_token()
        );
    }

    #[test]
    fn cache_is_transparent() {
        let (tok, _) = trained(500);
        let a = tok.encode("the fast cache measures the cache");
        let b = tok.encode("the fast cache measures the cache");
        assert_eq!(a, b);
    }

    #[test]
    fn json_roundtrip_preserves_encoding() {
        let (tok, _) = trained(500);
        let json = tok.to_json().expect("serialize");
        let back = Tokenizer::from_json(&json).expect("parse");
        let text = "the speculative predictor exits early";
        assert_eq!(tok.encode(text), back.encode(text));
        assert_eq!(tok, back);
    }

    #[test]
    fn stats_are_consistent() {
        let (tok, _) = trained(500);
        let s = tok.stats("the cache measures the cache");
        assert_eq!(s.words, 5);
        assert!(s.tokens >= 5); // a word is at least one token here
        assert!(s.bytes_per_token() > 1.0);
        assert!(s.tokens_per_word() >= 1.0);
    }

    #[test]
    fn empty_input() {
        let (tok, _) = trained(400);
        assert!(tok.encode("").is_empty());
        assert_eq!(tok.decode(&[]), "");
        let s = tok.stats("");
        assert_eq!(s.bytes_per_token(), 0.0);
        assert_eq!(s.tokens_per_word(), 0.0);
    }
}
