//! Property-based tests for the tokenizer: the roundtrip invariant must
//! hold for *arbitrary* input, not just corpus-like text.

use proptest::prelude::*;
use specee_text::{BpeTrainer, CorpusConfig, SyntheticCorpus, Tokenizer};

fn trained() -> Tokenizer {
    let corpus = SyntheticCorpus::new(CorpusConfig::default(), 41).paragraphs(30);
    BpeTrainer::new(600).train(&corpus)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// decode(encode(s)) == s for arbitrary unicode strings.
    #[test]
    fn roundtrip_arbitrary_unicode(s in "\\PC*") {
        let tok = trained();
        prop_assert_eq!(tok.decode(&tok.encode(&s)), s);
    }

    /// Roundtrip holds for ASCII with heavy whitespace/punctuation mixes.
    #[test]
    fn roundtrip_ascii_soup(s in "[ a-z0-9.,!?\t\n-]{0,200}") {
        let tok = trained();
        prop_assert_eq!(tok.decode(&tok.encode(&s)), s);
    }

    /// Every emitted id is in range and non-special.
    #[test]
    fn ids_in_range(s in "[ a-z]{0,100}") {
        let tok = trained();
        for id in tok.encode(&s) {
            prop_assert!((id as usize) < tok.vocab().len());
            prop_assert!(!tok.vocab().is_special(id));
        }
    }

    /// Encoding is longest at byte level: token count never exceeds byte
    /// count, and concatenation-compatible (encode(a) ++ encode(b)
    /// decodes to a ++ b).
    #[test]
    fn token_count_bounded_and_concat_decodes(a in "[ a-z]{0,50}", b in "[ a-z]{0,50}") {
        let tok = trained();
        let ia = tok.encode(&a);
        let ib = tok.encode(&b);
        prop_assert!(ia.len() <= a.len());
        let mut joined = ia.clone();
        joined.extend(&ib);
        prop_assert_eq!(tok.decode(&joined), format!("{a}{b}"));
    }
}

#[test]
fn trained_tokenizer_compresses_corpus_like_text() {
    let tok = trained();
    let eval = SyntheticCorpus::new(CorpusConfig::default(), 123).paragraphs(5);
    let stats = tok.stats(&eval);
    // On in-distribution text a 600-token vocab should beat 2 bytes/token.
    assert!(
        stats.bytes_per_token() > 2.0,
        "bytes/token {}",
        stats.bytes_per_token()
    );
}
