//! Ablation A1 (ours): how the skipped-layer KV fill policy affects output
//! agreement and exit depth. The paper does not specify this mechanism;
//! DESIGN.md documents the ProjectExitHidden default.

use specee_bench::*;
use specee_core::engine::SpecEeEngine;
use specee_core::{RunStats, SpecEeConfig};
use specee_metrics::Table;
use specee_model::SkipKvPolicy;

fn main() {
    banner("ablation_kv_policy", "skipped-KV fill policies");
    let cfg = model_7b();
    let ds = specee_synth::DatasetProfile::mt_bench();
    let seed = 73;
    let trained = train_pipeline(&cfg, &ds, seed, paper_predictor());
    let wl = workload(&cfg, &ds, request_count(), seed);
    let dense = run_engine(
        EngineKind::Dense,
        &cfg,
        &ds,
        seed,
        ModelVariant::Dense,
        &trained,
        &wl,
    );

    let mut t = Table::new(vec![
        "policy",
        "agreement vs dense",
        "avg layers",
        "skip-fill bytes/token",
    ]);
    for (name, policy) in [
        ("ProjectExitHidden", SkipKvPolicy::ProjectExitHidden),
        ("ReuseLast", SkipKvPolicy::ReuseLast),
        ("ZeroFill", SkipKvPolicy::ZeroFill),
    ] {
        let config = SpecEeConfig {
            predictor: trained.predictor,
            skip_kv_policy: policy,
            ..SpecEeConfig::default()
        };
        let schedule =
            config.build_schedule(cfg.n_layers, Some(&trained.collection.exit_frequencies));
        let lm = build_lm(&cfg, &ds, seed, ModelVariant::Dense);
        let draft = build_draft(&lm, &cfg, seed);
        let mut engine = SpecEeEngine::new(lm, draft, trained.bank.clone(), schedule, config);
        let outputs: Vec<_> = wl
            .iter()
            .map(|r| engine.generate(&r.prompt, r.gen_len))
            .collect();
        let stats = RunStats::aggregate(&outputs);
        let run = EngineRun {
            stats,
            outputs,
            avg_active_predictors: None,
        };
        let fill = run.stats.meter.kind(specee_metrics::OpKind::SkipKvFill);
        t.row(vec![
            name.to_string(),
            format!("{:.1}%", agreement_vs(&dense, &run) * 100.0),
            format!("{:.2}", run.stats.avg_layers),
            format!(
                "{:.1} MB",
                fill.bytes / run.stats.tokens.max(1) as f64 / 1e6
            ),
        ]);
    }
    println!("{t}");
}
