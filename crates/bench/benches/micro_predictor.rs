//! Criterion microbenchmarks: the lightweight predictor forward vs the
//! full-LM-head feature path it replaces (the ~100x reduction of
//! Fig. 2(c)-T1), measured in CPU wall-clock at executed dims.

use criterion::{criterion_group, criterion_main, Criterion};
use specee_core::predictor::{ExitPredictor, PredictorConfig};
use specee_core::ExitFeatures;
use specee_metrics::Meter;
use specee_model::{LayeredLm, ModelConfig, Transformer};
use specee_tensor::rng::Pcg;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let cfg = ModelConfig::sim_llama2_7b();
    let mut model = Transformer::random(cfg.clone(), &mut Pcg::seed(1));
    let mut meter = Meter::new();
    let h = model.begin_token(1, &mut meter);
    let predictor = ExitPredictor::new(&PredictorConfig::default(), &mut Pcg::seed(2));
    let features = ExitFeatures {
        logits: vec![1.0, 0.5, 0.2, 0.1],
        probs: vec![0.4, 0.3, 0.2, 0.1],
        delta: vec![0.1, -0.05, -0.03, -0.02],
    };

    c.bench_function("predictor_mlp_forward", |b| {
        b.iter(|| black_box(predictor.score(black_box(&features), &mut meter)))
    });
    c.bench_function("lm_head_slice_k4", |b| {
        b.iter(|| black_box(model.slice_logits(black_box(&h), &[3, 9, 17, 44], &mut meter)))
    });
    c.bench_function("lm_head_full_vocab", |b| {
        b.iter(|| black_box(model.final_logits(black_box(&h), &mut meter)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
