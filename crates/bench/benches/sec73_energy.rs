//! §7.3.1: energy efficiency — SpecEE lowers average power (the predictor
//! is memory-bound) and improves energy per token (paper: 201 W -> 182 W,
//! ~1.57x energy efficiency on A100/MT-Bench).

use specee_bench::*;
use specee_core::SchedulingMode;
use specee_metrics::{report::fmt_x, FrameworkProfile, HardwareProfile, Table};

fn main() {
    banner("sec73_energy", "average power and energy per token");
    let cfg = model_7b();
    let ds = specee_synth::DatasetProfile::mt_bench();
    let seed = 61;
    let trained = train_pipeline(&cfg, &ds, seed, paper_predictor());
    let wl = workload(&cfg, &ds, request_count(), seed);
    let hw = HardwareProfile::a100_80g();
    let fw = FrameworkProfile::hugging_face();

    let mut table = Table::new(vec![
        "engine",
        "avg power (W)",
        "J/token",
        "energy efficiency",
    ]);
    let dense = run_engine(
        EngineKind::Dense,
        &cfg,
        &ds,
        seed,
        ModelVariant::Dense,
        &trained,
        &wl,
    );
    let dc = price(&dense.stats.meter, hw.clone(), fw.clone());
    let base_jpt = dc.energy_j / dc.tokens as f64;
    for (name, kind) in [
        ("Dense (HF)", EngineKind::Dense),
        (
            "SpecEE (AR)",
            EngineKind::SpecEeAr(SchedulingMode::TwoLevel),
        ),
        ("SpecEE (full)", EngineKind::SpecEeSpeculative),
    ] {
        let run = run_engine(kind, &cfg, &ds, seed, ModelVariant::Dense, &trained, &wl);
        let cost = price(&run.stats.meter, hw.clone(), fw.clone());
        let jpt = cost.energy_j / cost.tokens as f64;
        table.row(vec![
            name.to_string(),
            format!("{:.0}", cost.avg_power_w()),
            format!("{jpt:.3}"),
            fmt_x(base_jpt / jpt),
        ]);
    }
    println!("paper: 201 W -> 182 W (~10% power cut), ~1.57x energy efficiency");
    println!("{table}");
}
