//! Fig. 17: GPU memory usage vs generated tokens for Llama2-7B and
//! Llama2-13B, HF vs SpecEE. SpecEE starts ~0.9/1.4 GB higher (the draft
//! model) and both grow with the KV cache.

use specee_bench::*;
use specee_core::SchedulingMode;
use specee_draft::SpeculativeSource;
use specee_metrics::Table;
use specee_model::LayeredLm;

fn main() {
    banner("fig17_memory", "modelled GPU memory vs generated tokens");
    let ds = specee_synth::DatasetProfile::mt_bench();
    let seed = 47;
    for (name, cfg, paper) in [
        ("Llama2-7B", model_7b(), "paper: ~+0.9 GB draft overhead"),
        ("Llama2-13B", model_13b(), "paper: ~+1.4 GB draft overhead"),
    ] {
        let trained = train_pipeline(&cfg, &ds, seed, paper_predictor());
        let lm = build_lm(&cfg, &ds, seed, ModelVariant::Dense);
        let draft = build_draft(&lm, &cfg, seed);
        let kv_per_token = cfg.cost.as_ref().map_or(0.0, |c| c.kv_bytes_per_token());
        let weights = lm.modelled_weight_bytes();
        let draft_bytes = draft.modelled_bytes();
        let predictors = trained.bank.total_bytes() as f64;

        let mut table = Table::new(vec![
            "generated tokens",
            "HF (GB)",
            "SpecEE (GB)",
            "delta (GB)",
        ]);
        for toks in [0usize, 400, 800, 1600, 2400, 3200] {
            let kv = kv_per_token * toks as f64;
            let hf = (weights + kv) / 1e9;
            let specee = (weights + kv + draft_bytes + predictors) / 1e9;
            table.row(vec![
                toks.to_string(),
                format!("{hf:.2}"),
                format!("{specee:.2}"),
                format!("{:.2}", specee - hf),
            ]);
        }
        println!(
            "\n{name} ({paper}; predictors add only {:.0} KB)",
            predictors / 1024.0
        );
        println!("{table}");
        // sanity: measured allocation trace grows with decoded tokens
        let wl = workload(&cfg, &ds, 1, seed);
        let run = run_engine(
            EngineKind::SpecEeAr(SchedulingMode::TwoLevel),
            &cfg,
            &ds,
            seed,
            ModelVariant::Dense,
            &trained,
            &wl,
        );
        println!(
            "(engine decoded {} tokens; KV grows linearly as shown)",
            run.stats.tokens
        );
    }
}
