//! §7.4.2/§7.4.4: overhead accounting — draft-model and predictor memory,
//! predictor share of inference latency (paper: ~0.9 GB draft, ~416 KB
//! predictors, predictor ~5.6% of latency).

use specee_bench::*;
use specee_core::SchedulingMode;
use specee_draft::SpeculativeSource;
use specee_metrics::{report::fmt_pct, FrameworkProfile, HardwareProfile, OpKind, Table};
use specee_model::LayeredLm;

fn main() {
    banner("sec74_overhead", "memory and runtime overhead of SpecEE");
    let cfg = model_7b();
    let ds = specee_synth::DatasetProfile::mt_bench();
    let seed = 67;
    let trained = train_pipeline(&cfg, &ds, seed, paper_predictor());
    let lm = build_lm(&cfg, &ds, seed, ModelVariant::Dense);
    let draft = build_draft(&lm, &cfg, seed);

    let mut t = Table::new(vec!["component", "modelled size"]);
    t.row(vec![
        "target model weights".into(),
        format!("{:.2} GB", lm.modelled_weight_bytes() / 1e9),
    ]);
    t.row(vec![
        "draft model (EAGLE head)".into(),
        format!("{:.2} GB", draft.modelled_bytes() / 1e9),
    ]);
    t.row(vec![
        "all layer predictors".into(),
        format!("{:.0} KB", trained.bank.total_bytes() as f64 / 1024.0),
    ]);
    println!("memory (paper: ~0.9 GB draft, ~416 KB predictors for Llama2-7B)");
    println!("{t}");

    let wl = workload(&cfg, &ds, request_count(), seed);
    let run = run_engine(
        EngineKind::SpecEeAr(SchedulingMode::TwoLevel),
        &cfg,
        &ds,
        seed,
        ModelVariant::Dense,
        &trained,
        &wl,
    );
    let cost = price(
        &run.stats.meter,
        HardwareProfile::a100_80g(),
        FrameworkProfile::hugging_face(),
    );
    let mut t = Table::new(vec!["share of latency", "value"]);
    t.row(vec![
        "predictor ops".into(),
        fmt_pct(cost.share(OpKind::Predictor)),
    ]);
    t.row(vec![
        "all SpecEE overhead (pred+slice+kv-fill)".into(),
        fmt_pct(cost.specee_overhead_s() / cost.latency_s),
    ]);
    t.row(vec![
        "decoder layers".into(),
        fmt_pct(cost.decoder_layer_s() / cost.latency_s),
    ]);
    println!("runtime (paper: predictors ~5.6% of inference latency)");
    println!("{t}");
    println!(
        "predictor calls/token: {:.1}  (dynamic active layers: {:.1})",
        run.stats.predictor_calls as f64 / run.stats.tokens as f64,
        run.avg_active_predictors.unwrap_or(0.0)
    );

    // ---- Tracing-plane overhead (specee-obs) ----
    // The observability contract: with no recorder attached the event
    // plane costs nothing (one `Option` check per would-be event), and
    // with a recorder attached the decode stays bit-identical. Decode
    // the same workload three ways — stock engine, explicitly disabled
    // sink, enabled recorder — best-of-N wall clock per token.
    use specee_core::engine::SpecEeEngine;
    use specee_obs::Recorder;
    use std::time::Instant;

    let config = specee_core::SpecEeConfig {
        predictor: trained.predictor,
        ..specee_core::SpecEeConfig::default()
    };
    let schedule = config.build_schedule(cfg.n_layers, Some(&trained.collection.exit_frequencies));
    let decode = |recorder: Option<Option<Recorder>>| {
        let lm = build_lm(&cfg, &ds, seed, ModelVariant::Dense);
        let draft = build_draft(&lm, &cfg, seed);
        let mut engine = SpecEeEngine::new(
            lm,
            draft,
            trained.bank.clone(),
            schedule.clone(),
            config.clone(),
        );
        if let Some(rec) = recorder {
            engine.set_recorder(rec);
        }
        let t0 = Instant::now();
        let outs: Vec<_> = wl
            .iter()
            .map(|r| engine.generate(&r.prompt, r.gen_len))
            .collect();
        let dt = t0.elapsed().as_secs_f64();
        let tokens: usize = outs.iter().map(|o| o.tokens.len()).sum();
        let events = engine
            .take_recorder()
            .map(|r| r.into_events().len())
            .unwrap_or(0);
        (dt / tokens.max(1) as f64, outs, events)
    };
    let reps = 3;
    let (mut stock, mut disabled, mut enabled) = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    let mut reference = None;
    let (mut traced_outs, mut n_events) = (None, 0);
    for _ in 0..reps {
        let (t, outs, _) = decode(None);
        stock = stock.min(t);
        reference = Some(outs);
        let (t, _, _) = decode(Some(None));
        disabled = disabled.min(t);
        let (t, outs, events) = decode(Some(Some(Recorder::new())));
        enabled = enabled.min(t);
        traced_outs = Some(outs);
        n_events = events;
    }
    let (reference, traced_outs) = (reference.unwrap(), traced_outs.unwrap());
    for (a, b) in reference.iter().zip(&traced_outs) {
        assert_eq!(a.tokens, b.tokens, "tracing must not change tokens");
        assert_eq!(
            a.exit_layers, b.exit_layers,
            "tracing must not change exits"
        );
    }
    println!(
        "\ntracing plane (best of {reps}, {} events when enabled):",
        n_events
    );
    println!("  stock engine    : {:>7.1} us/token", stock * 1e6);
    println!(
        "  sink disabled   : {:>7.1} us/token ({:+.1}% vs stock)",
        disabled * 1e6,
        (disabled / stock - 1.0) * 100.0
    );
    println!(
        "  recorder enabled: {:>7.1} us/token ({:+.1}% vs stock, bit-identical output)",
        enabled * 1e6,
        (enabled / stock - 1.0) * 100.0
    );
    // The disabled path must be indistinguishable from the stock engine;
    // the 15% headroom only absorbs scheduler noise in the wall clock.
    assert!(
        disabled <= stock * 1.15,
        "disabled trace sink should add no measurable per-token cost \
         (stock {:.1} us/token, disabled {:.1} us/token)",
        stock * 1e6,
        disabled * 1e6
    );
}
