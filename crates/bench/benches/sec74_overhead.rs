//! §7.4.2/§7.4.4: overhead accounting — draft-model and predictor memory,
//! predictor share of inference latency (paper: ~0.9 GB draft, ~416 KB
//! predictors, predictor ~5.6% of latency).

use specee_bench::*;
use specee_core::SchedulingMode;
use specee_draft::SpeculativeSource;
use specee_metrics::{report::fmt_pct, FrameworkProfile, HardwareProfile, OpKind, Table};
use specee_model::LayeredLm;

fn main() {
    banner("sec74_overhead", "memory and runtime overhead of SpecEE");
    let cfg = model_7b();
    let ds = specee_synth::DatasetProfile::mt_bench();
    let seed = 67;
    let trained = train_pipeline(&cfg, &ds, seed, paper_predictor());
    let lm = build_lm(&cfg, &ds, seed, ModelVariant::Dense);
    let draft = build_draft(&lm, &cfg, seed);

    let mut t = Table::new(vec!["component", "modelled size"]);
    t.row(vec![
        "target model weights".into(),
        format!("{:.2} GB", lm.modelled_weight_bytes() / 1e9),
    ]);
    t.row(vec![
        "draft model (EAGLE head)".into(),
        format!("{:.2} GB", draft.modelled_bytes() / 1e9),
    ]);
    t.row(vec![
        "all layer predictors".into(),
        format!("{:.0} KB", trained.bank.total_bytes() as f64 / 1024.0),
    ]);
    println!("memory (paper: ~0.9 GB draft, ~416 KB predictors for Llama2-7B)");
    println!("{t}");

    let wl = workload(&cfg, &ds, request_count(), seed);
    let run = run_engine(
        EngineKind::SpecEeAr(SchedulingMode::TwoLevel),
        &cfg,
        &ds,
        seed,
        ModelVariant::Dense,
        &trained,
        &wl,
    );
    let cost = price(
        &run.stats.meter,
        HardwareProfile::a100_80g(),
        FrameworkProfile::hugging_face(),
    );
    let mut t = Table::new(vec!["share of latency", "value"]);
    t.row(vec![
        "predictor ops".into(),
        fmt_pct(cost.share(OpKind::Predictor)),
    ]);
    t.row(vec![
        "all SpecEE overhead (pred+slice+kv-fill)".into(),
        fmt_pct(cost.specee_overhead_s() / cost.latency_s),
    ]);
    t.row(vec![
        "decoder layers".into(),
        fmt_pct(cost.decoder_layer_s() / cost.latency_s),
    ]);
    println!("runtime (paper: predictors ~5.6% of inference latency)");
    println!("{t}");
    println!(
        "predictor calls/token: {:.1}  (dynamic active layers: {:.1})",
        run.stats.predictor_calls as f64 / run.stats.tokens as f64,
        run.avg_active_predictors.unwrap_or(0.0)
    );
}
