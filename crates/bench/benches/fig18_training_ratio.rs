//! Fig. 18: predictor accuracy vs training-set ratio for Llama2-7B and
//! Llama2-13B — ~2% of the data already reaches good accuracy.

use specee_bench::*;
use specee_core::collect::train_bank;
use specee_core::predictor::PredictorBank;
use specee_metrics::Table;
use specee_nn::TrainConfig;
use specee_tensor::rng::Pcg;

fn main() {
    banner(
        "fig18_training_ratio",
        "predictor accuracy vs training-set fraction",
    );
    let ds = specee_synth::DatasetProfile::mt_bench();
    for (name, cfg) in [("Llama2-7B", model_7b()), ("Llama2-13B", model_13b())] {
        let trained = train_pipeline(&cfg, &ds, 3, paper_predictor());
        let samples = &trained.collection.samples;
        let mut table = Table::new(vec!["training fraction", "mean predictor accuracy"]);
        for frac in [0.01f64, 0.02, 0.05, 0.10, 0.20, 0.35, 0.50, 0.75, 1.00] {
            let mut bank = PredictorBank::new(cfg.n_layers, &paper_predictor(), &mut Pcg::seed(5));
            let report = train_bank(
                &mut bank,
                samples,
                frac,
                &TrainConfig {
                    epochs: 12,
                    lr: 3e-3,
                    ..TrainConfig::default()
                },
                7,
            );
            table.row(vec![
                format!("{:.0}%", frac * 100.0),
                format!("{:.1}%", report.mean_accuracy * 100.0),
            ]);
        }
        println!("\n{name} (paper: ~2% of 16K samples already suffices)");
        println!("{table}");
    }
}
