//! Fig. 15: speculative-decoding scenario — EAGLE vs SpecEE+EAGLE on
//! Llama2-7B and Llama2-13B @ A100 (paper: 1.05x / 1.06x geomean).

use specee_bench::*;
use specee_metrics::{report::fmt_x, FrameworkProfile, HardwareProfile, Table};

fn main() {
    banner("fig15_speculative", "EAGLE vs SpecEE+EAGLE");
    let seed = 41;
    let hw = HardwareProfile::a100_80g();
    for (name, cfg, paper) in [
        (
            "Llama2-7B @ A100",
            model_7b(),
            "paper: 1.05x, SpecEE+EAGLE ~124.7 tok/s",
        ),
        (
            "Llama2-13B @ A100",
            model_13b(),
            "paper: 1.06x, SpecEE+EAGLE ~120.8 tok/s",
        ),
    ] {
        let mut table = Table::new(vec![
            "dataset",
            "EAGLE t/s",
            "SpecEE+EAGLE t/s",
            "speedup",
            "tok/round",
        ]);
        let mut speedups = Vec::new();
        for ds in specee_synth::DatasetProfile::speedup_set() {
            let trained = train_pipeline(&cfg, &ds, seed, paper_predictor());
            let wl = workload(&cfg, &ds, request_count().min(2), seed);
            let eagle = run_engine(
                EngineKind::Speculative,
                &cfg,
                &ds,
                seed,
                ModelVariant::Dense,
                &trained,
                &wl,
            );
            let spec = run_engine(
                EngineKind::SpecEeSpeculative,
                &cfg,
                &ds,
                seed,
                ModelVariant::Dense,
                &trained,
                &wl,
            );
            let e = price(&eagle.stats.meter, hw.clone(), FrameworkProfile::eagle()).tokens_per_s();
            let s = price(&spec.stats.meter, hw.clone(), FrameworkProfile::eagle()).tokens_per_s();
            speedups.push(s / e);
            table.row(vec![
                ds.name.clone(),
                format!("{e:.1}"),
                format!("{s:.1}"),
                fmt_x(s / e),
                format!("{:.2}", spec.stats.tokens_per_round()),
            ]);
        }
        table.row(vec![
            "Geo.Mean".into(),
            String::new(),
            String::new(),
            fmt_x(geomean(&speedups)),
            String::new(),
        ]);
        println!("\n{name}  ({paper})");
        println!("{table}");
    }
}
