//! Fig. 2(b) / §3.1, quantified: the vocabulary *is* the predictor's search
//! space. Sweeps the vocabulary size and prices the per-layer exit
//! prediction of a full-vocabulary method (AdaInfer/CALM-style: one
//! `hidden × vocab` GEMV per evaluated layer) against SpecEE's K-column
//! slice, on the A100 roofline at Llama2-7B dimensions.
//!
//! Two claims are checked:
//! * full-vocabulary prediction overhead grows with vocabulary size and
//!   reaches the paper's ~20–30 % of per-token latency at the Llama2
//!   vocabulary (~3.2 × 10⁴);
//! * SpecEE's slice is vocabulary-size-independent — the ~10⁴× search-space
//!   reduction of Fig. 2(b). Its 31 per-layer slices are priced as ONE
//!   grouped kernel (T3's block-wise GEMM, Fig. 13).
//!
//! The vocabularies themselves are real: trained byte-level BPE tokenizers
//! over the synthetic corpus (`specee-text`), so each sweep point
//! corresponds to an actual id table, not just a number in a formula.

use specee_bench::*;
use specee_metrics::{HardwareProfile, Roofline, Table};
use specee_model::CostDims;
use specee_text::{BpeTrainer, CorpusConfig, SyntheticCorpus};

struct TokenCost {
    base_s: f64,
    roofline: Roofline,
    hidden: f64,
    weight_bytes: f64,
}

impl TokenCost {
    fn at_7b_dims() -> Self {
        let dims = CostDims::llama2_7b();
        let roofline = Roofline::new(HardwareProfile::a100_80g());
        let h = dims.hidden_dim as f64;
        let wb = dims.weight_bytes_per_elem();
        let layer_bytes = (h * h * 2.0
            + h * dims.kv_dim() as f64 * 2.0
            + 3.0 * h * dims.ffn_dim as f64
            + 2.0 * h)
            * wb;
        let layer_s = roofline.op_latency(2.0 * layer_bytes / wb, layer_bytes, 7);
        TokenCost {
            base_s: dims.n_layers as f64 * layer_s,
            roofline,
            hidden: h,
            weight_bytes: wb,
        }
    }

    /// One GEMV of `cols` LM-head columns.
    fn head_s(&self, cols: f64, kernels: u64) -> f64 {
        let bytes = cols * self.hidden * self.weight_bytes;
        self.roofline
            .op_latency(2.0 * bytes / self.weight_bytes, bytes, kernels)
    }

    /// (total, prediction) seconds per token: the final full head plus
    /// `layers` prediction reads of `cols` columns in `kernels` launches.
    fn token(&self, vocab: f64, layers: f64, cols: f64, kernels: u64) -> (f64, f64) {
        let final_head = self.head_s(vocab, 1);
        let prediction = self.head_s(layers * cols, kernels);
        (self.base_s + final_head + prediction, prediction)
    }
}

fn main() {
    banner(
        "ablation_vocab_size",
        "search-space reduction: prediction overhead vs vocabulary size (Fig. 2(b))",
    );

    // Train real vocabularies at each sweep point.
    let corpus = SyntheticCorpus::new(CorpusConfig::default(), 301).paragraphs(600);
    let eval = SyntheticCorpus::new(CorpusConfig::default(), 999).paragraphs(8);
    let cost = TokenCost::at_7b_dims();
    let layers = 31.0; // predictors at every intermediate layer

    let mut table = Table::new(vec![
        "vocab (target)",
        "bytes/token",
        "full-vocab pred share",
        "SpecEE pred share",
        "search-space reduction",
    ]);
    let mut last_vocab = 0usize;
    for &target in &[512usize, 1024, 2048, 4096, 8192] {
        let tok = BpeTrainer::new(target).train(&corpus);
        let vocab = tok.vocab().len();
        if vocab == last_vocab {
            continue; // merge statistics exhausted below this target
        }
        last_vocab = vocab;
        let stats = tok.stats(&eval);
        let v = vocab as f64;
        let (full_total, full_pred) = cost.token(v, layers, v, layers as u64);
        let (spec_total, spec_pred) = cost.token(v, layers, 4.0, 1);
        table.row(vec![
            format!("{vocab} ({target})"),
            format!("{:.2}", stats.bytes_per_token()),
            format!("{:.1}%", full_pred / full_total * 100.0),
            format!("{:.2}%", spec_pred / spec_total * 100.0),
            format!("{:.0}x", v / 4.0),
        ]);
    }
    // The paper's operating point: Llama2's 32000-entry vocabulary
    // (modelled directly; the synthetic corpus saturates its merge
    // statistics below 32k).
    let (full_total, full_pred) = cost.token(32000.0, layers, 32000.0, layers as u64);
    let (spec_total, spec_pred) = cost.token(32000.0, layers, 4.0, 1);
    table.row(vec![
        "32000 (Llama2)".to_string(),
        "-".to_string(),
        format!("{:.1}%", full_pred / full_total * 100.0),
        format!("{:.2}%", spec_pred / spec_total * 100.0),
        "8000x".to_string(),
    ]);
    println!("Llama2-7B dims @ A100 (bare roofline); prediction at all 31 intermediate layers");
    println!("{table}");
    println!(
        "Paper: full-vocabulary prediction costs ~20% of end-to-end latency at the\n\
         ~3x10^4 Llama2 vocabulary and scales with it; SpecEE's candidate slice\n\
         (one grouped kernel, Fig. 13) is vocabulary-independent — the ~10^4x\n\
         search-space reduction of Fig. 2(b)."
    );
}
