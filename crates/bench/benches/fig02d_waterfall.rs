//! Fig. 2(d): technique waterfall — HF baseline, +T1, +T1+T2, +T1+T2+T3
//! tokens/s on the cloud scenario (Llama2-7B, A100, MT-Bench) and the PC
//! scenario (llama.cpp base, SUM).

use specee_bench::*;
use specee_core::SchedulingMode;
use specee_metrics::{report::fmt_x, FrameworkProfile, HardwareProfile, Table};

fn main() {
    banner(
        "fig02d_waterfall",
        "technique waterfall (paper: 1.12x, 1.21x, 1.66x steps)",
    );
    let cfg = model_7b();
    let seed = 42;
    let n = request_count();

    // Cloud: MT-Bench on A100, HuggingFace base.
    let ds = specee_synth::DatasetProfile::mt_bench();
    let trained = train_pipeline(&cfg, &ds, seed, paper_predictor());
    let wl = workload(&cfg, &ds, n, seed);
    let steps = [
        ("HuggingFace", EngineKind::Dense),
        (
            "+T1 (predictor)",
            EngineKind::SpecEeAr(SchedulingMode::AllLayers),
        ),
        (
            "+T2 (scheduling)",
            EngineKind::SpecEeAr(SchedulingMode::TwoLevel),
        ),
        ("+T3 (hyper-token)", EngineKind::SpecEeSpeculative),
    ];
    let mut table = Table::new(vec![
        "technique",
        "tokens/s",
        "step",
        "cumulative",
        "avg layers",
    ]);
    let mut prev = 0.0;
    let mut base = 0.0;
    for (name, kind) in steps {
        let run = run_engine(kind, &cfg, &ds, seed, ModelVariant::Dense, &trained, &wl);
        let cost = price(
            &run.stats.meter,
            HardwareProfile::a100_80g(),
            FrameworkProfile::hugging_face(),
        );
        let tps = cost.tokens_per_s();
        if base == 0.0 {
            base = tps;
            prev = tps;
        }
        table.row(vec![
            name.to_string(),
            format!("{tps:.2}"),
            fmt_x(tps / prev),
            fmt_x(tps / base),
            format!("{:.2}", run.stats.avg_layers),
        ]);
        prev = tps;
    }
    println!(
        "Cloud scenario: Llama2-7B @ A100, MT-Bench (paper: 42.3 -> 47.4 -> 57.4 -> 95.2 tok/s)"
    );
    println!("{table}");

    // PC: SUM on the hybrid laptop, llama.cpp base.
    let ds = specee_synth::DatasetProfile::sum();
    let trained = train_pipeline(&cfg, &ds, seed, paper_predictor());
    let wl = workload(&cfg, &ds, n, seed);
    let mut table = Table::new(vec!["technique", "tokens/s", "step", "cumulative"]);
    let mut prev = 0.0;
    let mut base = 0.0;
    for (name, kind) in [
        ("llama.cpp", EngineKind::Dense),
        ("+T1", EngineKind::SpecEeAr(SchedulingMode::AllLayers)),
        ("+T2", EngineKind::SpecEeAr(SchedulingMode::TwoLevel)),
        ("+T3", EngineKind::SpecEeSpeculative),
    ] {
        let run = run_engine(kind, &cfg, &ds, seed, ModelVariant::Dense, &trained, &wl);
        let cost = price(
            &run.stats.meter,
            HardwareProfile::pc_hybrid(0.55),
            FrameworkProfile::llama_cpp(),
        );
        let tps = cost.tokens_per_s();
        if base == 0.0 {
            base = tps;
            prev = tps;
        }
        table.row(vec![
            name.to_string(),
            format!("{tps:.2}"),
            fmt_x(tps / prev),
            fmt_x(tps / base),
        ]);
        prev = tps;
    }
    println!(
        "PC scenario: Llama2-7B @ Lenovo PC, SUM (paper: 5.63 -> 6.64 -> 8.29 -> 13.70 tok/s)"
    );
    println!("{table}");
}
