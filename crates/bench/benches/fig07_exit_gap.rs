//! Fig. 7: actual vs theoretical average forward layers, SpecEE vs
//! AdaInfer, on seven datasets for Llama2-7B and Llama2-13B. The paper
//! normalizes: theoretical / actual (100% = exits exactly at the earliest
//! possible layer).

use specee_bench::*;
use specee_core::SchedulingMode;
use specee_metrics::{report::fmt_pct, Table};

fn main() {
    banner(
        "fig07_exit_gap",
        "actual vs theoretical average forward layers",
    );
    let seed = 19;
    for (model_name, cfg) in [("Llama2-7B", model_7b()), ("Llama2-13B", model_13b())] {
        let mut table = Table::new(vec![
            "dataset",
            "theoretical L",
            "SpecEE L",
            "SpecEE norm.",
            "AdaInfer L",
            "AdaInfer norm.",
        ]);
        for ds in specee_synth::DatasetProfile::accuracy_set() {
            let trained = train_pipeline(&cfg, &ds, seed, paper_predictor());
            let wl = workload(&cfg, &ds, request_count().min(2), seed);
            let spec = run_engine(
                EngineKind::SpecEeAr(SchedulingMode::TwoLevel),
                &cfg,
                &ds,
                seed,
                ModelVariant::Dense,
                &trained,
                &wl,
            );
            let ada = run_engine(
                EngineKind::AdaInfer,
                &cfg,
                &ds,
                seed,
                ModelVariant::Dense,
                &trained,
                &wl,
            );
            let theory = trained.collection.theoretical_layers;
            table.row(vec![
                ds.name.clone(),
                format!("{theory:.2}"),
                format!("{:.2}", spec.stats.avg_layers),
                fmt_pct(theory / spec.stats.avg_layers),
                format!("{:.2}", ada.stats.avg_layers),
                fmt_pct(theory / ada.stats.avg_layers),
            ]);
        }
        println!("{model_name} (paper 7B: SpecEE 93-99% of theoretical; AdaInfer 62-95%)");
        println!("{table}");
    }
}
