//! Ablation A2 (ours): draft hit-rate sweep — how the quality of the
//! speculative model controls both the speedup and the accuracy
//! preservation of SpecEE (the paper's "strong enough DLM" premise, §3.2).

use specee_bench::*;
use specee_core::engine::{DenseEngine, SpecEeEngine};
use specee_core::{RunStats, SpecEeConfig};
use specee_metrics::{report::fmt_x, FrameworkProfile, HardwareProfile, Table};
use specee_synth::OracleDraft;

fn main() {
    banner("ablation_hit_rate", "draft top-K hit-rate sweep");
    let cfg = model_7b();
    let ds = specee_synth::DatasetProfile::mt_bench();
    let seed = 79;
    let trained = train_pipeline(&cfg, &ds, seed, paper_predictor());
    let wl = workload(&cfg, &ds, request_count(), seed);
    let hw = HardwareProfile::a100_80g();
    let fw = FrameworkProfile::hugging_face();

    let mut dense_engine = DenseEngine::new(build_lm(&cfg, &ds, seed, ModelVariant::Dense));
    let dense_outputs: Vec<_> = wl
        .iter()
        .map(|r| dense_engine.generate(&r.prompt, r.gen_len))
        .collect();
    let dense_run = EngineRun {
        stats: RunStats::aggregate(&dense_outputs),
        outputs: dense_outputs,
        avg_active_predictors: None,
    };
    let base_tps = price(&dense_run.stats.meter, hw.clone(), fw.clone()).tokens_per_s();

    let mut t = Table::new(vec!["hit rate", "avg layers", "speedup", "agreement"]);
    for hit in [0.3f64, 0.5, 0.7, 0.8, 0.9, 0.95] {
        let lm = build_lm(&cfg, &ds, seed, ModelVariant::Dense);
        let draft = OracleDraft::new(*lm.language(), hit, &cfg, seed ^ 0x99);
        let config = SpecEeConfig {
            predictor: trained.predictor,
            ..SpecEeConfig::default()
        };
        let schedule =
            config.build_schedule(cfg.n_layers, Some(&trained.collection.exit_frequencies));
        let mut engine = SpecEeEngine::new(lm, draft, trained.bank.clone(), schedule, config);
        let outputs: Vec<_> = wl
            .iter()
            .map(|r| engine.generate(&r.prompt, r.gen_len))
            .collect();
        let stats = RunStats::aggregate(&outputs);
        let run = EngineRun {
            stats,
            outputs,
            avg_active_predictors: None,
        };
        let tps = price(&run.stats.meter, hw.clone(), fw.clone()).tokens_per_s();
        t.row(vec![
            format!("{hit:.2}"),
            format!("{:.2}", run.stats.avg_layers),
            fmt_x(tps / base_tps),
            format!("{:.1}%", agreement_vs(&dense_run, &run) * 100.0),
        ]);
    }
    println!("expected: higher hit rate -> earlier exits -> more speedup, accuracy stays high");
    println!("{t}");
}
