//! Table 1, quantified: memory / prediction / training / latency for every
//! related-work family the paper positions SpecEE against — AdaInfer and
//! RAEE (early exiting), CALM-style confidence exit, MoD and D-LLM (skip
//! layer) — all running on the same substrate and workload.
//!
//! The paper's table is qualitative (Low/Heavy/High); this harness prints
//! the measured numbers behind those words: tokens/s on the A100 profile,
//! exit-prediction share of latency, token agreement with the dense run,
//! and the modelled extra memory each method carries at Llama2-7B scale.

use specee_bench::*;
use specee_core::SchedulingMode;
use specee_metrics::{report::fmt_x, FrameworkProfile, HardwareProfile, OpKind, Table};

fn main() {
    banner(
        "table1_related_works",
        "paper Table 1: skip-layer and early-exit families, quantified",
    );
    let cfg = model_7b();
    let seed = 17;
    let ds = specee_synth::DatasetProfile::mt_bench();
    let trained = train_pipeline(&cfg, &ds, seed, paper_predictor());
    let wl = workload(&cfg, &ds, request_count(), seed);

    let dense = run_engine(
        EngineKind::Dense,
        &cfg,
        &ds,
        seed,
        ModelVariant::Dense,
        &trained,
        &wl,
    );
    let dense_cost = price(
        &dense.stats.meter,
        HardwareProfile::a100_80g(),
        FrameworkProfile::hugging_face(),
    );
    let dense_tps = dense_cost.tokens_per_s();

    // (name, engine, modelled extra memory at 7B scale, training cost)
    let rows: Vec<(&str, EngineKind, &str, &str)> = vec![
        ("Dense", EngineKind::Dense, "0", "none"),
        ("AdaInfer", EngineKind::AdaInfer, "~KB (SVMs)", "low (SVMs)"),
        (
            "RAEE",
            EngineKind::Raee,
            ">GB (retrieval DB)",
            "low (DB build)",
        ),
        ("CALM-conf", EngineKind::Calm, "0", "none (threshold)"),
        (
            "MoD",
            EngineKind::MoD,
            "~KB (routers)",
            "HIGH (model fine-tune)",
        ),
        (
            "D-LLM",
            EngineKind::DLlm,
            "~KB (gates)",
            "HIGH (model fine-tune)",
        ),
        (
            "SpecEE",
            EngineKind::SpecEeAr(SchedulingMode::TwoLevel),
            "~0.9GB draft + 416KB MLPs",
            "low (draft reuse + MLPs)",
        ),
    ];

    let mut table = Table::new(vec![
        "method",
        "tokens/s",
        "speedup",
        "avg layers",
        "agree",
        "pred share",
        "extra memory",
        "training",
    ]);
    for (name, kind, memory, training) in rows {
        let run = run_engine(kind, &cfg, &ds, seed, ModelVariant::Dense, &trained, &wl);
        let cost = price(
            &run.stats.meter,
            HardwareProfile::a100_80g(),
            FrameworkProfile::hugging_face(),
        );
        // Prediction cost: everything that exists only to decide the exit.
        // For AdaInfer/CALM that is the per-layer full-LM-head reads beyond
        // the one the dense decode needs per token.
        let lm_head_extra =
            (cost.share(OpKind::LmHeadFull) - dense_cost.share(OpKind::LmHeadFull)).max(0.0);
        let pred_share = cost.share(OpKind::Predictor)
            + cost.share(OpKind::LmHeadSlice)
            + cost.share(OpKind::Draft)
            + lm_head_extra;
        let agr = agreement_vs(&dense, &run);
        table.row(vec![
            name.to_string(),
            format!("{:.2}", cost.tokens_per_s()),
            fmt_x(cost.tokens_per_s() / dense_tps),
            format!("{:.2}", run.stats.avg_layers),
            format!("{:.1}%", agr * 100.0),
            format!("{:.1}%", pred_share * 100.0),
            memory.to_string(),
            training.to_string(),
        ]);
    }
    println!(
        "Llama2-7B(sim) @ A100 / HuggingFace base, MT-Bench profile, {} requests",
        wl.len()
    );
    println!("{table}");
    println!(
        "Paper Table 1 (qualitative): AdaInfer/RAEE heavy prediction + high latency;\n\
         MoD/D-LLM light prediction but high training; SpecEE low on all four axes.\n\
         MoD/D-LLM rows here use standalone-trained routers on the frozen model (the\n\
         no-fine-tune variant); their real training bill is the point of the column."
    );
}
