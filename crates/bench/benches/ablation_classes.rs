//! Serving extension (ours): the traffic-class-keyed feedback plane on
//! a *mixed* stream (`specee-control` classed controllers +
//! `specee-cluster` gossip).
//!
//! `ablation_controller` showed closed-loop control recovering from
//! traffic *drift* — phases arrive one after another, so one global
//! operating point can chase them. This harness breaks the single
//! controller a different way: two traffic classes **interleave**
//! request-by-request with short generations, so there is no quiet
//! phase to converge in. Class S is shallow chat-style traffic (exits
//! save a third of all decode work at a permissive threshold); class D
//! is draft-hostile traffic that *looks identical to S* — same exit
//! layers, same predictor scores — but whose candidate sets miss, so
//! its fires are rejected verifications and its honest operating point
//! is "exits off". No threshold, layer schedule, or score band
//! separates the classes; only the class tag does.
//!
//! Legs:
//!
//! 1. **parity** — a static classed controller on the tagged stream is
//!    bit-identical to no controller;
//! 2. **per-class oracle** — hindsight grid sweep per class subset (the
//!    bound no online policy beats without clairvoyance), plus the best
//!    *class-blind* static as the strongest single-threshold baseline;
//! 3. **batch-1 contenders** — global pid/bandit (untagged) vs
//!    per-class pid/bandit (tagged) on the identical stream;
//! 4. **cluster + gossip** — a 5-worker round-robin cluster (batch 1
//!    per worker, so pricing matches the batch-1 legs; worker count
//!    coprime to the stream period, so every worker serves a mixed
//!    diet) with per-class controllers and coordinator gossip, against
//!    the same cluster serving dense (no-exit) and the cluster with one
//!    global controller.
//!
//! Asserted: per-class controllers recover ≥ 95% of the per-class
//! hindsight-oracle speedup, the per-class *bandit* strictly beats the
//! global bandit (a single Thompson posterior over the blend is
//! structurally poisoned — mixed windows earn mixed rewards and trip
//! the accuracy floor — which is exactly the conditioning-on-traffic
//! argument of the EESD control mechanism), per-class PID stays within
//! noise of the global PID (whose per-layer loops already absorb
//! layer-separable class structure — an honest negative finding this
//! harness documents), the cluster with per-class controllers + gossip
//! clears the same ≥ 95% bar and strictly beats the global-controller
//! cluster, and token agreement vs the dense references is held
//! everywhere.

use std::sync::Arc;

use specee_batch::{Admission, BatchedEngine, BatchedOutput};
use specee_bench::*;
use specee_cluster::{Cluster, ClusterConfig, ClusterRequest, RouterPolicy};
use specee_control::ControllerPolicy;
use specee_core::collect::{collect_training_data, train_bank};
use specee_core::engine::DenseEngine;
use specee_core::output::agreement;
use specee_core::predictor::PredictorBank;
use specee_core::{ScheduleEngine, SpecEeConfig, TrafficClass};
use specee_metrics::{report::fmt_x, FrameworkProfile, HardwareProfile, Table};
use specee_model::{ModelConfig, TokenId};
use specee_nn::TrainConfig;
use specee_serve::{AdmissionPolicy, BatcherConfig, ServeRequest};
use specee_synth::{DatasetProfile, OracleDraft, SyntheticLm};
use specee_tensor::rng::Pcg;

const GEN: usize = 6;
/// Requests per class; the stream interleaves them D, S, S, D, …
const PER_CLASS: usize = 32;

/// Class S: shallow chat traffic — tokens settle within the first few
/// layers, harvesting exits saves roughly a third of all decode work.
fn shallow_profile() -> DatasetProfile {
    DatasetProfile {
        exit_mu: 0.0625,
        exit_sigma: 0.01,
        early_frac: 0.0,
        early_mu: 0.06,
        ..DatasetProfile::mt_bench()
    }
}

/// Class D: *draft-hostile* traffic. Tokens saturate exactly as early
/// as class S's — to the shallow-trained predictor the two classes are
/// indistinguishable, firing at the same layers and scores — but the
/// draft barely knows the domain (`hit_rate` 0.1), so the candidate set
/// almost never contains the true token and nearly every fire is a
/// rejected full-LM-head verification. No threshold separates the
/// classes (same layers, same scores); only the class tag does. The
/// honest class-D operating point is the 1.0 off-arm.
fn deep_profile() -> DatasetProfile {
    DatasetProfile {
        exit_mu: 0.0625,
        exit_sigma: 0.01,
        early_frac: 0.0,
        early_mu: 0.06,
        hit_rate: 0.1,
        ..DatasetProfile::mt_bench()
    }
}

const CLASS_S: TrafficClass = TrafficClass::new(1);
const CLASS_D: TrafficClass = TrafficClass::new(4);

/// The static grid shared by the oracle sweep and the bandit; 1.0 is
/// the exits-off arm. Mirrors `ablation_controller`'s grid.
const GRID: [f32; 6] = [0.2, 0.35, 0.5, 0.65, 0.8, 1.0];

/// One request of the mixed stream.
#[derive(Clone)]
struct StreamReq {
    id: u64,
    class: TrafficClass,
}

impl StreamReq {
    fn profile(&self) -> DatasetProfile {
        if self.class == CLASS_S {
            shallow_profile()
        } else {
            deep_profile()
        }
    }
}

/// The interleaved stream: D, S, S, D repeating (`PER_CLASS` of each).
/// The period-4 pattern keeps the blend fine-grained, and the cluster
/// leg's worker count is chosen coprime to it so round-robin gives
/// every worker a mixed diet — a pattern whose period divides the
/// worker count would let parity routing segregate the classes, park
/// all deep traffic on one worker, and hide the per-class-control
/// question behind that worker's makespan.
fn mixed_stream() -> Vec<StreamReq> {
    (0..2 * PER_CLASS as u64)
        .map(|id| StreamReq {
            id,
            class: if matches!(id % 4, 0 | 3) {
                CLASS_D
            } else {
                CLASS_S
            },
        })
        .collect()
}

struct Harness {
    cfg: ModelConfig,
    seed: u64,
    bank: PredictorBank,
    schedule: ScheduleEngine,
    config: SpecEeConfig,
    dense_refs: std::cell::RefCell<std::collections::HashMap<u64, Vec<TokenId>>>,
}

impl Harness {
    /// Trains the bank on the shallow class only with modest capacity,
    /// exactly as `ablation_controller` does: the threshold really is
    /// the operating point, and because class D shares class S's exit
    /// geometry the predictor scores the two classes alike — the
    /// separation has to come from the class tag, not the score.
    fn build(cfg: &ModelConfig, seed: u64) -> Self {
        let predictor = specee_core::predictor::PredictorConfig {
            hidden_dim: 16,
            ..paper_predictor()
        };
        let profile = shallow_profile();
        let mut lm = build_lm(cfg, &profile, seed, ModelVariant::Dense);
        let mut draft = build_draft(&lm, cfg, seed);
        let lang = *lm.language();
        let prompts: Vec<(Vec<TokenId>, usize)> = (0..TRAIN_PROMPTS)
            .map(|i| {
                let start = (seed as u32 + i as u32 * 7) % cfg.vocab_size as u32;
                (
                    lang.sample_sequence(start, 12, seed ^ (i as u64)),
                    TRAIN_GEN,
                )
            })
            .collect();
        let collection = collect_training_data(&mut lm, &mut draft, &prompts, predictor.spec_k);
        let mut bank = PredictorBank::new(cfg.n_layers, &predictor, &mut Pcg::seed(seed ^ 0xb4));
        train_bank(
            &mut bank,
            &collection.samples,
            1.0,
            &TrainConfig {
                epochs: 6,
                lr: 3e-3,
                ..TrainConfig::default()
            },
            seed ^ 0x7e,
        );
        Harness {
            cfg: cfg.clone(),
            seed,
            bank,
            schedule: ScheduleEngine::all_layers(cfg.n_layers),
            config: SpecEeConfig {
                predictor,
                ..SpecEeConfig::default()
            },
            dense_refs: std::cell::RefCell::new(std::collections::HashMap::new()),
        }
    }

    /// Fresh model + draft + prompt for one stream request.
    fn request(&self, req: &StreamReq) -> (SyntheticLm, OracleDraft, Vec<TokenId>) {
        let profile = req.profile();
        let lm = build_lm(&self.cfg, &profile, self.seed, ModelVariant::Dense);
        let draft = OracleDraft::new(
            *lm.language(),
            profile.hit_rate,
            &self.cfg,
            self.seed ^ req.id,
        );
        let start = (self.seed as u32 + req.id as u32 * 11) % self.cfg.vocab_size as u32;
        let prompt = lm
            .language()
            .sample_sequence(start, 12, self.seed ^ (req.id << 3));
        (lm, draft, prompt)
    }

    /// The dense (no-exit) token stream of a request, computed once.
    fn dense_reference(&self, req: &StreamReq) -> Vec<TokenId> {
        if let Some(tokens) = self.dense_refs.borrow().get(&req.id) {
            return tokens.clone();
        }
        let (lm, _, prompt) = self.request(req);
        let tokens = DenseEngine::new(lm).generate(&prompt, GEN).tokens;
        self.dense_refs.borrow_mut().insert(req.id, tokens.clone());
        tokens
    }

    /// Mean token agreement of decoded outputs against their dense
    /// references, token-weighted.
    fn agreement(&self, stream: &[StreamReq], outputs: &[BatchedOutput]) -> f64 {
        let (mut num, mut den) = (0.0f64, 0.0f64);
        for out in outputs {
            let req = stream.iter().find(|r| r.id == out.id).expect("stream id");
            let dense = self.dense_reference(req);
            num += agreement(&out.tokens, &dense) * out.tokens.len() as f64;
            den += out.tokens.len() as f64;
        }
        if den > 0.0 {
            num / den
        } else {
            1.0
        }
    }
}

/// One batch-1 run over (part of) the mixed stream.
struct RunResult {
    secs: f64,
    agreement: f64,
    outputs: Vec<BatchedOutput>,
}

/// Streams `reqs` sequentially through one batch-1 engine. `threshold`
/// overrides the bank's static operating point; `policy` attaches a
/// classed controller; `tagged` admits each request under its traffic
/// class (untagged = everything lands in the default class — the
/// single-global-controller baseline).
fn run_stream(
    h: &Harness,
    reqs: &[StreamReq],
    threshold: Option<f32>,
    policy: Option<&ControllerPolicy>,
    tagged: bool,
) -> RunResult {
    let mut bank = h.bank.clone();
    if let Some(t) = threshold {
        bank.set_threshold(t);
    }
    let base = threshold.unwrap_or(h.config.predictor.threshold);
    let n_predictors = bank.len();
    let mut engine: BatchedEngine<SyntheticLm, OracleDraft> = BatchedEngine::new(
        1,
        16,
        h.cfg.n_layers,
        bank,
        h.schedule.clone(),
        h.config.clone(),
    );
    if let Some(p) = policy {
        engine.set_controller(p.build_classed(n_predictors, base));
    }
    let debug = std::env::var("SPECEE_CLASSES_DEBUG").is_ok();
    let mut outputs = Vec::new();
    let mut fires: Vec<(TrafficClass, usize, f32, bool)> = Vec::new();
    for req in reqs {
        let (lm, draft, prompt) = h.request(req);
        let class = if tagged {
            req.class
        } else {
            TrafficClass::DEFAULT
        };
        let out = match engine.admit_classed(req.id, class, lm, draft, &prompt, GEN) {
            Admission::Done(out) => out,
            Admission::Seated { .. } => loop {
                let step = engine.step();
                if debug {
                    fires.extend(
                        step.feedback
                            .iter()
                            .map(|f| (req.class, f.layer, f.score, f.accepted)),
                    );
                }
                if let Some(out) = step.finished.into_iter().next() {
                    break out;
                }
            },
        };
        outputs.push(out);
    }
    if debug && !fires.is_empty() {
        for class in [CLASS_S, CLASS_D] {
            let mut scores: Vec<f32> = fires
                .iter()
                .filter(|(c, _, _, _)| *c == class)
                .map(|(_, _, s, _)| *s)
                .collect();
            if scores.is_empty() {
                continue;
            }
            scores.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let pct = |q: f64| scores[((scores.len() - 1) as f64 * q) as usize];
            let accepts = fires
                .iter()
                .filter(|(c, _, _, a)| *c == class && *a)
                .count();
            let layers: Vec<usize> = fires
                .iter()
                .filter(|(c, _, _, _)| *c == class)
                .map(|(_, l, _, _)| *l)
                .collect();
            eprintln!(
                "[debug] {class}: {} fires ({} accepted), score p10/p50/p90 = \
                 {:.2}/{:.2}/{:.2}, fire layers min/max = {}/{}",
                scores.len(),
                accepts,
                pct(0.1),
                pct(0.5),
                pct(0.9),
                layers.iter().min().expect("non-empty"),
                layers.iter().max().expect("non-empty"),
            );
        }
    }
    let cost = price(
        engine.meter(),
        HardwareProfile::a100_80g(),
        FrameworkProfile::vllm(),
    );
    RunResult {
        secs: cost.latency_s,
        agreement: h.agreement(reqs, &outputs),
        outputs,
    }
}

/// One 2-worker cluster run (batch 1 per worker, round-robin) over the
/// mixed stream. Returns (makespan seconds, agreement, per-class rows).
fn run_cluster(
    h: &Harness,
    stream: &[StreamReq],
    dense: bool,
    policy: ControllerPolicy,
    tagged: bool,
    gossip: bool,
) -> (f64, f64, specee_cluster::ClusterReport) {
    let mut bank = h.bank.clone();
    if dense {
        bank.set_threshold(2.0); // sigmoid never reaches 2: no exits
    }
    let config = ClusterConfig {
        workers: 5,
        page_size: 16,
        page_capacity: None,
        prefix_share: false,
        preemption: false,
        admission: AdmissionPolicy::Fcfs,
        batcher: BatcherConfig {
            max_batch: 1,
            hardware: HardwareProfile::a100_80g(),
            framework: FrameworkProfile::vllm(),
            cost: h.cfg.cost.expect("sim preset carries cost twin"),
        },
        controller: policy,
        gossip,
        trace: false,
        trace_sample: 1,
        slo: None,
    };
    // Pre-build each request's parts on the coordinator side so the
    // factory is a pure lookup (deterministic per id).
    let parts: Vec<(StreamReq, Vec<TokenId>)> = stream
        .iter()
        .map(|req| {
            let (_, _, prompt) = h.request(req);
            (req.clone(), prompt)
        })
        .collect();
    let factory_cfg = h.cfg.clone();
    let factory_seed = h.seed;
    let factory_stream: Vec<StreamReq> = stream.to_vec();
    let mut cluster: Cluster<SyntheticLm, OracleDraft> = Cluster::spawn(
        &config,
        RouterPolicy::RoundRobin.build(),
        &bank,
        &h.schedule,
        &h.config,
        Arc::new(move |req: &ClusterRequest| {
            let sreq = factory_stream
                .iter()
                .find(|r| r.id == req.request.id)
                .expect("stream id");
            let profile = sreq.profile();
            let lm = build_lm(&factory_cfg, &profile, factory_seed, ModelVariant::Dense);
            let draft = OracleDraft::new(
                *lm.language(),
                profile.hit_rate,
                &factory_cfg,
                factory_seed ^ sreq.id,
            );
            (lm, draft)
        }),
    );
    // Arrivals paced at roughly a third of a request's decode time: the
    // cluster stays saturated (speedup is service-time-bound, so the
    // makespan ratio measures exit savings), while the arrival window
    // spans most of the run — every submission syncs the frontier, and
    // the frontier is where gossip merges and broadcasts happen, so
    // evidence genuinely flows while controllers are still converging.
    for (i, (req, prompt)) in parts.iter().enumerate() {
        let mut creq = ClusterRequest::new(ServeRequest {
            id: req.id,
            prompt: prompt.clone(),
            gen_len: GEN,
            arrival_s: i as f64 * 0.012,
        });
        if tagged {
            creq = creq.with_class(req.class);
        }
        cluster.submit(creq);
    }
    let report = cluster.drain();
    let makespan = report.aggregate().makespan_s;
    let outputs: Vec<BatchedOutput> = report.outputs().into_iter().cloned().collect();
    let agr = h.agreement(stream, &outputs);
    (makespan, agr, report)
}

fn main() {
    banner(
        "ablation_classes",
        "per-class controllers + cluster gossip on a mixed-class stream (extension)",
    );
    let cfg = model_7b();
    let seed = 41;
    let h = Harness::build(&cfg, seed);
    let stream = mixed_stream();
    let class_s: Vec<StreamReq> = stream
        .iter()
        .filter(|r| r.class == CLASS_S)
        .cloned()
        .collect();
    let class_d: Vec<StreamReq> = stream
        .iter()
        .filter(|r| r.class == CLASS_D)
        .cloned()
        .collect();

    // ---- 0. Parity: static classed controller == no controller ----
    let uncontrolled = run_stream(&h, &stream, None, None, true);
    let static_ctl = run_stream(&h, &stream, None, Some(&ControllerPolicy::Static), true);
    for (a, b) in uncontrolled.outputs.iter().zip(&static_ctl.outputs) {
        assert_eq!(
            a.tokens, b.tokens,
            "static classed controller changed tokens"
        );
        assert_eq!(a.exit_layers, b.exit_layers, "static changed exits");
    }
    println!(
        "parity: tagged static controller is bit-identical to no controller \
         ({} requests)",
        stream.len()
    );

    // ---- 1. Dense reference + per-class hindsight oracle ----
    let dense = run_stream(&h, &stream, Some(2.0), None, false);
    let mut sweep = Table::new(vec![
        "threshold",
        "class S (shallow) s",
        "class D (deep) s",
        "blind whole-stream speedup",
    ]);
    let (mut s_secs, mut d_secs) = (Vec::new(), Vec::new());
    for &t in &GRID {
        let rs = run_stream(&h, &class_s, Some(t), None, false);
        let rd = run_stream(&h, &class_d, Some(t), None, false);
        sweep.row(vec![
            format!("{t:.2}"),
            format!("{:.3}", rs.secs),
            format!("{:.3}", rd.secs),
            fmt_x(dense.secs / (rs.secs + rd.secs)),
        ]);
        s_secs.push(rs.secs);
        d_secs.push(rd.secs);
    }
    let argmin = |v: &[f64]| {
        v.iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i)
            .expect("non-empty")
    };
    let (best_s, best_d) = (argmin(&s_secs), argmin(&d_secs));
    let oracle_secs = s_secs[best_s] + d_secs[best_d];
    let blind_secs = (0..GRID.len())
        .map(|i| s_secs[i] + d_secs[i])
        .fold(f64::INFINITY, f64::min);
    println!(
        "per-class grid sweep (modelled seconds @ A100/vllm; dense reference {:.3}s):",
        dense.secs
    );
    println!("{sweep}");
    println!(
        "per-class oracle: threshold {:.2} for class S, {:.2} for class D -> {:.3}s \
         (best class-blind static: {:.3}s)",
        GRID[best_s], GRID[best_d], oracle_secs, blind_secs
    );

    // ---- 2. Batch-1 contenders on the identical mixed stream ----
    // The bandit sweeps the oracle's grid; the per-class streams are
    // stationary, so posterior forgetting is disabled (the drift
    // scenario that wants it is `ablation_controller`'s).
    let bandit_policy = ControllerPolicy::Bandit(specee_control::BanditConfig {
        grid: GRID.to_vec(),
        discount: 1.0,
        // One decision epoch per request (GEN tokens): arm switches line
        // up with request boundaries, so every epoch's reward is earned
        // under a single class even in the untagged (global) runs.
        epoch_tokens: GEN as u64,
        ..specee_control::BanditConfig::default()
    });
    let global_pid = run_stream(&h, &stream, None, Some(&ControllerPolicy::pid()), false);
    let global_bandit = run_stream(&h, &stream, None, Some(&bandit_policy), false);
    let perclass_pid = run_stream(&h, &stream, None, Some(&ControllerPolicy::pid()), true);
    let perclass_bandit = run_stream(&h, &stream, None, Some(&bandit_policy), true);

    let speedup = |secs: f64| dense.secs / secs;
    let oracle_speedup = speedup(oracle_secs);
    let recovery = |r: &RunResult| speedup(r.secs) / oracle_speedup;
    let mut results = Table::new(vec![
        "policy",
        "stream s",
        "speedup",
        "% of per-class oracle",
        "agreement",
    ]);
    let rows: [(&str, &RunResult); 4] = [
        ("global pid", &global_pid),
        ("global bandit", &global_bandit),
        ("per-class pid", &perclass_pid),
        ("per-class bandit", &perclass_bandit),
    ];
    for (name, r) in rows {
        results.row(vec![
            name.to_string(),
            format!("{:.3}", r.secs),
            fmt_x(speedup(r.secs)),
            format!("{:.0}%", 100.0 * recovery(r)),
            format!("{:.1}%", r.agreement * 100.0),
        ]);
    }
    results.row(vec![
        "per-class oracle".to_string(),
        format!("{oracle_secs:.3}"),
        fmt_x(oracle_speedup),
        "100%".to_string(),
        "-".to_string(),
    ]);
    println!(
        "mixed stream ({} interleaved requests: D, S, S, D, …), batch 1:",
        stream.len()
    );
    println!("{results}");

    // ---- 3. Cluster leg: 2 workers x batch 1, per-class + gossip ----
    let (dense_mk, _, _) = run_cluster(&h, &stream, true, ControllerPolicy::Static, true, true);
    let (global_mk, global_agr, _) =
        run_cluster(&h, &stream, false, bandit_policy.clone(), false, true);
    let (gossip_mk, gossip_agr, gossip_report) =
        run_cluster(&h, &stream, false, bandit_policy.clone(), true, true);
    let (nogossip_mk, _, _) = run_cluster(&h, &stream, false, bandit_policy.clone(), true, false);
    let cluster_speedup = |mk: f64| dense_mk / mk;
    let mut cluster_table = Table::new(vec![
        "cluster configuration",
        "makespan s",
        "speedup vs dense cluster",
        "% of per-class oracle",
    ]);
    for (name, mk) in [
        ("global bandit (untagged)", global_mk),
        ("per-class bandit, gossip off", nogossip_mk),
        ("per-class bandit + gossip", gossip_mk),
    ] {
        cluster_table.row(vec![
            name.to_string(),
            format!("{mk:.3}"),
            fmt_x(cluster_speedup(mk)),
            format!("{:.0}%", 100.0 * cluster_speedup(mk) / oracle_speedup),
        ]);
    }
    println!("5-worker round-robin cluster on the same stream (batch 1 per worker):");
    println!("{cluster_table}");
    println!("per-class breakdown of the gossiping cluster:");
    for row in gossip_report.class_breakdown() {
        println!(
            "  {:<7} {:>3} requests | avg layers {:>4.1}/{} | thr {}",
            row.class.to_string(),
            row.requests,
            row.mean_layers().unwrap_or(0.0),
            cfg.n_layers,
            row.mean_threshold
                .map(|t| format!("{t:.2}"))
                .unwrap_or_else(|| "-".into())
        );
    }

    // ---- 4. Assertions: the acceptance bar ----
    // The Thompson-sampling controller carries the strict headline: a
    // single posterior over the blend is poisoned structurally (mixed
    // windows earn mixed rewards and trip the accuracy floor), and no
    // amount of adaptation speed fixes that — only class keying does.
    assert!(
        recovery(&perclass_bandit) >= 0.95,
        "per-class bandit must recover >= 95% of the per-class oracle: {:.1}%",
        recovery(&perclass_bandit) * 100.0
    );
    assert!(
        perclass_bandit.secs < global_bandit.secs,
        "per-class bandit must strictly beat the global bandit on the mixed \
         stream: {:.3}s vs {:.3}s",
        perclass_bandit.secs,
        global_bandit.secs
    );
    // The PID loops are *per layer*, and on this workload the layer
    // index partially encodes the class (S harvests at layers 1–3, D's
    // late-layer fires tighten only late loops, and idle decay re-opens
    // forfeits) — so the global PID is far more blur-resistant than the
    // global bandit. Per-class PID must still clear the oracle-recovery
    // bar and stay within noise of the global loops; the structural
    // per-class win is the bandit's.
    assert!(
        recovery(&perclass_pid) >= 0.95,
        "per-class pid must recover >= 95% of the per-class oracle: {:.1}%",
        recovery(&perclass_pid) * 100.0
    );
    assert!(
        perclass_pid.secs <= global_pid.secs * 1.01,
        "per-class pid must stay within 1% of the (already near-oracle) \
         global pid: {:.3}s vs {:.3}s",
        perclass_pid.secs,
        global_pid.secs
    );
    assert!(
        perclass_pid.agreement >= global_pid.agreement - 1e-9,
        "accuracy must hold: per-class {:.3} vs global {:.3}",
        perclass_pid.agreement,
        global_pid.agreement
    );
    assert!(
        perclass_bandit.agreement >= global_bandit.agreement - 1e-9,
        "accuracy must hold: per-class {:.3} vs global {:.3}",
        perclass_bandit.agreement,
        global_bandit.agreement
    );
    let gossip_recovery = cluster_speedup(gossip_mk) / oracle_speedup;
    assert!(
        gossip_recovery >= 0.95,
        "per-class + gossip cluster must recover >= 95% of the per-class \
         oracle: {:.1}%",
        gossip_recovery * 100.0
    );
    assert!(
        gossip_mk < global_mk,
        "per-class + gossip must strictly beat the global-controller cluster: \
         {gossip_mk:.3}s vs {global_mk:.3}s"
    );
    // Gossip's structural payoff — a worker's controller warmed for a
    // class before its first local request — is asserted in
    // `specee-cluster`'s tests. On a saturated stationary stream where
    // local evidence suffices, its throughput effect is neutral; it must
    // never cost more than noise.
    assert!(
        gossip_mk <= nogossip_mk * 1.03,
        "gossip must not cost meaningful throughput vs the same cluster \
         without it: {gossip_mk:.3}s vs {nogossip_mk:.3}s"
    );
    assert!(
        gossip_agr >= global_agr - 1e-9,
        "cluster accuracy must hold: {gossip_agr:.3} vs {global_agr:.3}"
    );
    println!(
        "per-class controllers recover {:.0}% (pid) / {:.0}% (bandit) of the \
         per-class oracle vs {:.0}% / {:.0}% global; cluster per-class + gossip \
         recovers {:.0}%",
        recovery(&perclass_pid) * 100.0,
        recovery(&perclass_bandit) * 100.0,
        recovery(&global_pid) * 100.0,
        recovery(&global_bandit) * 100.0,
        gossip_recovery * 100.0
    );
}
