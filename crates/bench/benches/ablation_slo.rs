//! Serving extension (ours): the online SLO plane guarding tail latency
//! (`specee-obs` + `specee-control::SloAdaptive`).
//!
//! A bandit controller optimizes the reward it can see — accepted-exit
//! layer savings gated by an accuracy floor — and nothing in that
//! reward sees the queue. Here a production-calibrated bandit (only
//! arms with ≥ 90% verifier accept rate earn reward) honestly parks on
//! the exits-off arm, because this modestly predicted traffic clears
//! the floor on no exit arm. That is the right call for accuracy and a
//! catastrophe for tail latency: when a sustained burst arrives faster
//! than full-depth decoding can serve, the backlog — and every queued
//! request's TTFT — grows without bound, and the bandit never notices.
//!
//! The SLO plane closes that gap without replacing the policy. A
//! [`specee_obs::SloTracker`] watches the live run's TTFT stream
//! through multi-window burn-rate alerting, and the `SloAdaptive`
//! wrapper bends whatever the wrapped bandit proposes toward an
//! aggressive exit floor while the objective burns — steps shorten,
//! the backlog drains, pressure clears, and the bandit is back in
//! charge (zero pressure is exact pass-through). The tracker alerts on
//! a deliberately tighter internal objective
//! ([`TRACKED_P99_TTFT_S`]) than the external SLA
//! ([`TARGET_P99_TTFT_S`]) — the standard alert-before-you-burn
//! discipline — so the guard re-engages while the tail still has
//! budget left.
//!
//! Three runs of the identical stream (a warm trickle, then a
//! sustained burst above exits-off capacity) through `run_live`:
//!
//! * **no-exit** — a never-firing bank; the dense reference all
//!   speedups are measured against,
//! * **bandit** — plain Thompson sampling over the default grid,
//! * **slo+bandit** — the same bandit wrapped, tracker armed.
//!
//! Asserted: the wrapped bandit holds p99 TTFT within the SLA that the
//! unwrapped bandit blows through, while retaining ≥ 80% of the
//! unwrapped bandit's throughput speedup over the no-exit reference.

use specee_batch::BatchedEngine;
use specee_bench::*;
use specee_control::{BanditConfig, ControllerPolicy};
use specee_core::collect::{collect_training_data, train_bank};
use specee_core::predictor::{PredictorBank, PredictorConfig};
use specee_core::{ScheduleEngine, SpecEeConfig};
use specee_metrics::{report::fmt_x, FrameworkProfile, HardwareProfile, Table};
use specee_model::{ModelConfig, TokenId};
use specee_nn::TrainConfig;
use specee_obs::SloSpec;
use specee_serve::{BatcherConfig, ContinuousBatcher, PoissonArrivals, ServeRequest, ServeStats};
use specee_synth::{DatasetProfile, OracleDraft, SyntheticLm};
use specee_tensor::rng::Pcg;

const GEN: usize = 12;
const MAX_BATCH: usize = 2;

/// The external p99 TTFT SLA, simulated seconds — what the table and
/// the assertions measure against.
const TARGET_P99_TTFT_S: f64 = 0.40;

/// The internal objective the tracker alerts on — deliberately tighter
/// than the SLA, the standard alert-before-you-burn discipline. The
/// guard oscillates around whatever it tracks (pressure clears, the
/// bandit re-parks on exits-off, the queue rebuilds until the next
/// fire), so tracking the SLA itself would let each rebuild cycle graze
/// past it; tracking 150 ms keeps the whole oscillation envelope under
/// the 400 ms SLA.
const TRACKED_P99_TTFT_S: f64 = 0.15;

/// Shallow chat traffic: tokens settle within the first few layers, so
/// a permissive threshold harvests most of the decode work — the
/// headroom the SLO plane spends when the tail burns.
fn shallow_profile() -> DatasetProfile {
    DatasetProfile {
        exit_mu: 0.0625,
        exit_sigma: 0.01,
        early_frac: 0.0,
        early_mu: 0.06,
        ..DatasetProfile::mt_bench()
    }
}

struct Harness {
    cfg: ModelConfig,
    seed: u64,
    bank: PredictorBank,
    schedule: ScheduleEngine,
    config: SpecEeConfig,
}

impl Harness {
    /// Same deliberately modest predictor as `ablation_controller`:
    /// scores spread across the grid instead of saturating, so the
    /// threshold genuinely is the operating point being steered.
    fn build(cfg: &ModelConfig, seed: u64) -> Self {
        let predictor = PredictorConfig {
            hidden_dim: 16,
            ..paper_predictor()
        };
        let profile = shallow_profile();
        let mut lm = build_lm(cfg, &profile, seed, ModelVariant::Dense);
        let mut draft = build_draft(&lm, cfg, seed);
        let lang = *lm.language();
        let prompts: Vec<(Vec<TokenId>, usize)> = (0..TRAIN_PROMPTS)
            .map(|i| {
                let start = (seed as u32 + i as u32 * 7) % cfg.vocab_size as u32;
                (
                    lang.sample_sequence(start, 12, seed ^ (i as u64)),
                    TRAIN_GEN,
                )
            })
            .collect();
        let collection = collect_training_data(&mut lm, &mut draft, &prompts, predictor.spec_k);
        let mut bank = PredictorBank::new(cfg.n_layers, &predictor, &mut Pcg::seed(seed ^ 0xb4));
        train_bank(
            &mut bank,
            &collection.samples,
            1.0,
            &TrainConfig {
                epochs: 6,
                lr: 3e-3,
                ..TrainConfig::default()
            },
            seed ^ 0x7e,
        );
        Harness {
            cfg: cfg.clone(),
            seed,
            bank,
            schedule: ScheduleEngine::all_layers(cfg.n_layers),
            config: SpecEeConfig {
                predictor,
                ..SpecEeConfig::default()
            },
        }
    }
}

/// One pass of the burst through the live lock-step engine.
/// `threshold` overrides the bank's static operating point (`2.0`
/// never fires — the no-exit reference); `policy` attaches a
/// controller; `slo` arms the batcher's burn-rate tracker.
fn run_serve(
    h: &Harness,
    requests: &[ServeRequest],
    threshold: Option<f32>,
    policy: Option<&ControllerPolicy>,
    slo: Option<&SloSpec>,
) -> ServeStats {
    let mut bank = h.bank.clone();
    if let Some(t) = threshold {
        bank.set_threshold(t);
    }
    let base = threshold.unwrap_or(h.config.predictor.threshold);
    let n_predictors = bank.len();
    let mut engine: BatchedEngine<SyntheticLm, OracleDraft> = BatchedEngine::new(
        MAX_BATCH,
        16,
        h.cfg.n_layers,
        bank,
        h.schedule.clone(),
        h.config.clone(),
    );
    if let Some(p) = policy {
        engine.set_controller(p.build_classed(n_predictors, base));
    }
    let mut batcher = ContinuousBatcher::new(BatcherConfig {
        max_batch: MAX_BATCH,
        hardware: HardwareProfile::a100_80g(),
        framework: FrameworkProfile::vllm(),
        cost: h.cfg.cost.expect("sim models carry a cost twin"),
    });
    if let Some(spec) = slo {
        batcher = batcher.with_slo(spec.clone());
    }
    let debug = std::env::var("SPECEE_SLO_DEBUG").is_ok();
    if debug {
        engine.set_recorder(Some(specee_obs::Recorder::for_worker(0)));
    }
    let profile = shallow_profile();
    let outcome = batcher.run_live(requests, &mut engine, |req| {
        let lm = build_lm(&h.cfg, &profile, h.seed, ModelVariant::Dense);
        let draft = OracleDraft::new(*lm.language(), profile.hit_rate, &h.cfg, h.seed ^ req.id);
        (lm, draft)
    });
    if debug {
        let events = engine
            .take_recorder()
            .map(|r| r.into_events())
            .unwrap_or_default();
        for e in &events {
            if matches!(
                e.kind,
                specee_obs::EventKind::SloFired { .. } | specee_obs::EventKind::SloCleared { .. }
            ) {
                eprintln!("[debug] t={:.3}s {:?}", e.t, e.kind);
            }
        }
        eprintln!(
            "[debug] avg layers {:.1}, makespan {:.3}s",
            outcome.report.avg_layers, outcome.report.makespan_s
        );
    }
    outcome.report.stats()
}

fn main() {
    banner(
        "ablation_slo",
        "SLO-aware control holds tail TTFT through a sustained burst (extension)",
    );
    let cfg = model_7b();
    let seed = 41;
    let h = Harness::build(&cfg, seed);

    // A sustained bursty stream whose arrival rate sits between the two
    // service rates that matter: above what exits-off sustains (~9
    // req/s at this batch cap), below what floor-threshold exits
    // sustain (~12 req/s). The exits-off bandit therefore falls behind
    // — its queue and every queued request's TTFT grow without bound —
    // while the guarded run has the capacity headroom to keep the
    // backlog (and the tail) flat once pressure engages. Only the brief
    // pre-fire transient violates, which is exactly the 1% the p99
    // objective's error budget exists to absorb.
    let n_requests: usize = std::env::var("SPECEE_SLO_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(80);
    let specs: Vec<(Vec<TokenId>, usize)> = {
        let lm = build_lm(&cfg, &shallow_profile(), seed, ModelVariant::Dense);
        (0..n_requests)
            .map(|i| {
                let start = (seed as u32 + i as u32 * 11) % cfg.vocab_size as u32;
                (
                    lm.language()
                        .sample_sequence(start, 12, seed ^ ((i as u64) << 3)),
                    GEN,
                )
            })
            .collect()
    };
    // The stream opens with a warm 2 s trickle (4 req/s — well inside
    // even the exits-off capacity) before the burst hits. The trickle
    // fills the tracker's windows with healthy TTFTs, so when the burst
    // starts building a queue the very first grazing violation fires
    // the alert — without it, the first requests of the burst would
    // already be stuck behind full-depth decodes before the tracker has
    // seen `min_events` TTFTs, a breach no alerting policy can undo.
    let warm = PoissonArrivals::new(4.0, seed ^ 0x51).requests(&specs[..8]);
    let mut burst = PoissonArrivals::new(10.5, seed ^ 0x52).requests(&specs[8..]);
    for (k, r) in burst.iter_mut().enumerate() {
        r.id = (8 + k) as u64;
        r.arrival_s += 2.0;
    }
    let mut requests = warm;
    requests.extend(burst);

    // A production-calibrated bandit: the accuracy floor only rewards
    // arms whose verifier accept rate clears 90%, and this modestly
    // predicted traffic clears it on no exit arm — so the bandit
    // honestly parks on the exits-off arm. Nothing in its reward sees
    // the queue that decision starves.
    let bandit_policy = ControllerPolicy::Bandit(BanditConfig {
        accuracy_floor: 0.9,
        ..BanditConfig::default()
    });
    let spec = SloSpec::parse(&format!("p99_ttft={TRACKED_P99_TTFT_S}")).expect("valid spec");

    let dense = run_serve(&h, &requests, Some(2.0), None, None);
    let bandit = run_serve(&h, &requests, None, Some(&bandit_policy), None);
    let guarded = run_serve(
        &h,
        &requests,
        None,
        Some(&bandit_policy.clone().slo_adaptive()),
        Some(&spec),
    );

    let speedup = |s: &ServeStats| s.throughput_tok_s / dense.throughput_tok_s;
    let mut table = Table::new(vec![
        "policy",
        "tok/s",
        "speedup vs no-exit",
        "p99 TTFT (ms)",
        "within target",
    ]);
    for (name, s) in [
        ("no-exit", &dense),
        ("bandit", &bandit),
        ("slo+bandit", &guarded),
    ] {
        table.row(vec![
            name.to_string(),
            format!("{:.2}", s.throughput_tok_s),
            fmt_x(speedup(s)),
            format!("{:.0}", s.p99_ttft_s * 1e3),
            if s.p99_ttft_s <= TARGET_P99_TTFT_S {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
    }
    println!(
        "{} requests, warm trickle then sustained burst, batch cap {MAX_BATCH}, target p99 TTFT {:.0} ms:",
        requests.len(),
        TARGET_P99_TTFT_S * 1e3
    );
    println!("{table}");

    // ---- The acceptance bar ----
    assert!(
        bandit.p99_ttft_s > TARGET_P99_TTFT_S,
        "the unwrapped bandit must blow the target (else the scenario \
         exercises nothing): p99 TTFT {:.0} ms vs {:.0} ms",
        bandit.p99_ttft_s * 1e3,
        TARGET_P99_TTFT_S * 1e3
    );
    assert!(
        guarded.p99_ttft_s <= TARGET_P99_TTFT_S,
        "slo+bandit must hold the target: p99 TTFT {:.0} ms vs {:.0} ms",
        guarded.p99_ttft_s * 1e3,
        TARGET_P99_TTFT_S * 1e3
    );
    let retention = speedup(&guarded) / speedup(&bandit);
    assert!(
        retention >= 0.8,
        "slo+bandit must retain >= 80% of the bandit's speedup: {:.0}%",
        retention * 100.0
    );
    println!(
        "slo+bandit holds p99 TTFT at {:.0} ms (bandit: {:.0} ms, target {:.0} ms) \
         while retaining {:.0}% of its speedup",
        guarded.p99_ttft_s * 1e3,
        bandit.p99_ttft_s * 1e3,
        TARGET_P99_TTFT_S * 1e3,
        retention * 100.0
    );
}
