//! Fig. 19: ablation of the three techniques across eight datasets on
//! Llama2-7B @ A100 (HF base): +T1, +T1+T2, +T1+T2+T3.

use specee_bench::*;
use specee_core::SchedulingMode;
use specee_metrics::{report::fmt_x, FrameworkProfile, HardwareProfile, Table};

fn main() {
    banner(
        "fig19_ablation",
        "T1 / T1+T2 / T1+T2+T3 speedups over HuggingFace",
    );
    let cfg = model_7b();
    let seed = 53;
    let hw = HardwareProfile::a100_80g();
    let fw = FrameworkProfile::hugging_face();
    let mut table = Table::new(vec!["dataset", "+T1", "+T1+T2", "+T1+T2+T3"]);
    let mut acc = (Vec::new(), Vec::new(), Vec::new());
    for ds in specee_synth::DatasetProfile::speedup_set() {
        let trained = train_pipeline(&cfg, &ds, seed, paper_predictor());
        let wl = workload(&cfg, &ds, request_count().min(2), seed);
        let dense = run_engine(
            EngineKind::Dense,
            &cfg,
            &ds,
            seed,
            ModelVariant::Dense,
            &trained,
            &wl,
        );
        let base = price(&dense.stats.meter, hw.clone(), fw.clone()).tokens_per_s();
        let speedup = |kind| {
            let run = run_engine(kind, &cfg, &ds, seed, ModelVariant::Dense, &trained, &wl);
            price(&run.stats.meter, hw.clone(), fw.clone()).tokens_per_s() / base
        };
        let t1 = speedup(EngineKind::SpecEeAr(SchedulingMode::AllLayers));
        let t2 = speedup(EngineKind::SpecEeAr(SchedulingMode::TwoLevel));
        let t3 = speedup(EngineKind::SpecEeSpeculative);
        acc.0.push(t1);
        acc.1.push(t2);
        acc.2.push(t3);
        table.row(vec![ds.name.clone(), fmt_x(t1), fmt_x(t2), fmt_x(t3)]);
    }
    table.row(vec![
        "Geo.Mean".into(),
        fmt_x(geomean(&acc.0)),
        fmt_x(geomean(&acc.1)),
        fmt_x(geomean(&acc.2)),
    ]);
    println!("paper geomean: +T1 ~1.08x, +T1+T2 ~1.27x, full ~2.25x over HF");
    println!("{table}");
}
