//! Fig. 14: cloud-scenario speedup and throughput for Llama2-7B on RTX 4090
//! and Llama2-7B/13B/70B on A100, across eight datasets, for HF, vllm and
//! AWQ with and without SpecEE (SpecEE = all three techniques).

use specee_bench::*;
use specee_metrics::{report::fmt_x, FrameworkProfile, HardwareProfile, Table};

fn panel(
    name: &str,
    cfg: &specee_model::ModelConfig,
    hw: &HardwareProfile,
    n_req: usize,
    paper: &str,
) {
    let seed = 37;
    let mut table = Table::new(vec![
        "dataset",
        "HF t/s",
        "SpecEE+HF",
        "x",
        "vllm t/s",
        "SpecEE+vllm",
        "x",
        "AWQ t/s",
        "AWQ+SpecEE",
        "x",
    ]);
    let mut sp = (Vec::new(), Vec::new(), Vec::new());
    for ds in specee_synth::DatasetProfile::speedup_set() {
        let trained = train_pipeline(cfg, &ds, seed, paper_predictor());
        let wl = workload(cfg, &ds, n_req, seed);
        let dense = run_engine(
            EngineKind::Dense,
            cfg,
            &ds,
            seed,
            ModelVariant::Dense,
            &trained,
            &wl,
        );
        let dense_q = run_engine(
            EngineKind::Dense,
            cfg,
            &ds,
            seed,
            ModelVariant::Quantized,
            &trained,
            &wl,
        );
        let spec = run_engine(
            EngineKind::SpecEeSpeculative,
            cfg,
            &ds,
            seed,
            ModelVariant::Dense,
            &trained,
            &wl,
        );
        let spec_q = run_engine(
            EngineKind::SpecEeSpeculative,
            cfg,
            &ds,
            seed,
            ModelVariant::Quantized,
            &trained,
            &wl,
        );

        let hf = price(
            &dense.stats.meter,
            hw.clone(),
            FrameworkProfile::hugging_face(),
        )
        .tokens_per_s();
        let hf_s = price(
            &spec.stats.meter,
            hw.clone(),
            FrameworkProfile::hugging_face(),
        )
        .tokens_per_s();
        let vl = price(&dense.stats.meter, hw.clone(), FrameworkProfile::vllm()).tokens_per_s();
        let vl_s = price(&spec.stats.meter, hw.clone(), FrameworkProfile::vllm()).tokens_per_s();
        let aw = price(&dense_q.stats.meter, hw.clone(), FrameworkProfile::awq()).tokens_per_s();
        let aw_s = price(&spec_q.stats.meter, hw.clone(), FrameworkProfile::awq()).tokens_per_s();
        sp.0.push(hf_s / hf);
        sp.1.push(vl_s / vl);
        sp.2.push(aw_s / aw);
        table.row(vec![
            ds.name.clone(),
            format!("{hf:.1}"),
            format!("{hf_s:.1}"),
            fmt_x(hf_s / hf),
            format!("{vl:.1}"),
            format!("{vl_s:.1}"),
            fmt_x(vl_s / vl),
            format!("{aw:.1}"),
            format!("{aw_s:.1}"),
            fmt_x(aw_s / aw),
        ]);
    }
    table.row(vec![
        "Geo.Mean".into(),
        String::new(),
        String::new(),
        fmt_x(geomean(&sp.0)),
        String::new(),
        String::new(),
        fmt_x(geomean(&sp.1)),
        String::new(),
        String::new(),
        fmt_x(geomean(&sp.2)),
    ]);
    println!("\n{name}  ({paper})");
    println!("{table}");
}

fn main() {
    banner(
        "fig14_cloud_autoregressive",
        "cloud speedup/throughput, SpecEE vs HF/vllm/AWQ",
    );
    let n = request_count();
    panel(
        "(a) Llama2-7B @ RTX 4090",
        &model_7b(),
        &HardwareProfile::rtx4090(),
        n,
        "paper geomean: 1.43x HF, 1.12x vllm, 1.13x AWQ",
    );
    panel(
        "(b) Llama2-7B @ A100",
        &model_7b(),
        &HardwareProfile::a100_80g(),
        n,
        "paper geomean: 1.27x HF, 1.12x vllm, 1.09x AWQ; but 2.02-2.25x incl. T3 vs HF",
    );
    panel(
        "(c) Llama2-13B @ A100",
        &model_13b(),
        &HardwareProfile::a100_80g(),
        n.min(2),
        "paper geomean: 1.43x HF, 1.14x vllm, 1.12x AWQ",
    );
    panel(
        "(d) Llama2-70B @ 4xA100",
        &model_70b(),
        &HardwareProfile::a100_80g(),
        1,
        "paper geomean: 1.23x HF, 1.12x vllm, 1.12x AWQ",
    );
}
