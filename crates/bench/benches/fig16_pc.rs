//! Fig. 16: PC scenario — llama.cpp and PowerInfer with and without SpecEE
//! on the Lenovo PC (paper: 1.25x over llama.cpp, 1.15x over PowerInfer).

use specee_bench::*;
use specee_core::SchedulingMode;
use specee_metrics::{report::fmt_x, FrameworkProfile, HardwareProfile, Table};

fn main() {
    banner("fig16_pc", "PC scenario: llama.cpp / PowerInfer +- SpecEE");
    let cfg = model_7b();
    let seed = 43;
    let hw = HardwareProfile::pc_hybrid(0.55);
    let mut table = Table::new(vec![
        "dataset",
        "llama.cpp",
        "SpecEE+l.cpp",
        "x",
        "PowerInfer",
        "SpecEE+PI",
        "x",
    ]);
    let (mut s1, mut s2) = (Vec::new(), Vec::new());
    for ds in specee_synth::DatasetProfile::pc_set() {
        let trained = train_pipeline(&cfg, &ds, seed, paper_predictor());
        let wl = workload(&cfg, &ds, request_count().min(2), seed);
        // llama.cpp: dense weights on the hybrid profile; PC runs use the
        // autoregressive SpecEE dataflow (llama.cpp has no tree decoding)
        let dense = run_engine(
            EngineKind::Dense,
            &cfg,
            &ds,
            seed,
            ModelVariant::Dense,
            &trained,
            &wl,
        );
        let spec = run_engine(
            EngineKind::SpecEeAr(SchedulingMode::TwoLevel),
            &cfg,
            &ds,
            seed,
            ModelVariant::Dense,
            &trained,
            &wl,
        );
        let dense_sp = run_engine(
            EngineKind::Dense,
            &cfg,
            &ds,
            seed,
            ModelVariant::Sparse,
            &trained,
            &wl,
        );
        let spec_sp = run_engine(
            EngineKind::SpecEeAr(SchedulingMode::TwoLevel),
            &cfg,
            &ds,
            seed,
            ModelVariant::Sparse,
            &trained,
            &wl,
        );
        let lc = price(
            &dense.stats.meter,
            hw.clone(),
            FrameworkProfile::llama_cpp(),
        )
        .tokens_per_s();
        let lc_s =
            price(&spec.stats.meter, hw.clone(), FrameworkProfile::llama_cpp()).tokens_per_s();
        let pi = price(
            &dense_sp.stats.meter,
            hw.clone(),
            FrameworkProfile::power_infer(),
        )
        .tokens_per_s();
        let pi_s = price(
            &spec_sp.stats.meter,
            hw.clone(),
            FrameworkProfile::power_infer(),
        )
        .tokens_per_s();
        s1.push(lc_s / lc);
        s2.push(pi_s / pi);
        table.row(vec![
            ds.name.clone(),
            format!("{lc:.2}"),
            format!("{lc_s:.2}"),
            fmt_x(lc_s / lc),
            format!("{pi:.2}"),
            format!("{pi_s:.2}"),
            fmt_x(pi_s / pi),
        ]);
    }
    table.row(vec![
        "Geo.Mean".into(),
        String::new(),
        String::new(),
        fmt_x(geomean(&s1)),
        String::new(),
        String::new(),
        fmt_x(geomean(&s2)),
    ]);
    println!("paper geomean: 1.25x llama.cpp (8.29 t/s), 1.15x PowerInfer (13.57 t/s)");
    println!("{table}");
}
