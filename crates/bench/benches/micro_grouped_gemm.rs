//! Criterion microbenchmark: block-wise grouped GEMM (T3's hyper-token
//! feature kernel) vs per-node gathers over the same candidate sets.

use criterion::{criterion_group, criterion_main, Criterion};
use specee_tensor::{grouped_matvec, GroupedGemm, GroupedGemmSpec, Matrix, Pcg};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut rng = Pcg::seed(3);
    let head = Matrix::random(2048, 128, 0.5, &mut rng);
    // 21-node tree, 4 candidates each, heavy row overlap (context similarity)
    let specs: Vec<GroupedGemmSpec> = (0..21)
        .map(|i| GroupedGemmSpec::new(vec![i % 9, 9 + i % 5, 20 + i % 3, 40]))
        .collect();
    let inputs: Vec<Vec<f32>> = (0..21)
        .map(|i| (0..128).map(|j| ((i * j) as f32).sin() * 0.1).collect())
        .collect();

    c.bench_function("grouped_gemm_planned", |b| {
        let plan = GroupedGemm::plan(&head, &specs);
        b.iter(|| black_box(plan.run(black_box(&inputs))))
    });
    c.bench_function("grouped_gemm_plan_and_run", |b| {
        b.iter(|| {
            let plan = GroupedGemm::plan(&head, &specs);
            black_box(plan.run(black_box(&inputs)))
        })
    });
    c.bench_function("per_node_gather", |b| {
        b.iter(|| black_box(grouped_matvec(&head, &specs, black_box(&inputs))))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
