//! Criterion microbenchmark: the pluggable compute backends
//! (reference scalar oracle, cache-blocked/SIMD, integer i8) swept over
//! square mat-vec sizes.
//!
//! The 1024x1024 point is the headline: the blocked backend must beat the
//! scalar oracle by >= 2x while staying bit-identical (the conformance
//! suite proves the identity; this harness proves the speed). The
//! quantized backend additionally prints its measured error bound against
//! the dense product so the speed/accuracy trade is visible next to the
//! timings.

use criterion::{criterion_group, criterion_main, Criterion};
use specee_tensor::{BackendKind, Matrix, Pcg};
use std::hint::black_box;

const SIZES: &[usize] = &[128, 256, 512, 1024];

fn bench(c: &mut Criterion) {
    let mut rng = Pcg::seed(17);
    for &n in SIZES {
        let m = Matrix::random(n, n, 0.5, &mut rng);
        let mut x = vec![0.0f32; n];
        rng.fill_uniform(&mut x, 1.0);
        let mut y = vec![0.0f32; n];

        // Measured (not just analytic) error of the integer path at this
        // size, reported alongside the timings.
        let dense = BackendKind::Reference.get().matvec(&m, &x);
        let quant = BackendKind::QuantizedI8.get().matvec(&m, &x);
        let max_abs = dense
            .iter()
            .zip(&quant)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        let rms = (dense
            .iter()
            .zip(&quant)
            .map(|(a, b)| f64::from(a - b) * f64::from(a - b))
            .sum::<f64>()
            / n.max(1) as f64)
            .sqrt();
        println!("micro_matvec {n}x{n}: quant error max |dy| = {max_abs:.3e}, rms = {rms:.3e}");

        for kind in BackendKind::ALL {
            let backend = kind.get();
            c.bench_function(&format!("matvec/{kind}/{n}x{n}"), |b| {
                b.iter(|| backend.matvec_into(black_box(&m), black_box(&x), black_box(&mut y)))
            });
        }
        // The transpose kernel only differs on the blocked backend (fused
        // row-saxpy); sweep it at the same sizes for the two f32 backends.
        for kind in [BackendKind::Reference, BackendKind::Blocked] {
            let backend = kind.get();
            c.bench_function(&format!("matvec_t/{kind}/{n}x{n}"), |b| {
                b.iter(|| black_box(backend.matvec_t(black_box(&m), black_box(&x))))
            });
        }
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
