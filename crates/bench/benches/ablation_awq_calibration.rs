//! Ablation (ours): activation-aware vs round-to-nearest quantization on
//! the executable substrate. The paper integrates AWQ as a black box
//! (§6.3); this harness runs the actual mechanism — per-channel scales
//! grid-searched on recorded activations (`specee-model::calibration`) —
//! against plain RTN at the same bit width, measuring what calibration
//! buys in token agreement and logits error, and what it costs offline.

use specee_bench::*;
use specee_core::engine::DenseEngine;
use specee_metrics::Table;
use specee_model::{collect_awq_tap, quantize_awq, LayeredLm, TokenId};
use specee_tensor::QuantBits;

fn main() {
    banner(
        "ablation_awq_calibration",
        "AWQ calibrated scales vs plain RTN at int8/int4 (ours)",
    );
    let cfg = model_7b();
    let seed = 29;
    let ds = specee_synth::DatasetProfile::mt_bench();
    let wl = workload(&cfg, &ds, request_count(), seed);

    // Reference: dense decoding.
    let dense_lm = build_lm(&cfg, &ds, seed, ModelVariant::Dense);
    let calib_prompts: Vec<Vec<TokenId>> = (0..4u32)
        .map(|i| {
            dense_lm
                .language()
                .sample_sequence(3 + i, 16, seed ^ u64::from(i))
        })
        .collect();
    let mut dense_engine = DenseEngine::new(dense_lm);
    let dense_outs: Vec<_> = wl
        .iter()
        .map(|r| dense_engine.generate(&r.prompt, r.gen_len))
        .collect();

    let mut table = Table::new(vec![
        "weights",
        "agreement vs dense",
        "logits MSE",
        "payload vs f32",
    ]);
    for (name, bits, awq) in [
        ("RTN int8", QuantBits::Int8, false),
        ("AWQ int8", QuantBits::Int8, true),
        ("RTN int4", QuantBits::Int4, false),
        ("AWQ int4", QuantBits::Int4, true),
    ] {
        let mut lm = build_lm(&cfg, &ds, seed, ModelVariant::Dense);
        let dense_bytes = lm.inner().weights().bytes();
        if awq {
            let tap = collect_awq_tap(lm.inner_mut(), &calib_prompts);
            quantize_awq(lm.inner_mut(), bits, &tap);
        } else {
            lm.inner_mut().quantize(bits);
        }
        let quant_bytes = lm.inner().weights().bytes();

        // Logits error on one probe prompt.
        let mut meter = specee_metrics::Meter::new();
        let probe = &wl[0].prompt;
        let hq = specee_model::prefill(&mut lm, probe, &mut meter);
        let lq = lm.final_logits(&hq, &mut meter);
        let mut dense_ref = build_lm(&cfg, &ds, seed, ModelVariant::Dense);
        let hd = specee_model::prefill(&mut dense_ref, probe, &mut meter);
        let ld = dense_ref.final_logits(&hd, &mut meter);
        let mse: f64 = ld
            .iter()
            .zip(&lq)
            .map(|(a, b)| f64::from(a - b) * f64::from(a - b))
            .sum::<f64>()
            / ld.len() as f64;

        // Token agreement across the workload.
        let mut engine = DenseEngine::new(lm);
        let mut agree_num = 0.0;
        let mut agree_den = 0.0;
        for (r, d) in wl.iter().zip(&dense_outs) {
            let out = engine.generate(&r.prompt, r.gen_len);
            let n = out.tokens.len().min(d.tokens.len());
            agree_num += specee_core::agreement(&out.tokens, &d.tokens) * n as f64;
            agree_den += n as f64;
        }
        table.row(vec![
            name.to_string(),
            format!("{:.1}%", agree_num / agree_den * 100.0),
            format!("{mse:.2e}"),
            format!("{:.1}%", quant_bytes as f64 / dense_bytes as f64 * 100.0),
        ]);
    }
    println!(
        "Llama2-7B(sim), MT-Bench profile, {} requests; calibration: {} prompts x 16 tokens",
        wl.len(),
        calib_prompts.len()
    );
    println!("{table}");
    println!(
        "On this substrate the two schemes tie: the synthetic model's activations are\n\
         near-isotropic, so there are no salient channels to protect. AWQ's win is a\n\
         property of skewed activation channels — demonstrated below on the regime\n\
         the AWQ paper targets."
    );

    // The mechanism under skewed activations (per-matrix, where real LLM
    // FFN inputs live): a handful of hot channels dominate.
    use specee_tensor::awq::{AwqCalibration, AwqMatrix};
    use specee_tensor::rng::Pcg;
    use specee_tensor::Matrix;
    let mut rng = Pcg::seed(404);
    let w = Matrix::random(64, 256, 1.0, &mut rng);
    let mut table = Table::new(vec![
        "hot-channel skew",
        "RTN int4 MSE",
        "AWQ int4 MSE",
        "AWQ alpha",
    ]);
    for factor in [1.0f32, 5.0, 20.0, 50.0] {
        let acts: Vec<Vec<f32>> = (0..64)
            .map(|_| {
                (0..256)
                    .map(|c| {
                        let v = (rng.next_f32() - 0.5) * 0.4;
                        if c % 61 == 0 {
                            v * factor
                        } else {
                            v
                        }
                    })
                    .collect()
            })
            .collect();
        let calib = AwqCalibration::from_activations(&acts);
        let awq = AwqMatrix::quantize(&w, &calib, QuantBits::Int4, 32, &acts).expect("dims");
        let rtn =
            AwqMatrix::quantize_with_alpha(&w, &calib, QuantBits::Int4, 32, 0.0).expect("dims");
        table.row(vec![
            format!("{factor}x"),
            format!("{:.3e}", rtn.mse_on(&w, &acts)),
            format!("{:.3e}", awq.mse_on(&w, &acts)),
            format!("{:.3}", awq.alpha()),
        ]);
    }
    println!("\nPer-matrix output MSE under activation skew (64x256 int4, group 32):");
    println!("{table}");
}
