//! Serving extension (ours): the Cannikin batch-size decay *measured* by
//! the live lock-step engine, overlaid on the replay simulation.
//!
//! `ablation_batch_serving` replays recorded single-stream traces through
//! the batched clock model; this harness additionally serves the same
//! request burst with `specee-batch`'s `BatchedEngine` — N sequences
//! genuinely decoding in lock-step, scheduled predictors evaluated per
//! sequence, each step priced from its measured per-layer runner counts.
//! The replay and live speedup curves are reported side by side: live is
//! the ground truth the replay simulator approximates, and both decay
//! from the single-stream margin at batch 1 toward the compute-only
//! residual at batch 16 (a layer's weight read is saved only when every
//! co-batched sequence exits below it).

use specee_batch::BatchedEngine;
use specee_bench::*;
use specee_core::engine::SpecEeEngine;
use specee_core::SpecEeConfig;
use specee_metrics::{report::fmt_x, FrameworkProfile, HardwareProfile, Table};
use specee_serve::{BatcherConfig, ContinuousBatcher, RequestTrace};
use specee_synth::{OracleDraft, SyntheticLm};

fn main() {
    banner(
        "ablation_live_batch",
        "live lock-step batching vs replay simulation across batch caps (extension)",
    );
    let cfg = model_7b();
    let seed = 29;
    let ds = specee_synth::DatasetProfile::mt_bench();
    let trained = train_pipeline(&cfg, &ds, seed, paper_predictor());
    // A uniform saturating burst: 16 requests (every cap divides it) of
    // identical decode length, all pending from the start. Each batch cap
    // then runs full lock-step waves that retire together, so the decay
    // curve isolates the batching effect from arrival and drain-tail luck.
    let n_requests = 16;
    let wl: Vec<specee_synth::Request> = workload(&cfg, &ds, n_requests, seed)
        .into_iter()
        .map(|mut r| {
            r.gen_len = 16;
            r
        })
        .collect();
    let requests = serve_requests(&wl, 1000.0, seed ^ 0x5e);
    let cost = cfg.cost.expect("sim models carry a cost twin");

    let config = SpecEeConfig {
        predictor: trained.predictor,
        ..SpecEeConfig::default()
    };

    // Replay traces, recorded once with the real single-stream engines.
    // SpecEE traces use a fresh engine per request — schedule and model
    // state independent per sequence, exactly how the live engine seats
    // them — so both modes decode the very same workload.
    let dense_run = run_engine(
        EngineKind::Dense,
        &cfg,
        &ds,
        seed,
        ModelVariant::Dense,
        &trained,
        &wl,
    );
    let dense_traces = serving_traces(&dense_run, false);
    let mut spec_traces = Vec::new();
    for r in &wl {
        let lm = build_lm(&cfg, &ds, seed, ModelVariant::Dense);
        let draft = build_draft(&lm, &cfg, seed);
        let schedule =
            config.build_schedule(cfg.n_layers, Some(&trained.collection.exit_frequencies));
        let mut engine =
            SpecEeEngine::new(lm, draft, trained.bank.clone(), schedule, config.clone());
        spec_traces.push(RequestTrace::from_output(
            &engine.generate(&r.prompt, r.gen_len),
            true,
        ));
    }

    let mut table = Table::new(vec![
        "batch cap",
        "dense tok/s",
        "replay tok/s",
        "replay speedup",
        "live tok/s",
        "live speedup",
        "live avg layers",
    ]);
    let mut live_speedups = Vec::new();
    let mut replay_speedups = Vec::new();
    for &max_batch in &[1usize, 2, 4, 8, 16] {
        let batcher = ContinuousBatcher::new(BatcherConfig {
            max_batch,
            hardware: HardwareProfile::a100_80g(),
            framework: FrameworkProfile::vllm(),
            cost,
        });
        let d = batcher.run(&requests, &dense_traces).stats();
        let replay = batcher.run(&requests, &spec_traces).stats();

        // Live: a fresh engine per batch cap, sequences seeded exactly as
        // the workload models are.
        let schedule =
            config.build_schedule(cfg.n_layers, Some(&trained.collection.exit_frequencies));
        let mut engine: BatchedEngine<SyntheticLm, OracleDraft> = BatchedEngine::new(
            max_batch,
            16,
            cfg.n_layers,
            trained.bank.clone(),
            schedule,
            config.clone(),
        );
        let outcome = batcher.run_live(&requests, &mut engine, |_req| {
            let lm = build_lm(&cfg, &ds, seed, ModelVariant::Dense);
            let draft = build_draft(&lm, &cfg, seed);
            (lm, draft)
        });
        let live = outcome.report.stats();
        // Same workload, two clocks: live decoding must reproduce the
        // replayed token streams exactly (greedy decode is batch-invariant).
        for (out, trace) in outcome.outputs.iter().zip(&spec_traces) {
            assert_eq!(
                out.tokens, trace.tokens,
                "live/replay diverged at request {}",
                out.id
            );
            assert_eq!(out.exit_layers, trace.exit_layers, "request {}", out.id);
        }

        let replay_speedup = replay.throughput_tok_s / d.throughput_tok_s;
        let live_speedup = live.throughput_tok_s / d.throughput_tok_s;
        replay_speedups.push(replay_speedup);
        live_speedups.push(live_speedup);
        table.row(vec![
            max_batch.to_string(),
            format!("{:.2}", d.throughput_tok_s),
            format!("{:.2}", replay.throughput_tok_s),
            fmt_x(replay_speedup),
            format!("{:.2}", live.throughput_tok_s),
            fmt_x(live_speedup),
            format!("{:.1}", outcome.report.avg_layers),
        ]);
    }
    println!(
        "Llama2-7B(sim) @ A100 / vllm host profile, {} requests, saturating burst",
        requests.len()
    );
    println!("{table}");
    let monotone = live_speedups.windows(2).all(|w| w[0] >= w[1] - 1e-9);
    println!(
        "live speedup decay 1→16: {} (monotone: {monotone})",
        live_speedups
            .iter()
            .map(|s| fmt_x(*s))
            .collect::<Vec<_>>()
            .join(" -> "),
    );
    println!(
        "replay tracks live within {:.1}% across the sweep",
        live_speedups
            .iter()
            .zip(&replay_speedups)
            .map(|(l, r)| ((l - r) / l).abs() * 100.0)
            .fold(0.0f64, f64::max)
    );
    println!(
        "Expected shape: both curves start at the single-stream margin and decay as\n\
         weight reads amortize; the live curve is measured from lock-step execution\n\
         (per-step rearmost layers), not reconstructed from traces."
    );
    assert!(
        monotone,
        "live speedup must decay monotonically with batch size: {live_speedups:?}"
    );
}
