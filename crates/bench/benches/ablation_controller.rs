//! Serving extension (ours): closed-loop exit-threshold control under
//! traffic drift (`specee-control`).
//!
//! The thresholds SpecEE tunes offline assume tomorrow's traffic looks
//! like the calibration set. This harness breaks that assumption on
//! purpose with a two-phase drifting stream. Phase 1 is *exit-hostile*:
//! tokens saturate near the end of the stack, so predictor fires are
//! mostly rejected verifications (each one a full LM-head forward bought
//! for nothing) and the calibration sweep's honest winner is the `1.0`
//! threshold — exits off. Phase 2 drifts to *shallow* chat-style traffic
//! that settles within the first few layers: the phase-1-tuned static
//! operating point now forfeits the entire exit opportunity (~a third of
//! all decode work), exactly the "leaves exit opportunities on the
//! table" failure mode closed-loop control exists for.
//!
//! Four operating modes run the identical stream through a batch-1
//! `BatchedEngine`:
//!
//! * **oracle static** — per-phase best fixed threshold chosen with
//!   hindsight (a grid sweep per phase; the upper bound no online policy
//!   can beat without clairvoyance),
//! * **phase-1 static** — the grid threshold that wins phase 1, held
//!   for the whole stream (what offline tuning actually ships — here the
//!   exits-off arm),
//! * **pid** — per-layer PI loops tracking a target false-exit rate,
//! * **bandit** — Thompson sampling over the same grid the oracle swept.
//!
//! Asserted: `pid` and `bandit` each recover ≥ 90% of the oracle-static
//! speedup over the no-exit reference while the phase-1 static does
//! not, with token agreement vs the dense reference at or above the
//! phase-1 static's. A parity leg asserts the `static` controller is
//! bit-identical to no controller at batch 1.

use specee_batch::{Admission, BatchedEngine, BatchedOutput};
use specee_bench::*;
use specee_control::ControllerPolicy;
use specee_core::collect::{collect_training_data, train_bank};
use specee_core::engine::DenseEngine;
use specee_core::output::agreement;
use specee_core::predictor::PredictorBank;
use specee_core::{ScheduleEngine, SpecEeConfig};
use specee_metrics::{report::fmt_x, FrameworkProfile, HardwareProfile, Table};
use specee_model::{ModelConfig, TokenId};
use specee_nn::TrainConfig;
use specee_synth::{DatasetProfile, OracleDraft, SyntheticLm};
use specee_tensor::rng::Pcg;

const GEN: usize = 16;

/// The exit-hostile class the stream opens with: tokens saturate at the
/// very end of the stack (exits can save almost nothing) *and* the
/// draft model barely knows the domain (`hit_rate` 0.1 — the candidate
/// set usually misses the true token, so even post-saturation fires are
/// rejected verifications). On this traffic the honest calibration
/// answer is "switch exits off": the 1.0 arm.
fn deep_profile() -> DatasetProfile {
    DatasetProfile {
        exit_mu: 0.95,
        exit_sigma: 0.02,
        early_frac: 0.02,
        hit_rate: 0.1,
        ..DatasetProfile::mt_bench()
    }
}

/// The shallow chat-style class the stream drifts to: tokens settle
/// within the first few layers, so harvesting exits saves roughly a
/// third of all decode work — if the operating point lets them fire.
fn shallow_profile() -> DatasetProfile {
    DatasetProfile {
        exit_mu: 0.0625,
        exit_sigma: 0.01,
        early_frac: 0.0,
        early_mu: 0.06,
        ..DatasetProfile::mt_bench()
    }
}

/// The static grid both the oracle sweep and the bandit use; 1.0 is the
/// exits-off arm (no sigmoid score exceeds it). The runnable twin of
/// this scenario at example scale is `examples/adaptive_threshold.rs` —
/// keep the traffic classes in sync when retuning.
const GRID: [f32; 6] = [0.2, 0.35, 0.5, 0.65, 0.8, 1.0];

struct Harness {
    cfg: ModelConfig,
    seed: u64,
    bank: PredictorBank,
    schedule: ScheduleEngine,
    config: SpecEeConfig,
    /// Dense reference decodes, keyed by (class, id): the reference for
    /// a given request never changes, and `run_stream` is invoked ~20
    /// times over the same requests.
    dense_refs: std::cell::RefCell<std::collections::HashMap<(u64, u64, u64), Vec<TokenId>>>,
}

impl Harness {
    /// Trains the bank on the *shallow* class only, with deliberately
    /// modest capacity, so its scores on the unfamiliar deep class sit
    /// mid-band: on hostile traffic loose thresholds genuinely bleed,
    /// which is what pushes the phase-1 calibration sweep to the
    /// exits-off arm.
    fn build(cfg: &ModelConfig, seed: u64) -> Self {
        // A deliberately modest predictor (small MLP, short training):
        // its scores spread across the grid instead of saturating at
        // 0/1, so the threshold genuinely *is* the operating point — the
        // knob the controllers steer. With the paper's fully-trained
        // predictor every threshold behaves alike and the drift scenario
        // is vacuous.
        let predictor = specee_core::predictor::PredictorConfig {
            hidden_dim: 16,
            ..paper_predictor()
        };
        let profile = shallow_profile();
        let mut lm = build_lm(cfg, &profile, seed, ModelVariant::Dense);
        let mut draft = build_draft(&lm, cfg, seed);
        let lang = *lm.language();
        let prompts: Vec<(Vec<TokenId>, usize)> = (0..TRAIN_PROMPTS)
            .map(|i| {
                let start = (seed as u32 + i as u32 * 7) % cfg.vocab_size as u32;
                (
                    lang.sample_sequence(start, 12, seed ^ (i as u64)),
                    TRAIN_GEN,
                )
            })
            .collect();
        let collection = collect_training_data(&mut lm, &mut draft, &prompts, predictor.spec_k);
        let mut bank = PredictorBank::new(cfg.n_layers, &predictor, &mut Pcg::seed(seed ^ 0xb4));
        train_bank(
            &mut bank,
            &collection.samples,
            1.0,
            &TrainConfig {
                epochs: 6,
                lr: 3e-3,
                ..TrainConfig::default()
            },
            seed ^ 0x7e,
        );
        Harness {
            cfg: cfg.clone(),
            seed,
            bank,
            schedule: ScheduleEngine::all_layers(cfg.n_layers),
            config: SpecEeConfig {
                predictor,
                ..SpecEeConfig::default()
            },
            dense_refs: std::cell::RefCell::new(std::collections::HashMap::new()),
        }
    }

    /// One request of a traffic class: fresh model + draft + prompt.
    fn request(
        &self,
        id: u64,
        profile: &DatasetProfile,
    ) -> (SyntheticLm, OracleDraft, Vec<TokenId>) {
        let lm = build_lm(&self.cfg, profile, self.seed, ModelVariant::Dense);
        let draft = OracleDraft::new(*lm.language(), profile.hit_rate, &self.cfg, self.seed ^ id);
        let start = (self.seed as u32 + id as u32 * 11) % self.cfg.vocab_size as u32;
        let prompt = lm
            .language()
            .sample_sequence(start, 12, self.seed ^ (id << 3));
        (lm, draft, prompt)
    }

    /// The dense (no-exit) token stream for a request, computed once.
    fn dense_reference(&self, id: u64, profile: &DatasetProfile) -> Vec<TokenId> {
        let key = (profile.exit_mu.to_bits(), profile.hit_rate.to_bits(), id);
        if let Some(tokens) = self.dense_refs.borrow().get(&key) {
            return tokens.clone();
        }
        let (lm, _, prompt) = self.request(id, profile);
        let tokens = DenseEngine::new(lm).generate(&prompt, GEN).tokens;
        self.dense_refs.borrow_mut().insert(key, tokens.clone());
        tokens
    }
}

/// One run of the drifting stream under one operating mode.
struct RunResult {
    /// Modelled run latency, seconds (A100 / vllm host profile).
    secs: f64,
    /// Token agreement vs the per-request dense reference.
    agreement: f64,
    /// Per-request outputs, for parity checks.
    outputs: Vec<BatchedOutput>,
}

/// Streams `phases` (profile, request count) sequentially through one
/// batch-1 engine. `threshold` overrides the bank's static operating
/// point; `policy` attaches a controller (carried across phases — the
/// whole point of the experiment).
fn run_stream(
    h: &Harness,
    phases: &[(DatasetProfile, usize)],
    threshold: Option<f32>,
    policy: Option<&ControllerPolicy>,
) -> RunResult {
    let mut bank = h.bank.clone();
    if let Some(t) = threshold {
        bank.set_threshold(t);
    }
    let base = threshold.unwrap_or(h.config.predictor.threshold);
    let n_predictors = bank.len();
    let mut engine: BatchedEngine<SyntheticLm, OracleDraft> = BatchedEngine::new(
        1,
        16,
        h.cfg.n_layers,
        bank,
        h.schedule.clone(),
        h.config.clone(),
    );
    if let Some(p) = policy {
        engine.set_controller(p.build_classed(n_predictors, base));
    }
    let debug = std::env::var("SPECEE_CONTROLLER_DEBUG").is_ok();
    let (mut agr_num, mut agr_den) = (0.0f64, 0.0f64);
    let mut outputs = Vec::new();
    let mut id = 0u64;
    for (phase, (profile, n_requests)) in phases.iter().enumerate() {
        let mut scores: Vec<f32> = Vec::new();
        let mut accept_scores: Vec<f32> = Vec::new();
        for _ in 0..*n_requests {
            let (lm, draft, prompt) = h.request(id, profile);
            let dense_ref = h.dense_reference(id, profile);
            let out = match engine.admit(id, lm, draft, &prompt, GEN) {
                Admission::Done(out) => out,
                Admission::Seated { .. } => loop {
                    let step = engine.step();
                    if debug {
                        scores.extend(step.feedback.iter().map(|f| f.score));
                        accept_scores
                            .extend(step.feedback.iter().filter(|f| f.accepted).map(|f| f.score));
                    }
                    if let Some(out) = step.finished.into_iter().next() {
                        break out;
                    }
                },
            };
            if debug {
                if let Some(summary) = engine.controller_summary() {
                    eprintln!(
                        "[debug]   req {id}: thr {:.2}, avg layers {:.1}",
                        summary.mean_threshold,
                        out.avg_layers()
                    );
                }
            }
            agr_num += agreement(&out.tokens, &dense_ref) * out.tokens.len() as f64;
            agr_den += out.tokens.len() as f64;
            outputs.push(out);
            id += 1;
        }
        if debug && !scores.is_empty() {
            scores.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let pct = |q: f64| scores[((scores.len() - 1) as f64 * q) as usize];
            let phase_outputs = &outputs[outputs.len() - n_requests..];
            let mut exits: Vec<usize> = phase_outputs
                .iter()
                .flat_map(|o| o.exit_layers.iter().skip(1).copied())
                .collect();
            exits.sort_unstable();
            let epct = |q: f64| exits[((exits.len() - 1) as f64 * q) as usize];
            eprintln!(
                "[debug] phase {phase}: {} fires ({} accepted), score p10/p50/p90 = \
                 {:.2}/{:.2}/{:.2}, accepted mean {:.2}, exit layers p10/p50/p90 = {}/{}/{}",
                scores.len(),
                accept_scores.len(),
                pct(0.1),
                pct(0.5),
                pct(0.9),
                accept_scores.iter().sum::<f32>() / accept_scores.len().max(1) as f32,
                epct(0.1),
                epct(0.5),
                epct(0.9)
            );
        }
    }
    let cost = price(
        engine.meter(),
        HardwareProfile::a100_80g(),
        FrameworkProfile::vllm(),
    );
    RunResult {
        secs: cost.latency_s,
        agreement: if agr_den > 0.0 {
            agr_num / agr_den
        } else {
            1.0
        },
        outputs,
    }
}

fn main() {
    banner(
        "ablation_controller",
        "online threshold control under traffic drift (extension)",
    );
    let cfg = model_7b();
    let seed = 37;
    let h = Harness::build(&cfg, seed);
    let n_requests: usize = std::env::var("SPECEE_CONTROLLER_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);
    let phase1 = (deep_profile(), n_requests);
    let phase2 = (shallow_profile(), n_requests);
    let stream = [phase1.clone(), phase2.clone()];

    // ---- 0. Parity: static controller == no controller, bit for bit ----
    let uncontrolled = run_stream(&h, &stream, None, None);
    let static_ctl = run_stream(&h, &stream, None, Some(&ControllerPolicy::Static));
    assert_eq!(
        uncontrolled.outputs.len(),
        static_ctl.outputs.len(),
        "parity: request counts"
    );
    for (a, b) in uncontrolled.outputs.iter().zip(&static_ctl.outputs) {
        assert_eq!(a.tokens, b.tokens, "static controller changed tokens");
        assert_eq!(
            a.exit_layers, b.exit_layers,
            "static controller changed exits"
        );
    }
    println!(
        "parity: --controller static is bit-identical to no controller \
         ({} requests, {} tokens)",
        uncontrolled.outputs.len(),
        uncontrolled
            .outputs
            .iter()
            .map(|o| o.tokens.len())
            .sum::<usize>()
    );

    // ---- 1. Dense reference: a never-firing bank prices the no-exit run ----
    let dense = run_stream(&h, &stream, Some(2.0), None);

    // ---- 2. Grid sweep per phase: the oracle's raw material ----
    let mut sweep = Table::new(vec![
        "threshold",
        "phase-1 (deep) s",
        "phase-2 (shallow) s",
        "whole-stream speedup",
    ]);
    let mut phase1_secs = Vec::new();
    let mut phase2_secs = Vec::new();
    let dense1 = run_stream(&h, std::slice::from_ref(&phase1), Some(2.0), None);
    let dense2 = run_stream(&h, std::slice::from_ref(&phase2), Some(2.0), None);
    for &t in &GRID {
        let r1 = run_stream(&h, std::slice::from_ref(&phase1), Some(t), None);
        let r2 = run_stream(&h, std::slice::from_ref(&phase2), Some(t), None);
        sweep.row(vec![
            format!("{t:.2}"),
            format!("{:.3}", r1.secs),
            format!("{:.3}", r2.secs),
            fmt_x(dense.secs / (r1.secs + r2.secs)),
        ]);
        phase1_secs.push(r1.secs);
        phase2_secs.push(r2.secs);
    }
    let argmin = |v: &[f64]| {
        v.iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i)
            .expect("non-empty")
    };
    let (best1, best2) = (argmin(&phase1_secs), argmin(&phase2_secs));
    let oracle_secs = phase1_secs[best1] + phase2_secs[best2];
    println!(
        "per-phase grid sweep (modelled seconds @ A100/vllm; dense reference \
         {:.3}s = {:.3} + {:.3}):",
        dense.secs, dense1.secs, dense2.secs
    );
    println!("{sweep}");
    println!(
        "oracle static: threshold {:.2} for phase 1, {:.2} for phase 2 -> {:.3}s",
        GRID[best1], GRID[best2], oracle_secs
    );

    // ---- 3. The contenders on the full drifting stream ----
    let phase1_static = run_stream(&h, &stream, Some(GRID[best1]), None);
    let pid = run_stream(&h, &stream, None, Some(&ControllerPolicy::pid()));
    let bandit_policy = ControllerPolicy::Bandit(specee_control::BanditConfig {
        grid: GRID.to_vec(),
        ..specee_control::BanditConfig::default()
    });
    let bandit = run_stream(&h, &stream, None, Some(&bandit_policy));

    let speedup = |secs: f64| dense.secs / secs;
    let oracle_speedup = speedup(oracle_secs);
    let mut results = Table::new(vec![
        "policy",
        "stream s",
        "speedup vs no-exit",
        "% of oracle",
        "agreement",
    ]);
    let rows: [(&str, &RunResult); 3] = [
        ("phase-1 static", &phase1_static),
        ("pid", &pid),
        ("bandit", &bandit),
    ];
    println!();
    for (name, r) in rows {
        results.row(vec![
            name.to_string(),
            format!("{:.3}", r.secs),
            fmt_x(speedup(r.secs)),
            format!("{:.0}%", 100.0 * speedup(r.secs) / oracle_speedup),
            format!("{:.1}%", r.agreement * 100.0),
        ]);
    }
    results.row(vec![
        "oracle static".to_string(),
        format!("{oracle_secs:.3}"),
        fmt_x(oracle_speedup),
        "100%".to_string(),
        "-".to_string(),
    ]);
    println!("drifting stream: {n_requests} deep then {n_requests} shallow requests, batch 1:");
    println!("{results}");

    // ---- 4. Assertions: the acceptance bar ----
    let recovery = |r: &RunResult| speedup(r.secs) / oracle_speedup;
    assert!(
        recovery(&pid) >= 0.9,
        "pid must recover >= 90% of the oracle-static speedup: {:.1}%",
        recovery(&pid) * 100.0
    );
    assert!(
        recovery(&bandit) >= 0.9,
        "bandit must recover >= 90% of the oracle-static speedup: {:.1}%",
        recovery(&bandit) * 100.0
    );
    assert!(
        recovery(&phase1_static) < 0.9,
        "the phase-1-tuned static threshold should NOT keep up on drifted \
         traffic (else the scenario exercises nothing): {:.1}%",
        recovery(&phase1_static) * 100.0
    );
    assert!(
        pid.agreement >= phase1_static.agreement - 1e-9,
        "pid accuracy must hold at or above the static baseline: {:.3} vs {:.3}",
        pid.agreement,
        phase1_static.agreement
    );
    assert!(
        bandit.agreement >= phase1_static.agreement - 1e-9,
        "bandit accuracy must hold at or above the static baseline: {:.3} vs {:.3}",
        bandit.agreement,
        phase1_static.agreement
    );
    println!(
        "adaptive policies re-converge after the drift: pid {:.0}%, bandit {:.0}% \
         of oracle; phase-1 static stalls at {:.0}%",
        recovery(&pid) * 100.0,
        recovery(&bandit) * 100.0,
        recovery(&phase1_static) * 100.0
    );
}
