//! Ablation A3 (ours): exit-threshold sweep — the accuracy/speedup knob of
//! the judgment mechanism (§4.3.2 fixes 0.5; this shows the tradeoff
//! curve that choice sits on).

use specee_bench::*;
use specee_core::engine::SpecEeEngine;
use specee_core::predictor::PredictorConfig;
use specee_core::{RunStats, SpecEeConfig};
use specee_metrics::{report::fmt_x, FrameworkProfile, HardwareProfile, Table};

fn main() {
    banner(
        "ablation_threshold",
        "exit-threshold sweep (accuracy vs speedup)",
    );
    let cfg = model_7b();
    let ds = specee_synth::DatasetProfile::mt_bench();
    let seed = 83;
    let hw = HardwareProfile::a100_80g();
    let fw = FrameworkProfile::hugging_face();

    let mut t = Table::new(vec!["threshold", "avg layers", "speedup", "agreement"]);
    let dense = {
        // thresholds > 1 never exit: reuse as the dense reference point
        let trained = train_pipeline(&cfg, &ds, seed, paper_predictor());
        let wl = workload(&cfg, &ds, request_count(), seed);
        let d = run_engine(
            EngineKind::Dense,
            &cfg,
            &ds,
            seed,
            ModelVariant::Dense,
            &trained,
            &wl,
        );
        (trained, wl, d)
    };
    let (trained, wl, dense_run) = dense;
    let base_tps = price(&dense_run.stats.meter, hw.clone(), fw.clone()).tokens_per_s();

    for threshold in [0.2f32, 0.35, 0.5, 0.65, 0.8, 0.95] {
        let pcfg = PredictorConfig {
            threshold,
            ..trained.predictor
        };
        // retune only the decision threshold; weights stay as trained
        let config = SpecEeConfig {
            predictor: pcfg,
            ..SpecEeConfig::default()
        };
        let schedule =
            config.build_schedule(cfg.n_layers, Some(&trained.collection.exit_frequencies));
        let lm = build_lm(&cfg, &ds, seed, ModelVariant::Dense);
        let draft = build_draft(&lm, &cfg, seed);
        let mut bank = trained.bank.clone();
        bank.set_threshold(threshold);
        let mut engine = SpecEeEngine::new(lm, draft, bank, schedule, config);
        let outputs: Vec<_> = wl
            .iter()
            .map(|r| engine.generate(&r.prompt, r.gen_len))
            .collect();
        let stats = RunStats::aggregate(&outputs);
        let run = EngineRun {
            stats,
            outputs,
            avg_active_predictors: None,
        };
        let tps = price(&run.stats.meter, hw.clone(), fw.clone()).tokens_per_s();
        t.row(vec![
            format!("{threshold:.2}"),
            format!("{:.2}", run.stats.avg_layers),
            fmt_x(tps / base_tps),
            format!("{:.1}%", agreement_vs(&dense_run, &run) * 100.0),
        ]);
    }
    println!("paper fixes threshold = 0.5; lower thresholds exit earlier at more risk");
    println!("{t}");
}
