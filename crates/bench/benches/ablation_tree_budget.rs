//! Ablation (ours): EAGLE-2-style dynamic tree budgets. The paper's T3
//! verifies a fixed-shape draft tree; the EAGLE line's follow-up prunes
//! the drafted tree to its highest joint-probability nodes before
//! verification. This harness sweeps the node budget on the SpecEE
//! speculative engine and reports accepted tokens per round and modelled
//! throughput — the trade between verification batch size and acceptance.

use specee_bench::*;
use specee_core::SpecEeConfig;
use specee_draft::TreeShape;
use specee_metrics::{report::fmt_x, FrameworkProfile, HardwareProfile, Table};
use specee_synth::DatasetProfile;

fn main() {
    banner(
        "ablation_tree_budget",
        "dynamic draft-tree budgets (EAGLE-2-style pruning, ours)",
    );
    let cfg = model_7b();
    let seed = 37;
    let ds = DatasetProfile::mt_bench();
    let trained = train_pipeline(&cfg, &ds, seed, paper_predictor());
    let wl = workload(&cfg, &ds, request_count(), seed);
    let shape = TreeShape::eagle_default(); // 21 nodes

    struct Row {
        label: String,
        tokens_per_round: f64,
        tps: f64,
        avg_layers: f64,
    }
    let mut rows = Vec::new();
    for budget in [Some(4usize), Some(8), Some(12), Some(16), None] {
        let config = SpecEeConfig {
            predictor: trained.predictor,
            tree_shape: shape.clone(),
            tree_budget: budget,
            ..SpecEeConfig::default()
        };
        let run = run_speculative_with_config(&cfg, &ds, seed, &trained, &wl, &config);
        let cost = price(
            &run.stats.meter,
            HardwareProfile::a100_80g(),
            FrameworkProfile::eagle(),
        );
        rows.push(Row {
            label: budget.map_or_else(
                || format!("full ({})", shape.node_count()),
                |b| b.to_string(),
            ),
            tokens_per_round: run.stats.tokens_per_round(),
            tps: cost.tokens_per_s(),
            avg_layers: run.stats.avg_layers,
        });
    }
    let full_tps = rows.last().expect("full row").tps;

    let mut table = Table::new(vec![
        "budget",
        "tokens/round",
        "tokens/s",
        "speedup vs full",
        "avg layers",
    ]);
    for r in &rows {
        table.row(vec![
            r.label.clone(),
            format!("{:.2}", r.tokens_per_round),
            format!("{:.2}", r.tps),
            fmt_x(r.tps / full_tps),
            format!("{:.2}", r.avg_layers),
        ]);
    }
    println!(
        "Llama2-7B(sim) @ A100 / EAGLE host profile, MT-Bench, {} requests, SpecEE tree mode",
        wl.len()
    );
    println!("{table}");
    println!(
        "Expected shape: small budgets cut verification compute but accept fewer\n\
         tokens per round; generous budgets converge to the full fixed tree. The\n\
         sweet spot depends on where the device sits between the two costs."
    );
}
