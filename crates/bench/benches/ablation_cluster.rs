//! Serving extension (ours): the workers × router ablation for the
//! `specee-cluster` data-parallel runtime.
//!
//! PR 2's `ablation_live_batch` measured the Cannikin decay: one big
//! batch pays for layers down to the rearmost still-needed one, so the
//! per-batch SpecEE speedup shrinks toward 1.0× as the batch grows. This
//! harness measures the deployment-layer counter: the same slot budget
//! split across parallel workers (many small batches) recovers the
//! speedup, and exit-aware routing keeps it on skewed traffic by packing
//! shallow-exiting requests together. Three experiments:
//!
//! 1. **Scaling** — workers × {round-robin, shortest-queue, exit-aware}
//!    on a uniform burst: aggregate throughput must grow with worker
//!    count, and a one-worker round-robin cluster must match live mode
//!    exactly (the parity anchor).
//! 2. **Skew** — two real traffic classes (a shallow-settling and a
//!    deep-settling synthetic language profile) interleaved SSDD — the
//!    adversarial pattern for round-robin at two workers, which mixes
//!    every batch. Exit-aware routing must be no worse in throughput and
//!    strictly better in mean latency.
//! 3. **Cannikin recovery** — 1×16 vs 4×4 slots, each against its own
//!    no-exit reference: the split deployment must recover speedup the
//!    monolithic batch lost.

use std::sync::Arc;

use specee_batch::BatchedEngine;
use specee_bench::*;
use specee_cluster::{Cluster, ClusterConfig, ClusterReport, ClusterRequest, RouterPolicy};
use specee_core::collect::{collect_training_data, train_bank};
use specee_core::engine::SpecEeEngine;
use specee_core::predictor::PredictorBank;
use specee_core::{ScheduleEngine, SpecEeConfig};
use specee_metrics::{report::fmt_x, FrameworkProfile, HardwareProfile, Table};
use specee_model::{ModelConfig, TokenId};
use specee_nn::TrainConfig;
use specee_serve::{AdmissionPolicy, BatcherConfig, ContinuousBatcher, ServeRequest, ServeStats};
use specee_synth::{DatasetProfile, OracleDraft, SyntheticLm};
use specee_tensor::rng::Pcg;

/// The shallow-settling traffic class: tokens saturate around a quarter
/// of the stack (chat-style instruction traffic).
fn shallow_profile() -> DatasetProfile {
    DatasetProfile {
        exit_mu: 0.25,
        early_frac: 0.3,
        early_mu: 0.15,
        ..DatasetProfile::mt_bench()
    }
}

/// The deep-settling class: tokens need nearly the whole stack.
fn deep_profile() -> DatasetProfile {
    DatasetProfile {
        exit_mu: 0.95,
        early_frac: 0.02,
        ..DatasetProfile::mt_bench()
    }
}

/// SSDD: ids 0,1 shallow; 2,3 deep; repeating. Round-robin at two
/// workers alternates, so every one of its batches mixes the classes.
fn is_shallow(id: u64) -> bool {
    (id / 2) % 2 == 0
}

struct Harness {
    cfg: ModelConfig,
    seed: u64,
    bank: PredictorBank,
    schedule: ScheduleEngine,
    config: SpecEeConfig,
}

impl Harness {
    /// Trains one predictor bank on samples from all three traffic
    /// profiles, so every class's exits are in-distribution.
    fn build(cfg: &ModelConfig, seed: u64) -> Self {
        let predictor = paper_predictor();
        let mut samples = Vec::new();
        for profile in [
            DatasetProfile::mt_bench(),
            shallow_profile(),
            deep_profile(),
        ] {
            let mut lm = build_lm(cfg, &profile, seed, ModelVariant::Dense);
            let mut draft = build_draft(&lm, cfg, seed);
            let lang = *lm.language();
            let prompts: Vec<(Vec<TokenId>, usize)> = (0..TRAIN_PROMPTS)
                .map(|i| {
                    let start = (seed as u32 + i as u32 * 7) % cfg.vocab_size as u32;
                    (
                        lang.sample_sequence(start, 12, seed ^ (i as u64)),
                        TRAIN_GEN,
                    )
                })
                .collect();
            let collection = collect_training_data(&mut lm, &mut draft, &prompts, predictor.spec_k);
            samples.extend(collection.samples);
        }
        let mut bank = PredictorBank::new(cfg.n_layers, &predictor, &mut Pcg::seed(seed ^ 0xb4));
        train_bank(
            &mut bank,
            &samples,
            1.0,
            &TrainConfig {
                epochs: 16,
                lr: 3e-3,
                ..TrainConfig::default()
            },
            seed ^ 0x7e,
        );
        let config = SpecEeConfig {
            predictor,
            ..SpecEeConfig::default()
        };
        // Predictors at every layer: both classes exit at their natural
        // depth instead of the offline schedule's.
        let schedule = ScheduleEngine::all_layers(cfg.n_layers);
        Harness {
            cfg: cfg.clone(),
            seed,
            bank,
            schedule,
            config,
        }
    }

    fn batcher_config(&self, max_batch: usize) -> BatcherConfig {
        BatcherConfig {
            max_batch,
            hardware: HardwareProfile::a100_80g(),
            framework: FrameworkProfile::vllm(),
            cost: self.cfg.cost.expect("sim models carry a cost twin"),
        }
    }

    fn seq(&self, id: u64, profile: &DatasetProfile) -> (SyntheticLm, OracleDraft) {
        let lm = build_lm(&self.cfg, profile, self.seed, ModelVariant::Dense);
        let draft = OracleDraft::new(*lm.language(), profile.hit_rate, &self.cfg, self.seed ^ id);
        (lm, draft)
    }

    /// Serves `requests` on a live cluster; `profile_of(id)` picks each
    /// request's traffic class, `hint_of(id)` its routing hint. `dense`
    /// swaps in a never-firing predictor bank (the no-exit reference).
    #[allow(clippy::too_many_arguments)]
    fn run_cluster(
        &self,
        workers: usize,
        max_batch: usize,
        policy: RouterPolicy,
        requests: &[ServeRequest],
        profile_of: impl Fn(u64) -> DatasetProfile + Send + Sync + 'static,
        hint_of: impl Fn(u64) -> Option<f64>,
        dense: bool,
    ) -> ClusterReport {
        let mut bank = self.bank.clone();
        if dense {
            bank.set_threshold(2.0); // sigmoid never reaches 2: no exits
        }
        let cfg = self.cfg.clone();
        let seed = self.seed;
        let mut cluster: Cluster<SyntheticLm, OracleDraft> = Cluster::spawn(
            &ClusterConfig {
                workers,
                page_size: 16,
                page_capacity: None,
                prefix_share: false,
                preemption: false,
                admission: AdmissionPolicy::Fcfs,
                batcher: self.batcher_config(max_batch),
                controller: specee_control::ControllerPolicy::Static,
                gossip: true,
                trace: false,
                trace_sample: 1,
                slo: None,
            },
            policy.build(),
            &bank,
            &self.schedule,
            &self.config,
            Arc::new(move |req: &ClusterRequest| {
                let profile = profile_of(req.request.id);
                let lm = build_lm(&cfg, &profile, seed, ModelVariant::Dense);
                let draft = OracleDraft::new(
                    *lm.language(),
                    profile.hit_rate,
                    &cfg,
                    seed ^ req.request.id,
                );
                (lm, draft)
            }),
        );
        let mut assignments = Vec::new();
        for req in requests {
            let mut creq = ClusterRequest::new(req.clone());
            if let Some(hint) = hint_of(req.id) {
                creq = creq.with_exit_hint(hint);
            }
            assignments.push(cluster.submit(creq).expect("routable"));
        }
        if std::env::var("SPECEE_CLUSTER_DEBUG").is_ok() {
            eprintln!("[{:?} w={workers}] assignments: {assignments:?}", policy);
        }
        cluster.drain()
    }

    /// Measures one class's mean exit depth with a solo engine run — the
    /// honest source of routing hints.
    fn calibrate_hint(&self, profile: &DatasetProfile) -> f64 {
        let (lm, draft) = self.seq(0x55, profile);
        let mut engine = SpecEeEngine::new(
            lm,
            draft,
            self.bank.clone(),
            self.schedule.clone(),
            self.config.clone(),
        );
        let out = engine.generate(&[3, 8, 1], 16);
        out.avg_layers()
    }
}

fn main() {
    banner(
        "ablation_cluster",
        "workers x router sweep for the data-parallel cluster runtime (extension)",
    );
    let cfg = model_7b();
    let seed = 31;
    let h = Harness::build(&cfg, seed);

    // A saturating burst of 16 requests (every worker count divides it),
    // decode length 16. Prompts come from the shared synthetic language.
    let n_requests = 16;
    let ds = DatasetProfile::mt_bench();
    let wl: Vec<specee_synth::Request> = workload(&cfg, &ds, n_requests, seed)
        .into_iter()
        .map(|mut r| {
            r.gen_len = 16;
            r
        })
        .collect();
    let requests = serve_requests(&wl, 1000.0, seed ^ 0x5e);
    let uniform = DatasetProfile::mt_bench();

    // ---- 1. Scaling: workers × router on the uniform burst ----
    // Parity anchor: live mode at per-worker capacity 4.
    let mut live_engine: BatchedEngine<SyntheticLm, OracleDraft> = BatchedEngine::new(
        4,
        16,
        cfg.n_layers,
        h.bank.clone(),
        h.schedule.clone(),
        h.config.clone(),
    );
    let batcher = ContinuousBatcher::new(h.batcher_config(4));
    let live = batcher.run_live(&requests, &mut live_engine, |r| h.seq(r.id, &uniform));
    let live_stats = live.report.stats();

    let mut table = Table::new(vec![
        "workers x cap",
        "router",
        "tok/s",
        "x vs 1 worker",
        "mean lat (ms)",
        "p99 lat (ms)",
        "avg occupancy",
    ]);
    let mut scaling: Vec<(usize, &'static str, ServeStats)> = Vec::new();
    for &workers in &[1usize, 2, 4] {
        for policy in RouterPolicy::all() {
            let report = h.run_cluster(
                workers,
                4,
                policy,
                &requests,
                |_| DatasetProfile::mt_bench(),
                |_| None,
                false,
            );
            assert_eq!(report.completed(), requests.len(), "all requests served");
            scaling.push((workers, policy.name(), report.stats()));
        }
    }
    let base = scaling
        .iter()
        .find(|(w, p, _)| *w == 1 && *p == "round-robin")
        .expect("base run")
        .2;
    for (workers, policy, stats) in &scaling {
        table.row(vec![
            format!("{workers} x 4"),
            policy.to_string(),
            format!("{:.2}", stats.throughput_tok_s),
            fmt_x(stats.throughput_tok_s / base.throughput_tok_s),
            format!("{:.0}", stats.mean_latency_s * 1e3),
            format!("{:.0}", stats.p99_latency_s * 1e3),
            format!("{:.1}", stats.avg_occupancy),
        ]);
    }
    println!(
        "Llama2-7B(sim) @ A100 / vllm host profile, {} uniform requests, saturating burst",
        requests.len()
    );
    println!("{table}");
    println!(
        "parity anchor: live mode (1 engine, cap 4) {:.2} tok/s vs 1-worker cluster {:.2} tok/s",
        live_stats.throughput_tok_s, base.throughput_tok_s
    );
    assert!(
        (live_stats.throughput_tok_s - base.throughput_tok_s).abs() / live_stats.throughput_tok_s
            < 1e-9,
        "one round-robin worker must reproduce live mode exactly"
    );
    for policy in RouterPolicy::all() {
        let tput = |w: usize| {
            scaling
                .iter()
                .find(|(sw, sp, _)| *sw == w && *sp == policy.name())
                .expect("swept")
                .2
                .throughput_tok_s
        };
        assert!(
            tput(2) > tput(1) && tput(4) > tput(2),
            "{}: cluster throughput must scale with workers: {} -> {} -> {}",
            policy.name(),
            tput(1),
            tput(2),
            tput(4)
        );
        assert!(
            tput(1) >= live_stats.throughput_tok_s * (1.0 - 1e-9),
            "cluster at any worker count must be >= single-worker live mode"
        );
    }

    // ---- 2. Skew: SSDD shallow/deep traffic, exit-aware vs round-robin ----
    let shallow_hint = h.calibrate_hint(&shallow_profile());
    let deep_hint = h.calibrate_hint(&deep_profile());
    println!(
        "\ncalibrated exit depths: shallow class {:.1} layers, deep class {:.1} (of {})",
        shallow_hint, deep_hint, cfg.n_layers
    );
    assert!(
        shallow_hint + 4.0 < deep_hint,
        "traffic classes must be separable for the skew experiment"
    );
    let profile_of = |id: u64| {
        if is_shallow(id) {
            shallow_profile()
        } else {
            deep_profile()
        }
    };
    let hint_of = move |id: u64| {
        Some(if is_shallow(id) {
            shallow_hint
        } else {
            deep_hint
        })
    };
    // Steady traffic rather than a cold all-at-once burst: queues stay
    // around a wave deep, which is the regime routing exists for.
    let skew_rate: f64 = std::env::var("SPECEE_SKEW_RATE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20.0);
    let skew_requests = serve_requests(&wl, skew_rate, seed ^ 0x5e);

    let mut skew_table = Table::new(vec![
        "router",
        "tok/s",
        "mean lat (ms)",
        "p50 lat (ms)",
        "p99 lat (ms)",
        "observed depth",
    ]);
    let mut skew: Vec<(&'static str, ClusterReport)> = Vec::new();
    for policy in RouterPolicy::all() {
        let report = h.run_cluster(2, 4, policy, &skew_requests, profile_of, hint_of, false);
        assert_eq!(report.completed(), skew_requests.len());
        skew.push((policy.name(), report));
    }
    for (name, report) in &skew {
        let stats = report.stats();
        skew_table.row(vec![
            name.to_string(),
            format!("{:.2}", stats.throughput_tok_s),
            format!("{:.0}", stats.mean_latency_s * 1e3),
            format!("{:.0}", stats.p50_latency_s * 1e3),
            format!("{:.0}", stats.p99_latency_s * 1e3),
            format!("{:.1}", report.observed_depth().unwrap_or(f64::NAN)),
        ]);
    }
    println!("\nskewed SSDD workload, 2 workers x cap 4:");
    println!("{skew_table}");
    let stats_of = |name: &str| {
        skew.iter()
            .find(|(n, _)| *n == name)
            .expect("swept")
            .1
            .stats()
    };
    let (rr, ea) = (stats_of("round-robin"), stats_of("exit-aware"));
    println!(
        "exit-aware vs round-robin: throughput {:.2} vs {:.2} tok/s, mean latency {:.0} vs {:.0} ms",
        ea.throughput_tok_s,
        rr.throughput_tok_s,
        ea.mean_latency_s * 1e3,
        rr.mean_latency_s * 1e3
    );
    assert!(
        ea.throughput_tok_s >= rr.throughput_tok_s * (1.0 - 1e-6),
        "exit-aware must be no worse than round-robin on skewed traffic: {} vs {}",
        ea.throughput_tok_s,
        rr.throughput_tok_s
    );
    assert!(
        ea.mean_latency_s < rr.mean_latency_s,
        "packing shallow traffic together must lower mean latency: {} vs {}",
        ea.mean_latency_s,
        rr.mean_latency_s
    );

    // ---- 3. Cannikin recovery: 1 x 16 vs 4 x 4 slots ----
    let shapes: [(usize, usize); 2] = [(1, 16), (4, 4)];
    let mut recovery = Vec::new();
    let mut shape_table = Table::new(vec![
        "deployment",
        "SpecEE tok/s",
        "no-exit tok/s",
        "speedup",
    ]);
    for (workers, cap) in shapes {
        let spec = h.run_cluster(
            workers,
            cap,
            RouterPolicy::RoundRobin,
            &requests,
            |_| DatasetProfile::mt_bench(),
            |_| None,
            false,
        );
        let dense = h.run_cluster(
            workers,
            cap,
            RouterPolicy::RoundRobin,
            &requests,
            |_| DatasetProfile::mt_bench(),
            |_| None,
            true,
        );
        let speedup = spec.stats().throughput_tok_s / dense.stats().throughput_tok_s;
        shape_table.row(vec![
            format!("{workers} worker(s) x {cap} slots"),
            format!("{:.2}", spec.stats().throughput_tok_s),
            format!("{:.2}", dense.stats().throughput_tok_s),
            fmt_x(speedup),
        ]);
        recovery.push(speedup);
    }
    println!("\nCannikin recovery at a fixed 16-slot budget:");
    println!("{shape_table}");
    println!(
        "splitting one 16-slot batch into 4 x 4 recovers {} -> {} of the per-batch speedup",
        fmt_x(recovery[0]),
        fmt_x(recovery[1])
    );
    assert!(
        recovery[1] >= recovery[0] - 1e-9,
        "many small batches must recover speedup lost to the Cannikin effect: {recovery:?}"
    );
}
