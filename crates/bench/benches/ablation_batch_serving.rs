//! Serving extension (ours): how SpecEE's single-stream win behaves under
//! continuous batching. The paper evaluates batch 1; in a served batch the
//! weight read of a layer is amortized across every sequence that executes
//! it, so an early exit saves weight bandwidth only when *all* co-batched
//! sequences exit below the layer. This harness sweeps the batch cap and
//! reports the dense-vs-SpecEE throughput ratio, TTFT and latency.

use specee_bench::*;
use specee_core::SchedulingMode;
use specee_metrics::{report::fmt_x, FrameworkProfile, HardwareProfile, Table};
use specee_serve::{BatcherConfig, ContinuousBatcher};

fn main() {
    banner(
        "ablation_batch_serving",
        "continuous batching: early-exit advantage vs batch size (extension)",
    );
    let cfg = model_7b();
    let seed = 23;
    let ds = specee_synth::DatasetProfile::mt_bench();
    let trained = train_pipeline(&cfg, &ds, seed, paper_predictor());
    // A serving workload: more, shorter requests than the single-stream
    // benches.
    let n_requests = (request_count() * 6).max(12);
    let wl = workload(&cfg, &ds, n_requests, seed);

    let dense_run = run_engine(
        EngineKind::Dense,
        &cfg,
        &ds,
        seed,
        ModelVariant::Dense,
        &trained,
        &wl,
    );
    let spec_run = run_engine(
        EngineKind::SpecEeAr(SchedulingMode::TwoLevel),
        &cfg,
        &ds,
        seed,
        ModelVariant::Dense,
        &trained,
        &wl,
    );
    let dense_traces = serving_traces(&dense_run, false);
    let spec_traces = serving_traces(&spec_run, true);
    let requests = serve_requests(&wl, 8.0, seed ^ 0x5e);
    let cost = cfg.cost.expect("sim models carry a cost twin");

    let mut table = Table::new(vec![
        "batch cap",
        "dense tok/s",
        "SpecEE tok/s",
        "speedup",
        "SpecEE TTFT",
        "SpecEE p95 lat",
        "occupancy",
    ]);
    let mut speedups = Vec::new();
    for &max_batch in &[1usize, 2, 4, 8, 16] {
        let batcher = ContinuousBatcher::new(BatcherConfig {
            max_batch,
            hardware: HardwareProfile::a100_80g(),
            framework: FrameworkProfile::vllm(),
            cost,
        });
        let d = batcher.run(&requests, &dense_traces).stats();
        let s = batcher.run(&requests, &spec_traces).stats();
        let speedup = s.throughput_tok_s / d.throughput_tok_s;
        speedups.push(speedup);
        table.row(vec![
            max_batch.to_string(),
            format!("{:.2}", d.throughput_tok_s),
            format!("{:.2}", s.throughput_tok_s),
            fmt_x(speedup),
            format!("{:.0}ms", s.mean_ttft_s * 1e3),
            format!("{:.0}ms", s.p95_latency_s * 1e3),
            format!("{:.2}", s.avg_occupancy),
        ]);
    }
    println!(
        "Llama2-7B(sim) @ A100 / vllm host profile, {} requests, Poisson 8 req/s",
        requests.len()
    );
    println!("{table}");
    println!(
        "Expected shape: the batch-1 speedup matches the single-stream Fig. 14 margin\n\
         and decays toward 1x as the batch grows (weight reads amortize; savings need\n\
         unanimous exits), while per-token compute savings keep a residual margin.\n\
         first/last speedup: {} -> {}",
        fmt_x(speedups[0]),
        fmt_x(*speedups.last().expect("sweep")),
    );
}
