//! Fig. 1(a): the accuracy/speedup Pareto frontier — baseline, AWQ,
//! EAGLE-style speculative decoding, and the SpecEE combinations pushing
//! the frontier forward.

use specee_bench::*;
use specee_core::SchedulingMode;
use specee_metrics::{FrameworkProfile, HardwareProfile, Table};

fn main() {
    banner("fig01a_pareto", "accuracy vs speedup Pareto frontier");
    let cfg = model_7b();
    let ds = specee_synth::DatasetProfile::mmlu();
    let seed = 71;
    let hw = HardwareProfile::rtx4090();
    let trained = train_pipeline(&cfg, &ds, seed, paper_predictor());
    let wl = workload(&cfg, &ds, request_count(), seed);
    let dense = run_engine(
        EngineKind::Dense,
        &cfg,
        &ds,
        seed,
        ModelVariant::Dense,
        &trained,
        &wl,
    );
    let base_tps = price(
        &dense.stats.meter,
        hw.clone(),
        FrameworkProfile::hugging_face(),
    )
    .tokens_per_s();

    let mut rows: Vec<(String, f64, f64)> = Vec::new();
    {
        let mut add = |name: &str, kind, variant, fw: FrameworkProfile| {
            let run = run_engine(kind, &cfg, &ds, seed, variant, &trained, &wl);
            let tps = price(&run.stats.meter, hw.clone(), fw).tokens_per_s();
            let agr = agreement_vs(&dense, &run);
            rows.push((name.to_string(), tps / base_tps, agr));
        };
        add(
            "Baseline (HF)",
            EngineKind::Dense,
            ModelVariant::Dense,
            FrameworkProfile::hugging_face(),
        );
        add(
            "vllm",
            EngineKind::Dense,
            ModelVariant::Dense,
            FrameworkProfile::vllm(),
        );
        add(
            "AWQ",
            EngineKind::Dense,
            ModelVariant::Quantized,
            FrameworkProfile::awq(),
        );
        add(
            "EAGLE",
            EngineKind::Speculative,
            ModelVariant::Dense,
            FrameworkProfile::eagle(),
        );
        add(
            "SpecEE (AR)",
            EngineKind::SpecEeAr(SchedulingMode::TwoLevel),
            ModelVariant::Dense,
            FrameworkProfile::hugging_face(),
        );
        add(
            "SpecEE (full)",
            EngineKind::SpecEeSpeculative,
            ModelVariant::Dense,
            FrameworkProfile::hugging_face(),
        );
        add(
            "SpecEE+AWQ",
            EngineKind::SpecEeSpeculative,
            ModelVariant::Quantized,
            FrameworkProfile::awq(),
        );
        add(
            "SpecEE+vllm",
            EngineKind::SpecEeSpeculative,
            ModelVariant::Dense,
            FrameworkProfile::vllm(),
        );
    }
    let mut t = Table::new(vec!["engine", "normalized speedup", "normalized accuracy"]);
    for (name, speedup, acc) in &rows {
        t.row(vec![
            name.clone(),
            format!("{speedup:.2}"),
            format!("{acc:.3}"),
        ]);
    }
    println!("paper: SpecEE points push the frontier right at ~constant accuracy");
    println!("{t}");
}
