//! Ablation (ours): self-speculative drafting vs a separate draft
//! network. The separate-draft baseline pays for shallow work twice per
//! accepted token — once in the draft network and again when the verify
//! sweep recomputes every tree node from the embedding up. Self-draft
//! (Kangaroo/LayerSkip-style) runs the target's own layers
//! `0..exit_layer` as the draft, commits that shallow KV on accept, and
//! resumes verification from the exit-layer hidden states — shallow
//! layer runs drop from 2x to 1x. This harness decodes the same prompt
//! through both modes on a real `Transformer`, asserts the accounting
//! and bit-identity claims, and prices the wall-clock win.

use specee_bench::*;
use specee_core::engine::{DenseEngine, SpeculativeEngine};
use specee_core::{GenOutput, SpecEeConfig};
use specee_draft::{DraftModel, SelfDraft, SelfDraftSpec, TreeShape};
use specee_metrics::{report::fmt_x, FrameworkProfile, HardwareProfile, Table};
use specee_model::{LayeredLm, ModelConfig, Transformer};
use specee_tensor::rng::Pcg;

const SEED: u64 = 29;
const GEN: usize = 48;
const EXIT: usize = 4;

fn cfg() -> ModelConfig {
    ModelConfig {
        n_layers: 8,
        vocab_size: 160,
        ..ModelConfig::tiny()
    }
}

fn target() -> Transformer {
    Transformer::random(cfg(), &mut Pcg::seed(SEED))
}

struct Run {
    label: &'static str,
    out: GenOutput,
    /// Shallow-plane layer runs: every (node x layer) forward through
    /// layers `0..EXIT` of the target, plus every separate-draft-network
    /// forward (each at least one shallow-equivalent layer run).
    shallow_runs: u64,
}

fn main() {
    banner(
        "ablation_selfdraft",
        "self-speculative drafting: shared-KV shallow draft vs separate draft network",
    );
    let prompt = vec![7u32, 3, 19, 4, 11];
    let shape = TreeShape::chain(3);
    let n_nodes = (shape.node_count() + 1) as u64; // bonus token rides along

    // Baseline: the existing speculative engine with a separate draft
    // network. Its verify sweep recomputes all `n_nodes` tree nodes from
    // the embedding up, so the shallow plane runs `n_nodes * EXIT` layer
    // forwards per round *in addition to* the draft network's own calls.
    let sep_out = {
        let model = target();
        let draft = DraftModel::new(model.config(), &mut Pcg::seed(SEED ^ 0x11));
        let config = SpecEeConfig {
            tree_shape: shape.clone(),
            ..SpecEeConfig::default()
        };
        SpeculativeEngine::baseline(model, draft, config).generate(&prompt, GEN)
    };
    let sep = Run {
        label: "separate draft",
        shallow_runs: sep_out.rounds * n_nodes * EXIT as u64 + sep_out.draft_calls,
        out: sep_out,
    };

    // Self-draft: the target's own first EXIT layers draft the tree;
    // their KV is committed on accept and the verify sweep resumes at
    // EXIT, so the metered `self_draft_calls` is the *entire* shallow
    // plane — no recompute, no second network.
    let slf_out = {
        let draft = SelfDraft::new(SelfDraftSpec::new(EXIT, shape.clone()));
        SpeculativeEngine::baseline(target(), draft, SpecEeConfig::default()).generate(&prompt, GEN)
    };
    let slf = Run {
        label: "self-draft",
        shallow_runs: slf_out.self_draft_calls,
        out: slf_out,
    };

    // Claim 1 — bit-identity: chain-shaped self-draft emits exactly the
    // dense greedy stream (every token is the target's own argmax), and
    // the separate-draft baseline is dense-faithful too, so both modes
    // decode equal output tokens.
    let reference = DenseEngine::new(target()).generate(&prompt, GEN);
    assert_eq!(
        slf.out.tokens, reference.tokens,
        "chain-shaped self-draft must be bit-identical to dense greedy"
    );
    assert_eq!(
        sep.out.tokens, reference.tokens,
        "separate-draft greedy verification must be dense-faithful"
    );

    // Claim 2 — strict shallow-plane reduction per accepted token at
    // equal output tokens: self-draft's only shallow work is the draft
    // pass itself; the baseline pays the same verify-sweep recompute AND
    // the draft network on top.
    let per_tok = |r: &Run| r.shallow_runs as f64 / r.out.tokens.len() as f64;
    assert!(
        per_tok(&slf) < per_tok(&sep),
        "self-draft must strictly reduce shallow layer runs per accepted token: \
         self {:.2} vs separate {:.2}",
        per_tok(&slf),
        per_tok(&sep)
    );
    assert_eq!(slf.out.draft_calls, 0, "no separate network ran");
    assert!(
        sep.out.draft_calls > 0,
        "baseline drafted through a network"
    );

    let cost_of = |r: &Run| {
        price(
            &r.out.meter,
            HardwareProfile::a100_80g(),
            FrameworkProfile::eagle(),
        )
    };
    let base_tps = cost_of(&sep).tokens_per_s();
    let mut table = Table::new(vec![
        "mode",
        "rounds",
        "tokens/round",
        "shallow runs/token",
        "draft-net calls",
        "tokens/s",
        "speedup",
    ]);
    for r in [&sep, &slf] {
        let cost = cost_of(r);
        table.row(vec![
            r.label.to_string(),
            r.out.rounds.to_string(),
            format!("{:.2}", r.out.tokens.len() as f64 / r.out.rounds as f64),
            format!("{:.2}", per_tok(r)),
            r.out.draft_calls.to_string(),
            format!("{:.2}", cost.tokens_per_s()),
            fmt_x(cost.tokens_per_s() / base_tps),
        ]);
    }
    println!(
        "Transformer {}L vocab {} @ A100 / EAGLE host profile, chain({}) tree, \
         exit layer {EXIT}, {GEN} tokens",
        cfg().n_layers,
        cfg().vocab_size,
        shape.depth()
    );
    println!("{table}");
    println!(
        "Expected shape: both modes decode the identical greedy stream (asserted\n\
         bit-exact above), but the separate-draft baseline pays ~2x shallow layer\n\
         runs per accepted token — once drafting, once recomputing in the verify\n\
         sweep — while self-draft commits its shallow KV and never recomputes it."
    );
}
