//! Paged-KV memory plane ablation (ours): copy-on-write prefix sharing
//! and priority-lane preemption, measured end to end.
//!
//! Two scenarios on the live lock-step engine:
//!
//! 1. **Shared system prompt.** N requests carry the same page-aligned
//!    64-token system prompt plus a short unique suffix. With prefix
//!    sharing on, admission leases the matching prompt pages read-only
//!    from the resident prefix index and copies only on the first
//!    divergent write, so peak *physical* page occupancy collapses while
//!    every decoded token stays bit-identical to the private-pages run.
//!    The headline assertion: ≥ 30% peak-occupancy cut.
//!
//! 2. **Page starvation with priority lanes.** Two low-priority hogs
//!    fill a 2-page pool; high-priority short jobs then arrive. With
//!    lanes + preemption the engine parks a hog (pages recycled,
//!    generation state intact), seats the high-priority work, and
//!    resumes the hog bit-identically later — holding the high-priority
//!    worst-case TTFT that a no-preemption baseline stalls on.

use specee_batch::{Admission, BatchedEngine};
use specee_bench::banner;
use specee_core::collect::{collect_training_data, train_bank};
use specee_core::predictor::{PredictorBank, PredictorConfig};
use specee_core::{Lane, ScheduleEngine, SpecEeConfig, TrafficClass};
use specee_metrics::{FrameworkProfile, HardwareProfile, Table};
use specee_model::{CostDims, ModelConfig, TokenId};
use specee_nn::TrainConfig;
use specee_serve::{BatcherConfig, ContinuousBatcher, ServeRequest};
use specee_synth::{DatasetProfile, OracleDraft, SyntheticLm, SyntheticLmBuilder};
use specee_tensor::rng::Pcg;

const N_LAYERS: usize = 8;
const PAGE: usize = 16;

fn cfg() -> ModelConfig {
    ModelConfig {
        n_layers: N_LAYERS,
        vocab_size: 256,
        ..ModelConfig::tiny()
    }
}

fn build_lm(seed: u64) -> SyntheticLm {
    SyntheticLmBuilder::new(cfg(), DatasetProfile::qa())
        .seed(seed)
        .build()
}

fn seq_parts(seed: u64, id: u64) -> (SyntheticLm, OracleDraft) {
    let lm = build_lm(seed);
    let draft = OracleDraft::new(*lm.language(), 0.9, &cfg(), seed ^ id);
    (lm, draft)
}

fn trained(seed: u64) -> (PredictorBank, ScheduleEngine, SpecEeConfig) {
    let mut lm = build_lm(seed);
    let mut draft = OracleDraft::new(*lm.language(), 0.9, &cfg(), seed);
    let prompts: Vec<(Vec<TokenId>, usize)> =
        (0..8u32).map(|i| (vec![1 + i, 2 + i], 8usize)).collect();
    let data = collect_training_data(&mut lm, &mut draft, &prompts, 4);
    let pcfg = PredictorConfig {
        hidden_dim: 16,
        ..PredictorConfig::default()
    };
    let mut bank = PredictorBank::new(N_LAYERS, &pcfg, &mut Pcg::seed(seed));
    train_bank(&mut bank, &data.samples, 1.0, &TrainConfig::default(), seed);
    let config = SpecEeConfig {
        predictor: pcfg,
        ..SpecEeConfig::default()
    };
    let schedule = config.build_schedule(N_LAYERS, Some(&data.exit_frequencies));
    (bank, schedule, config)
}

fn main() {
    banner(
        "ablation_kv",
        "paged-KV memory plane: COW prefix sharing + priority-lane preemption (extension)",
    );
    let seed = 113;
    let parts = trained(seed);

    // ---------------- Scenario 1: shared system prompt ----------------
    let n_seq = 8usize;
    let gen = 8usize;
    // Request 0 is the long form: four full pages of system prompt plus a
    // full page of boilerplate instructions — five registered prefix
    // pages. Requests 1-4 append a unique suffix (divergent tail page,
    // allocated private). Requests 5-7 are truncations of request 0 that
    // end mid-page, so they co-lease the boilerplate page read-only and
    // copy it on their first decode write.
    let system: Vec<TokenId> = (0..4 * PAGE as u32).map(|i| 1 + (i % 200)).collect();
    let long_form: Vec<TokenId> = {
        let mut p = system.clone();
        p.extend((0..PAGE as u32).map(|i| 100 + i));
        p
    };
    let prompts: Vec<Vec<TokenId>> = (0..n_seq as u32)
        .map(|i| match i {
            0 => long_form.clone(),
            1..=4 => {
                let mut p = system.clone();
                p.extend([10 + i, 30 + i, 50 + i, 70 + i]);
                p
            }
            _ => long_form[..4 * PAGE + 4].to_vec(),
        })
        .collect();
    let run_shared = |share: bool| {
        let mut engine: BatchedEngine<SyntheticLm, OracleDraft> = BatchedEngine::new(
            n_seq,
            PAGE,
            N_LAYERS,
            parts.0.clone(),
            parts.1.clone(),
            parts.2.clone(),
        );
        engine.enable_prefix_share(share);
        for (i, prompt) in prompts.iter().enumerate() {
            let (lm, draft) = seq_parts(seed, i as u64);
            match engine.admit_classed(i as u64, TrafficClass::DEFAULT, lm, draft, prompt, gen) {
                Admission::Seated { .. } => {}
                Admission::Done(_) => unreachable!("gen > 0 stays seated"),
            }
        }
        let resident = engine.kv_stats();
        let outputs = engine.drain();
        (outputs, resident, engine.kv_stats())
    };
    let (private_outs, _, private_kv) = run_shared(false);
    let (shared_outs, shared_resident, shared_kv) = run_shared(true);
    for (a, b) in private_outs.iter().zip(&shared_outs) {
        assert_eq!(
            a.tokens, b.tokens,
            "prefix sharing must not change decoded values (request {})",
            a.id
        );
        assert_eq!(a.exit_layers, b.exit_layers, "request {}", a.id);
    }
    let cut = 1.0 - shared_kv.pages_peak as f64 / private_kv.pages_peak as f64;
    let mut table = Table::new(vec![
        "prefix pages",
        "peak pages",
        "pages created",
        "shared at admit",
        "cow copies",
    ]);
    table.row(vec![
        "private".into(),
        private_kv.pages_peak.to_string(),
        private_kv.pages_created.to_string(),
        "0".into(),
        private_kv.cow_copies.to_string(),
    ]);
    table.row(vec![
        "cow-shared".into(),
        shared_kv.pages_peak.to_string(),
        shared_kv.pages_created.to_string(),
        shared_resident.shared_pages.to_string(),
        shared_kv.cow_copies.to_string(),
    ]);
    println!(
        "{n_seq} requests sharing a 64-token system prompt (long form, unique suffixes, \
         mid-page truncations), gen {gen}, page size {PAGE}"
    );
    println!("{table}");
    println!(
        "peak occupancy cut: {:.0}% ({} -> {} pages), outputs bit-identical",
        cut * 100.0,
        private_kv.pages_peak,
        shared_kv.pages_peak
    );
    assert!(
        shared_resident.shared_pages > 0,
        "admissions must co-lease the resident system prompt"
    );
    assert!(
        shared_kv.cow_copies > 0,
        "divergent suffix writes must trigger copy-on-write"
    );
    assert!(
        (shared_kv.pages_peak as f64) <= 0.7 * private_kv.pages_peak as f64,
        "shared-system-prompt workload must cut peak page occupancy by >= 30%: \
         {} vs {} pages",
        shared_kv.pages_peak,
        private_kv.pages_peak
    );

    // ------------- Scenario 2: preemption under starvation -------------
    // Two low-priority hogs (2 pages each by end of decode, held for the
    // whole run) exhaust a 4-page pool; six high-priority short jobs
    // arrive just after.
    let mut requests: Vec<ServeRequest> = (0..2u64)
        .map(|id| ServeRequest {
            id,
            prompt: vec![1 + id as u32, 2 + id as u32, 3 + id as u32],
            gen_len: 28,
            arrival_s: 0.0,
        })
        .collect();
    for i in 0..6u64 {
        requests.push(ServeRequest {
            id: 2 + i,
            prompt: vec![4 + i as u32, 5 + i as u32, 6 + i as u32],
            gen_len: 4,
            arrival_s: 0.002 + i as f64 * 1e-4,
        });
    }
    let lanes: Vec<Lane> = requests
        .iter()
        .map(|r| if r.id < 2 { Lane::new(2) } else { Lane::new(0) })
        .collect();
    let cost = CostDims {
        n_layers: N_LAYERS,
        ..CostDims::llama2_7b()
    };
    let run_starved = |preempt: bool| {
        let batcher = ContinuousBatcher::new(BatcherConfig {
            max_batch: 2,
            hardware: HardwareProfile::a100_80g(),
            framework: FrameworkProfile::vllm(),
            cost,
        });
        let mut engine: BatchedEngine<SyntheticLm, OracleDraft> = BatchedEngine::new(
            2,
            PAGE,
            N_LAYERS,
            parts.0.clone(),
            parts.1.clone(),
            parts.2.clone(),
        );
        engine.set_page_capacity(Some(4));
        engine.set_preemption_enabled(preempt);
        let outcome = batcher.run_live_laned(&requests, &lanes, preempt, &mut engine, |r| {
            seq_parts(seed, r.id)
        });
        (outcome, engine.preemptions(), engine.resumes())
    };
    let (stalled, p0, _) = run_starved(false);
    let (preempting, p1, r1) = run_starved(true);
    assert_eq!(p0, 0, "the baseline never preempts");
    assert!(p1 > 0, "the starved run must preempt a hog");
    assert_eq!(p1, r1, "every parked sequence resumes");
    assert_eq!(stalled.report.completions.len(), requests.len());
    assert_eq!(preempting.report.completions.len(), requests.len());
    for (a, b) in stalled.outputs.iter().zip(&preempting.outputs) {
        assert_eq!(
            a.tokens, b.tokens,
            "preempt/resume must be value-transparent (request {})",
            a.id
        );
    }
    // Worst-case (p99-equivalent at this sample count) TTFT over the
    // high-priority lane.
    let worst_high_ttft = |report: &specee_serve::batcher::ServeReport| {
        report
            .completions
            .iter()
            .filter(|c| c.id >= 2)
            .map(|c| c.first_token_s - c.arrival_s)
            .fold(0.0f64, f64::max)
    };
    let stall_ttft = worst_high_ttft(&stalled.report);
    let preempt_ttft = worst_high_ttft(&preempting.report);
    println!("page starvation (pool cap 4, 2 low-priority hogs + 6 high-priority jobs):");
    println!(
        "  no preemption : high-priority worst TTFT {:>6.1} ms (stalled behind hogs)",
        stall_ttft * 1e3
    );
    println!(
        "  lanes+preempt : high-priority worst TTFT {:>6.1} ms ({} preemptions, {} resumes)",
        preempt_ttft * 1e3,
        p1,
        r1
    );
    println!(
        "  {:.1}x TTFT reduction, identical token streams in both runs",
        stall_ttft / preempt_ttft
    );
    assert!(
        preempt_ttft < 0.5 * stall_ttft,
        "lanes+preemption must hold high-priority TTFT under starvation: \
         {preempt_ttft}s vs stalled {stall_ttft}s"
    );
}
