//! Table 4: accuracy / perplexity / average forward layers for Dense,
//! AdaInfer, SpecEE, AWQ and AWQ+SpecEE on Llama2-7B/13B/70B.
//!
//! Task accuracy is reported as the paper's dense accuracy scaled by
//! measured token agreement with the dense run (EXPERIMENTS.md documents
//! this substitution); perplexity is the model's own decode perplexity.

use specee_bench::*;
use specee_core::SchedulingMode;
use specee_metrics::Table;

fn main() {
    banner("table4_accuracy", "accuracy / PPL / avg layers per engine");
    let seed = 59;
    for (model_name, cfg, n_req) in [
        ("Llama2-7B (32 layers)", model_7b(), request_count().min(2)),
        ("Llama2-13B (40 layers)", model_13b(), 2usize),
        ("Llama2-70B (80 layers)", model_70b(), 1usize),
    ] {
        let mut table = Table::new(vec![
            "dataset",
            "engine",
            "acc (scaled)",
            "PPL",
            "avg layers",
            "agreement",
        ]);
        for ds in specee_synth::DatasetProfile::accuracy_set() {
            let trained = train_pipeline(&cfg, &ds, seed, paper_predictor());
            let wl = workload(&cfg, &ds, n_req, seed);
            let dense = run_engine(
                EngineKind::Dense,
                &cfg,
                &ds,
                seed,
                ModelVariant::Dense,
                &trained,
                &wl,
            );
            let dense_q = run_engine(
                EngineKind::Dense,
                &cfg,
                &ds,
                seed,
                ModelVariant::Quantized,
                &trained,
                &wl,
            );
            let spec = run_engine(
                EngineKind::SpecEeAr(SchedulingMode::TwoLevel),
                &cfg,
                &ds,
                seed,
                ModelVariant::Dense,
                &trained,
                &wl,
            );
            let spec_q = run_engine(
                EngineKind::SpecEeAr(SchedulingMode::TwoLevel),
                &cfg,
                &ds,
                seed,
                ModelVariant::Quantized,
                &trained,
                &wl,
            );
            let ada = run_engine(
                EngineKind::AdaInfer,
                &cfg,
                &ds,
                seed,
                ModelVariant::Dense,
                &trained,
                &wl,
            );
            let fmt_acc = |agr: f64| match reported_accuracy(&ds, agr) {
                Some(a) => format!("{a:.2}"),
                None => "-".to_string(),
            };
            let rows: Vec<(&str, &EngineRun, f64)> = vec![
                ("Dense", &dense, 1.0),
                ("AdaInfer", &ada, agreement_vs(&dense, &ada)),
                ("SpecEE", &spec, agreement_vs(&dense, &spec)),
                ("AWQ", &dense_q, agreement_vs(&dense, &dense_q)),
                ("AWQ+SpecEE", &spec_q, agreement_vs(&dense, &spec_q)),
            ];
            for (engine, run, agr) in rows {
                table.row(vec![
                    ds.name.clone(),
                    engine.to_string(),
                    fmt_acc(agr),
                    format!("{:.3}", run.stats.ppl()),
                    format!("{:.2}", run.stats.avg_layers),
                    format!("{:.1}%", agr * 100.0),
                ]);
            }
        }
        println!("\n{model_name} (paper: SpecEE accuracy within 1% of dense, ~23/32 layers on 7B)");
        println!("{table}");
    }
}
