//! §7.3.2 hardware insight: the lightweight predictor is memory-bound, so
//! it shows similar *latency* on the A100 and the laptop GPU but very
//! different *power* — the A100's idle compute units burn watts waiting on
//! HBM (paper: ~142 W vs ~85 W). The paper's takeaway is a big-little GPU
//! design for inference; this harness prints the numbers behind it.

use specee_bench::*;
use specee_core::predictor::PredictorConfig;
use specee_core::ExitPredictor;
use specee_metrics::{HardwareProfile, Meter, OpKind, Roofline, Table};
use specee_model::CostDims;
use specee_tensor::rng::Pcg;

/// Meters `n` predictor invocations (MLP forward + K-column slice GEMV at
/// 7B dims).
fn predictor_meter(n: u64) -> Meter {
    let predictor = ExitPredictor::new(&PredictorConfig::default(), &mut Pcg::seed(1));
    let dims = CostDims::llama2_7b();
    let slice_bytes = 4.0 * dims.hidden_dim as f64 * dims.weight_bytes_per_elem();
    let mut meter = Meter::new();
    for _ in 0..n {
        meter.record(
            OpKind::Predictor,
            predictor.flops(),
            predictor.bytes() as f64,
            2,
        );
        meter.record(
            OpKind::LmHeadSlice,
            2.0 * slice_bytes / dims.weight_bytes_per_elem(),
            slice_bytes,
            1,
        );
        meter.mark_token();
    }
    meter
}

/// Meters `n` full decoder-layer forwards at 7B dims (the contrast op).
fn layer_meter(n: u64) -> Meter {
    let dims = CostDims::llama2_7b();
    let h = dims.hidden_dim as f64;
    let elems = h * h * 2.0 + h * dims.kv_dim() as f64 * 2.0 + 3.0 * h * dims.ffn_dim as f64;
    let bytes = elems * dims.weight_bytes_per_elem();
    let mut meter = Meter::new();
    for _ in 0..n {
        meter.record(OpKind::Ffn, 2.0 * elems, bytes, 7);
        meter.mark_token();
    }
    meter
}

fn main() {
    banner(
        "sec73_hardware_insight",
        "predictor latency/power across devices (paper: ~142W A100 vs ~85W PC)",
    );
    let devices = [
        HardwareProfile::a100_80g(),
        HardwareProfile::rtx4090(),
        HardwareProfile::rtx4060_laptop(),
    ];
    let n = 10_000u64;

    let mut table = Table::new(vec![
        "device",
        "predictor us/call",
        "predictor power",
        "decoder-layer power",
        "memory-bound?",
    ]);
    for hw in &devices {
        let roofline = Roofline::new(hw.clone());
        let pred = roofline.cost(&predictor_meter(n));
        let layer = roofline.cost(&layer_meter(n));
        let bound = pred
            .by_kind
            .iter()
            .find(|(k, _)| *k == OpKind::Predictor)
            .is_some_and(|(_, c)| c.memory_bound);
        table.row(vec![
            hw.name.clone(),
            format!("{:.2}", pred.latency_s / n as f64 * 1e6),
            format!("{:.0}W", pred.avg_power_w()),
            format!("{:.0}W", layer.avg_power_w()),
            if bound { "yes" } else { "no" }.to_string(),
        ]);
    }
    println!("{n} predictor invocations at Llama2-7B dims, bare device (no framework)");
    println!("{table}");
    println!(
        "Expected shape: per-call latency is the same order on all three devices\n\
         (the op is bandwidth-bound, and bandwidth ratios are much smaller than\n\
         compute ratios), while the A100 burns far more power than the laptop GPU\n\
         on the same op — the paper's case for big-little inference GPUs."
    );
}
