//! Fig. 1(b): share of end-to-end time spent inside decoder layers for
//! 7B/13B/70B under autoregressive and speculative decoding (paper: 70-95%).

use specee_bench::*;
use specee_metrics::{report::fmt_pct, FrameworkProfile, HardwareProfile, Table};

fn main() {
    banner(
        "fig01b_layer_share",
        "decoder-layer share of end-to-end time",
    );
    let ds = specee_synth::DatasetProfile::mt_bench();
    let seed = 7;
    let mut table = Table::new(vec!["model", "decoding", "decoder-layer share"]);
    for (name, cfg) in [
        ("Llama2-7B", model_7b()),
        ("Llama2-13B", model_13b()),
        ("Llama2-70B", model_70b()),
    ] {
        let trained = train_pipeline(&cfg, &ds, seed, paper_predictor());
        let wl = workload(&cfg, &ds, request_count().min(2), seed);
        for (mode, kind, fw) in [
            (
                "autoregressive",
                EngineKind::Dense,
                FrameworkProfile::hugging_face(),
            ),
            (
                "speculative",
                EngineKind::Speculative,
                FrameworkProfile::eagle(),
            ),
        ] {
            let run = run_engine(kind, &cfg, &ds, seed, ModelVariant::Dense, &trained, &wl);
            let cost = price(&run.stats.meter, HardwareProfile::a100_80g(), fw);
            let share = cost.decoder_layer_s() / cost.latency_s;
            table.row(vec![name.to_string(), mode.to_string(), fmt_pct(share)]);
        }
    }
    println!("paper: decoder layers account for 70-95% of end-to-end inference");
    println!("{table}");
}
