//! Fig. 8: predictor design-space exploration — accuracy and execution
//! time vs (a) number of MLP layers at hidden 512 and (b) hidden dimension
//! at 2 layers. The paper's optimum is the 2-layer, 512-hidden MLP.

use specee_bench::*;
use specee_core::collect::train_bank;
use specee_core::predictor::{PredictorBank, PredictorConfig};
use specee_metrics::Table;
use specee_nn::TrainConfig;
use specee_tensor::rng::Pcg;
use std::time::Instant;

fn main() {
    banner("fig08_design_space", "predictor layers/hidden-dim sweep");
    let cfg = model_7b();
    let ds = specee_synth::DatasetProfile::mt_bench();
    let trained_once = train_pipeline(&cfg, &ds, 3, paper_predictor());
    let samples = &trained_once.collection.samples;

    let sweep = |pcfg: PredictorConfig| -> (f64, f64) {
        let mut bank = PredictorBank::new(cfg.n_layers, &pcfg, &mut Pcg::seed(9));
        let report = train_bank(
            &mut bank,
            samples,
            1.0,
            &TrainConfig {
                epochs: 12,
                lr: 3e-3,
                ..TrainConfig::default()
            },
            11,
        );
        // execution time of one predictor forward (measured on this CPU)
        let f = specee_core::ExitFeatures {
            logits: vec![1.0; 4],
            probs: vec![0.25; 4],
            delta: vec![0.0; 4],
        };
        let mut meter = specee_metrics::Meter::new();
        let reps = 2000;
        let t0 = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(bank.layer(10).score(&f, &mut meter));
        }
        let us = t0.elapsed().as_secs_f64() / reps as f64 * 1e6;
        (report.mean_accuracy, us)
    };

    let mut t = Table::new(vec!["MLP layers", "hidden", "accuracy", "cpu time (us)"]);
    for layers in [1usize, 2, 3, 4] {
        let (acc, us) = sweep(PredictorConfig {
            layers,
            hidden_dim: 512,
            ..PredictorConfig::default()
        });
        t.row(vec![
            layers.to_string(),
            "512".into(),
            format!("{:.1}%", acc * 100.0),
            format!("{us:.2}"),
        ]);
    }
    println!("(a) layers sweep at hidden 512 (paper: accuracy flat ~93%, time grows with depth)");
    println!("{t}");

    let mut t = Table::new(vec!["MLP layers", "hidden", "accuracy", "cpu time (us)"]);
    for hidden in [64usize, 128, 256, 512, 1024] {
        let (acc, us) = sweep(PredictorConfig {
            layers: 2,
            hidden_dim: hidden,
            ..PredictorConfig::default()
        });
        t.row(vec![
            "2".into(),
            hidden.to_string(),
            format!("{:.1}%", acc * 100.0),
            format!("{us:.2}"),
        ]);
    }
    println!("(b) hidden sweep at 2 layers (paper optimum: 2 layers x 512 hidden)");
    println!("{t}");
}
