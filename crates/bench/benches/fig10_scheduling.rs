//! Fig. 10(b)(d): fixed random predictor placement hurts (average forward
//! layers rise by ~3), and the dynamic two-level scheduler beats every
//! fixed predictor budget while using only ~10 active layers.

use specee_bench::*;
use specee_core::engine::SpecEeEngine;
use specee_core::scheduler::{OfflineScheduler, ScheduleEngine};
use specee_core::{SchedulingMode, SpecEeConfig};
use specee_metrics::{report::fmt_x, FrameworkProfile, HardwareProfile, Table};
use specee_tensor::rng::Pcg;

fn main() {
    banner("fig10_scheduling", "fixed vs dynamic predictor scheduling");
    let cfg = model_7b();
    let ds = specee_synth::DatasetProfile::mt_bench();
    let seed = 31;
    let trained = train_pipeline(&cfg, &ds, seed, paper_predictor());
    let wl = workload(&cfg, &ds, request_count(), seed);
    let hw = HardwareProfile::a100_80g();
    let fw = FrameworkProfile::hugging_face();

    let dense = run_engine(
        EngineKind::Dense,
        &cfg,
        &ds,
        seed,
        ModelVariant::Dense,
        &trained,
        &wl,
    );
    let base_tps = price(&dense.stats.meter, hw.clone(), fw.clone()).tokens_per_s();

    // (b) fixed predictors at random positions
    let mut table = Table::new(vec![
        "placement",
        "#predictors",
        "avg layers",
        "speedup vs HF",
    ]);
    for &n_pred in &[8usize, 10, 12, 16, 24] {
        // random positions
        let mut rng = Pcg::seed(seed ^ n_pred as u64);
        let mut freq = vec![0.0f64; cfg.n_layers];
        let mut order: Vec<usize> = (0..cfg.n_layers).collect();
        rng.shuffle(&mut order);
        for &l in order.iter().take(n_pred) {
            freq[l] = 1.0;
        }
        let offline = OfflineScheduler::from_frequencies(&freq, n_pred);
        let config = SpecEeConfig {
            predictor: trained.predictor,
            ..SpecEeConfig::default()
        };
        let lm = build_lm(&cfg, &ds, seed, ModelVariant::Dense);
        let draft = build_draft(&lm, &cfg, seed);
        let mut engine = SpecEeEngine::new(
            lm,
            draft,
            trained.bank.clone(),
            ScheduleEngine::offline_only(offline),
            config,
        );
        let outs: Vec<_> = wl
            .iter()
            .map(|r| engine.generate(&r.prompt, r.gen_len))
            .collect();
        let stats = specee_core::RunStats::aggregate(&outs);
        let tps = price(&stats.meter, hw.clone(), fw.clone()).tokens_per_s();
        table.row(vec![
            "random".into(),
            n_pred.to_string(),
            format!("{:.2}", stats.avg_layers),
            fmt_x(tps / base_tps),
        ]);
    }
    // frequency-ranked fixed placement
    for &n_pred in &[8usize, 10, 12, 16] {
        let offline =
            OfflineScheduler::from_frequencies(&trained.collection.exit_frequencies, n_pred);
        let config = SpecEeConfig {
            predictor: trained.predictor,
            ..SpecEeConfig::default()
        };
        let lm = build_lm(&cfg, &ds, seed, ModelVariant::Dense);
        let draft = build_draft(&lm, &cfg, seed);
        let mut engine = SpecEeEngine::new(
            lm,
            draft,
            trained.bank.clone(),
            ScheduleEngine::offline_only(offline),
            config,
        );
        let outs: Vec<_> = wl
            .iter()
            .map(|r| engine.generate(&r.prompt, r.gen_len))
            .collect();
        let stats = specee_core::RunStats::aggregate(&outs);
        let tps = price(&stats.meter, hw.clone(), fw.clone()).tokens_per_s();
        table.row(vec![
            "freq-ranked".into(),
            n_pred.to_string(),
            format!("{:.2}", stats.avg_layers),
            fmt_x(tps / base_tps),
        ]);
    }
    // dynamic two-level
    let dynamic = run_engine(
        EngineKind::SpecEeAr(SchedulingMode::TwoLevel),
        &cfg,
        &ds,
        seed,
        ModelVariant::Dense,
        &trained,
        &wl,
    );
    let tps = price(&dynamic.stats.meter, hw, fw).tokens_per_s();
    table.row(vec![
        "dynamic (ours)".into(),
        format!("{:.1}", dynamic.avg_active_predictors.unwrap_or(0.0)),
        format!("{:.2}", dynamic.stats.avg_layers),
        fmt_x(tps / base_tps),
    ]);
    println!("paper: random fixed placement costs up to ~3.1 extra layers;");
    println!("       dynamic selection wins with only ~10.2 active predictors");
    println!("{table}");
}
