//! Fig. 11: context similarity — the hit ratio of the current token's exit
//! layer within ±2 layers of the last N tokens' exits, and the average
//! union-set size, as N grows (paper: ~80% at N = 5 vs ~32% theoretical).

use specee_bench::*;
use specee_core::SchedulingMode;
use specee_metrics::Table;

fn main() {
    banner(
        "fig11_context_similarity",
        "exit-layer context similarity vs window N",
    );
    let cfg = model_7b();
    let ds = specee_synth::DatasetProfile::mt_bench();
    let seed = 29;
    let trained = train_pipeline(&cfg, &ds, seed, paper_predictor());
    let wl = workload(&cfg, &ds, request_count(), seed);
    let run = run_engine(
        EngineKind::SpecEeAr(SchedulingMode::AllLayers),
        &cfg,
        &ds,
        seed,
        ModelVariant::Dense,
        &trained,
        &wl,
    );
    // exit layers across the whole stream, skipping full-depth misses
    let exits: Vec<i64> = run
        .outputs
        .iter()
        .flat_map(|o| o.exit_layers.iter().map(|&l| l as i64 - 1))
        .collect();

    let mut table = Table::new(vec![
        "N",
        "actual hit ratio",
        "theoretical",
        "avg union layers",
    ]);
    for n in 1..=8usize {
        let (mut hits, mut total, mut union_sum) = (0usize, 0usize, 0usize);
        for i in n..exits.len() {
            let window = &exits[i - n..i];
            total += 1;
            if window.iter().any(|&w| (w - exits[i]).abs() <= 2) {
                hits += 1;
            }
            let mut set = std::collections::HashSet::new();
            for &w in window {
                for d in -2i64..=2 {
                    set.insert(w + d);
                }
            }
            union_sum += set.len();
        }
        let avg_union = union_sum as f64 / total.max(1) as f64;
        let theoretical = avg_union / cfg.n_layers as f64;
        table.row(vec![
            n.to_string(),
            format!("{:.1}%", hits as f64 / total.max(1) as f64 * 100.0),
            format!("{:.1}%", theoretical * 100.0),
            format!("{avg_union:.1}"),
        ]);
    }
    println!("paper at N=5: actual ~80%, theoretical ~31.8%, union ~10.2 layers");
    println!("{table}");
}
