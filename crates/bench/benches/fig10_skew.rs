//! Fig. 10(a)(c): statistical exit probability per layer for Llama2-7B-sim
//! and Vicuna-7B-sim — a skewed distribution where the bottom-50% layers
//! carry under 20% of the exit mass.

use specee_bench::*;
use specee_core::SchedulingMode;

fn main() {
    banner("fig10_skew", "exit-layer distribution skew");
    let ds = specee_synth::DatasetProfile::mt_bench();
    let seed = 23;
    for (name, cfg) in [("Llama2-7B", model_7b()), ("Vicuna-7B", model_vicuna())] {
        let trained = train_pipeline(&cfg, &ds, seed, paper_predictor());
        let wl = workload(&cfg, &ds, request_count(), seed);
        let run = run_engine(
            EngineKind::SpecEeAr(SchedulingMode::AllLayers),
            &cfg,
            &ds,
            seed,
            ModelVariant::Dense,
            &trained,
            &wl,
        );
        let hist = &run.stats.layer_histogram;
        let total: u64 = hist.iter().sum();
        println!("\n{name}: measured exit-layer histogram ({total} tokens)");
        for (layer, &count) in hist.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let pct = count as f64 / total as f64;
            println!(
                "  layer {layer:>3}: {:>5.1}% {}",
                pct * 100.0,
                "#".repeat((pct * 120.0) as usize)
            );
        }
        let mut sorted: Vec<u64> = hist.clone();
        sorted.sort_unstable();
        let bottom: u64 = sorted[..sorted.len() / 2].iter().sum();
        println!(
            "  bottom-50% layers carry {:.1}% of exits (paper: < 20%)",
            bottom as f64 / total as f64 * 100.0
        );
    }
}
