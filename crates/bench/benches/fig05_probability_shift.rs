//! Fig. 5(a): the probability-shift insight. For a token whose true
//! continuation IS among the speculative candidates, the candidate's local
//! probability shifts sharply upward at the saturation layer; when the true
//! token is NOT among the candidates, all candidate probabilities stay low.

use specee_bench::*;
use specee_core::FeatureTracker;
use specee_metrics::Meter;
use specee_model::{prefill, LayeredLm};

fn main() {
    banner(
        "fig05_probability_shift",
        "per-layer candidate probabilities",
    );
    let cfg = model_7b();
    let ds = specee_synth::DatasetProfile::qa();
    let mut lm = build_lm(&cfg, &ds, 11, ModelVariant::Dense);
    let mut meter = Meter::new();
    let prompt = [17u32, 4, 9, 128, 77];
    prefill(&mut lm, &prompt, &mut meter);

    // successful case: candidates contain the target
    let token = 23u32;
    let pos = lm.kv_len();
    let mut h = lm.begin_token(token, &mut meter);
    let script = lm.scripts().last().unwrap().clone();
    let mut good = vec![script.target];
    good.extend_from_slice(&script.distractors);
    // unsuccessful case: candidates exclude the target
    let bad: Vec<u32> = script
        .distractors
        .iter()
        .copied()
        .chain([script.target + 1])
        .collect();

    let mut tr_good = FeatureTracker::new();
    let mut tr_bad = FeatureTracker::new();
    println!("saturation layer (scripted): {:.0}", script.sat);
    println!(
        "{:<6} {:>28} {:>28}",
        "layer", "p(target|in-candidates)", "max p(candidates, miss-case)"
    );
    for layer in 0..cfg.n_layers {
        h = lm.forward_layer(layer, &h, pos, &mut meter);
        let fg = tr_good.extract(&mut lm, &h, &good, &mut meter);
        let fb = tr_bad.extract(&mut lm, &h, &bad, &mut meter);
        let bad_max = fb.probs.iter().cloned().fold(0.0f32, f32::max);
        let bar = "#".repeat((fg.probs[0] * 24.0) as usize);
        println!("{layer:<6} {:>28.3} {:>28.3}   {bar}", fg.probs[0], bad_max);
    }
    println!("\npaper: probability of the correct token rises sharply at one layer");
    println!("       while a missing-token candidate set stays flat and low");
}
