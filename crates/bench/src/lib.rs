//! Shared experiment harness for the per-figure/per-table benchmarks.
//!
//! Every bench target follows the same pipeline:
//!
//! 1. build a calibrated synthetic model + draft oracle for a dataset
//!    profile ([`build_lm`], [`build_draft`]),
//! 2. collect features offline and train the predictor bank
//!    ([`train_pipeline`], §7.4.4),
//! 3. run a workload through an engine configuration ([`run_engine`]),
//! 4. price the recorded op trace for the paper's hardware/framework
//!    combination ([`price`]) and print the paper's rows.

#![deny(missing_docs)]

use specee_core::baselines::{collect_adainfer_data, AdaInferEngine, RaeeEngine};
use specee_core::collect::{collect_training_data, train_bank, CollectionReport};
use specee_core::engine::{DenseEngine, SpecEeEngine, SpeculativeEngine};
use specee_core::output::{agreement, GenOutput, RunStats};
use specee_core::predictor::{PredictorBank, PredictorConfig};
use specee_core::skip_layer::{
    calibrate_calm_threshold, collect_router_data, CalmEngine, DLlmEngine, MoDEngine,
};
use specee_core::{SchedulingMode, SpecEeConfig};
use specee_metrics::{CostReport, FrameworkProfile, HardwareProfile, Meter, Roofline};
use specee_model::{prefill, KvLayout, LayeredLm, ModelConfig, TokenId};
use specee_nn::TrainConfig;
use specee_serve::{PoissonArrivals, RequestTrace, ServeRequest};
use specee_synth::{
    generate_workload, DatasetProfile, OracleDraft, Request, SyntheticLm, SyntheticLmBuilder,
};
use specee_tensor::rng::Pcg;
use specee_tensor::QuantBits;

/// Model variant used by an engine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelVariant {
    /// Dense f16 weights, contiguous KV cache (HuggingFace-style).
    Dense,
    /// Dense weights, paged KV cache (vllm-style).
    Paged,
    /// AWQ int4-quantized weights.
    Quantized,
    /// PowerInfer-style sparse-activation FFN.
    Sparse,
}

/// Builds a synthetic LM for a dataset profile in the requested variant.
pub fn build_lm(
    cfg: &ModelConfig,
    profile: &DatasetProfile,
    seed: u64,
    variant: ModelVariant,
) -> SyntheticLm {
    let mut cfg = cfg.clone();
    if variant == ModelVariant::Quantized {
        if let Some(cost) = cfg.cost {
            cfg.cost = Some(cost.with_weight_bits(4));
        }
    }
    let mut lm = SyntheticLmBuilder::new(cfg, profile.clone())
        .seed(seed)
        .build();
    match variant {
        ModelVariant::Dense => {}
        ModelVariant::Paged => lm
            .inner_mut()
            .set_kv_layout(KvLayout::Paged { page_size: 16 }),
        ModelVariant::Quantized => lm.inner_mut().quantize(QuantBits::Int8),
        ModelVariant::Sparse => {
            let mut rng = Pcg::seed(seed ^ 0x5fa);
            lm.inner_mut().enable_sparse_ffn(0.25, 16, &mut rng);
        }
    }
    lm
}

/// Builds the draft oracle aligned with a model's language.
pub fn build_draft(lm: &SyntheticLm, cfg: &ModelConfig, seed: u64) -> OracleDraft {
    OracleDraft::new(*lm.language(), lm.profile().hit_rate, cfg, seed ^ 0xd4af7)
}

/// Trained predictor bank plus the offline statistics the scheduler needs.
#[derive(Debug, Clone)]
pub struct Trained {
    /// Per-layer trained predictors.
    pub bank: PredictorBank,
    /// Collection report (exit frequencies, theoretical layers).
    pub collection: CollectionReport,
    /// Predictor architecture used.
    pub predictor: PredictorConfig,
}

/// Number of training prompts used by [`train_pipeline`].
pub const TRAIN_PROMPTS: usize = 6;
/// Decode length of each training prompt.
pub const TRAIN_GEN: usize = 16;

/// Runs the offline pipeline of §7.4.4 for one (model, dataset) pair.
pub fn train_pipeline(
    cfg: &ModelConfig,
    profile: &DatasetProfile,
    seed: u64,
    predictor: PredictorConfig,
) -> Trained {
    let mut lm = build_lm(cfg, profile, seed, ModelVariant::Dense);
    let mut draft = build_draft(&lm, cfg, seed);
    let lang = *lm.language();
    let prompts: Vec<(Vec<TokenId>, usize)> = (0..TRAIN_PROMPTS)
        .map(|i| {
            let start = (seed as u32 + i as u32 * 7) % cfg.vocab_size as u32;
            (
                lang.sample_sequence(start, 12, seed ^ (i as u64)),
                TRAIN_GEN,
            )
        })
        .collect();
    let collection = collect_training_data(&mut lm, &mut draft, &prompts, predictor.spec_k);
    let mut bank = PredictorBank::new(cfg.n_layers, &predictor, &mut Pcg::seed(seed ^ 0xb4));
    train_bank(
        &mut bank,
        &collection.samples,
        1.0,
        &TrainConfig {
            epochs: 16,
            lr: 3e-3,
            ..TrainConfig::default()
        },
        seed ^ 0x7e,
    );
    Trained {
        bank,
        collection,
        predictor,
    }
}

/// An engine configuration to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// Dense autoregressive baseline.
    Dense,
    /// SpecEE autoregressive (T1 or T1+T2 depending on the mode).
    SpecEeAr(SchedulingMode),
    /// Tree speculative decoding without early exit (EAGLE).
    Speculative,
    /// Tree speculative decoding with hyper-token early exit (full SpecEE).
    SpecEeSpeculative,
    /// AdaInfer baseline (SVM on full-vocab features).
    AdaInfer,
    /// RAEE baseline (retrieval-scheduled exit layers).
    Raee,
    /// CALM-style confidence-threshold early exit (training-free).
    Calm,
    /// Mixture-of-Depths-style capacity-routed layer skipping.
    MoD,
    /// D-LLM-style per-layer decision gates.
    DLlm,
}

/// Result of running a workload through one engine configuration.
#[derive(Debug, Clone)]
pub struct EngineRun {
    /// Aggregated statistics.
    pub stats: RunStats,
    /// Per-request outputs (token streams for agreement checks).
    pub outputs: Vec<GenOutput>,
    /// Mean active predictors per token (T2 statistic), when applicable.
    pub avg_active_predictors: Option<f64>,
}

/// Runs `workload` through the chosen engine built from the given parts.
///
/// # Panics
///
/// Panics if the workload is empty.
pub fn run_engine(
    kind: EngineKind,
    cfg: &ModelConfig,
    profile: &DatasetProfile,
    seed: u64,
    variant: ModelVariant,
    trained: &Trained,
    workload: &[Request],
) -> EngineRun {
    assert!(!workload.is_empty(), "empty workload");
    let lm = build_lm(cfg, profile, seed, variant);
    let draft = build_draft(&lm, cfg, seed);
    let mut avg_active = None;
    let outputs: Vec<GenOutput> = match kind {
        EngineKind::Dense => {
            let mut engine = DenseEngine::new(lm);
            workload
                .iter()
                .map(|r| engine.generate(&r.prompt, r.gen_len))
                .collect()
        }
        EngineKind::SpecEeAr(mode) => {
            let config = SpecEeConfig {
                predictor: trained.predictor,
                scheduling: mode,
                ..SpecEeConfig::default()
            };
            let schedule =
                config.build_schedule(cfg.n_layers, Some(&trained.collection.exit_frequencies));
            let mut engine = SpecEeEngine::new(lm, draft, trained.bank.clone(), schedule, config);
            let outs: Vec<GenOutput> = workload
                .iter()
                .map(|r| engine.generate(&r.prompt, r.gen_len))
                .collect();
            avg_active = Some(engine.schedule().avg_active());
            outs
        }
        EngineKind::Speculative => {
            let config = SpecEeConfig {
                predictor: trained.predictor,
                ..SpecEeConfig::default()
            };
            let mut engine = SpeculativeEngine::baseline(lm, draft, config);
            workload
                .iter()
                .map(|r| engine.generate(&r.prompt, r.gen_len))
                .collect()
        }
        EngineKind::SpecEeSpeculative => {
            let config = SpecEeConfig {
                predictor: trained.predictor,
                ..SpecEeConfig::default()
            };
            let schedule =
                config.build_schedule(cfg.n_layers, Some(&trained.collection.exit_frequencies));
            let mut engine = SpeculativeEngine::with_early_exit(
                lm,
                draft,
                trained.bank.clone(),
                schedule,
                config,
            );
            workload
                .iter()
                .map(|r| engine.generate(&r.prompt, r.gen_len))
                .collect()
        }
        EngineKind::AdaInfer => {
            let mut collect_lm = build_lm(cfg, profile, seed, ModelVariant::Dense);
            let prompts = train_prompt_set(cfg, &collect_lm, seed);
            let samples = collect_adainfer_data(&mut collect_lm, &prompts);
            let mut engine = AdaInferEngine::train(lm, &samples, seed);
            workload
                .iter()
                .map(|r| engine.generate(&r.prompt, r.gen_len))
                .collect()
        }
        EngineKind::Raee => {
            let mut collect_lm = build_lm(cfg, profile, seed, ModelVariant::Dense);
            let prompts = train_prompt_set(cfg, &collect_lm, seed);
            let observations = collect_raee_observations(&mut collect_lm, &prompts);
            let mut engine = RaeeEngine::build(lm, &observations);
            workload
                .iter()
                .map(|r| engine.generate(&r.prompt, r.gen_len))
                .collect()
        }
        EngineKind::Calm => {
            let mut calib_lm = build_lm(cfg, profile, seed, ModelVariant::Dense);
            let prompts = train_prompt_set(cfg, &calib_lm, seed);
            let threshold = calibrate_calm_threshold(&mut calib_lm, &prompts);
            let mut engine = CalmEngine::new(lm, threshold);
            workload
                .iter()
                .map(|r| engine.generate(&r.prompt, r.gen_len))
                .collect()
        }
        EngineKind::MoD => {
            let mut collect_lm = build_lm(cfg, profile, seed, ModelVariant::Dense);
            let prompts = train_prompt_set(cfg, &collect_lm, seed);
            let samples = collect_router_data(&mut collect_lm, &prompts);
            let mut engine = MoDEngine::train(lm, &samples, 0.85, seed);
            workload
                .iter()
                .map(|r| engine.generate(&r.prompt, r.gen_len))
                .collect()
        }
        EngineKind::DLlm => {
            let mut collect_lm = build_lm(cfg, profile, seed, ModelVariant::Dense);
            let prompts = train_prompt_set(cfg, &collect_lm, seed);
            let samples = collect_router_data(&mut collect_lm, &prompts);
            let mut engine = DLlmEngine::train(lm, &samples, seed);
            workload
                .iter()
                .map(|r| engine.generate(&r.prompt, r.gen_len))
                .collect()
        }
    };
    EngineRun {
        stats: RunStats::aggregate(&outputs),
        outputs,
        avg_active_predictors: avg_active,
    }
}

/// Runs the SpecEE speculative engine (T3) with an explicit configuration
/// — ablations that sweep tree shape/budget/threshold use this instead of
/// [`run_engine`]'s fixed defaults.
pub fn run_speculative_with_config(
    cfg: &ModelConfig,
    profile: &DatasetProfile,
    seed: u64,
    trained: &Trained,
    workload_reqs: &[Request],
    config: &SpecEeConfig,
) -> EngineRun {
    assert!(!workload_reqs.is_empty(), "empty workload");
    let lm = build_lm(cfg, profile, seed, ModelVariant::Dense);
    let draft = build_draft(&lm, cfg, seed);
    let schedule = config.build_schedule(cfg.n_layers, Some(&trained.collection.exit_frequencies));
    let mut engine = SpeculativeEngine::with_early_exit(
        lm,
        draft,
        trained.bank.clone(),
        schedule,
        config.clone(),
    );
    let outputs: Vec<GenOutput> = workload_reqs
        .iter()
        .map(|r| engine.generate(&r.prompt, r.gen_len))
        .collect();
    EngineRun {
        stats: RunStats::aggregate(&outputs),
        outputs,
        avg_active_predictors: None,
    }
}

/// The training prompt set shared by every offline collection pass.
pub fn train_prompt_set(
    cfg: &ModelConfig,
    lm: &SyntheticLm,
    seed: u64,
) -> Vec<(Vec<TokenId>, usize)> {
    let lang = *lm.language();
    (0..TRAIN_PROMPTS)
        .map(|i| {
            let start = (seed as u32 + i as u32 * 7) % cfg.vocab_size as u32;
            (
                lang.sample_sequence(start, 12, seed ^ (i as u64)),
                TRAIN_GEN,
            )
        })
        .collect()
}

/// Collects RAEE observations — (context, earliest settled layer) pairs —
/// from dense runs over the training prompts.
pub fn collect_raee_observations<M: LayeredLm>(
    model: &mut M,
    prompts: &[(Vec<TokenId>, usize)],
) -> Vec<(Vec<TokenId>, usize)> {
    let n_layers = model.config().n_layers;
    let mut meter = Meter::new();
    let mut observations = Vec::new();
    for (prompt, gen_len) in prompts {
        model.reset();
        let mut h = prefill(model, prompt, &mut meter);
        let logits = model.final_logits(&h, &mut meter);
        let mut t = specee_tensor::ops::argmax(&logits).expect("logits") as TokenId;
        let mut ctx = prompt.to_vec();
        for _ in 1..*gen_len {
            ctx.push(t);
            let pos = model.kv_len();
            h = model.begin_token(t, &mut meter);
            let mut per_layer = Vec::with_capacity(n_layers);
            for layer in 0..n_layers {
                h = model.forward_layer(layer, &h, pos, &mut meter);
                let full = model.final_logits(&h, &mut meter);
                per_layer.push(specee_tensor::ops::argmax(&full).expect("logits") as TokenId);
            }
            let final_tok = *per_layer.last().expect("layers");
            let earliest = per_layer
                .iter()
                .position(|&tok| tok == final_tok)
                .map_or(n_layers, |l| l + 1);
            observations.push((ctx.clone(), earliest));
            t = final_tok;
        }
    }
    observations
}

/// Converts an engine run's outputs to serving traces.
pub fn serving_traces(run: &EngineRun, speculative: bool) -> Vec<RequestTrace> {
    run.outputs
        .iter()
        .map(|o| RequestTrace::from_output(o, speculative))
        .collect()
}

/// Stamps Poisson arrivals onto a workload for the serving simulator.
pub fn serve_requests(workload: &[Request], rate_per_s: f64, seed: u64) -> Vec<ServeRequest> {
    let specs: Vec<(Vec<TokenId>, usize)> = workload
        .iter()
        .map(|r| (r.prompt.clone(), r.gen_len))
        .collect();
    PoissonArrivals::new(rate_per_s, seed).requests(&specs)
}

/// Generates the standard workload for a dataset profile.
pub fn workload(cfg: &ModelConfig, profile: &DatasetProfile, n: usize, seed: u64) -> Vec<Request> {
    let lm = build_lm(cfg, profile, seed, ModelVariant::Dense);
    generate_workload(lm.language(), profile, n, seed ^ 0x3777)
}

/// Prices a run for a hardware + framework combination.
pub fn price(meter: &Meter, hw: HardwareProfile, fw: FrameworkProfile) -> CostReport {
    Roofline::with_framework(hw, fw).cost(meter)
}

/// Token-level agreement of a run against a dense reference run.
pub fn agreement_vs(reference: &EngineRun, run: &EngineRun) -> f64 {
    let mut num = 0.0;
    let mut den = 0.0;
    for (a, b) in reference.outputs.iter().zip(run.outputs.iter()) {
        let n = a.tokens.len().min(b.tokens.len());
        num += agreement(&a.tokens, &b.tokens) * n as f64;
        den += n as f64;
    }
    if den == 0.0 {
        1.0
    } else {
        num / den
    }
}

/// Reported task accuracy: the dense model's Table-4 accuracy scaled by
/// token agreement with the dense reference (the substitution for running
/// the real benchmark harness — documented in EXPERIMENTS.md).
pub fn reported_accuracy(profile: &DatasetProfile, agreement: f64) -> Option<f64> {
    profile.base_acc.map(|acc| acc * agreement)
}

/// Workload size knob: honours `SPECEE_BENCH_REQUESTS` (default 3).
pub fn request_count() -> usize {
    std::env::var("SPECEE_BENCH_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
}

/// Prints the standard bench header.
pub fn banner(name: &str, what: &str) {
    println!("\n=== {name} — {what} ===");
}

/// The Llama2-7B simulation configuration.
pub fn model_7b() -> ModelConfig {
    ModelConfig::sim_llama2_7b()
}

/// The Llama2-13B simulation configuration.
pub fn model_13b() -> ModelConfig {
    ModelConfig::sim_llama2_13b()
}

/// The Llama2-70B simulation configuration.
pub fn model_70b() -> ModelConfig {
    ModelConfig::sim_llama2_70b()
}

/// The Vicuna-7B simulation configuration (Fig. 10(c)).
pub fn model_vicuna() -> ModelConfig {
    ModelConfig::sim_vicuna_7b()
}

/// The paper's predictor design point (2-layer MLP, hidden 512, K = 4).
pub fn paper_predictor() -> PredictorConfig {
    PredictorConfig::default()
}

/// Geometric mean of positive values.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    (values.iter().map(|v| v.max(1e-12).ln()).sum::<f64>() / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_runs_end_to_end_small() {
        let cfg = ModelConfig {
            n_layers: 8,
            vocab_size: 512,
            ..ModelConfig::tiny()
        };
        let profile = DatasetProfile::qa().scaled(0.25);
        let predictor = PredictorConfig {
            hidden_dim: 32,
            ..PredictorConfig::default()
        };
        let trained = train_pipeline(&cfg, &profile, 5, predictor);
        assert!(trained.collection.tokens > 0);
        let wl = workload(&cfg, &profile, 2, 5);
        let dense = run_engine(
            EngineKind::Dense,
            &cfg,
            &profile,
            5,
            ModelVariant::Dense,
            &trained,
            &wl,
        );
        let spec = run_engine(
            EngineKind::SpecEeAr(SchedulingMode::TwoLevel),
            &cfg,
            &profile,
            5,
            ModelVariant::Dense,
            &trained,
            &wl,
        );
        assert!(spec.stats.avg_layers <= dense.stats.avg_layers);
        let agr = agreement_vs(&dense, &spec);
        assert!(agr > 0.6, "agreement {agr}");
        let cost = price(
            &dense.stats.meter,
            HardwareProfile::a100_80g(),
            FrameworkProfile::hugging_face(),
        );
        assert!(cost.tokens_per_s() > 0.0);
    }
}
