//! Calibration pins: tests asserting the synthetic substrate reproduces
//! the statistics the paper's techniques depend on.
//!
//! These are the constants DESIGN.md §4.3 commits to. If a refactor drifts
//! the substrate away from the paper's measured phenomena, these tests
//! fail before any benchmark silently degrades.

/// Target ±2-layer / last-5-token context-similarity hit ratio (Fig. 11
/// reports ~80 %).
pub const CONTEXT_SIMILARITY_TARGET: f64 = 0.80;

/// Acceptable band around [`CONTEXT_SIMILARITY_TARGET`].
pub const CONTEXT_SIMILARITY_BAND: f64 = 0.10;

/// Maximum share of exit mass carried by the bottom-50 % least-frequent
/// layers (Fig. 10: "does not exceed 20 %").
pub const SKEW_BOTTOM_HALF_MAX: f64 = 0.20;

/// Mean actual-forward-layer fraction SpecEE should land in on Llama2-7B
/// (Table 4: ~23/32 ≈ 0.72, band covers per-dataset variation).
pub const AVG_LAYER_FRACTION_7B: (f64, f64) = (0.60, 0.82);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::DatasetProfile;
    use crate::schedule::SaturationDriver;

    #[test]
    fn all_profiles_reproduce_context_similarity() {
        for profile in DatasetProfile::all() {
            let mut d = SaturationDriver::new(&profile, 32, 11);
            let mut prev = None;
            let mut history: Vec<i64> = Vec::new();
            let (mut hits, mut total) = (0usize, 0usize);
            for _ in 0..3000 {
                let s = d.sample(prev);
                prev = Some(s);
                let li = s.round() as i64;
                if history.len() >= 5 {
                    total += 1;
                    if history.iter().rev().take(5).any(|&h| (h - li).abs() <= 2) {
                        hits += 1;
                    }
                }
                history.push(li);
            }
            let ratio = hits as f64 / total as f64;
            assert!(
                (ratio - CONTEXT_SIMILARITY_TARGET).abs() <= CONTEXT_SIMILARITY_BAND + 0.05,
                "{}: hit ratio {ratio}",
                profile.name
            );
        }
    }

    #[test]
    fn all_profiles_reproduce_skew() {
        for profile in DatasetProfile::all() {
            let mut d = SaturationDriver::new(&profile, 32, 13);
            let mut hist = vec![0usize; 32];
            for _ in 0..6000 {
                hist[d.sample_base().round() as usize] += 1;
            }
            let mut sorted = hist.clone();
            sorted.sort_unstable();
            let bottom: usize = sorted[..16].iter().sum();
            let total: usize = sorted.iter().sum();
            assert!(
                (bottom as f64) < SKEW_BOTTOM_HALF_MAX * total as f64,
                "{}: bottom half {bottom}/{total}",
                profile.name
            );
        }
    }

    #[test]
    fn mean_saturation_consistent_with_table4() {
        // With the paper's ~0.88 hit rate, actual layers ≈
        // hit·(sat+1) + (1-hit)·32; check the sat component lands so that
        // the blend falls in the Table-4 band.
        for profile in DatasetProfile::accuracy_set() {
            let mut d = SaturationDriver::new(&profile, 32, 17);
            let mut prev = None;
            let n = 3000;
            let mean_sat: f64 = (0..n)
                .map(|_| {
                    let s = d.sample(prev);
                    prev = Some(s);
                    s
                })
                .sum::<f64>()
                / n as f64;
            let actual = profile.hit_rate * (mean_sat + 1.0) + (1.0 - profile.hit_rate) * 32.0;
            let frac = actual / 32.0;
            assert!(
                (AVG_LAYER_FRACTION_7B.0..AVG_LAYER_FRACTION_7B.1).contains(&frac),
                "{}: fraction {frac}",
                profile.name
            );
        }
    }
}
