//! Workload generation: prompts and generation budgets per dataset.

use serde::{Deserialize, Serialize};
use specee_model::TokenId;
use specee_tensor::Pcg;

use crate::language::SyntheticLanguage;
use crate::profile::DatasetProfile;

/// One inference request.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    /// Prompt tokens.
    pub prompt: Vec<TokenId>,
    /// Number of tokens to generate.
    pub gen_len: usize,
}

/// Generates `n` requests for a dataset profile, with ±25 % length
/// variation around the profile's prompt length.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn generate_workload(
    language: &SyntheticLanguage,
    profile: &DatasetProfile,
    n: usize,
    seed: u64,
) -> Vec<Request> {
    assert!(n > 0, "need at least one request");
    let mut rng = Pcg::seed_stream(seed, 0x77a1);
    (0..n)
        .map(|i| {
            let span = (profile.prompt_len as f64 * 0.25) as i64;
            let len = (profile.prompt_len as i64
                + if span > 0 {
                    rng.range(-span, span + 1)
                } else {
                    0
                })
            .max(4) as usize;
            let start = rng.below(language.vocab_size()) as TokenId;
            Request {
                prompt: language.sample_sequence(start, len, seed ^ (i as u64) << 7),
                gen_len: profile.gen_len,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count_and_lengths() {
        let lang = SyntheticLanguage::new(256, 3);
        let profile = DatasetProfile::qa();
        let reqs = generate_workload(&lang, &profile, 10, 1);
        assert_eq!(reqs.len(), 10);
        for r in &reqs {
            assert!(r.prompt.len() >= 4);
            assert_eq!(r.gen_len, profile.gen_len);
            assert!(r.prompt.iter().all(|&t| (t as usize) < 256));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let lang = SyntheticLanguage::new(256, 3);
        let p = DatasetProfile::sum();
        assert_eq!(
            generate_workload(&lang, &p, 5, 9),
            generate_workload(&lang, &p, 5, 9)
        );
    }

    #[test]
    fn lengths_vary_across_requests() {
        let lang = SyntheticLanguage::new(256, 3);
        let p = DatasetProfile::sum();
        let reqs = generate_workload(&lang, &p, 20, 4);
        let lens: Vec<usize> = reqs.iter().map(|r| r.prompt.len()).collect();
        let min = lens.iter().min().unwrap();
        let max = lens.iter().max().unwrap();
        assert!(max > min, "lengths should vary: {lens:?}");
    }
}
