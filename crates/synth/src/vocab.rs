//! Synthetic vocabulary with printable token strings.

use serde::{Deserialize, Serialize};
use specee_model::TokenId;

/// A synthetic vocabulary: token ids with deterministic printable strings.
///
/// The strings only matter for examples and debugging; all engine code
/// works on [`TokenId`]s.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Vocabulary {
    size: usize,
}

/// Common-word head of the vocabulary, mimicking the frequent-token head
/// of a real BPE vocabulary.
const HEAD_WORDS: &[&str] = &[
    "the", "of", "and", "to", "in", "is", "you", "that", "it", "he", "was", "for", "on", "are",
    "as", "with", "his", "they", "I", "at", "be", "this", "have", "from", "or", "one", "had", "by",
    "word", "but", "not", "what", "all", "were", "we", "when", "your", "can", "said", "there",
    "use", "an", "each", "which", "she", "do", "how", "their", "if", "will", "up", "other",
    "about", "out", "many", "then", "them", "these", "so", "some", "her", "would", "make", "like",
    "him", "into", "time", "has", "look", "two", "more", "write", "go", "see", "number", "no",
    "way", "could", "people", "my", "than", "first", "water", "been", "call", "who", "oil", "its",
    "now", "find", "long", "down", "day", "did", "get", "come", "made", "may", "part",
];

impl Vocabulary {
    /// Creates a vocabulary of `size` tokens.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "vocabulary must be non-empty");
        Vocabulary { size }
    }

    /// Number of tokens.
    pub fn len(&self) -> usize {
        self.size
    }

    /// Whether the vocabulary is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Printable string of a token id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn token_str(&self, id: TokenId) -> String {
        assert!((id as usize) < self.size, "token {id} out of range");
        match HEAD_WORDS.get(id as usize) {
            Some(w) => (*w).to_string(),
            None => format!("tok{id}"),
        }
    }

    /// Renders a token sequence as a space-joined string.
    pub fn detokenize(&self, tokens: &[TokenId]) -> String {
        tokens
            .iter()
            .map(|&t| self.token_str(t))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_words_then_generated() {
        let v = Vocabulary::new(256);
        assert_eq!(v.token_str(0), "the");
        assert_eq!(v.token_str(200), "tok200");
        assert_eq!(v.len(), 256);
    }

    #[test]
    fn detokenize_joins() {
        let v = Vocabulary::new(64);
        assert_eq!(v.detokenize(&[0, 1]), "the of");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bounds_checked() {
        Vocabulary::new(8).token_str(8);
    }
}
