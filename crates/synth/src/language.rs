//! A deterministic procedural language: the ground truth the synthetic
//! model converges to.
//!
//! The language is an order-2 Markov source defined *procedurally* from a
//! seed: the successor distribution of any bigram is derived by hashing,
//! so no transition tables are stored and the language is identical across
//! the target model, the draft oracle and the workload generator.

use serde::{Deserialize, Serialize};
use specee_model::TokenId;
use specee_tensor::Pcg;

/// Deterministic order-2 Markov language over a token vocabulary.
///
/// # Examples
///
/// ```
/// use specee_synth::SyntheticLanguage;
///
/// let lang = SyntheticLanguage::new(1000, 7);
/// let next = lang.next_token(&[3, 5]);
/// assert_eq!(next, lang.next_token(&[3, 5])); // deterministic
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyntheticLanguage {
    vocab_size: usize,
    seed: u64,
}

fn mix(mut x: u64) -> u64 {
    // splitmix64 finalizer
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl SyntheticLanguage {
    /// Creates a language over `vocab_size` tokens from a seed.
    ///
    /// # Panics
    ///
    /// Panics if `vocab_size < 8` (the candidate machinery needs room).
    pub fn new(vocab_size: usize, seed: u64) -> Self {
        assert!(vocab_size >= 8, "vocabulary too small");
        SyntheticLanguage { vocab_size, seed }
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.vocab_size
    }

    fn bigram_key(&self, context: &[TokenId]) -> u64 {
        let a = context.len().checked_sub(2).map_or(0, |i| context[i]) as u64;
        let b = context.last().copied().unwrap_or(0) as u64;
        mix(self.seed ^ (a << 32) ^ b ^ 0x9e37_79b9_7f4a_7c15)
    }

    /// The ground-truth next token for a context.
    ///
    /// Zipf-shaped: successors are biased toward the head of the
    /// vocabulary, like frequent tokens in a real corpus.
    pub fn next_token(&self, context: &[TokenId]) -> TokenId {
        let key = self.bigram_key(context);
        let mut rng = Pcg::seed(key);
        rng.zipf(self.vocab_size, 1.3) as TokenId
    }

    /// The `k` most plausible next tokens for a context (the language's own
    /// confusion set), most plausible first. The ground-truth token is
    /// always `candidates(ctx, k)[0]`.
    pub fn candidates(&self, context: &[TokenId], k: usize) -> Vec<TokenId> {
        let truth = self.next_token(context);
        let key = self.bigram_key(context) ^ 0x517c_c1b7_2722_0a95;
        let mut rng = Pcg::seed(key);
        let mut out = vec![truth];
        while out.len() < k.min(self.vocab_size) {
            let c = rng.zipf(self.vocab_size, 1.2) as TokenId;
            if !out.contains(&c) {
                out.push(c);
            }
        }
        out
    }

    /// Plausibility weights for a candidate list: the truth gets the bulk
    /// of the mass, distractors decay geometrically.
    pub fn candidate_weights(&self, k: usize) -> Vec<f32> {
        let mut w: Vec<f32> = (0..k).map(|i| 0.55f32 * 0.45f32.powi(i as i32)).collect();
        let sum: f32 = w.iter().sum();
        for v in &mut w {
            *v /= sum;
        }
        w
    }

    /// Generates a plausible token sequence of the given length by walking
    /// the language from a seed token.
    pub fn sample_sequence(&self, start: TokenId, len: usize, noise_seed: u64) -> Vec<TokenId> {
        let mut rng = Pcg::seed(self.seed ^ mix(noise_seed));
        let mut seq = vec![start % self.vocab_size as TokenId];
        while seq.len() < len {
            // mostly follow the language, sometimes jump (topic change)
            let next = if rng.chance(0.85) {
                self.next_token(&seq)
            } else {
                rng.zipf(self.vocab_size, 1.1) as TokenId
            };
            seq.push(next);
        }
        seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_order2() {
        let lang = SyntheticLanguage::new(512, 3);
        assert_eq!(lang.next_token(&[1, 2, 3]), lang.next_token(&[9, 2, 3]));
        // depends on last two tokens
        let a = lang.next_token(&[1, 2]);
        let b = lang.next_token(&[1, 3]);
        let c = lang.next_token(&[4, 2]);
        assert!(a != b || a != c, "successor should vary with the bigram");
    }

    #[test]
    fn truth_heads_candidate_list() {
        let lang = SyntheticLanguage::new(512, 11);
        let ctx = [5, 9];
        let truth = lang.next_token(&ctx);
        let cands = lang.candidates(&ctx, 4);
        assert_eq!(cands[0], truth);
        assert_eq!(cands.len(), 4);
        let mut dedup = cands.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 4);
    }

    #[test]
    fn weights_sum_to_one_and_decay() {
        let lang = SyntheticLanguage::new(512, 1);
        let w = lang.candidate_weights(4);
        let sum: f32 = w.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert!(w[0] > w[1] && w[1] > w[2]);
    }

    #[test]
    fn zipf_marginals_head_heavy() {
        let lang = SyntheticLanguage::new(1024, 7);
        let mut head = 0usize;
        for a in 0..60u32 {
            for b in 0..60u32 {
                if lang.next_token(&[a, b]) < 64 {
                    head += 1;
                }
            }
        }
        // far more than the uniform 6.25%
        assert!(head > 1000, "head hits {head}");
    }

    #[test]
    fn sequences_have_requested_length() {
        let lang = SyntheticLanguage::new(256, 5);
        let s = lang.sample_sequence(3, 40, 9);
        assert_eq!(s.len(), 40);
        assert!(s.iter().all(|&t| (t as usize) < 256));
    }
}
