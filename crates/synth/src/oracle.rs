//! Oracle draft source with a calibrated hit rate.
//!
//! The EAGLE draft head the paper uses took ~24 GPU-hours to train; the
//! only property of it that SpecEE consumes is *how often the true token
//! appears among the K candidates*. This oracle proposes the language's
//! own confusion set and includes the truth with probability `hit_rate`,
//! while metering each round as a real draft forward at target scale.

use specee_draft::{SpeculativeSource, TokenTree, TreeShape};
use specee_metrics::Meter;
use specee_model::{ModelConfig, OpScale, TokenId};
use specee_tensor::Pcg;

use crate::language::SyntheticLanguage;

fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn context_hash(context: &[TokenId], seed: u64) -> u64 {
    let mut acc = seed ^ 0x243f_6a88_85a3_08d3;
    for &t in context {
        acc = mix(acc ^ u64::from(t));
    }
    acc
}

/// A deterministic draft oracle aligned with a [`SyntheticLanguage`].
///
/// Proposals are a pure function of `(seed, context)`, so repeated calls —
/// e.g. from the per-layer feature extractor and the verification step —
/// agree with each other.
#[derive(Debug, Clone)]
pub struct OracleDraft {
    language: SyntheticLanguage,
    hit_rate: f64,
    seed: u64,
    scale: OpScale,
    modelled_bytes: f64,
}

impl OracleDraft {
    /// Creates an oracle for the given language, hit rate, and target model
    /// (used only for metering scale and modelled memory).
    ///
    /// # Panics
    ///
    /// Panics if `hit_rate` is outside `[0, 1]`.
    pub fn new(
        language: SyntheticLanguage,
        hit_rate: f64,
        target: &ModelConfig,
        seed: u64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&hit_rate), "hit_rate in [0,1]");
        let modelled_bytes = match &target.cost {
            Some(c) => {
                let h = c.hidden_dim as f64;
                (4.0 * h * h + 3.0 * h * c.ffn_dim as f64 + 2.0 * c.vocab_size as f64 * h)
                    * c.weight_bytes_per_elem()
            }
            None => 0.0,
        };
        OracleDraft {
            language,
            hit_rate,
            seed,
            scale: OpScale::of(target),
            modelled_bytes,
        }
    }

    /// The configured hit rate.
    pub fn hit_rate(&self) -> f64 {
        self.hit_rate
    }

    fn propose_inner(&self, context: &[TokenId], k: usize) -> Vec<TokenId> {
        let mut rng = Pcg::seed(context_hash(context, self.seed));
        let cands = self.language.candidates(context, k + 1);
        if rng.chance(self.hit_rate) {
            // Truth lands at rank 0 most of the time, rank 1 otherwise —
            // real drafts are confident but not perfectly ordered.
            let mut out: Vec<TokenId> = cands[..k].to_vec();
            if k >= 2 && rng.chance(0.25) {
                out.swap(0, 1);
            }
            out
        } else {
            cands[1..=k].to_vec()
        }
    }
}

impl SpeculativeSource for OracleDraft {
    fn propose(&mut self, context: &[TokenId], k: usize, meter: &mut Meter) -> Vec<TokenId> {
        assert!(!context.is_empty(), "draft needs context");
        self.scale.record_draft_forward(meter, context.len());
        self.propose_inner(context, k)
    }

    fn propose_tree(
        &mut self,
        context: &[TokenId],
        shape: &TreeShape,
        meter: &mut Meter,
    ) -> TokenTree {
        assert!(!context.is_empty(), "draft needs context");
        let mut tree = TokenTree::new();
        let weights = self.language.candidate_weights(4);
        let mut frontier: Vec<(Option<usize>, Vec<TokenId>)> = vec![(None, context.to_vec())];
        for (level, &b) in shape.branching().iter().enumerate() {
            self.scale
                .record_draft_forward(meter, context.len() + level);
            let mut next = Vec::new();
            for (parent, ctx) in frontier {
                let props = self.propose_inner(&ctx, b);
                for (rank, &t) in props.iter().enumerate() {
                    let prob = weights.get(rank).copied().unwrap_or(0.05);
                    let idx = tree.push(t, parent, prob);
                    let mut child_ctx = ctx.clone();
                    child_ctx.push(t);
                    next.push((Some(idx), child_ctx));
                }
            }
            frontier = next;
        }
        tree
    }

    fn cached_candidates(
        &mut self,
        context: &[TokenId],
        k: usize,
        _meter: &mut Meter,
    ) -> Vec<TokenId> {
        self.propose_inner(context, k)
    }

    fn reset(&mut self) {}

    fn modelled_bytes(&self) -> f64 {
        self.modelled_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oracle(hit: f64) -> OracleDraft {
        let lang = SyntheticLanguage::new(512, 7);
        OracleDraft::new(lang, hit, &ModelConfig::tiny(), 9)
    }

    #[test]
    fn hit_rate_is_respected() {
        let mut o = oracle(0.8);
        let lang = SyntheticLanguage::new(512, 7);
        let mut meter = Meter::new();
        let mut hits = 0;
        let n = 1000;
        for i in 0..n {
            let ctx = vec![(i % 97) as TokenId, (i % 89) as TokenId, i as TokenId % 512];
            let truth = lang.next_token(&ctx);
            if o.propose(&ctx, 4, &mut meter).contains(&truth) {
                hits += 1;
            }
        }
        let rate = hits as f64 / n as f64;
        assert!((0.74..0.87).contains(&rate), "rate {rate}");
    }

    #[test]
    fn proposals_deterministic_per_context() {
        let mut o = oracle(0.5);
        let mut meter = Meter::new();
        let a = o.propose(&[1, 2, 3], 4, &mut meter);
        let b = o.propose(&[1, 2, 3], 4, &mut meter);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_hit_rate_never_contains_truth() {
        let mut o = oracle(0.0);
        let lang = SyntheticLanguage::new(512, 7);
        let mut meter = Meter::new();
        for i in 0..200u32 {
            let ctx = vec![i % 512, (i * 7) % 512];
            let truth = lang.next_token(&ctx);
            assert!(!o.propose(&ctx, 4, &mut meter).contains(&truth));
        }
    }

    #[test]
    fn full_hit_rate_always_contains_truth() {
        let mut o = oracle(1.0);
        let lang = SyntheticLanguage::new(512, 7);
        let mut meter = Meter::new();
        for i in 0..200u32 {
            let ctx = vec![i % 512, (i * 13) % 512];
            let truth = lang.next_token(&ctx);
            assert!(o.propose(&ctx, 4, &mut meter).contains(&truth));
        }
    }

    #[test]
    fn tree_shape_respected_and_paths_plausible() {
        let mut o = oracle(0.9);
        let mut meter = Meter::new();
        let tree = o.propose_tree(&[1, 2, 3], &TreeShape::new(vec![2, 2]), &mut meter);
        assert_eq!(tree.len(), 2 + 4);
        assert_eq!(tree.paths().len(), 4);
    }

    #[test]
    fn draft_cost_recorded() {
        let mut o = oracle(0.9);
        let mut meter = Meter::new();
        o.propose(&[1], 4, &mut meter);
        assert!(meter.kind(specee_metrics::OpKind::Draft).flops > 0.0);
    }
}
