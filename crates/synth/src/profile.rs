//! Dataset workload profiles.
//!
//! The paper's nine evaluation datasets enter the experiments through the
//! behaviour they induce: how deep tokens saturate (exit-layer
//! distribution), how well the draft model guesses (hit rate), prompt and
//! generation lengths, and the dense model's task quality. Each profile
//! encodes those knobs; the calibration constants are chosen so the
//! *relative* per-dataset ordering of Table 4 / Fig. 7 holds.

use serde::{Deserialize, Serialize};

/// Workload profile standing in for one evaluation dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetProfile {
    /// Dataset name as the paper spells it.
    pub name: String,
    /// Mean token-saturation depth as a fraction of layer count.
    pub exit_mu: f64,
    /// Std-dev of the saturation depth (fraction of layer count).
    pub exit_sigma: f64,
    /// Probability a token belongs to the early-saturating cluster.
    pub early_frac: f64,
    /// Mean depth of the early cluster (fraction of layer count).
    pub early_mu: f64,
    /// AR(1) correlation of consecutive tokens' saturation depths — the
    /// source of the paper's context similarity (Fig. 11).
    pub rho: f64,
    /// Probability a token breaks context and resamples its depth fresh
    /// (topic shifts).
    pub jump: f64,
    /// Extra per-token jitter on the depth (fraction of layer count).
    pub jitter: f64,
    /// Probability the draft model's top-K contains the true token.
    pub hit_rate: f64,
    /// Prompt length in tokens.
    pub prompt_len: usize,
    /// Generation length in tokens.
    pub gen_len: usize,
    /// Dense-model task accuracy in percent (Table 4), when applicable.
    pub base_acc: Option<f64>,
    /// Dense-model perplexity (Table 4), when applicable.
    pub base_ppl: Option<f64>,
    /// Seed of the procedural language for this dataset.
    pub language_seed: u64,
}

impl DatasetProfile {
    fn base(name: &str, seed: u64) -> Self {
        DatasetProfile {
            name: name.to_string(),
            exit_mu: 0.64,
            exit_sigma: 0.10,
            early_frac: 0.15,
            early_mu: 0.34,
            rho: 0.70,
            jump: 0.12,
            jitter: 0.09,
            hit_rate: 0.88,
            prompt_len: 48,
            gen_len: 48,
            base_acc: None,
            base_ppl: None,
            language_seed: seed,
        }
    }

    /// MT-Bench: chat turns, moderate depth, PPL-evaluated.
    pub fn mt_bench() -> Self {
        DatasetProfile {
            exit_mu: 0.645,
            hit_rate: 0.89,
            base_ppl: Some(6.49),
            gen_len: 64,
            ..Self::base("MT-Bench", 101)
        }
    }

    /// SUM (abstractive summarization): slightly deeper exits.
    pub fn sum() -> Self {
        DatasetProfile {
            exit_mu: 0.67,
            hit_rate: 0.90,
            base_ppl: Some(10.09),
            prompt_len: 96,
            gen_len: 56,
            ..Self::base("SUM", 102)
        }
    }

    /// QA (Natural Questions): short factual answers.
    pub fn qa() -> Self {
        DatasetProfile {
            exit_mu: 0.63,
            hit_rate: 0.90,
            gen_len: 32,
            ..Self::base("QA", 103)
        }
    }

    /// Alpaca: instruction following, the earliest exits in Table 4.
    pub fn alpaca() -> Self {
        DatasetProfile {
            exit_mu: 0.60,
            early_frac: 0.22,
            hit_rate: 0.91,
            base_ppl: Some(6.86),
            ..Self::base("Alpaca", 104)
        }
    }

    /// GSM8K: math reasoning, harder drafts.
    pub fn gsm8k() -> Self {
        DatasetProfile {
            exit_mu: 0.645,
            hit_rate: 0.85,
            base_acc: Some(20.62),
            gen_len: 64,
            ..Self::base("GSM8K", 105)
        }
    }

    /// HumanEval: code generation, hardest drafts.
    pub fn human_eval() -> Self {
        DatasetProfile {
            exit_mu: 0.66,
            hit_rate: 0.84,
            gen_len: 64,
            ..Self::base("HumanEval", 106)
        }
    }

    /// MMLU: multiple-choice knowledge.
    pub fn mmlu() -> Self {
        DatasetProfile {
            exit_mu: 0.645,
            hit_rate: 0.87,
            base_acc: Some(45.30),
            gen_len: 24,
            prompt_len: 80,
            ..Self::base("MMLU", 107)
        }
    }

    /// CommonsenseQA.
    pub fn csqa() -> Self {
        DatasetProfile {
            exit_mu: 0.635,
            hit_rate: 0.88,
            base_acc: Some(61.43),
            gen_len: 24,
            ..Self::base("CommonsenseQA", 108)
        }
    }

    /// SST-2 sentiment classification.
    pub fn sst2() -> Self {
        DatasetProfile {
            exit_mu: 0.655,
            hit_rate: 0.89,
            base_acc: Some(86.24),
            gen_len: 16,
            prompt_len: 40,
            ..Self::base("SST2", 109)
        }
    }

    /// All nine datasets (§7.1.3).
    pub fn all() -> Vec<Self> {
        vec![
            Self::mt_bench(),
            Self::sum(),
            Self::qa(),
            Self::alpaca(),
            Self::gsm8k(),
            Self::human_eval(),
            Self::mmlu(),
            Self::csqa(),
            Self::sst2(),
        ]
    }

    /// The eight datasets of the speedup evaluation (Fig. 14/15/19).
    pub fn speedup_set() -> Vec<Self> {
        vec![
            Self::mt_bench(),
            Self::sum(),
            Self::qa(),
            Self::alpaca(),
            Self::gsm8k(),
            Self::human_eval(),
            Self::mmlu(),
            Self::csqa(),
        ]
    }

    /// The seven datasets of the accuracy evaluation (Table 4).
    pub fn accuracy_set() -> Vec<Self> {
        vec![
            Self::mmlu(),
            Self::csqa(),
            Self::sst2(),
            Self::gsm8k(),
            Self::sum(),
            Self::mt_bench(),
            Self::alpaca(),
        ]
    }

    /// The six datasets of the PC evaluation (Fig. 16).
    pub fn pc_set() -> Vec<Self> {
        vec![
            Self::alpaca(),
            Self::gsm8k(),
            Self::human_eval(),
            Self::mt_bench(),
            Self::qa(),
            Self::sum(),
        ]
    }

    /// Scales prompt/generation lengths (quick-run knob for tests).
    pub fn scaled(mut self, factor: f64) -> Self {
        self.prompt_len = ((self.prompt_len as f64 * factor) as usize).max(4);
        self.gen_len = ((self.gen_len as f64 * factor) as usize).max(4);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_distinct_profiles() {
        let all = DatasetProfile::all();
        assert_eq!(all.len(), 9);
        let mut names: Vec<&str> = all.iter().map(|p| p.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 9);
        let mut seeds: Vec<u64> = all.iter().map(|p| p.language_seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 9, "languages must differ across datasets");
    }

    #[test]
    fn parameters_in_sane_ranges() {
        for p in DatasetProfile::all() {
            assert!((0.3..0.9).contains(&p.exit_mu), "{}", p.name);
            assert!((0.0..1.0).contains(&p.early_frac), "{}", p.name);
            assert!((0.5..1.0).contains(&p.hit_rate), "{}", p.name);
            assert!((0.0..1.0).contains(&p.rho), "{}", p.name);
            assert!(p.gen_len >= 4 && p.prompt_len >= 4, "{}", p.name);
        }
    }

    #[test]
    fn alpaca_exits_earliest_sum_latest() {
        // Table 4 ordering on Llama2-7B: Alpaca 21.96 < SUM 23.79 layers.
        assert!(DatasetProfile::alpaca().exit_mu < DatasetProfile::sum().exit_mu);
    }

    #[test]
    fn code_and_math_have_hardest_drafts() {
        let he = DatasetProfile::human_eval().hit_rate;
        let gsm = DatasetProfile::gsm8k().hit_rate;
        for p in [
            DatasetProfile::sum(),
            DatasetProfile::alpaca(),
            DatasetProfile::qa(),
        ] {
            assert!(p.hit_rate > he && p.hit_rate > gsm, "{}", p.name);
        }
    }

    #[test]
    fn scaled_shrinks_lengths() {
        let p = DatasetProfile::mt_bench().scaled(0.25);
        assert_eq!(p.prompt_len, 12);
        assert_eq!(p.gen_len, 16);
    }
}
