//! The calibrated synthetic language model.
//!
//! [`SyntheticLm`] wraps a real [`Transformer`] (every matmul, KV update
//! and norm is executed and metered) and *steers* the hidden state after
//! each decoder layer toward the ground-truth token's embedding following
//! the token's scripted saturation schedule. Because the LM head is tied
//! to the embedding table, the steered hidden state reproduces the exact
//! logit trajectory the paper's predictor learns from: candidate
//! probabilities stay low and flat until the saturation layer, then the
//! correct token's probability shifts sharply upward (§4.2, Fig. 5).

use specee_metrics::Meter;
use specee_model::{LayeredLm, ModelConfig, SkipKvPolicy, TokenId, Transformer, TreeKv};
use specee_tensor::{ops, rng::Pcg};

use crate::language::SyntheticLanguage;
use crate::profile::DatasetProfile;
use crate::schedule::{gamma, SaturationDriver};

/// Hidden-state magnitude; sets how confident the final softmax is.
const LOGIT_SCALE: f32 = 12.0;
/// Share of the pre-saturation state carried by the real layer output.
const BASE_WEIGHT: f32 = 0.92;
/// Share of the pre-saturation state spread over plausible distractors.
const DISTRACTOR_WEIGHT: f32 = 0.05;
/// Per-component steering noise.
const NOISE: f32 = 0.015;

/// The per-token script: ground truth, plausible distractors and the
/// saturation depth.
#[derive(Debug, Clone, PartialEq)]
pub struct TokenScript {
    /// The token fed at this position (its embedding echo is suppressed).
    pub input: TokenId,
    /// Ground-truth next token for the position's context.
    pub target: TokenId,
    /// Plausible-but-wrong candidates (the language's confusion set).
    pub distractors: Vec<TokenId>,
    /// Layer at which the target's probability shifts upward.
    pub sat: f64,
}

/// A calibrated synthetic LM implementing [`LayeredLm`].
///
/// # Examples
///
/// ```
/// use specee_synth::{DatasetProfile, SyntheticLmBuilder};
/// use specee_model::{ModelConfig, LayeredLm, prefill};
/// use specee_metrics::Meter;
///
/// let mut lm = SyntheticLmBuilder::new(ModelConfig::tiny(), DatasetProfile::qa())
///     .seed(7)
///     .build();
/// let mut meter = Meter::new();
/// let h = prefill(&mut lm, &[1, 2, 3], &mut meter);
/// let logits = lm.final_logits(&h, &mut meter);
/// assert_eq!(logits.len(), lm.config().vocab_size);
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticLm {
    inner: Transformer,
    language: SyntheticLanguage,
    profile: DatasetProfile,
    driver: SaturationDriver,
    context: Vec<TokenId>,
    scripts: Vec<TokenScript>,
    tree_scripts: Vec<TokenScript>,
    /// Tokens of the tree begun by the last `begin_tree`/`extend_tree`,
    /// kept so incremental extensions can derive node contexts.
    tree_tokens: Vec<TokenId>,
    noise: Pcg,
    seed: u64,
}

impl SyntheticLm {
    /// The procedural language this model speaks.
    pub fn language(&self) -> &SyntheticLanguage {
        &self.language
    }

    /// The dataset profile driving the schedules.
    pub fn profile(&self) -> &DatasetProfile {
        &self.profile
    }

    /// The committed token context.
    pub fn context(&self) -> &[TokenId] {
        &self.context
    }

    /// Scripts of the committed positions (ground truth + saturation).
    pub fn scripts(&self) -> &[TokenScript] {
        &self.scripts
    }

    /// The seed this model was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Mutable access to the wrapped transformer (quantization, sparse FFN,
    /// KV-layout configuration).
    pub fn inner_mut(&mut self) -> &mut Transformer {
        &mut self.inner
    }

    /// Shared access to the wrapped transformer.
    pub fn inner(&self) -> &Transformer {
        &self.inner
    }

    fn make_script(&mut self, ctx_ends_with: &[TokenId], prev_sat: Option<f64>) -> TokenScript {
        let input = *ctx_ends_with.last().expect("non-empty context");
        let target = self.language.next_token(ctx_ends_with);
        let cands = self.language.candidates(ctx_ends_with, 4);
        let sat = self.driver.sample(prev_sat);
        TokenScript {
            input,
            target,
            distractors: cands[1..].to_vec(),
            sat,
        }
    }

    fn blend(&mut self, h: &[f32], script: &TokenScript, layer: usize) -> Vec<f32> {
        let g = gamma(layer, script.sat);
        let embed = &self.inner.weights().embed;
        let mut out = h.to_vec();
        ops::l2_normalize(&mut out);
        // Project out the controlled directions before re-adding their
        // scheduled amounts: the input token (real decoders stop echoing it
        // after the first layers) and the candidate set (otherwise their
        // components accumulate through the residual stream across layers
        // and distractors start winning the pre-saturation argmax, which a
        // real model's unsaturated logits do not do).
        let mut directions: Vec<TokenId> = vec![script.input, script.target];
        directions.extend_from_slice(&script.distractors);
        for d in directions {
            let e_d = embed.row(d as usize);
            let proj = specee_tensor::matrix::dot(&out, e_d);
            for (o, &e) in out.iter_mut().zip(e_d.iter()) {
                *o -= proj * e;
            }
        }
        ops::l2_normalize(&mut out);
        for v in &mut out {
            *v *= (1.0 - g) * BASE_WEIGHT;
        }
        let w = self.language.candidate_weights(script.distractors.len());
        for (i, &d) in script.distractors.iter().enumerate() {
            let coeff = (1.0 - g) * DISTRACTOR_WEIGHT * w[i];
            for (o, &e) in out.iter_mut().zip(embed.row(d as usize).iter()) {
                *o += coeff * e;
            }
        }
        for (o, &e) in out.iter_mut().zip(embed.row(script.target as usize).iter()) {
            *o += g * e;
        }
        for o in &mut out {
            *o = (*o + self.noise.normal() as f32 * NOISE) * LOGIT_SCALE;
        }
        out
    }

    fn node_context(
        &self,
        tokens: &[TokenId],
        parents: &[Option<usize>],
        node: usize,
    ) -> Vec<TokenId> {
        let mut path = Vec::new();
        let mut cur = Some(node);
        while let Some(n) = cur {
            path.push(tokens[n]);
            cur = parents[n];
        }
        path.reverse();
        let mut ctx = self.context.clone();
        ctx.extend_from_slice(&path);
        ctx
    }
}

impl LayeredLm for SyntheticLm {
    fn config(&self) -> &ModelConfig {
        self.inner.config()
    }

    fn set_backend(&mut self, backend: specee_tensor::BackendKind) {
        self.inner.set_backend(backend);
    }

    fn backend(&self) -> specee_tensor::BackendKind {
        LayeredLm::backend(&self.inner)
    }

    fn reset(&mut self) {
        self.inner.reset();
        self.context.clear();
        self.scripts.clear();
        self.tree_scripts.clear();
        self.tree_tokens.clear();
    }

    fn begin_token(&mut self, token: TokenId, meter: &mut Meter) -> Vec<f32> {
        self.context.push(token);
        let prev = self.scripts.last().map(|s| s.sat);
        let ctx = self.context.clone();
        let script = self.make_script(&ctx, prev);
        self.scripts.push(script);
        self.inner.begin_token(token, meter)
    }

    fn forward_layer(
        &mut self,
        layer: usize,
        h: &[f32],
        pos: usize,
        meter: &mut Meter,
    ) -> Vec<f32> {
        let out = self.inner.forward_layer(layer, h, pos, meter);
        let script = self.scripts[pos].clone();
        self.blend(&out, &script, layer)
    }

    fn begin_tree(
        &mut self,
        tokens: &[TokenId],
        parents: &[Option<usize>],
        meter: &mut Meter,
    ) -> Vec<Vec<f32>> {
        self.tree_scripts.clear();
        self.tree_tokens = tokens.to_vec();
        let last_sat = self.scripts.last().map(|s| s.sat);
        let mut node_sats: Vec<f64> = Vec::with_capacity(tokens.len());
        for i in 0..tokens.len() {
            let ctx = self.node_context(tokens, parents, i);
            let prev = match parents[i] {
                Some(p) => Some(node_sats[p]),
                None => last_sat,
            };
            let script = self.make_script(&ctx, prev);
            node_sats.push(script.sat);
            self.tree_scripts.push(script);
        }
        self.inner.begin_tree(tokens, parents, meter)
    }

    fn forward_layer_tree(
        &mut self,
        layer: usize,
        hs: &[Vec<f32>],
        parents: &[Option<usize>],
        meter: &mut Meter,
    ) -> (Vec<Vec<f32>>, TreeKv) {
        let (outs, kv) = self.inner.forward_layer_tree(layer, hs, parents, meter);
        let blended = outs
            .iter()
            .enumerate()
            .map(|(i, o)| {
                let script = self.tree_scripts[i].clone();
                self.blend(o, &script, layer)
            })
            .collect();
        (blended, kv)
    }

    fn extend_tree(
        &mut self,
        tokens: &[TokenId],
        parents: &[Option<usize>],
        first_new: usize,
        meter: &mut Meter,
    ) -> Vec<Vec<f32>> {
        assert_eq!(
            self.tree_scripts.len(),
            first_new,
            "extend_tree continues the most recently begun tree"
        );
        let last_sat = self.scripts.last().map(|s| s.sat);
        for (j, &t) in tokens.iter().enumerate() {
            self.tree_tokens.push(t);
            let i = first_new + j;
            let tree_tokens = self.tree_tokens.clone();
            let ctx = self.node_context(&tree_tokens, parents, i);
            let prev = match parents[i] {
                Some(p) => Some(self.tree_scripts[p].sat),
                None => last_sat,
            };
            let script = self.make_script(&ctx, prev);
            self.tree_scripts.push(script);
        }
        self.inner.extend_tree(tokens, parents, first_new, meter)
    }

    fn forward_layer_tree_partial(
        &mut self,
        layer: usize,
        new_hs: &[Vec<f32>],
        parents: &[Option<usize>],
        first_new: usize,
        scratch: &mut TreeKv,
        meter: &mut Meter,
    ) -> Vec<Vec<f32>> {
        let outs = self
            .inner
            .forward_layer_tree_partial(layer, new_hs, parents, first_new, scratch, meter);
        outs.iter()
            .enumerate()
            .map(|(j, o)| {
                let script = self.tree_scripts[first_new + j].clone();
                self.blend(o, &script, layer)
            })
            .collect()
    }

    fn commit_tree_kv(&mut self, layer: usize, kv: &TreeKv, accepted: &[usize]) {
        self.inner.commit_tree_kv(layer, kv, accepted);
        // Engines commit layer 0 first (documented contract); hook the
        // script bookkeeping there so committed positions stay aligned.
        if layer == 0 {
            for &i in accepted {
                self.scripts.push(self.tree_scripts[i].clone());
            }
        }
    }

    fn accept_tokens(&mut self, tokens: &[TokenId]) {
        self.context.extend_from_slice(tokens);
        self.inner.accept_tokens(tokens);
    }

    fn fill_layer_kv(
        &mut self,
        layer: usize,
        h: &[f32],
        pos: usize,
        policy: SkipKvPolicy,
        meter: &mut Meter,
    ) {
        self.inner.fill_layer_kv(layer, h, pos, policy, meter);
    }

    fn fill_skipped_kv(
        &mut self,
        first_skipped: usize,
        h: &[f32],
        pos: usize,
        policy: SkipKvPolicy,
        meter: &mut Meter,
    ) {
        self.inner
            .fill_skipped_kv(first_skipped, h, pos, policy, meter);
    }

    fn final_logits(&mut self, h: &[f32], meter: &mut Meter) -> Vec<f32> {
        self.inner.final_logits(h, meter)
    }

    fn final_logits_batch(&mut self, hs: &[Vec<f32>], meter: &mut Meter) -> Vec<Vec<f32>> {
        self.inner.final_logits_batch(hs, meter)
    }

    fn slice_logits(&mut self, h: &[f32], tokens: &[TokenId], meter: &mut Meter) -> Vec<f32> {
        self.inner.slice_logits(h, tokens, meter)
    }

    fn grouped_slice_logits(
        &mut self,
        hs: &[&[f32]],
        candidate_sets: &[&[TokenId]],
        meter: &mut Meter,
    ) -> Vec<Vec<f32>> {
        self.inner.grouped_slice_logits(hs, candidate_sets, meter)
    }

    fn kv_len(&self) -> usize {
        self.inner.kv_len()
    }

    fn truncate_kv(&mut self, len: usize) {
        self.inner.truncate_kv(len);
    }

    fn allocated_kv_tokens(&self) -> usize {
        self.inner.allocated_kv_tokens()
    }

    fn modelled_weight_bytes(&self) -> f64 {
        self.inner.modelled_weight_bytes()
    }
}

/// Builder for [`SyntheticLm`].
#[derive(Debug, Clone)]
pub struct SyntheticLmBuilder {
    config: ModelConfig,
    profile: DatasetProfile,
    seed: u64,
}

impl SyntheticLmBuilder {
    /// Starts a builder from a model configuration and dataset profile.
    pub fn new(config: ModelConfig, profile: DatasetProfile) -> Self {
        SyntheticLmBuilder {
            config,
            profile,
            seed: 0,
        }
    }

    /// Sets the experiment seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the model.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn build(self) -> SyntheticLm {
        self.config.validate().expect("valid config");
        let mut root = Pcg::seed(self.seed ^ self.profile.language_seed);
        let mut weights_rng = root.split(1);
        let driver_seed = root.next_u64();
        let noise = root.split(2);
        let inner = Transformer::random(self.config.clone(), &mut weights_rng);
        let language = SyntheticLanguage::new(self.config.vocab_size, self.profile.language_seed);
        let driver = SaturationDriver::new(&self.profile, self.config.n_layers, driver_seed);
        SyntheticLm {
            inner,
            language,
            profile: self.profile,
            driver,
            context: Vec::new(),
            scripts: Vec::new(),
            tree_scripts: Vec::new(),
            tree_tokens: Vec::new(),
            noise,
            seed: self.seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specee_model::prefill;
    use specee_tensor::ops::{argmax, softmax};

    fn lm() -> SyntheticLm {
        SyntheticLmBuilder::new(ModelConfig::tiny(), DatasetProfile::qa())
            .seed(3)
            .build()
    }

    #[test]
    fn dense_run_outputs_ground_truth() {
        let mut m = lm();
        let mut meter = Meter::new();
        let prompt = [1u32, 2, 3, 4];
        let mut correct = 0;
        let mut h = prefill(&mut m, &prompt, &mut meter);
        let mut ctx = prompt.to_vec();
        for _ in 0..20 {
            let logits = m.final_logits(&h, &mut meter);
            let out = argmax(&logits).unwrap() as TokenId;
            let truth = m.language().next_token(&ctx);
            if out == truth {
                correct += 1;
            }
            ctx.push(out);
            let pos = m.kv_len();
            h = m.begin_token(out, &mut meter);
            for layer in 0..m.config().n_layers {
                h = m.forward_layer(layer, &h, pos, &mut meter);
            }
        }
        assert!(correct >= 18, "dense accuracy {correct}/20");
    }

    #[test]
    fn probability_shift_visible_in_candidate_slice() {
        // tiny config has only 4 layers; use a deeper sim config so the
        // shift has room.
        let cfg = ModelConfig {
            n_layers: 16,
            ..ModelConfig::tiny()
        };
        let mut m = SyntheticLmBuilder::new(cfg, DatasetProfile::qa())
            .seed(5)
            .build();
        let mut meter = Meter::new();
        prefill(&mut m, &[3, 1, 4], &mut meter);
        let pos = m.kv_len();
        let token = 2u32;
        let mut h = m.begin_token(token, &mut meter);
        let script = m.scripts().last().unwrap().clone();
        let mut cands = vec![script.target];
        cands.extend_from_slice(&script.distractors);
        let mut target_probs = Vec::new();
        for layer in 0..16 {
            h = m.forward_layer(layer, &h, pos, &mut meter);
            let logits = m.slice_logits(&h, &cands, &mut meter);
            target_probs.push(softmax(&logits)[0]);
        }
        let sat = script.sat.round() as usize;
        let before = target_probs[..sat.saturating_sub(2)]
            .last()
            .copied()
            .unwrap_or(0.3);
        let after = target_probs[(sat + 1).min(15)];
        assert!(
            after > 0.8,
            "after {after} (sat {sat}, probs {target_probs:?})"
        );
        assert!(before < 0.7, "before {before} (sat {sat})");
    }

    #[test]
    fn early_exit_before_saturation_is_wrong() {
        let cfg = ModelConfig {
            n_layers: 16,
            ..ModelConfig::tiny()
        };
        let mut m = SyntheticLmBuilder::new(cfg, DatasetProfile::qa())
            .seed(9)
            .build();
        let mut meter = Meter::new();
        prefill(&mut m, &[5, 6, 7], &mut meter);
        let pos = m.kv_len();
        let mut h = m.begin_token(1, &mut meter);
        let script = m.scripts().last().unwrap().clone();
        let early_stop = (script.sat as usize).saturating_sub(3).max(1);
        for layer in 0..early_stop {
            h = m.forward_layer(layer, &h, pos, &mut meter);
        }
        let logits = m.final_logits(&h, &mut meter);
        let early_tok = argmax(&logits).unwrap() as TokenId;
        // pre-saturation argmax should generally not be the target
        // (the state is dominated by base + distractors)
        assert_ne!(early_tok, script.target, "sat {}", script.sat);
    }

    #[test]
    fn scripts_track_positions() {
        let mut m = lm();
        let mut meter = Meter::new();
        prefill(&mut m, &[1, 2, 3], &mut meter);
        assert_eq!(m.scripts().len(), 3);
        assert_eq!(m.context(), &[1, 2, 3]);
    }

    #[test]
    fn tree_scripts_chain_saturation() {
        let mut m = lm();
        let mut meter = Meter::new();
        prefill(&mut m, &[1, 2], &mut meter);
        let tokens = [5u32, 6, 7];
        let parents = [None, Some(0), Some(1)];
        let _ = m.begin_tree(&tokens, &parents, &mut meter);
        assert_eq!(m.tree_scripts.len(), 3);
        // targets follow the language along the path
        let ctx_child = vec![1, 2, 5, 6];
        assert_eq!(
            m.tree_scripts[1].target,
            m.language().next_token(&ctx_child)
        );
    }

    #[test]
    fn extend_tree_scripts_match_begin_tree() {
        // Growing the tree incrementally must produce exactly the scripts
        // the one-shot begin_tree would: the saturation driver is sampled
        // in the same node order either way.
        let mut meter = Meter::new();
        let tokens = [5u32, 6, 7, 3];
        let parents = [None, Some(0), Some(0), Some(1)];

        let mut full = lm();
        prefill(&mut full, &[1, 2], &mut meter);
        let _ = full.begin_tree(&tokens, &parents, &mut meter);

        let mut inc = lm();
        prefill(&mut inc, &[1, 2], &mut meter);
        let _ = inc.begin_tree(&tokens[..1], &parents[..1], &mut meter);
        let _ = inc.extend_tree(&tokens[1..3], &parents[..3], 1, &mut meter);
        let _ = inc.extend_tree(&tokens[3..], &parents, 3, &mut meter);

        assert_eq!(full.tree_scripts, inc.tree_scripts);
    }

    #[test]
    fn commit_tree_pushes_scripts_once() {
        let mut m = lm();
        let mut meter = Meter::new();
        prefill(&mut m, &[1, 2], &mut meter);
        let tokens = [5u32, 6];
        let parents = [None, Some(0)];
        let mut hs = m.begin_tree(&tokens, &parents, &mut meter);
        let mut kvs = Vec::new();
        for layer in 0..m.config().n_layers {
            let (out, kv) = m.forward_layer_tree(layer, &hs, &parents, &mut meter);
            hs = out;
            kvs.push(kv);
        }
        for (layer, kv) in kvs.iter().enumerate() {
            m.commit_tree_kv(layer, kv, &[0, 1]);
        }
        m.accept_tokens(&[5, 6]);
        assert_eq!(m.scripts().len(), 4);
        assert_eq!(m.context(), &[1, 2, 5, 6]);
        assert_eq!(m.kv_len(), 4);
    }

    #[test]
    fn reset_clears_everything() {
        let mut m = lm();
        let mut meter = Meter::new();
        prefill(&mut m, &[1, 2, 3], &mut meter);
        m.reset();
        assert_eq!(m.kv_len(), 0);
        assert!(m.context().is_empty());
        assert!(m.scripts().is_empty());
    }
}
