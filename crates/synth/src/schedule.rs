//! Saturation-depth scheduling: *when* each token's answer stabilizes.
//!
//! Every generated token is assigned a saturation layer `L*`: the depth at
//! which the correct token's probability shifts sharply upward (§4.2). The
//! driver reproduces the two statistics the paper's system techniques rely
//! on: a skewed marginal distribution over layers (Fig. 10(a,c)) and AR(1)
//! context correlation between consecutive tokens (Fig. 11).

use serde::{Deserialize, Serialize};
use specee_tensor::Pcg;

use crate::profile::DatasetProfile;

/// Per-token saturation-depth sampler.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SaturationDriver {
    n_layers: usize,
    exit_mu: f64,
    exit_sigma: f64,
    early_frac: f64,
    early_mu: f64,
    rho: f64,
    jump: f64,
    jitter: f64,
    rng: Pcg,
}

impl SaturationDriver {
    /// Creates a driver for a model of `n_layers` from a dataset profile.
    ///
    /// # Panics
    ///
    /// Panics if `n_layers < 4`.
    pub fn new(profile: &DatasetProfile, n_layers: usize, seed: u64) -> Self {
        assert!(n_layers >= 4, "need at least 4 layers");
        SaturationDriver {
            n_layers,
            exit_mu: profile.exit_mu,
            exit_sigma: profile.exit_sigma,
            early_frac: profile.early_frac,
            early_mu: profile.early_mu,
            rho: profile.rho,
            jump: profile.jump,
            jitter: profile.jitter,
            rng: Pcg::seed_stream(seed, 0x5a7u64),
        }
    }

    /// Number of layers the depths are expressed against.
    pub fn n_layers(&self) -> usize {
        self.n_layers
    }

    fn clamp(&self, sat: f64) -> f64 {
        sat.clamp(2.0, (self.n_layers - 2) as f64)
    }

    /// Draws a fresh (context-free) saturation depth from the skewed
    /// marginal distribution.
    pub fn sample_base(&mut self) -> f64 {
        let l = self.n_layers as f64;
        let (mu, sigma) = if self.rng.chance(self.early_frac) {
            (self.early_mu * l, self.exit_sigma * l * 0.7)
        } else {
            (self.exit_mu * l, self.exit_sigma * l)
        };
        let draw = self.rng.normal_with(mu, sigma);
        self.clamp(draw)
    }

    /// Draws the next token's saturation depth given the previous token's
    /// (AR(1) toward a fresh base draw, plus jitter).
    pub fn sample(&mut self, prev: Option<f64>) -> f64 {
        let base = self.sample_base();
        if self.rng.chance(self.jump) {
            return base;
        }
        match prev {
            None => base,
            Some(p) => {
                let mixed = self.rho * p + (1.0 - self.rho) * base;
                let jittered = mixed + self.rng.normal() * self.jitter * self.n_layers as f64;
                let out = jittered;
                self.clamp(out)
            }
        }
    }
}

/// The convergence weight toward the target embedding at layer `layer`
/// given saturation depth `sat`: a sharp logistic (the probability shift).
pub fn gamma(layer: usize, sat: f64) -> f32 {
    const G_MAX: f64 = 0.92;
    const TAU: f64 = 0.6;
    (G_MAX / (1.0 + (-(layer as f64 - sat) / TAU).exp())) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::DatasetProfile;

    fn driver() -> SaturationDriver {
        SaturationDriver::new(&DatasetProfile::mt_bench(), 32, 7)
    }

    #[test]
    fn depths_within_bounds() {
        let mut d = driver();
        let mut prev = None;
        for _ in 0..2000 {
            let s = d.sample(prev);
            assert!((2.0..=30.0).contains(&s), "sat {s}");
            prev = Some(s);
        }
    }

    #[test]
    fn marginal_mean_near_profile_mu() {
        let mut d = driver();
        let n = 4000;
        let mean: f64 = (0..n).map(|_| d.sample_base()).sum::<f64>() / n as f64;
        let expect = 0.85 * 0.645 * 32.0 + 0.15 * 0.34 * 32.0;
        assert!((mean - expect).abs() < 1.0, "mean {mean} expect {expect}");
    }

    #[test]
    fn distribution_is_skewed_not_uniform() {
        // Paper Fig. 10: the bottom-50% layers by frequency carry < 20% of
        // the exit mass.
        let mut d = driver();
        let mut hist = vec![0usize; 32];
        for _ in 0..8000 {
            hist[d.sample_base().round() as usize] += 1;
        }
        let mut sorted = hist.clone();
        sorted.sort_unstable();
        let bottom: usize = sorted[..16].iter().sum();
        let total: usize = sorted.iter().sum();
        assert!(
            (bottom as f64) < 0.2 * total as f64,
            "bottom half carries {bottom}/{total}"
        );
    }

    #[test]
    fn context_similarity_hits_eighty_percent() {
        // Paper Fig. 11: current token's exit layer is within ±2 of one of
        // the last 5 tokens' exit layers ~80% of the time.
        let mut d = driver();
        let mut history: Vec<i64> = Vec::new();
        let mut prev = None;
        let (mut hits, mut total) = (0usize, 0usize);
        for _ in 0..4000 {
            let s = d.sample(prev);
            prev = Some(s);
            let li = s.round() as i64;
            if history.len() >= 5 {
                total += 1;
                let near = history.iter().rev().take(5).any(|&h| (h - li).abs() <= 2);
                if near {
                    hits += 1;
                }
            }
            history.push(li);
        }
        let ratio = hits as f64 / total as f64;
        assert!((0.70..0.95).contains(&ratio), "hit ratio {ratio}");
    }

    #[test]
    fn gamma_is_a_sharp_shift() {
        let sat = 20.0;
        assert!(gamma(14, sat) < 0.01);
        assert!(gamma(20, sat) > 0.4);
        assert!(gamma(24, sat) > 0.9);
        // monotone
        for l in 1..31 {
            assert!(gamma(l + 1, sat) >= gamma(l, sat));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = driver();
        let mut b = driver();
        for _ in 0..50 {
            assert_eq!(a.sample(Some(16.0)), b.sample(Some(16.0)));
        }
    }
}
