//! Calibrated synthetic substrate: languages, dataset profiles and the
//! steered language model.
//!
//! The reproduction cannot run Llama2-7B; what SpecEE's techniques consume
//! is the *trajectory of per-layer logits* and the statistics of when
//! tokens saturate. This crate builds a substrate with exactly those
//! properties, documented and pinned by tests:
//!
//! * [`SyntheticLanguage`] — a deterministic procedural order-2 Markov
//!   language shared by the model, the draft oracle and the workload
//!   generator.
//! * [`DatasetProfile`] — nine workload profiles standing in for the
//!   paper's evaluation datasets (§7.1.3).
//! * [`SaturationDriver`] — per-token saturation depths with the skewed
//!   marginal (Fig. 10) and AR(1) context similarity (Fig. 11).
//! * [`SyntheticLm`] — a real transformer whose hidden states are steered
//!   toward ground truth on the scripted schedule (the probability shift
//!   of §4.2), implementing `LayeredLm`.
//! * [`OracleDraft`] — a draft source with calibrated top-K hit rate.

#![deny(missing_docs)]

pub mod calib;
pub mod language;
pub mod lm;
pub mod oracle;
pub mod profile;
pub mod schedule;
pub mod vocab;
pub mod workload;

pub use language::SyntheticLanguage;
pub use lm::{SyntheticLm, SyntheticLmBuilder, TokenScript};
pub use oracle::OracleDraft;
pub use profile::DatasetProfile;
pub use schedule::{gamma, SaturationDriver};
pub use vocab::Vocabulary;
pub use workload::{generate_workload, Request};
