//! Op-level metering and hardware cost modelling for the SpecEE simulator.
//!
//! The paper evaluates on A100-80G, RTX 4090 and RTX 4060 Laptop GPUs. None
//! of that hardware is available to the reproduction, so every engine in
//! this workspace records the *operations it actually executed* — matmuls
//! with their true shapes, KV-cache reads, predictor forwards — into a
//! [`Meter`], and a [`Roofline`] model prices the trace for a target
//! [`HardwareProfile`]. Because decode-phase LLM inference is memory-bound,
//! the roofline (max of compute time and memory time per op, plus a kernel
//! launch overhead) reproduces the relative speedups the paper reports,
//! while CPU wall-clock is reported alongside for honesty.
//!
//! # Examples
//!
//! ```
//! use specee_metrics::{HardwareProfile, Meter, OpKind, Roofline};
//!
//! let mut meter = Meter::new();
//! meter.record(OpKind::Ffn, 1.0e9, 5.0e8, 1);
//! let roofline = Roofline::new(HardwareProfile::a100_80g());
//! let report = roofline.cost(&meter);
//! assert!(report.latency_s > 0.0);
//! ```

#![deny(missing_docs)]

pub mod hardware;
pub mod meter;
pub mod report;
pub mod roofline;

pub use hardware::{FrameworkProfile, HardwareProfile};
pub use meter::{KindTotals, Meter, OpKind};
pub use report::Table;
pub use roofline::{CostReport, KindCost, Roofline};
