//! Roofline latency and energy model over a recorded op trace.

use serde::{Deserialize, Serialize};

use crate::hardware::{FrameworkProfile, HardwareProfile};
use crate::meter::{Meter, OpKind};

/// Latency/energy attributed to a single op kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct KindCost {
    /// Seconds spent in this kind.
    pub latency_s: f64,
    /// Joules consumed by this kind.
    pub energy_j: f64,
    /// Whether the kind was memory-bound on the target.
    pub memory_bound: bool,
}

/// Priced trace: end-to-end latency, energy and per-kind breakdown.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CostReport {
    /// Total device latency, seconds.
    pub latency_s: f64,
    /// Host/framework overhead included in `latency_s`, seconds.
    pub framework_s: f64,
    /// Total energy, joules.
    pub energy_j: f64,
    /// Tokens generated (copied from the meter).
    pub tokens: u64,
    /// Per-kind cost breakdown in [`OpKind::ALL`] order, empty kinds omitted.
    pub by_kind: Vec<(OpKind, KindCost)>,
}

impl CostReport {
    /// Decode throughput in tokens per second.
    ///
    /// Returns zero when no time elapsed.
    pub fn tokens_per_s(&self) -> f64 {
        if self.latency_s > 0.0 {
            self.tokens as f64 / self.latency_s
        } else {
            0.0
        }
    }

    /// Average power in watts (energy over latency).
    pub fn avg_power_w(&self) -> f64 {
        if self.latency_s > 0.0 {
            self.energy_j / self.latency_s
        } else {
            0.0
        }
    }

    /// Seconds attributed to kinds classified as decoder-layer work
    /// (Fig. 1(b)'s numerator).
    pub fn decoder_layer_s(&self) -> f64 {
        self.by_kind
            .iter()
            .filter(|(k, _)| k.is_decoder_layer())
            .map(|(_, c)| c.latency_s)
            .sum()
    }

    /// Seconds attributed to SpecEE overhead kinds (§7.4.4).
    pub fn specee_overhead_s(&self) -> f64 {
        self.by_kind
            .iter()
            .filter(|(k, _)| k.is_specee_overhead())
            .map(|(_, c)| c.latency_s)
            .sum()
    }

    /// Latency share of one kind.
    pub fn share(&self, kind: OpKind) -> f64 {
        if self.latency_s == 0.0 {
            return 0.0;
        }
        self.by_kind
            .iter()
            .find(|(k, _)| *k == kind)
            .map_or(0.0, |(_, c)| c.latency_s / self.latency_s)
    }
}

/// Roofline pricing of op traces for one hardware profile.
///
/// Per kind: `time = max(flops / peak_flops, bytes / mem_bw) +
/// kernels × launch_overhead`. Power scales between idle and TDP with the
/// op's compute intensity, which reproduces the paper's observation
/// (§7.3.1) that the memory-bound predictor lowers average power.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Roofline {
    hw: HardwareProfile,
    framework: Option<FrameworkProfile>,
}

impl Roofline {
    /// A roofline for bare device execution.
    pub fn new(hw: HardwareProfile) -> Self {
        Roofline {
            hw,
            framework: None,
        }
    }

    /// A roofline including a framework's host overhead.
    pub fn with_framework(hw: HardwareProfile, framework: FrameworkProfile) -> Self {
        Roofline {
            hw,
            framework: Some(framework),
        }
    }

    /// The hardware profile being modelled.
    pub fn hardware(&self) -> &HardwareProfile {
        &self.hw
    }

    /// Prices a single op.
    pub fn op_latency(&self, flops: f64, bytes: f64, kernels: u64) -> f64 {
        let compute = flops / self.hw.peak_flops;
        let memory = bytes / self.hw.mem_bw;
        let launch_mult = self.framework.as_ref().map_or(1.0, |f| f.launch_multiplier);
        compute.max(memory) + kernels as f64 * self.hw.launch_overhead_s * launch_mult
    }

    /// Prices a full trace.
    pub fn cost(&self, meter: &Meter) -> CostReport {
        let mut report = CostReport {
            tokens: meter.tokens(),
            ..CostReport::default()
        };
        for (kind, totals) in meter.iter() {
            let compute = totals.flops / self.hw.peak_flops;
            let memory = totals.bytes / self.hw.mem_bw;
            let latency = self.op_latency(totals.flops, totals.bytes, totals.kernels);
            // Compute intensity in [0, 1]: 1 when compute-bound (full power),
            // lower when memory stalls leave execution units idle.
            let intensity = if latency > 0.0 {
                (compute / compute.max(memory).max(f64::MIN_POSITIVE)).clamp(0.05, 1.0)
            } else {
                0.0
            };
            let power = self.hw.idle_w + (self.hw.tdp_w - self.hw.idle_w) * intensity;
            let cost = KindCost {
                latency_s: latency,
                energy_j: latency * power,
                memory_bound: memory > compute,
            };
            report.latency_s += cost.latency_s;
            report.energy_j += cost.energy_j;
            report.by_kind.push((kind, cost));
        }
        if let Some(fw) = &self.framework {
            let host = fw.per_step_overhead_s * meter.host_steps() as f64;
            report.framework_s = host;
            report.latency_s += host;
            report.energy_j += host * self.hw.idle_w;
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meter_with(kind: OpKind, flops: f64, bytes: f64) -> Meter {
        let mut m = Meter::new();
        m.record(kind, flops, bytes, 1);
        m.mark_token();
        m
    }

    #[test]
    fn memory_bound_op_priced_by_bandwidth() {
        let hw = HardwareProfile::a100_80g();
        let r = Roofline::new(hw.clone());
        // Tiny compute, huge bytes: bandwidth term dominates.
        let m = meter_with(OpKind::Ffn, 1.0, 1.4e10);
        let report = r.cost(&m);
        let expected = 1.4e10 / hw.mem_bw + hw.launch_overhead_s;
        assert!((report.latency_s - expected).abs() / expected < 1e-9);
        assert!(report.by_kind[0].1.memory_bound);
    }

    #[test]
    fn compute_bound_op_priced_by_flops() {
        let hw = HardwareProfile::a100_80g();
        let r = Roofline::new(hw.clone());
        let m = meter_with(OpKind::Attention, 1.0e15, 8.0);
        let report = r.cost(&m);
        let expected = 1.0e15 / hw.peak_flops + hw.launch_overhead_s;
        assert!((report.latency_s - expected).abs() / expected < 1e-9);
        assert!(!report.by_kind[0].1.memory_bound);
    }

    #[test]
    fn memory_bound_burns_less_power() {
        let r = Roofline::new(HardwareProfile::a100_80g());
        let mem = r.cost(&meter_with(OpKind::Predictor, 1.0, 1.0e9));
        let cmp = r.cost(&meter_with(OpKind::Ffn, 1.0e13, 8.0));
        assert!(mem.avg_power_w() < cmp.avg_power_w());
    }

    #[test]
    fn framework_overhead_scales_with_host_steps() {
        let hw = HardwareProfile::a100_80g();
        let fw = FrameworkProfile::hugging_face();
        let r = Roofline::with_framework(hw, fw.clone());
        let mut m = Meter::new();
        for _ in 0..10 {
            m.mark_token();
        }
        for _ in 0..3 {
            m.mark_host_step();
        }
        let report = r.cost(&m);
        assert!((report.framework_s - 3.0 * fw.per_step_overhead_s).abs() < 1e-12);
    }

    #[test]
    fn tokens_per_s_inverse_of_latency() {
        let r = Roofline::new(HardwareProfile::rtx4090());
        let report = r.cost(&meter_with(OpKind::Ffn, 1e9, 1e9));
        assert!(report.tokens_per_s() > 0.0);
        let per_token = 1.0 / report.tokens_per_s();
        assert!((per_token - report.latency_s).abs() < 1e-12);
    }

    #[test]
    fn decoder_share_counts_layer_kinds_only() {
        let r = Roofline::new(HardwareProfile::a100_80g());
        let mut m = Meter::new();
        m.record(OpKind::Ffn, 0.0, 1e9, 1);
        m.record(OpKind::Draft, 0.0, 1e9, 1);
        let report = r.cost(&m);
        assert!(report.decoder_layer_s() > 0.0);
        assert!(report.decoder_layer_s() < report.latency_s);
    }
}
