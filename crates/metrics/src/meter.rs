//! The op-event meter: engines record what they execute, benches price it.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Category of a recorded operation.
///
/// The categories mirror the decomposition the paper uses: Fig. 1(b) splits
/// end-to-end time into *decoder layer* ([`OpKind::is_decoder_layer`]) and
/// *others*; the overhead analysis of §7.4.4 needs [`OpKind::Predictor`]
/// isolated; the energy argument of §7.3.1 relies on predictor ops being
/// memory-bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum OpKind {
    /// Token embedding lookup.
    Embed,
    /// Attention projections, score computation and output projection.
    Attention,
    /// KV-cache reads/writes attributable to attention.
    KvCache,
    /// Gated feed-forward network.
    Ffn,
    /// RMSNorm and other elementwise layer work.
    Norm,
    /// Full LM-head product over the whole vocabulary.
    LmHeadFull,
    /// Speculative LM-head slice (candidate columns only, SpecEE T1).
    LmHeadSlice,
    /// Early-exit MLP predictor forward.
    Predictor,
    /// Draft (speculative) model forward.
    Draft,
    /// K/V projections used to fill the cache of skipped layers after exit.
    SkipKvFill,
    /// Softmax/sampling and other post-processing.
    Sampling,
    /// Anything else.
    Other,
}

impl OpKind {
    /// All kinds, in display order.
    pub const ALL: [OpKind; 12] = [
        OpKind::Embed,
        OpKind::Attention,
        OpKind::KvCache,
        OpKind::Ffn,
        OpKind::Norm,
        OpKind::LmHeadFull,
        OpKind::LmHeadSlice,
        OpKind::Predictor,
        OpKind::Draft,
        OpKind::SkipKvFill,
        OpKind::Sampling,
        OpKind::Other,
    ];

    /// Whether this op executes inside a decoder layer (the numerator of
    /// Fig. 1(b)'s "decoder layer" share).
    pub fn is_decoder_layer(self) -> bool {
        matches!(
            self,
            OpKind::Attention | OpKind::KvCache | OpKind::Ffn | OpKind::Norm
        )
    }

    /// Whether this op is SpecEE overhead (predictor path additions).
    pub fn is_specee_overhead(self) -> bool {
        matches!(
            self,
            OpKind::Predictor | OpKind::LmHeadSlice | OpKind::SkipKvFill
        )
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpKind::Embed => "embed",
            OpKind::Attention => "attention",
            OpKind::KvCache => "kv-cache",
            OpKind::Ffn => "ffn",
            OpKind::Norm => "norm",
            OpKind::LmHeadFull => "lm-head(full)",
            OpKind::LmHeadSlice => "lm-head(slice)",
            OpKind::Predictor => "predictor",
            OpKind::Draft => "draft",
            OpKind::SkipKvFill => "skip-kv-fill",
            OpKind::Sampling => "sampling",
            OpKind::Other => "other",
        };
        f.write_str(s)
    }
}

/// Aggregated totals for one op kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct KindTotals {
    /// Floating-point operations.
    pub flops: f64,
    /// Bytes moved (reads + writes).
    pub bytes: f64,
    /// Number of kernel launches.
    pub kernels: u64,
}

impl KindTotals {
    fn add(&mut self, flops: f64, bytes: f64, kernels: u64) {
        self.flops += flops;
        self.bytes += bytes;
        self.kernels += kernels;
    }

    fn merge(&mut self, other: &KindTotals) {
        self.add(other.flops, other.bytes, other.kernels);
    }
}

/// Aggregating recorder of executed operations.
///
/// Engines thread a `&mut Meter` through every forward call; each primitive
/// records its FLOPs, bytes moved and kernel count under an [`OpKind`].
/// Token boundaries are marked so per-token costs can be derived.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Meter {
    totals: [KindTotals; OpKind::ALL.len()],
    tokens: u64,
    host_steps: u64,
}

impl Meter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Meter::default()
    }

    /// Records an operation.
    pub fn record(&mut self, kind: OpKind, flops: f64, bytes: f64, kernels: u64) {
        self.totals[kind as usize].add(flops, bytes, kernels);
    }

    /// Convenience recorder for a dense mat-vec: `rows × cols` weights at
    /// `weight_bytes` payload, reading the input and writing the output.
    pub fn record_matvec(&mut self, kind: OpKind, rows: usize, cols: usize, weight_bytes: usize) {
        let flops = 2.0 * rows as f64 * cols as f64;
        let io = (rows + cols) as f64 * 2.0; // activations at f16 on device
        self.record(kind, flops, weight_bytes as f64 + io, 1);
    }

    /// Marks the completion of one generated token.
    pub fn mark_token(&mut self) {
        self.tokens += 1;
    }

    /// Marks one host-loop iteration (one Python/engine step): a decode
    /// step in autoregressive mode, a verification round in speculative
    /// mode. Framework overhead is charged per step, which is why tree
    /// decoding amortizes host cost over several tokens.
    pub fn mark_host_step(&mut self) {
        self.host_steps += 1;
    }

    /// Number of host steps marked.
    pub fn host_steps(&self) -> u64 {
        self.host_steps
    }

    /// Number of tokens marked.
    pub fn tokens(&self) -> u64 {
        self.tokens
    }

    /// Totals for one kind.
    pub fn kind(&self, kind: OpKind) -> KindTotals {
        self.totals[kind as usize]
    }

    /// Iterates over non-empty kinds.
    pub fn iter(&self) -> impl Iterator<Item = (OpKind, KindTotals)> + '_ {
        OpKind::ALL
            .iter()
            .map(|&k| (k, self.totals[k as usize]))
            .filter(|(_, t)| t.kernels > 0 || t.flops > 0.0 || t.bytes > 0.0)
    }

    /// Sum of FLOPs across all kinds.
    pub fn total_flops(&self) -> f64 {
        self.totals.iter().map(|t| t.flops).sum()
    }

    /// Sum of bytes across all kinds.
    pub fn total_bytes(&self) -> f64 {
        self.totals.iter().map(|t| t.bytes).sum()
    }

    /// Total kernel launches.
    pub fn total_kernels(&self) -> u64 {
        self.totals.iter().map(|t| t.kernels).sum()
    }

    /// Accumulates another meter into this one.
    pub fn merge(&mut self, other: &Meter) {
        for (mine, theirs) in self.totals.iter_mut().zip(other.totals.iter()) {
            mine.merge(theirs);
        }
        self.tokens += other.tokens;
        self.host_steps += other.host_steps;
    }

    /// Resets all counters.
    pub fn reset(&mut self) {
        *self = Meter::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let mut m = Meter::new();
        m.record(OpKind::Ffn, 10.0, 20.0, 1);
        m.record(OpKind::Ffn, 5.0, 5.0, 2);
        let t = m.kind(OpKind::Ffn);
        assert_eq!(t.flops, 15.0);
        assert_eq!(t.bytes, 25.0);
        assert_eq!(t.kernels, 3);
    }

    #[test]
    fn record_matvec_flops() {
        let mut m = Meter::new();
        m.record_matvec(OpKind::Attention, 4, 8, 64);
        let t = m.kind(OpKind::Attention);
        assert_eq!(t.flops, 64.0);
        assert!(t.bytes >= 64.0);
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = Meter::new();
        a.record(OpKind::Draft, 1.0, 1.0, 1);
        a.mark_token();
        let mut b = Meter::new();
        b.record(OpKind::Draft, 2.0, 3.0, 1);
        b.mark_token();
        b.mark_token();
        a.merge(&b);
        assert_eq!(a.kind(OpKind::Draft).flops, 3.0);
        assert_eq!(a.tokens(), 3);
    }

    #[test]
    fn iter_skips_empty_kinds() {
        let mut m = Meter::new();
        m.record(OpKind::Predictor, 1.0, 1.0, 1);
        let kinds: Vec<OpKind> = m.iter().map(|(k, _)| k).collect();
        assert_eq!(kinds, vec![OpKind::Predictor]);
    }

    #[test]
    fn decoder_layer_classification() {
        assert!(OpKind::Ffn.is_decoder_layer());
        assert!(OpKind::Attention.is_decoder_layer());
        assert!(!OpKind::LmHeadFull.is_decoder_layer());
        assert!(!OpKind::Draft.is_decoder_layer());
    }

    #[test]
    fn overhead_classification() {
        assert!(OpKind::Predictor.is_specee_overhead());
        assert!(OpKind::LmHeadSlice.is_specee_overhead());
        assert!(!OpKind::Ffn.is_specee_overhead());
    }

    #[test]
    fn reset_clears() {
        let mut m = Meter::new();
        m.record(OpKind::Other, 1.0, 1.0, 1);
        m.mark_token();
        m.reset();
        assert_eq!(m.total_flops(), 0.0);
        assert_eq!(m.tokens(), 0);
    }
}
