//! Plain-text table formatting shared by the benchmark harnesses.

use std::fmt;

/// A simple aligned text table.
///
/// # Examples
///
/// ```
/// use specee_metrics::Table;
///
/// let mut t = Table::new(vec!["dataset", "tokens/s", "speedup"]);
/// t.row(vec!["MT-Bench".into(), "56.2".into(), "2.32x".into()]);
/// let text = t.to_string();
/// assert!(text.contains("MT-Bench"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Short rows are padded with empty cells; long rows are
    /// truncated to the header width.
    pub fn row(&mut self, mut cells: Vec<String>) -> &mut Self {
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if cell.len() > w[i] {
                    w[i] = cell.len();
                }
            }
        }
        w
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w = self.widths();
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:<width$}", width = w[i])?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = w.iter().sum::<usize>() + 2 * w.len().saturating_sub(1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float with the given precision (bench-output convenience).
pub fn fmt_f(v: f64, prec: usize) -> String {
    format!("{v:.prec$}")
}

/// Formats a ratio as `N.NNx`.
pub fn fmt_x(v: f64) -> String {
    format!("{v:.2}x")
}

/// Formats a fraction as a percentage.
pub fn fmt_pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a", "long-header"]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["yyyy".into(), "2".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // all rows equal width after padding
        assert!(lines[0].contains("long-header"));
    }

    #[test]
    fn pads_short_rows() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["only".into()]);
        assert_eq!(t.len(), 1);
        assert!(t.to_string().contains("only"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_f(1.23456, 2), "1.23");
        assert_eq!(fmt_x(2.251), "2.25x");
        assert_eq!(fmt_pct(0.9312), "93.1%");
    }
}
