//! Hardware and framework profiles used by the roofline cost model.

use serde::{Deserialize, Serialize};

/// Peak capabilities of a target device.
///
/// The presets mirror Table 2 of the paper. Numbers are public spec-sheet
/// values derated by an achievable-efficiency factor (memory bandwidth is
/// what matters at decode time; the derate is folded into `mem_bw`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HardwareProfile {
    /// Human-readable device name.
    pub name: String,
    /// Achievable half-precision tensor throughput in FLOP/s.
    pub peak_flops: f64,
    /// Achievable memory bandwidth in bytes/s.
    pub mem_bw: f64,
    /// Fixed overhead per kernel launch, seconds.
    pub launch_overhead_s: f64,
    /// Board power limit in watts.
    pub tdp_w: f64,
    /// Idle power in watts.
    pub idle_w: f64,
}

impl HardwareProfile {
    /// NVIDIA Tesla A100-80GB (cloud scenario).
    ///
    /// 312 TFLOP/s FP16 tensor, 2.0 TB/s HBM2e; derated to ~70 % achievable.
    pub fn a100_80g() -> Self {
        HardwareProfile {
            name: "NVIDIA A100 80GB".to_string(),
            peak_flops: 312e12 * 0.7,
            mem_bw: 2.0e12 * 0.7,
            launch_overhead_s: 4.0e-6,
            tdp_w: 400.0,
            idle_w: 60.0,
        }
    }

    /// NVIDIA RTX 4090 24GB (cloud scenario).
    pub fn rtx4090() -> Self {
        HardwareProfile {
            name: "NVIDIA RTX 4090 24GB".to_string(),
            peak_flops: 330e12 * 0.7,
            mem_bw: 1.008e12 * 0.75,
            launch_overhead_s: 4.0e-6,
            tdp_w: 450.0,
            idle_w: 25.0,
        }
    }

    /// NVIDIA RTX 4060 Laptop 8GB (PC scenario GPU).
    pub fn rtx4060_laptop() -> Self {
        HardwareProfile {
            name: "NVIDIA RTX 4060 Laptop 8GB".to_string(),
            peak_flops: 60e12 * 0.6,
            mem_bw: 256e9 * 0.75,
            launch_overhead_s: 6.0e-6,
            tdp_w: 115.0,
            idle_w: 10.0,
        }
    }

    /// Intel i7-13650HX (PC scenario CPU; llama.cpp-style execution).
    pub fn cpu_i7_13650hx() -> Self {
        HardwareProfile {
            name: "Intel i7-13650HX".to_string(),
            peak_flops: 0.9e12,
            mem_bw: 70e9,
            launch_overhead_s: 0.2e-6,
            tdp_w: 157.0,
            idle_w: 15.0,
        }
    }

    /// PC hybrid profile: a 7B model split between the 8 GB laptop GPU and
    /// host memory (how llama.cpp / PowerInfer actually run the workload).
    /// Effective bandwidth blends VRAM and system RAM proportionally to the
    /// resident split.
    pub fn pc_hybrid(gpu_fraction: f64) -> Self {
        let gpu = Self::rtx4060_laptop();
        let cpu = Self::cpu_i7_13650hx();
        let f = gpu_fraction.clamp(0.0, 1.0);
        // Weights streamed from both pools; time adds, so bandwidth combines
        // harmonically.
        let bw = 1.0 / (f / gpu.mem_bw + (1.0 - f) / cpu.mem_bw);
        HardwareProfile {
            name: format!("PC hybrid ({:.0}% GPU-resident)", f * 100.0),
            peak_flops: gpu.peak_flops * f + cpu.peak_flops * (1.0 - f),
            mem_bw: bw,
            launch_overhead_s: gpu.launch_overhead_s,
            tdp_w: gpu.tdp_w + 45.0,
            idle_w: gpu.idle_w + cpu.idle_w,
        }
    }
}

/// Per-framework calibration: host overhead per engine *step* (one decode
/// iteration or one speculative round) plus a kernel-dispatch multiplier.
/// These constants are the documented "substitution" for the software
/// stacks the paper integrates with, fitted once against the paper's dense
/// baselines (see EXPERIMENTS.md) and then held fixed across every
/// experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrameworkProfile {
    /// Framework name as the paper spells it.
    pub name: String,
    /// Host-side overhead added to every engine step, seconds.
    pub per_step_overhead_s: f64,
    /// Multiplier (>1 slower) on kernel launch overhead, capturing eager
    /// Python dispatch vs graph-captured execution.
    pub launch_multiplier: f64,
}

impl FrameworkProfile {
    /// HuggingFace transformers: eager PyTorch — every kernel is dispatched
    /// from Python (~45 µs each on top of the 4 µs device launch).
    pub fn hugging_face() -> Self {
        FrameworkProfile {
            name: "HuggingFace".to_string(),
            per_step_overhead_s: 2.0e-3,
            launch_multiplier: 10.0,
        }
    }

    /// vllm: paged attention with CUDA-graph capture; kernels are cheap but
    /// the batch-of-one scheduler/sampler step costs several milliseconds.
    pub fn vllm() -> Self {
        FrameworkProfile {
            name: "vllm".to_string(),
            per_step_overhead_s: 9.0e-3,
            launch_multiplier: 0.5,
        }
    }

    /// AWQ reference stack (HuggingFace-hosted quantized kernels).
    pub fn awq() -> Self {
        FrameworkProfile {
            name: "AWQ".to_string(),
            per_step_overhead_s: 2.0e-3,
            launch_multiplier: 10.0,
        }
    }

    /// llama.cpp: native C++ loop, negligible host overhead.
    pub fn llama_cpp() -> Self {
        FrameworkProfile {
            name: "llama.cpp".to_string(),
            per_step_overhead_s: 1.0e-3,
            launch_multiplier: 0.2,
        }
    }

    /// PowerInfer: llama.cpp-derived sparse-activation runtime.
    pub fn power_infer() -> Self {
        FrameworkProfile {
            name: "PowerInfer".to_string(),
            per_step_overhead_s: 1.5e-3,
            launch_multiplier: 0.3,
        }
    }

    /// EAGLE: PyTorch-based speculative decoding stack; the per-round tree
    /// management in Python is the dominant host cost.
    pub fn eagle() -> Self {
        FrameworkProfile {
            name: "EAGLE".to_string(),
            per_step_overhead_s: 15.0e-3,
            launch_multiplier: 2.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_positive_capabilities() {
        for hw in [
            HardwareProfile::a100_80g(),
            HardwareProfile::rtx4090(),
            HardwareProfile::rtx4060_laptop(),
            HardwareProfile::cpu_i7_13650hx(),
        ] {
            assert!(hw.peak_flops > 0.0, "{}", hw.name);
            assert!(hw.mem_bw > 0.0, "{}", hw.name);
            assert!(hw.tdp_w > hw.idle_w, "{}", hw.name);
        }
    }

    #[test]
    fn a100_fastest_memory() {
        let a100 = HardwareProfile::a100_80g();
        assert!(a100.mem_bw > HardwareProfile::rtx4090().mem_bw);
        assert!(a100.mem_bw > HardwareProfile::rtx4060_laptop().mem_bw);
    }

    #[test]
    fn hybrid_bandwidth_between_endpoints() {
        let gpu = HardwareProfile::rtx4060_laptop();
        let cpu = HardwareProfile::cpu_i7_13650hx();
        let h = HardwareProfile::pc_hybrid(0.5);
        assert!(h.mem_bw < gpu.mem_bw);
        assert!(h.mem_bw > cpu.mem_bw);
        // all-GPU hybrid degenerates to the GPU bandwidth
        let all_gpu = HardwareProfile::pc_hybrid(1.0);
        assert!((all_gpu.mem_bw - gpu.mem_bw).abs() / gpu.mem_bw < 1e-9);
    }

    #[test]
    fn framework_ordering_matches_paper() {
        // HF is the slowest host loop; vllm and llama.cpp are thin.
        let hf = FrameworkProfile::hugging_face();
        assert!(hf.launch_multiplier > FrameworkProfile::vllm().launch_multiplier);
        assert!(hf.per_step_overhead_s > FrameworkProfile::llama_cpp().per_step_overhead_s);
    }
}
