//! Property tests for the vllm-style KV page allocator: arbitrary
//! allocate/share/write/free churn never leaks or double-leases a page,
//! refcount-zero frees exactly once, and the occupancy/peak/sharing
//! statistics stay consistent with a reference model at every step.

use std::collections::HashMap;

use proptest::prelude::*;
use specee_model::{PrefixIndex, SlotPool};

proptest! {
    /// Drive the pool with a random op sequence against a reference set
    /// of live pages. Invariants checked after every op:
    ///
    /// * an allocated page is never handed out twice while leased,
    /// * `pages_in_use`/`tokens_in_use` track the live set exactly,
    /// * `pages_peak` is the true high-water mark,
    /// * `pages_created` never exceeds the peak (recycling before growth)
    ///   and always covers the live set.
    #[test]
    fn churn_never_leaks_or_double_frees(
        ops in prop::collection::vec((0u8..4, 0u8..255), 1..240),
        page_size in 1usize..32,
    ) {
        let mut pool = SlotPool::new(page_size);
        let mut live: Vec<usize> = Vec::new();
        let mut peak = 0usize;
        for (op, sel) in ops {
            // op 0..3 → allocate (alloc-biased so pools grow), 3 → free.
            if op < 3 || live.is_empty() {
                let page = pool.alloc_page();
                prop_assert!(
                    !live.contains(&page),
                    "page {} double-leased (live: {:?})", page, live
                );
                prop_assert!(
                    page < pool.pages_created(),
                    "page id {} out of range {}", page, pool.pages_created()
                );
                live.push(page);
            } else {
                let idx = sel as usize % live.len();
                let page = live.swap_remove(idx);
                pool.free_page(page);
            }
            peak = peak.max(live.len());
            prop_assert_eq!(pool.pages_in_use(), live.len());
            prop_assert_eq!(pool.tokens_in_use(), live.len() * page_size);
            prop_assert_eq!(pool.pages_peak(), peak);
            prop_assert!(pool.pages_created() >= live.len());
            prop_assert!(
                pool.pages_created() <= peak,
                "pool grew to {} pages but only {} were ever simultaneously live",
                pool.pages_created(), peak
            );
        }

        // Full teardown: every live page frees exactly once, and the pool
        // ends empty with its statistics intact.
        for page in live.drain(..) {
            pool.free_page(page);
        }
        prop_assert_eq!(pool.pages_in_use(), 0);
        prop_assert_eq!(pool.tokens_in_use(), 0);
        prop_assert_eq!(pool.pages_peak(), peak);

        // Draining left every created page on the free list: re-leasing
        // the whole backing store recycles ids without growing the pool.
        let created = pool.pages_created();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..created {
            prop_assert!(seen.insert(pool.alloc_page()), "recycled id repeated");
        }
        prop_assert_eq!(pool.pages_created(), created, "no growth while recycling");
        prop_assert_eq!(pool.pages_in_use(), created);
    }

    /// Copy-on-write churn: random admit (alloc), fork (share), write
    /// (cow) and free ops against a reference refcount map. Invariants
    /// checked after every op:
    ///
    /// * every per-page reference count matches the reference exactly,
    /// * `shared_pages ≤ pages_in_use` (a shared page is one physical
    ///   page, never more),
    /// * `logical_pages_in_use` is the exact lease count (sum of refs),
    /// * a page returns to the free list exactly when its count reaches
    ///   zero — never before (no premature recycling), never twice,
    /// * the peak tracks *physical* residency only: forking never moves
    ///   it, and a freed-then-regrown block counts once.
    #[test]
    fn cow_churn_upholds_refcount_invariants(
        ops in prop::collection::vec((0u8..8, 0u8..255), 1..300),
        page_size in 1usize..32,
    ) {
        let mut pool = SlotPool::new(page_size);
        let mut refs: HashMap<usize, u32> = HashMap::new();
        let mut peak = 0usize;
        let mut cows = 0u64;
        for (op, sel) in ops {
            let pick = |refs: &HashMap<usize, u32>, sel: u8| {
                let mut pages: Vec<usize> = refs.keys().copied().collect();
                pages.sort_unstable();
                pages[sel as usize % pages.len()]
            };
            match op {
                // admit: lease a fresh page.
                0..=2 => {
                    let page = pool.alloc_page();
                    prop_assert!(
                        !refs.contains_key(&page),
                        "page {} handed out while still leased", page
                    );
                    refs.insert(page, 1);
                }
                // fork: a new sequence co-leases a live page read-only.
                3..=4 if !refs.is_empty() => {
                    let page = pick(&refs, sel);
                    pool.share_page(page);
                    *refs.get_mut(&page).expect("picked live") += 1;
                }
                // write: copy-on-write a live page (first divergent
                // write by one of its lessees).
                5 if !refs.is_empty() => {
                    let page = pick(&refs, sel);
                    // Reference: drop our lease first (the pool may
                    // recycle the very page we diverged from).
                    let count = refs.get_mut(&page).expect("picked live");
                    *count -= 1;
                    if *count == 0 {
                        refs.remove(&page);
                    }
                    let fresh = pool.cow_page(page);
                    cows += 1;
                    prop_assert!(
                        !refs.contains_key(&fresh),
                        "cow copy {} collides with a live page", fresh
                    );
                    refs.insert(fresh, 1);
                }
                // free: drop one lease; refcount zero frees exactly once.
                _ if !refs.is_empty() => {
                    let page = pick(&refs, sel);
                    pool.free_page(page);
                    let count = refs.get_mut(&page).expect("picked live");
                    *count -= 1;
                    if *count == 0 {
                        refs.remove(&page);
                    }
                }
                // empty pool: fall back to an admit so churn continues.
                _ => {
                    let page = pool.alloc_page();
                    refs.insert(page, 1);
                }
            }
            peak = peak.max(refs.len());
            for (&page, &count) in &refs {
                prop_assert_eq!(pool.ref_count(page), count);
            }
            prop_assert_eq!(pool.pages_in_use(), refs.len());
            prop_assert_eq!(
                pool.logical_pages_in_use(),
                refs.values().map(|&c| c as usize).sum::<usize>()
            );
            let shared = refs.values().filter(|&&c| c >= 2).count();
            prop_assert_eq!(pool.shared_pages(), shared);
            prop_assert!(
                pool.shared_pages() <= pool.pages_in_use(),
                "shared pages {} exceed physical pages {}",
                pool.shared_pages(), pool.pages_in_use()
            );
            prop_assert_eq!(pool.pages_peak(), peak, "peak must track physical residency");
            prop_assert_eq!(pool.cow_copies(), cows);
        }

        // Teardown: dropping every remaining lease frees each page
        // exactly once (refcount zero) and empties the pool.
        let remaining: Vec<(usize, u32)> = refs.drain().collect();
        for (page, count) in remaining {
            for _ in 0..count {
                pool.free_page(page);
            }
            prop_assert_eq!(pool.ref_count(page), 0);
        }
        prop_assert_eq!(pool.pages_in_use(), 0);
        prop_assert_eq!(pool.logical_pages_in_use(), 0);
        prop_assert_eq!(pool.shared_pages(), 0);
        prop_assert_eq!(pool.pages_peak(), peak);
    }

    /// Prefix-index lifecycle: register a random set of prompts (each
    /// backed by its own freshly leased pages), then unregister in a
    /// shuffled order while releasing the backing leases. The index must
    /// answer every registered prompt with all of its full pages while
    /// registered, pin pages only while at least one registrant remains,
    /// and leave the pool completely drained at the end.
    #[test]
    fn prefix_index_register_unregister_never_leaks(
        prompts in prop::collection::vec(
            prop::collection::vec(0u32..4, 1..20), 1..12),
        order_seed in 0u64..1000,
        page_size in 1usize..5,
    ) {
        let mut pool = SlotPool::new(page_size);
        let mut index = PrefixIndex::new(page_size);
        // Admit: lease pages for each prompt privately, then register
        // its full chunks (exactly what `BatchedStack::admit_shared`
        // does for the non-matching part of a prompt).
        let mut leases: Vec<(Vec<u32>, Vec<usize>)> = Vec::new();
        for prompt in &prompts {
            let n_pages = prompt.len().div_ceil(page_size);
            let pages: Vec<usize> = (0..n_pages).map(|_| pool.alloc_page()).collect();
            let n_full = prompt.len() / page_size;
            index.register(prompt, &pages[..n_full], &mut pool);
            leases.push((prompt.clone(), pages));
        }
        for (prompt, _) in &leases {
            let (full, _) = index.matched(prompt);
            prop_assert_eq!(
                full.len(), prompt.len() / page_size,
                "registered prompt must match all of its full chunks"
            );
        }
        prop_assert!(pool.shared_pages() <= pool.pages_in_use());

        // Evict in a deterministic shuffled order.
        let mut order: Vec<usize> = (0..leases.len()).collect();
        order.sort_by_key(|&i| (i as u64).wrapping_mul(2654435761).rotate_left((order_seed % 63) as u32));
        for &i in &order {
            let (prompt, pages) = &leases[i];
            index.unregister(prompt, &mut pool);
            for &page in pages {
                pool.free_page(page);
            }
        }
        prop_assert_eq!(index.nodes(), 0, "all registrations pruned");
        prop_assert_eq!(pool.pages_in_use(), 0, "pool drained");
        prop_assert_eq!(pool.logical_pages_in_use(), 0);
    }
}
