//! Property tests for the vllm-style KV page allocator: arbitrary
//! allocate/free churn never leaks or double-leases a page, and the
//! occupancy/peak statistics stay consistent with a reference model at
//! every step.

use proptest::prelude::*;
use specee_model::SlotPool;

proptest! {
    /// Drive the pool with a random op sequence against a reference set
    /// of live pages. Invariants checked after every op:
    ///
    /// * an allocated page is never handed out twice while leased,
    /// * `pages_in_use`/`tokens_in_use` track the live set exactly,
    /// * `pages_peak` is the true high-water mark,
    /// * `pages_created` never exceeds the peak (recycling before growth)
    ///   and always covers the live set.
    #[test]
    fn churn_never_leaks_or_double_frees(
        ops in prop::collection::vec((0u8..4, 0u8..255), 1..240),
        page_size in 1usize..32,
    ) {
        let mut pool = SlotPool::new(page_size);
        let mut live: Vec<usize> = Vec::new();
        let mut peak = 0usize;
        for (op, sel) in ops {
            // op 0..3 → allocate (alloc-biased so pools grow), 3 → free.
            if op < 3 || live.is_empty() {
                let page = pool.alloc_page();
                prop_assert!(
                    !live.contains(&page),
                    "page {} double-leased (live: {:?})", page, live
                );
                prop_assert!(
                    page < pool.pages_created(),
                    "page id {} out of range {}", page, pool.pages_created()
                );
                live.push(page);
            } else {
                let idx = sel as usize % live.len();
                let page = live.swap_remove(idx);
                pool.free_page(page);
            }
            peak = peak.max(live.len());
            prop_assert_eq!(pool.pages_in_use(), live.len());
            prop_assert_eq!(pool.tokens_in_use(), live.len() * page_size);
            prop_assert_eq!(pool.pages_peak(), peak);
            prop_assert!(pool.pages_created() >= live.len());
            prop_assert!(
                pool.pages_created() <= peak,
                "pool grew to {} pages but only {} were ever simultaneously live",
                pool.pages_created(), peak
            );
        }

        // Full teardown: every live page frees exactly once, and the pool
        // ends empty with its statistics intact.
        for page in live.drain(..) {
            pool.free_page(page);
        }
        prop_assert_eq!(pool.pages_in_use(), 0);
        prop_assert_eq!(pool.tokens_in_use(), 0);
        prop_assert_eq!(pool.pages_peak(), peak);

        // Draining left every created page on the free list: re-leasing
        // the whole backing store recycles ids without growing the pool.
        let created = pool.pages_created();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..created {
            prop_assert!(seen.insert(pool.alloc_page()), "recycled id repeated");
        }
        prop_assert_eq!(pool.pages_created(), created, "no growth while recycling");
        prop_assert_eq!(pool.pages_in_use(), created);
    }
}
