//! Activation recording for AWQ calibration.
//!
//! Real AWQ calibrates on the activations that actually flow into each
//! weight matrix. [`ActivationTap`] is the forward-hook equivalent: while
//! armed, the transformer records the RMS-normed inputs of the attention
//! projections (`wq`/`wk`/`wv`), the FFN projections (`w_gate`/`w_up`) and
//! the LM head. The output-side projections (`wo`, `w_down`) keep plain
//! round-to-nearest: their inputs live inside the fused attention/FFN
//! kernels, and in the AWQ deployment their scales cannot be folded into a
//! preceding norm anyway.

use specee_metrics::Meter;
use specee_tensor::QuantBits;

use crate::config::TokenId;
use crate::traits::LayeredLm;
use crate::transformer::Transformer;

/// Cap on recorded samples per site — enough for stable channel
/// statistics, bounded memory for long calibration runs.
pub const TAP_SAMPLE_CAP: usize = 256;

/// Recorded per-site activations (`[layer][sample][channel]`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ActivationTap {
    /// Inputs to `wq`/`wk`/`wv` (post attention-norm), per layer.
    pub attn_in: Vec<Vec<Vec<f32>>>,
    /// Inputs to `w_gate`/`w_up` (post FFN-norm), per layer.
    pub ffn_in: Vec<Vec<Vec<f32>>>,
    /// Inputs to the LM head (post final-norm).
    pub head_in: Vec<Vec<f32>>,
}

impl ActivationTap {
    /// An empty tap for a model of `n_layers` layers.
    pub fn new(n_layers: usize) -> Self {
        ActivationTap {
            attn_in: vec![Vec::new(); n_layers],
            ffn_in: vec![Vec::new(); n_layers],
            head_in: Vec::new(),
        }
    }

    /// Records an attention-projection input for `layer` (capped).
    pub fn record_attn(&mut self, layer: usize, normed: &[f32]) {
        let site = &mut self.attn_in[layer];
        if site.len() < TAP_SAMPLE_CAP {
            site.push(normed.to_vec());
        }
    }

    /// Records an FFN-projection input for `layer` (capped).
    pub fn record_ffn(&mut self, layer: usize, normed: &[f32]) {
        let site = &mut self.ffn_in[layer];
        if site.len() < TAP_SAMPLE_CAP {
            site.push(normed.to_vec());
        }
    }

    /// Records an LM-head input (capped).
    pub fn record_head(&mut self, normed: &[f32]) {
        if self.head_in.len() < TAP_SAMPLE_CAP {
            self.head_in.push(normed.to_vec());
        }
    }

    /// Samples recorded at the least-covered per-layer site.
    pub fn min_samples(&self) -> usize {
        self.attn_in
            .iter()
            .chain(self.ffn_in.iter())
            .map(Vec::len)
            .min()
            .unwrap_or(0)
            .min(self.head_in.len())
    }
}

/// Runs calibration `prompts` through the model with the tap armed and
/// returns the recorded activations. The model's KV state is reset before
/// and after.
///
/// # Panics
///
/// Panics if `prompts` is empty or any prompt is empty.
pub fn collect_awq_tap(model: &mut Transformer, prompts: &[Vec<TokenId>]) -> ActivationTap {
    assert!(!prompts.is_empty(), "need calibration prompts");
    let mut meter = Meter::new();
    model.start_calibration_tap();
    for prompt in prompts {
        assert!(!prompt.is_empty(), "empty calibration prompt");
        model.reset();
        let h = crate::prefill(model, prompt, &mut meter);
        // Touch the head site once per prompt.
        let _ = model.final_logits(&h, &mut meter);
    }
    model.reset();
    model.take_calibration_tap().expect("tap was armed")
}

/// AWQ-quantizes a transformer in place: calibrated channel scales for the
/// norm-fed projections, plain round-to-nearest for the rest.
///
/// # Panics
///
/// Panics if the tap covers a different layer count or recorded no
/// samples.
pub fn quantize_awq(model: &mut Transformer, bits: QuantBits, tap: &ActivationTap) {
    let n_layers = model.config().n_layers;
    assert_eq!(tap.attn_in.len(), n_layers, "tap layer count");
    assert_eq!(tap.ffn_in.len(), n_layers, "tap layer count");
    assert!(tap.min_samples() > 0, "tap recorded no samples");
    model.apply_awq(bits, tap);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use specee_tensor::rng::Pcg;

    fn model() -> Transformer {
        Transformer::random(
            ModelConfig {
                n_layers: 4,
                ..ModelConfig::tiny()
            },
            &mut Pcg::seed(3),
        )
    }

    fn prompts() -> Vec<Vec<TokenId>> {
        (0..4u32)
            .map(|i| vec![1 + i, 5 + i, 9 + i, 2 + i])
            .collect()
    }

    #[test]
    fn tap_records_every_site() {
        let mut m = model();
        let tap = collect_awq_tap(&mut m, &prompts());
        assert_eq!(tap.attn_in.len(), 4);
        assert_eq!(tap.ffn_in.len(), 4);
        // 4 prompts x 4 tokens = 16 per layer site, 4 head samples.
        assert!(tap.min_samples() >= 4, "min {}", tap.min_samples());
        assert_eq!(tap.attn_in[0][0].len(), m.config().hidden_dim);
    }

    #[test]
    fn tap_respects_sample_cap() {
        let mut tap = ActivationTap::new(1);
        for _ in 0..(TAP_SAMPLE_CAP + 50) {
            tap.record_attn(0, &[1.0, 2.0]);
        }
        assert_eq!(tap.attn_in[0].len(), TAP_SAMPLE_CAP);
    }

    #[test]
    fn tap_disarmed_outside_collection() {
        let mut m = model();
        let _ = collect_awq_tap(&mut m, &prompts());
        // A fresh forward after collection must not record anywhere.
        let mut meter = Meter::new();
        let h = m.begin_token(1, &mut meter);
        let _ = m.forward_layer(0, &h, 0, &mut meter);
        assert!(m.take_calibration_tap().is_none());
    }

    #[test]
    fn quantize_awq_keeps_decoding_close_to_dense() {
        let mut dense = model();
        let mut awq = model();
        let tap = collect_awq_tap(&mut awq, &prompts());
        quantize_awq(&mut awq, QuantBits::Int8, &tap);

        let mut meter = Meter::new();
        let hd = crate::prefill(&mut dense, &[3, 1, 4], &mut meter);
        let ld = dense.final_logits(&hd, &mut meter);
        let ha = crate::prefill(&mut awq, &[3, 1, 4], &mut meter);
        let la = awq.final_logits(&ha, &mut meter);
        let mse: f32 = ld
            .iter()
            .zip(&la)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            / ld.len() as f32;
        assert!(mse < 1e-2, "int8 AWQ logits far from dense: mse {mse}");
        assert!(awq.weights().layers[0].wq.is_quantized());
        assert!(awq.weights().layers[0].wo.is_quantized());
        assert!(awq.weights().lm_head.is_quantized());
    }

    #[test]
    fn awq_payload_matches_rtn_payload() {
        let mut rtn = model();
        rtn.quantize(QuantBits::Int4);
        let mut awq = model();
        let tap = collect_awq_tap(&mut awq, &prompts());
        quantize_awq(&mut awq, QuantBits::Int4, &tap);
        assert_eq!(rtn.weights().bytes(), awq.weights().bytes());
    }

    #[test]
    #[should_panic(expected = "no samples")]
    fn empty_tap_rejected() {
        let mut m = model();
        let tap = ActivationTap::new(4);
        quantize_awq(&mut m, QuantBits::Int8, &tap);
    }
}
