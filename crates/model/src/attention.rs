//! Multi-head self-attention with KV cache, including tree-masked
//! attention for speculative-decoding verification.

use specee_metrics::Meter;
use specee_tensor::BackendKind;

use crate::config::ModelConfig;
use crate::kv::KvCache;
use crate::metering::OpScale;
use crate::rope::apply_rope;
use crate::weights::LayerWeights;

/// Per-node key/value rows produced by one tree-attention pass, kept aside
/// until verification decides which path to commit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TreeKv {
    /// One key row per tree node.
    pub k: Vec<Vec<f32>>,
    /// One value row per tree node.
    pub v: Vec<Vec<f32>>,
}

impl TreeKv {
    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.k.len()
    }

    /// Whether the scratch is empty.
    pub fn is_empty(&self) -> bool {
        self.k.is_empty()
    }
}

fn attend_one_head(
    q_head: &[f32],
    keys: &[&[f32]],
    values: &[&[f32]],
    head: usize,
    head_dim: usize,
    out: &mut [f32],
) {
    let hd_scale = 1.0 / (head_dim as f32).sqrt();
    let offset = head * head_dim;
    let mut scores: Vec<f32> = keys
        .iter()
        .map(|k| specee_tensor::matrix::dot(q_head, &k[offset..offset + head_dim]) * hd_scale)
        .collect();
    specee_tensor::ops::softmax_inplace(&mut scores);
    for (s, v) in scores.iter().zip(values.iter()) {
        for (o, &vv) in out.iter_mut().zip(v[offset..offset + head_dim].iter()) {
            *o += s * vv;
        }
    }
}

/// Single-token attention forward: projects q/k/v from the normalized
/// hidden state, applies RoPE at `pos`, appends to the cache, attends over
/// the whole cache and projects the output.
///
/// # Panics
///
/// Panics if `pos` does not equal the cache length (tokens must be
/// committed strictly in order).
#[allow(clippy::too_many_arguments)]
pub fn attention_forward(
    w: &LayerWeights,
    cfg: &ModelConfig,
    scale: &OpScale,
    backend: BackendKind,
    x: &[f32],
    pos: usize,
    cache: &mut KvCache,
    meter: &mut Meter,
) -> Vec<f32> {
    assert_eq!(pos, cache.len(), "attention positions must be sequential");
    let heads = cfg.n_heads;
    let head_dim = cfg.head_dim();
    let mut q = w.wq.matvec_with(backend, x);
    let mut k = w.wk.matvec_with(backend, x);
    let v = w.wv.matvec_with(backend, x);
    apply_rope(&mut q, pos, heads, head_dim, cfg.rope_theta);
    apply_rope(&mut k, pos, heads, head_dim, cfg.rope_theta);
    cache.push(&k, &v);
    let kv_len = cache.len();
    let keys: Vec<&[f32]> = (0..kv_len).map(|p| cache.key(p)).collect();
    let values: Vec<&[f32]> = (0..kv_len).map(|p| cache.value(p)).collect();
    let mut merged = vec![0.0f32; cfg.hidden_dim];
    for h in 0..heads {
        let q_head = &q[h * head_dim..(h + 1) * head_dim];
        attend_one_head(
            q_head,
            &keys,
            &values,
            h,
            head_dim,
            &mut merged[h * head_dim..(h + 1) * head_dim],
        );
    }
    scale.record_attention(meter, kv_len);
    w.wo.matvec_with(backend, &merged)
}

/// Tree-masked attention over a batch of draft nodes.
///
/// Each node attends to the committed cache plus its own ancestor chain
/// within the batch (never to siblings) — the tree attention mask of
/// speculative decoding. Node positions are `cache.len() + depth`.
///
/// Returns per-node outputs and the scratch K/V rows; the engine commits
/// the accepted path's rows via [`KvCache::push`] afterwards.
///
/// # Panics
///
/// Panics if a parent index is not smaller than its child's index
/// (nodes must be supplied in topological order).
#[allow(clippy::too_many_arguments)]
pub fn attention_forward_tree(
    w: &LayerWeights,
    cfg: &ModelConfig,
    scale: &OpScale,
    backend: BackendKind,
    xs: &[Vec<f32>],
    parents: &[Option<usize>],
    cache: &KvCache,
    meter: &mut Meter,
) -> (Vec<Vec<f32>>, TreeKv) {
    assert_eq!(xs.len(), parents.len(), "nodes/parents length");
    let heads = cfg.n_heads;
    let head_dim = cfg.head_dim();
    let base = cache.len();
    let depths = depths_from_parents(parents);

    // Project and rope every node first (this is the batched kernel).
    let mut qs = Vec::with_capacity(xs.len());
    let mut tree_kv = TreeKv::default();
    for (i, x) in xs.iter().enumerate() {
        let pos = base + depths[i];
        let mut q = w.wq.matvec_with(backend, x);
        let mut k = w.wk.matvec_with(backend, x);
        let v = w.wv.matvec_with(backend, x);
        apply_rope(&mut q, pos, heads, head_dim, cfg.rope_theta);
        apply_rope(&mut k, pos, heads, head_dim, cfg.rope_theta);
        qs.push(q);
        tree_kv.k.push(k);
        tree_kv.v.push(v);
    }

    let cache_keys: Vec<&[f32]> = (0..base).map(|p| cache.key(p)).collect();
    let cache_values: Vec<&[f32]> = (0..base).map(|p| cache.value(p)).collect();

    let mut outputs = Vec::with_capacity(xs.len());
    let mut kv_lens = Vec::with_capacity(xs.len());
    for (i, q) in qs.iter().enumerate() {
        // Gather ancestor chain (committed context + path to this node).
        let mut chain = Vec::new();
        let mut cur = Some(i);
        while let Some(n) = cur {
            chain.push(n);
            cur = parents[n];
            if let Some(p) = cur {
                assert!(p < n, "parents must precede children");
            }
        }
        chain.reverse();
        let mut keys = cache_keys.clone();
        let mut values = cache_values.clone();
        for &n in &chain {
            keys.push(&tree_kv.k[n]);
            values.push(&tree_kv.v[n]);
        }
        let mut merged = vec![0.0f32; cfg.hidden_dim];
        for h in 0..heads {
            let q_head = &q[h * head_dim..(h + 1) * head_dim];
            attend_one_head(
                q_head,
                &keys,
                &values,
                h,
                head_dim,
                &mut merged[h * head_dim..(h + 1) * head_dim],
            );
        }
        kv_lens.push(keys.len());
        outputs.push(w.wo.matvec_with(backend, &merged));
    }
    scale.record_attention_tree(meter, &kv_lens);
    (outputs, tree_kv)
}

/// Incremental tree-masked attention: runs only the nodes at indices
/// `first_new..` of a growing draft tree, reading ancestor K/V rows from
/// `scratch` (which must already hold rows for nodes `0..first_new`) and
/// appending the new nodes' rows to it.
///
/// This is the kernel behind self-speculative drafting: the shallow draft
/// pass grows the token tree level by level, and each level only pays for
/// its frontier. Keys are gathered in exactly the same order as
/// [`attention_forward_tree`] (committed cache first, then the ancestor
/// chain root→node) at the same RoPE positions, so running a tree
/// through repeated partial calls is bit-identical to one full sweep.
///
/// # Panics
///
/// Panics if `scratch` does not hold exactly `first_new` rows, if
/// `parents` does not cover all old and new nodes, or if a parent index
/// does not precede its child.
#[allow(clippy::too_many_arguments)]
pub fn attention_forward_tree_partial(
    w: &LayerWeights,
    cfg: &ModelConfig,
    scale: &OpScale,
    backend: BackendKind,
    new_xs: &[Vec<f32>],
    parents: &[Option<usize>],
    first_new: usize,
    cache: &KvCache,
    scratch: &mut TreeKv,
    meter: &mut Meter,
) -> Vec<Vec<f32>> {
    assert_eq!(
        scratch.len(),
        first_new,
        "scratch must hold exactly the rows of the already-drafted nodes"
    );
    assert_eq!(
        parents.len(),
        first_new + new_xs.len(),
        "parents must cover old and new nodes"
    );
    let heads = cfg.n_heads;
    let head_dim = cfg.head_dim();
    let base = cache.len();
    let depths = depths_from_parents(parents);

    let mut qs = Vec::with_capacity(new_xs.len());
    for (j, x) in new_xs.iter().enumerate() {
        let pos = base + depths[first_new + j];
        let mut q = w.wq.matvec_with(backend, x);
        let mut k = w.wk.matvec_with(backend, x);
        let v = w.wv.matvec_with(backend, x);
        apply_rope(&mut q, pos, heads, head_dim, cfg.rope_theta);
        apply_rope(&mut k, pos, heads, head_dim, cfg.rope_theta);
        qs.push(q);
        scratch.k.push(k);
        scratch.v.push(v);
    }

    let cache_keys: Vec<&[f32]> = (0..base).map(|p| cache.key(p)).collect();
    let cache_values: Vec<&[f32]> = (0..base).map(|p| cache.value(p)).collect();

    let mut outputs = Vec::with_capacity(new_xs.len());
    let mut kv_lens = Vec::with_capacity(new_xs.len());
    for (j, q) in qs.iter().enumerate() {
        let i = first_new + j;
        let mut chain = Vec::new();
        let mut cur = Some(i);
        while let Some(n) = cur {
            chain.push(n);
            cur = parents[n];
            if let Some(p) = cur {
                assert!(p < n, "parents must precede children");
            }
        }
        chain.reverse();
        let mut keys = cache_keys.clone();
        let mut values = cache_values.clone();
        for &n in &chain {
            keys.push(&scratch.k[n]);
            values.push(&scratch.v[n]);
        }
        let mut merged = vec![0.0f32; cfg.hidden_dim];
        for h in 0..heads {
            let q_head = &q[h * head_dim..(h + 1) * head_dim];
            attend_one_head(
                q_head,
                &keys,
                &values,
                h,
                head_dim,
                &mut merged[h * head_dim..(h + 1) * head_dim],
            );
        }
        kv_lens.push(keys.len());
        outputs.push(w.wo.matvec_with(backend, &merged));
    }
    scale.record_attention_tree(meter, &kv_lens);
    outputs
}

/// Computes node depths from parent links (roots have depth 0).
///
/// # Panics
///
/// Panics if a parent index is out of range or not smaller than the child.
pub fn depths_from_parents(parents: &[Option<usize>]) -> Vec<usize> {
    let mut depths = vec![0usize; parents.len()];
    for (i, p) in parents.iter().enumerate() {
        if let Some(p) = *p {
            assert!(p < i, "parents must precede children (node {i} parent {p})");
            depths[i] = depths[p] + 1;
        }
    }
    depths
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::KvLayout;
    use specee_tensor::rng::Pcg;

    fn setup() -> (ModelConfig, LayerWeights, OpScale) {
        let cfg = ModelConfig::tiny();
        let mut rng = Pcg::seed(11);
        let w = LayerWeights::random(&cfg, &mut rng);
        let scale = OpScale::of(&cfg);
        (cfg, w, scale)
    }

    #[test]
    fn forward_appends_to_cache() {
        let (cfg, w, scale) = setup();
        let mut cache = KvCache::new(cfg.hidden_dim, KvLayout::Contiguous);
        let mut meter = Meter::new();
        let x = vec![0.1; cfg.hidden_dim];
        let out = attention_forward(
            &w,
            &cfg,
            &scale,
            BackendKind::Reference,
            &x,
            0,
            &mut cache,
            &mut meter,
        );
        assert_eq!(out.len(), cfg.hidden_dim);
        assert_eq!(cache.len(), 1);
        let _ = attention_forward(
            &w,
            &cfg,
            &scale,
            BackendKind::Reference,
            &x,
            1,
            &mut cache,
            &mut meter,
        );
        assert_eq!(cache.len(), 2);
    }

    #[test]
    #[should_panic(expected = "sequential")]
    fn forward_rejects_position_gaps() {
        let (cfg, w, scale) = setup();
        let mut cache = KvCache::new(cfg.hidden_dim, KvLayout::Contiguous);
        let mut meter = Meter::new();
        let x = vec![0.1; cfg.hidden_dim];
        attention_forward(
            &w,
            &cfg,
            &scale,
            BackendKind::Reference,
            &x,
            3,
            &mut cache,
            &mut meter,
        );
    }

    #[test]
    fn depths_follow_chains() {
        let parents = vec![None, Some(0), Some(0), Some(1)];
        assert_eq!(depths_from_parents(&parents), vec![0, 1, 1, 2]);
    }

    #[test]
    fn tree_root_matches_sequential_attention() {
        // A single-node "tree" must produce the same output as the ordinary
        // sequential forward at the same position.
        let (cfg, w, scale) = setup();
        let mut rng = Pcg::seed(12);
        let mut cache = KvCache::new(cfg.hidden_dim, KvLayout::Contiguous);
        let mut meter = Meter::new();
        // Commit two context positions.
        for pos in 0..2 {
            let mut x = vec![0.0; cfg.hidden_dim];
            rng.fill_uniform(&mut x, 0.5);
            attention_forward(
                &w,
                &cfg,
                &scale,
                BackendKind::Reference,
                &x,
                pos,
                &mut cache,
                &mut meter,
            );
        }
        let mut x = vec![0.0; cfg.hidden_dim];
        rng.fill_uniform(&mut x, 0.5);

        let (tree_out, tree_kv) = attention_forward_tree(
            &w,
            &cfg,
            &scale,
            BackendKind::Reference,
            &[x.clone()],
            &[None],
            &cache,
            &mut meter,
        );
        let seq_out = attention_forward(
            &w,
            &cfg,
            &scale,
            BackendKind::Reference,
            &x,
            2,
            &mut cache,
            &mut meter,
        );
        for (a, b) in tree_out[0].iter().zip(seq_out.iter()) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
        // The scratch K/V equals what the sequential pass committed.
        for (a, b) in tree_kv.k[0].iter().zip(cache.key(2).iter()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn siblings_do_not_see_each_other() {
        let (cfg, w, scale) = setup();
        let mut rng = Pcg::seed(13);
        let mut cache = KvCache::new(cfg.hidden_dim, KvLayout::Contiguous);
        let mut meter = Meter::new();
        let mut ctx = vec![0.0; cfg.hidden_dim];
        rng.fill_uniform(&mut ctx, 0.5);
        attention_forward(
            &w,
            &cfg,
            &scale,
            BackendKind::Reference,
            &ctx,
            0,
            &mut cache,
            &mut meter,
        );

        let mut a = vec![0.0; cfg.hidden_dim];
        let mut b = vec![0.0; cfg.hidden_dim];
        rng.fill_uniform(&mut a, 0.5);
        rng.fill_uniform(&mut b, 0.5);

        // Node a alone vs node a next to sibling b: identical outputs.
        let (alone, _) = attention_forward_tree(
            &w,
            &cfg,
            &scale,
            BackendKind::Reference,
            &[a.clone()],
            &[None],
            &cache,
            &mut meter,
        );
        let (paired, _) = attention_forward_tree(
            &w,
            &cfg,
            &scale,
            BackendKind::Reference,
            &[a.clone(), b],
            &[None, None],
            &cache,
            &mut meter,
        );
        for (x, y) in alone[0].iter().zip(paired[0].iter()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn partial_sweeps_are_bit_identical_to_one_full_sweep() {
        // Growing a tree level by level through the partial kernel must
        // reproduce the one-shot sweep bit for bit — the property the
        // self-draft pass leans on for KV-split correctness.
        let (cfg, w, scale) = setup();
        let mut rng = Pcg::seed(15);
        let mut cache = KvCache::new(cfg.hidden_dim, KvLayout::Contiguous);
        let mut meter = Meter::new();
        for pos in 0..3 {
            let mut x = vec![0.0; cfg.hidden_dim];
            rng.fill_uniform(&mut x, 0.5);
            attention_forward(
                &w,
                &cfg,
                &scale,
                BackendKind::Reference,
                &x,
                pos,
                &mut cache,
                &mut meter,
            );
        }
        // Tree: root 0; children 1, 2; grandchildren 3 (of 1), 4 (of 2).
        let parents = vec![None, Some(0), Some(0), Some(1), Some(2)];
        let mut xs = Vec::new();
        for _ in 0..parents.len() {
            let mut x = vec![0.0; cfg.hidden_dim];
            rng.fill_uniform(&mut x, 0.5);
            xs.push(x);
        }
        let (full_out, full_kv) = attention_forward_tree(
            &w,
            &cfg,
            &scale,
            BackendKind::Reference,
            &xs,
            &parents,
            &cache,
            &mut meter,
        );
        let mut scratch = TreeKv::default();
        let mut partial_out = Vec::new();
        for (first_new, count) in [(0usize, 1usize), (1, 2), (3, 2)] {
            let outs = attention_forward_tree_partial(
                &w,
                &cfg,
                &scale,
                BackendKind::Reference,
                &xs[first_new..first_new + count],
                &parents[..first_new + count],
                first_new,
                &cache,
                &mut scratch,
                &mut meter,
            );
            partial_out.extend(outs);
        }
        assert_eq!(partial_out, full_out, "outputs must match bit for bit");
        assert_eq!(scratch, full_kv, "scratch K/V rows must match bit for bit");
    }

    #[test]
    fn child_sees_its_parent() {
        let (cfg, w, scale) = setup();
        let mut rng = Pcg::seed(14);
        let cache = KvCache::new(cfg.hidden_dim, KvLayout::Contiguous);
        let mut meter = Meter::new();
        let mut root = vec![0.0; cfg.hidden_dim];
        let mut child = vec![0.0; cfg.hidden_dim];
        rng.fill_uniform(&mut root, 0.5);
        rng.fill_uniform(&mut child, 0.5);

        // Child attending to parent differs from child attending to nothing
        // but itself (swap parentage to an unrelated root).
        let mut other_root = vec![0.0; cfg.hidden_dim];
        rng.fill_uniform(&mut other_root, 0.9);
        let (with_parent, _) = attention_forward_tree(
            &w,
            &cfg,
            &scale,
            BackendKind::Reference,
            &[root.clone(), child.clone()],
            &[None, Some(0)],
            &cache,
            &mut meter,
        );
        let (with_other, _) = attention_forward_tree(
            &w,
            &cfg,
            &scale,
            BackendKind::Reference,
            &[other_root, child.clone()],
            &[None, Some(0)],
            &cache,
            &mut meter,
        );
        let differs = with_parent[1]
            .iter()
            .zip(with_other[1].iter())
            .any(|(x, y)| (x - y).abs() > 1e-6);
        assert!(differs, "child output must depend on its ancestor");
    }
}
