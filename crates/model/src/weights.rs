//! Weight containers and initializers for the decoder stack.

use serde::{Deserialize, Serialize};
use specee_tensor::{ops, rng::Pcg, Matrix, QuantBits};

use crate::config::ModelConfig;
use crate::linear::LinearOp;

/// Weights of one decoder layer (pre-norm Llama block).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerWeights {
    /// RMSNorm gain before attention.
    pub attn_norm: Vec<f32>,
    /// Query projection.
    pub wq: LinearOp,
    /// Key projection.
    pub wk: LinearOp,
    /// Value projection.
    pub wv: LinearOp,
    /// Output projection.
    pub wo: LinearOp,
    /// RMSNorm gain before the FFN.
    pub ffn_norm: Vec<f32>,
    /// FFN gate projection.
    pub w_gate: LinearOp,
    /// FFN up projection.
    pub w_up: LinearOp,
    /// FFN down projection.
    pub w_down: LinearOp,
}

impl LayerWeights {
    /// Random-initialized layer (scaled for residual stability).
    pub fn random(cfg: &ModelConfig, rng: &mut Pcg) -> Self {
        let h = cfg.hidden_dim;
        let f = cfg.ffn_dim;
        let scale = 1.0 / (h as f32).sqrt();
        LayerWeights {
            attn_norm: vec![1.0; h],
            wq: Matrix::random(h, h, scale, rng).into(),
            wk: Matrix::random(h, h, scale, rng).into(),
            wv: Matrix::random(h, h, scale, rng).into(),
            wo: Matrix::random(h, h, scale, rng).into(),
            ffn_norm: vec![1.0; h],
            w_gate: Matrix::random(f, h, scale, rng).into(),
            w_up: Matrix::random(f, h, scale, rng).into(),
            w_down: Matrix::random(h, f, 1.0 / (f as f32).sqrt(), rng).into(),
        }
    }

    /// Total parameter payload bytes at executed precision.
    pub fn bytes(&self) -> usize {
        self.wq.bytes()
            + self.wk.bytes()
            + self.wv.bytes()
            + self.wo.bytes()
            + self.w_gate.bytes()
            + self.w_up.bytes()
            + self.w_down.bytes()
            + (self.attn_norm.len() + self.ffn_norm.len()) * 4
    }

    fn quantize_in_place(&mut self, bits: QuantBits) {
        for op in [
            &mut self.wq,
            &mut self.wk,
            &mut self.wv,
            &mut self.wo,
            &mut self.w_gate,
            &mut self.w_up,
            &mut self.w_down,
        ] {
            if let LinearOp::Dense(m) = op {
                *op = LinearOp::quantized(m, bits);
            }
        }
    }
}

/// Full model weights: embeddings, decoder layers, final norm, LM head.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelWeights {
    /// Token embedding table (`vocab × hidden`), rows unit-normalized.
    pub embed: Matrix,
    /// Decoder layers.
    pub layers: Vec<LayerWeights>,
    /// Final RMSNorm gain.
    pub final_norm: Vec<f32>,
    /// LM head (`vocab × hidden`).
    pub lm_head: LinearOp,
}

impl ModelWeights {
    /// Random weights with the LM head *tied* to the embedding table, as in
    /// many open LLMs. Tying matters for the synthetic convergence driver:
    /// a hidden state steered toward a token's embedding produces that
    /// token's logit.
    pub fn random(cfg: &ModelConfig, rng: &mut Pcg) -> Self {
        let mut embed = Matrix::random(cfg.vocab_size, cfg.hidden_dim, 1.0, rng);
        for r in 0..embed.rows() {
            ops::l2_normalize(embed.row_mut(r));
        }
        let layers = (0..cfg.n_layers)
            .map(|_| LayerWeights::random(cfg, rng))
            .collect();
        ModelWeights {
            lm_head: embed.clone().into(),
            embed,
            layers,
            final_norm: vec![1.0; cfg.hidden_dim],
        }
    }

    /// Quantizes every projection (not norms/embeddings) to the given
    /// precision — the executable side of the AWQ substitution.
    pub fn quantize(&mut self, bits: QuantBits) {
        for layer in &mut self.layers {
            layer.quantize_in_place(bits);
        }
        if let LinearOp::Dense(m) = &self.lm_head {
            self.lm_head = LinearOp::quantized(m, bits);
        }
    }

    /// Total payload bytes at executed precision.
    pub fn bytes(&self) -> usize {
        self.embed.bytes()
            + self.layers.iter().map(LayerWeights::bytes).sum::<usize>()
            + self.final_norm.len() * 4
            + self.lm_head.bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_weights_have_expected_shapes() {
        let cfg = ModelConfig::tiny();
        let mut rng = Pcg::seed(1);
        let w = ModelWeights::random(&cfg, &mut rng);
        assert_eq!(w.embed.rows(), cfg.vocab_size);
        assert_eq!(w.embed.cols(), cfg.hidden_dim);
        assert_eq!(w.layers.len(), cfg.n_layers);
        assert_eq!(w.layers[0].wq.rows(), cfg.hidden_dim);
        assert_eq!(w.layers[0].w_gate.rows(), cfg.ffn_dim);
        assert_eq!(w.lm_head.rows(), cfg.vocab_size);
    }

    #[test]
    fn embedding_rows_unit_norm() {
        let cfg = ModelConfig::tiny();
        let mut rng = Pcg::seed(2);
        let w = ModelWeights::random(&cfg, &mut rng);
        for r in 0..8 {
            let n = ops::l2_norm(w.embed.row(r));
            assert!((n - 1.0).abs() < 1e-5, "row {r} norm {n}");
        }
    }

    #[test]
    fn lm_head_tied_to_embedding() {
        let cfg = ModelConfig::tiny();
        let mut rng = Pcg::seed(3);
        let w = ModelWeights::random(&cfg, &mut rng);
        let e0 = w.embed.row(0).to_vec();
        match &w.lm_head {
            LinearOp::Dense(m) => assert_eq!(m.row(0), e0.as_slice()),
            other => panic!("expected dense head, got {other:?}"),
        }
    }

    #[test]
    fn quantize_shrinks_payload() {
        let cfg = ModelConfig::tiny();
        let mut rng = Pcg::seed(4);
        let mut w = ModelWeights::random(&cfg, &mut rng);
        let dense_bytes = w.bytes();
        w.quantize(QuantBits::Int4);
        assert!(w.bytes() < dense_bytes / 2);
        assert!(w.layers[0].wq.is_quantized());
    }
}
