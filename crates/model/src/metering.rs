//! Cost-twin metering: ops record FLOPs/bytes at full-model scale.
//!
//! Each executed operation calls one of these helpers with the number of
//! context positions etc. it actually touched; the helper prices the op at
//! the [`CostDims`](crate::config::CostDims) twin (or the executed dims
//! when no twin is set) and
//! records it in the [`Meter`]. Activations and KV-cache entries are priced
//! at f16 (2 bytes) as on the paper's GPUs.

use specee_metrics::{Meter, OpKind};

use crate::config::ModelConfig;

/// Scale at which operations are priced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpScale {
    /// Hidden dimension.
    pub hidden: f64,
    /// Key/value width (`n_kv_heads × head_dim`).
    pub kv_dim: f64,
    /// FFN intermediate dimension.
    pub ffn: f64,
    /// Vocabulary size.
    pub vocab: f64,
    /// Decoder layer count.
    pub n_layers: f64,
    /// Bytes per weight element.
    pub wbytes: f64,
}

/// Bytes per activation / cache element on the modelled device (f16).
pub const ACT_BYTES: f64 = 2.0;

impl OpScale {
    /// Derives the pricing scale from a model configuration.
    pub fn of(cfg: &ModelConfig) -> Self {
        match &cfg.cost {
            Some(c) => OpScale {
                hidden: c.hidden_dim as f64,
                kv_dim: c.kv_dim() as f64,
                ffn: c.ffn_dim as f64,
                vocab: c.vocab_size as f64,
                n_layers: c.n_layers as f64,
                wbytes: c.weight_bytes_per_elem(),
            },
            None => OpScale {
                hidden: cfg.hidden_dim as f64,
                kv_dim: cfg.hidden_dim as f64,
                ffn: cfg.ffn_dim as f64,
                vocab: cfg.vocab_size as f64,
                n_layers: cfg.n_layers as f64,
                wbytes: 2.0,
            },
        }
    }

    /// Records one decode-step attention block over `kv_len` cached
    /// positions (projections, RoPE, scores, weighted sum, output).
    pub fn record_attention(&self, meter: &mut Meter, kv_len: usize) {
        let h = self.hidden;
        let kv = self.kv_dim;
        let n = kv_len as f64;
        let proj_flops = 4.0 * h * h + 4.0 * h * kv;
        let score_flops = 4.0 * n * h;
        let weight_bytes = (2.0 * h * h + 2.0 * h * kv) * self.wbytes;
        let kv_read = 2.0 * n * kv * ACT_BYTES;
        let act = 6.0 * h * ACT_BYTES;
        meter.record(
            OpKind::Attention,
            proj_flops + score_flops,
            weight_bytes + act,
            6,
        );
        meter.record(OpKind::KvCache, 0.0, kv_read + 2.0 * kv * ACT_BYTES, 1);
    }

    /// Records one tree-batched attention block: weights are read once for
    /// the whole node batch, while per-node score/projection FLOPs and KV
    /// traffic scale with the batch (how a batched GPU kernel behaves).
    pub fn record_attention_tree(&self, meter: &mut Meter, kv_lens: &[usize]) {
        let h = self.hidden;
        let kv = self.kv_dim;
        let n_nodes = kv_lens.len() as f64;
        let total_kv: f64 = kv_lens.iter().map(|&n| n as f64).sum();
        let proj_flops = (4.0 * h * h + 4.0 * h * kv) * n_nodes;
        let score_flops = 4.0 * total_kv * h;
        let weight_bytes = 2.0 * h * h + 2.0 * h * kv; // read once
        let act = 6.0 * h * ACT_BYTES * n_nodes;
        meter.record(
            OpKind::Attention,
            proj_flops + score_flops,
            weight_bytes * self.wbytes + act,
            6,
        );
        meter.record(
            OpKind::KvCache,
            0.0,
            2.0 * total_kv * kv * ACT_BYTES + 2.0 * kv * ACT_BYTES * n_nodes,
            1,
        );
    }

    /// Records a tree-batched dense FFN (weights read once).
    pub fn record_ffn_tree(&self, meter: &mut Meter, n_nodes: usize) {
        let n = n_nodes as f64;
        let flops = (6.0 * self.hidden * self.ffn + self.ffn) * n;
        let bytes = 3.0 * self.hidden * self.ffn * self.wbytes + 4.0 * self.hidden * ACT_BYTES * n;
        meter.record(OpKind::Ffn, flops, bytes, 3);
    }

    /// Records a tree-batched sparse FFN (union of active rows read once,
    /// approximated by the per-node fraction).
    pub fn record_ffn_sparse_tree(
        &self,
        meter: &mut Meter,
        n_nodes: usize,
        active_frac: f64,
        router_rank: usize,
    ) {
        let n = n_nodes as f64;
        let frac = active_frac.clamp(0.0, 1.0);
        let r = router_rank as f64;
        let router_flops = (2.0 * self.hidden * r + 2.0 * r * self.ffn) * n;
        let router_bytes = (self.hidden * r + r * self.ffn) * self.wbytes;
        let flops = (6.0 * self.hidden * self.ffn + self.ffn) * frac * n + router_flops;
        let bytes = 3.0 * self.hidden * self.ffn * self.wbytes * frac.min(1.0)
            + router_bytes
            + 4.0 * self.hidden * ACT_BYTES * n;
        meter.record(OpKind::Ffn, flops, bytes, 4);
    }

    /// Records a batched full LM head over `n` hidden states (weights read
    /// once — how EAGLE verifies a whole token tree in one GEMM).
    pub fn record_lm_head_full_batch(&self, meter: &mut Meter, n: usize) {
        let nn = n as f64;
        let flops = 2.0 * self.hidden * self.vocab * nn;
        let bytes = self.hidden * self.vocab * self.wbytes + self.vocab * ACT_BYTES * nn;
        meter.record(OpKind::LmHeadFull, flops, bytes, 1);
    }

    /// Records the batched norms of a tree layer.
    pub fn record_norms_tree(&self, meter: &mut Meter, n_nodes: usize) {
        let n = n_nodes as f64;
        meter.record(
            OpKind::Norm,
            8.0 * self.hidden * n,
            4.0 * self.hidden * ACT_BYTES * n,
            2,
        );
    }

    /// Records a dense gated-FFN block.
    pub fn record_ffn(&self, meter: &mut Meter) {
        let flops = 6.0 * self.hidden * self.ffn + self.ffn;
        let bytes = 3.0 * self.hidden * self.ffn * self.wbytes + 4.0 * self.hidden * ACT_BYTES;
        meter.record(OpKind::Ffn, flops, bytes, 3);
    }

    /// Records a sparse-activation FFN where only `active_frac` of neurons
    /// were computed, plus the low-rank router that predicted them
    /// (PowerInfer substitution).
    pub fn record_ffn_sparse(&self, meter: &mut Meter, active_frac: f64, router_rank: usize) {
        let frac = active_frac.clamp(0.0, 1.0);
        let r = router_rank as f64;
        let router_flops = 2.0 * self.hidden * r + 2.0 * r * self.ffn;
        let router_bytes = (self.hidden * r + r * self.ffn) * self.wbytes;
        let flops = (6.0 * self.hidden * self.ffn + self.ffn) * frac + router_flops;
        let bytes = 3.0 * self.hidden * self.ffn * self.wbytes * frac
            + router_bytes
            + 4.0 * self.hidden * ACT_BYTES;
        meter.record(OpKind::Ffn, flops, bytes, 4);
    }

    /// Records the RMSNorm pair of a decoder layer.
    pub fn record_norms(&self, meter: &mut Meter) {
        let flops = 8.0 * self.hidden;
        let bytes = 4.0 * self.hidden * ACT_BYTES;
        meter.record(OpKind::Norm, flops, bytes, 2);
    }

    /// Records a full-vocabulary LM-head product.
    pub fn record_lm_head_full(&self, meter: &mut Meter) {
        let flops = 2.0 * self.hidden * self.vocab;
        let bytes = self.hidden * self.vocab * self.wbytes + self.vocab * ACT_BYTES;
        meter.record(OpKind::LmHeadFull, flops, bytes, 1);
    }

    /// Records a speculative LM-head slice over `k` candidate rows
    /// (SpecEE T1's ~10⁴× search-space reduction).
    pub fn record_lm_head_slice(&self, meter: &mut Meter, k: usize) {
        let flops = 2.0 * self.hidden * k as f64;
        let bytes = self.hidden * k as f64 * self.wbytes + (self.hidden + k as f64) * ACT_BYTES;
        // slice gather + small GEMM + softmax
        meter.record(OpKind::LmHeadSlice, flops, bytes, 2);
    }

    /// Records an embedding-row gather.
    pub fn record_embed(&self, meter: &mut Meter) {
        meter.record(OpKind::Embed, 0.0, self.hidden * self.wbytes, 1);
    }

    /// Records the K/V projections used to fill one skipped layer's cache.
    pub fn record_skip_kv_fill(&self, meter: &mut Meter) {
        let flops = 4.0 * self.hidden * self.kv_dim;
        let bytes = 2.0 * self.hidden * self.kv_dim * self.wbytes + 2.0 * self.kv_dim * ACT_BYTES;
        meter.record(OpKind::SkipKvFill, flops, bytes, 2);
    }

    /// Records a softmax/sampling step over the vocabulary.
    pub fn record_sampling(&self, meter: &mut Meter) {
        meter.record(
            OpKind::Sampling,
            3.0 * self.vocab,
            self.vocab * ACT_BYTES,
            1,
        );
    }

    /// Records one draft-model forward: one decoder layer plus its LM head
    /// (the EAGLE draft head is ≈ one target-model layer, §3.2/§7.4.2).
    pub fn record_draft_forward(&self, meter: &mut Meter, kv_len: usize) {
        let h = self.hidden;
        let kv = self.kv_dim;
        let n = kv_len as f64;
        let layer_flops = 4.0 * h * h + 4.0 * h * kv + 4.0 * n * h + 6.0 * h * self.ffn;
        let layer_bytes = (2.0 * h * h + 2.0 * h * kv + 3.0 * h * self.ffn) * self.wbytes
            + 2.0 * n * kv * ACT_BYTES;
        let head_flops = 2.0 * h * self.vocab;
        let head_bytes = h * self.vocab * self.wbytes;
        meter.record(
            OpKind::Draft,
            layer_flops + head_flops,
            layer_bytes + head_bytes,
            10,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CostDims, ModelConfig};

    #[test]
    fn cost_twin_dominates_exec_dims() {
        let tiny = ModelConfig::tiny();
        let sim = ModelConfig::sim_llama2_7b();
        let s_tiny = OpScale::of(&tiny);
        let s_sim = OpScale::of(&sim);
        assert_eq!(s_sim.hidden, 4096.0);
        assert_eq!(s_tiny.hidden, 32.0);
    }

    #[test]
    fn ffn_dominates_attention_at_short_context() {
        let s = OpScale::of(&ModelConfig::sim_llama2_7b());
        let mut m_attn = Meter::new();
        s.record_attention(&mut m_attn, 64);
        let mut m_ffn = Meter::new();
        s.record_ffn(&mut m_ffn);
        assert!(m_ffn.total_flops() > m_attn.total_flops());
    }

    #[test]
    fn slice_is_tiny_vs_full_head() {
        let s = OpScale::of(&ModelConfig::sim_llama2_7b());
        let mut full = Meter::new();
        s.record_lm_head_full(&mut full);
        let mut slice = Meter::new();
        s.record_lm_head_slice(&mut slice, 4);
        // ~32000/4 = 8000x flops reduction (paper: ~10^4 x)
        assert!(full.total_flops() / slice.total_flops() > 5000.0);
    }

    #[test]
    fn quantized_twin_reduces_bytes_not_flops() {
        let cfg16 = ModelConfig::sim_llama2_7b();
        let cfg4 =
            ModelConfig::sim_llama2_7b().with_cost(CostDims::llama2_7b().with_weight_bits(4));
        let (s16, s4) = (OpScale::of(&cfg16), OpScale::of(&cfg4));
        let mut m16 = Meter::new();
        s16.record_ffn(&mut m16);
        let mut m4 = Meter::new();
        s4.record_ffn(&mut m4);
        assert_eq!(m16.total_flops(), m4.total_flops());
        assert!(m4.total_bytes() < m16.total_bytes() / 2.0);
    }

    #[test]
    fn sparse_ffn_cheaper_than_dense() {
        let s = OpScale::of(&ModelConfig::sim_llama2_7b());
        let mut dense = Meter::new();
        s.record_ffn(&mut dense);
        let mut sparse = Meter::new();
        s.record_ffn_sparse(&mut sparse, 0.2, 64);
        assert!(sparse.total_bytes() < dense.total_bytes() * 0.5);
    }
}
