//! The executable decoder-only transformer.

use specee_metrics::Meter;
use specee_tensor::{ops, rng::Pcg, BackendKind, QuantBits};

use crate::attention::{
    attention_forward, attention_forward_tree, attention_forward_tree_partial, TreeKv,
};
use crate::calibration::ActivationTap;
use crate::config::{ModelConfig, TokenId};
use crate::ffn::{
    ffn_apply, ffn_apply_sparse, ffn_forward, ffn_forward_sparse, FfnMode, FfnRouter,
};
use crate::kv::{KvCache, KvLayout, SkipKvPolicy};
use crate::linear::LinearOp;
use crate::metering::OpScale;
use crate::traits::LayeredLm;
use crate::weights::ModelWeights;

/// A from-scratch Llama-style decoder with per-layer stepping.
///
/// # Examples
///
/// ```
/// use specee_model::{ModelConfig, Transformer};
/// use specee_model::traits::LayeredLm;
/// use specee_metrics::Meter;
/// use specee_tensor::rng::Pcg;
///
/// let cfg = ModelConfig::tiny();
/// let mut model = Transformer::random(cfg.clone(), &mut Pcg::seed(1));
/// let mut meter = Meter::new();
/// let mut h = model.begin_token(5, &mut meter);
/// for layer in 0..cfg.n_layers {
///     h = model.forward_layer(layer, &h, 0, &mut meter);
/// }
/// let logits = model.final_logits(&h, &mut meter);
/// assert_eq!(logits.len(), cfg.vocab_size);
/// ```
#[derive(Debug, Clone)]
pub struct Transformer {
    config: ModelConfig,
    weights: ModelWeights,
    caches: Vec<KvCache>,
    ffn_mode: FfnMode,
    routers: Vec<FfnRouter>,
    scale: OpScale,
    /// Compute backend every projection mat-vec dispatches through.
    backend: BackendKind,
    /// Armed during AWQ calibration runs; `None` on the hot path.
    tap: Option<ActivationTap>,
}

impl Transformer {
    /// Builds a transformer from explicit weights with a contiguous cache.
    pub fn new(config: ModelConfig, weights: ModelWeights) -> Self {
        Self::with_layout(config, weights, KvLayout::Contiguous)
    }

    /// Builds a transformer with the given KV layout.
    pub fn with_layout(config: ModelConfig, weights: ModelWeights, layout: KvLayout) -> Self {
        config.validate().expect("valid config");
        let caches = (0..config.n_layers)
            .map(|_| KvCache::new(config.hidden_dim, layout))
            .collect();
        let scale = OpScale::of(&config);
        Transformer {
            config,
            weights,
            caches,
            ffn_mode: FfnMode::Dense,
            routers: Vec::new(),
            scale,
            backend: BackendKind::default(),
            tap: None,
        }
    }

    /// Builds a randomly-initialized transformer.
    pub fn random(config: ModelConfig, rng: &mut Pcg) -> Self {
        let weights = ModelWeights::random(&config, rng);
        Self::new(config, weights)
    }

    /// Switches to sparse-activation FFNs (PowerInfer substitution),
    /// creating one router per layer.
    pub fn enable_sparse_ffn(&mut self, active_frac: f32, router_rank: usize, rng: &mut Pcg) {
        self.routers = (0..self.config.n_layers)
            .map(|_| {
                FfnRouter::random(
                    self.config.hidden_dim,
                    self.config.ffn_dim,
                    router_rank,
                    rng,
                )
            })
            .collect();
        self.ffn_mode = FfnMode::Sparse {
            active_frac,
            router_rank,
        };
    }

    /// Quantizes all projection weights with plain round-to-nearest.
    /// Callers should pair this with a cost twin carrying the matching
    /// `weight_bits`. For activation-calibrated quantization see
    /// [`crate::calibration::quantize_awq`].
    pub fn quantize(&mut self, bits: QuantBits) {
        self.weights.quantize(bits);
    }

    /// Arms the AWQ calibration tap: subsequent forwards record linear-op
    /// inputs until [`Transformer::take_calibration_tap`].
    pub fn start_calibration_tap(&mut self) {
        self.tap = Some(ActivationTap::new(self.config.n_layers));
    }

    /// Disarms the tap and returns the recorded activations (`None` if the
    /// tap was never armed).
    pub fn take_calibration_tap(&mut self) -> Option<ActivationTap> {
        self.tap.take()
    }

    /// Applies AWQ quantization from recorded activations: calibrated
    /// channel scales for the norm-fed projections (`wq`/`wk`/`wv`,
    /// `w_gate`/`w_up`, LM head), round-to-nearest for `wo`/`w_down`.
    pub(crate) fn apply_awq(&mut self, bits: QuantBits, tap: &ActivationTap) {
        for (layer, w) in self.weights.layers.iter_mut().enumerate() {
            for op in [&mut w.wq, &mut w.wk, &mut w.wv] {
                if let LinearOp::Dense(m) = op {
                    *op = LinearOp::awq_quantized(m, bits, &tap.attn_in[layer]);
                }
            }
            for op in [&mut w.w_gate, &mut w.w_up] {
                if let LinearOp::Dense(m) = op {
                    *op = LinearOp::awq_quantized(m, bits, &tap.ffn_in[layer]);
                }
            }
            for op in [&mut w.wo, &mut w.w_down] {
                if let LinearOp::Dense(m) = op {
                    *op = LinearOp::quantized(m, bits);
                }
            }
        }
        if let LinearOp::Dense(m) = &self.weights.lm_head {
            self.weights.lm_head = LinearOp::awq_quantized(m, bits, &tap.head_in);
        }
    }

    /// Switches the KV layout (clears cached positions).
    pub fn set_kv_layout(&mut self, layout: KvLayout) {
        self.caches = (0..self.config.n_layers)
            .map(|_| KvCache::new(self.config.hidden_dim, layout))
            .collect();
    }

    /// Borrows layer `layer`'s KV cache (read-only; engine-tier tests use
    /// this to check split-commit invariants row by row).
    pub fn cache(&self, layer: usize) -> &KvCache {
        &self.caches[layer]
    }

    /// Borrows the weights.
    pub fn weights(&self) -> &ModelWeights {
        &self.weights
    }

    /// The pricing scale in use.
    pub fn scale(&self) -> &OpScale {
        &self.scale
    }

    /// Selects the compute backend for every subsequent forward.
    /// [`BackendKind::Reference`] (the default) is the scalar oracle;
    /// [`BackendKind::Blocked`] is bit-identical on dense weights.
    pub fn set_backend(&mut self, backend: BackendKind) {
        self.backend = backend;
    }

    /// The compute backend in use.
    pub fn backend(&self) -> BackendKind {
        self.backend
    }

    fn normed(&self, h: &[f32], gain: &[f32]) -> Vec<f32> {
        ops::rmsnorm(h, gain, 1e-5)
    }
}

impl LayeredLm for Transformer {
    fn config(&self) -> &ModelConfig {
        &self.config
    }

    fn set_backend(&mut self, backend: BackendKind) {
        Transformer::set_backend(self, backend);
    }

    fn backend(&self) -> BackendKind {
        self.backend
    }

    fn reset(&mut self) {
        for c in &mut self.caches {
            c.clear();
        }
    }

    fn begin_token(&mut self, token: TokenId, meter: &mut Meter) -> Vec<f32> {
        assert!(
            (token as usize) < self.config.vocab_size,
            "token {token} out of vocabulary"
        );
        self.scale.record_embed(meter);
        self.weights.embed.row(token as usize).to_vec()
    }

    fn forward_layer(
        &mut self,
        layer: usize,
        h: &[f32],
        pos: usize,
        meter: &mut Meter,
    ) -> Vec<f32> {
        assert!(layer < self.config.n_layers, "layer {layer} out of range");
        let w = &self.weights.layers[layer];
        let cache = &mut self.caches[layer];
        let normed = ops::rmsnorm(h, &w.attn_norm, 1e-5);
        let attn = attention_forward(
            w,
            &self.config,
            &self.scale,
            self.backend,
            &normed,
            pos,
            cache,
            meter,
        );
        let mut mid: Vec<f32> = h.iter().zip(attn.iter()).map(|(a, b)| a + b).collect();
        let normed2 = ops::rmsnorm(&mid, &w.ffn_norm, 1e-5);
        let ffn = match self.ffn_mode {
            FfnMode::Dense => ffn_forward(w, &self.scale, self.backend, &normed2, meter),
            FfnMode::Sparse { active_frac, .. } => ffn_forward_sparse(
                w,
                &self.routers[layer],
                active_frac,
                &self.scale,
                &normed2,
                meter,
            ),
        };
        self.scale.record_norms(meter);
        for (m, f) in mid.iter_mut().zip(ffn.iter()) {
            *m += f;
        }
        if let Some(tap) = &mut self.tap {
            tap.record_attn(layer, &normed);
            tap.record_ffn(layer, &normed2);
        }
        mid
    }

    fn begin_tree(
        &mut self,
        tokens: &[TokenId],
        parents: &[Option<usize>],
        meter: &mut Meter,
    ) -> Vec<Vec<f32>> {
        assert_eq!(tokens.len(), parents.len(), "tokens/parents length");
        tokens
            .iter()
            .map(|&t| {
                self.scale.record_embed(meter);
                self.weights.embed.row(t as usize).to_vec()
            })
            .collect()
    }

    fn forward_layer_tree(
        &mut self,
        layer: usize,
        hs: &[Vec<f32>],
        parents: &[Option<usize>],
        meter: &mut Meter,
    ) -> (Vec<Vec<f32>>, TreeKv) {
        assert!(layer < self.config.n_layers, "layer {layer} out of range");
        let w = &self.weights.layers[layer];
        let cache = &self.caches[layer];
        let normed: Vec<Vec<f32>> = hs
            .iter()
            .map(|h| ops::rmsnorm(h, &w.attn_norm, 1e-5))
            .collect();
        let (attn_outs, tree_kv) = attention_forward_tree(
            w,
            &self.config,
            &self.scale,
            self.backend,
            &normed,
            parents,
            cache,
            meter,
        );
        let mut outs = Vec::with_capacity(hs.len());
        for (h, attn) in hs.iter().zip(attn_outs.iter()) {
            let mut mid: Vec<f32> = h.iter().zip(attn.iter()).map(|(a, b)| a + b).collect();
            let normed2 = ops::rmsnorm(&mid, &w.ffn_norm, 1e-5);
            let ffn = match self.ffn_mode {
                FfnMode::Dense => ffn_apply(w, self.backend, &normed2),
                FfnMode::Sparse { active_frac, .. } => {
                    ffn_apply_sparse(w, &self.routers[layer], active_frac, &normed2)
                }
            };
            for (m, f) in mid.iter_mut().zip(ffn.iter()) {
                *m += f;
            }
            outs.push(mid);
        }
        // Batched metering: the FFN/norm weights are read once per layer
        // regardless of how many tree nodes flow through.
        match self.ffn_mode {
            FfnMode::Dense => self.scale.record_ffn_tree(meter, hs.len()),
            FfnMode::Sparse {
                active_frac,
                router_rank,
            } => {
                self.scale
                    .record_ffn_sparse_tree(meter, hs.len(), active_frac as f64, router_rank)
            }
        }
        self.scale.record_norms_tree(meter, hs.len());
        (outs, tree_kv)
    }

    fn extend_tree(
        &mut self,
        tokens: &[TokenId],
        parents: &[Option<usize>],
        first_new: usize,
        meter: &mut Meter,
    ) -> Vec<Vec<f32>> {
        assert_eq!(
            parents.len(),
            first_new + tokens.len(),
            "parents must cover old and new nodes"
        );
        tokens
            .iter()
            .map(|&t| {
                self.scale.record_embed(meter);
                self.weights.embed.row(t as usize).to_vec()
            })
            .collect()
    }

    fn forward_layer_tree_partial(
        &mut self,
        layer: usize,
        new_hs: &[Vec<f32>],
        parents: &[Option<usize>],
        first_new: usize,
        scratch: &mut TreeKv,
        meter: &mut Meter,
    ) -> Vec<Vec<f32>> {
        assert!(layer < self.config.n_layers, "layer {layer} out of range");
        let w = &self.weights.layers[layer];
        let cache = &self.caches[layer];
        let normed: Vec<Vec<f32>> = new_hs
            .iter()
            .map(|h| ops::rmsnorm(h, &w.attn_norm, 1e-5))
            .collect();
        let attn_outs = attention_forward_tree_partial(
            w,
            &self.config,
            &self.scale,
            self.backend,
            &normed,
            parents,
            first_new,
            cache,
            scratch,
            meter,
        );
        let mut outs = Vec::with_capacity(new_hs.len());
        for (h, attn) in new_hs.iter().zip(attn_outs.iter()) {
            let mut mid: Vec<f32> = h.iter().zip(attn.iter()).map(|(a, b)| a + b).collect();
            let normed2 = ops::rmsnorm(&mid, &w.ffn_norm, 1e-5);
            let ffn = match self.ffn_mode {
                FfnMode::Dense => ffn_apply(w, self.backend, &normed2),
                FfnMode::Sparse { active_frac, .. } => {
                    ffn_apply_sparse(w, &self.routers[layer], active_frac, &normed2)
                }
            };
            for (m, f) in mid.iter_mut().zip(ffn.iter()) {
                *m += f;
            }
            outs.push(mid);
        }
        match self.ffn_mode {
            FfnMode::Dense => self.scale.record_ffn_tree(meter, new_hs.len()),
            FfnMode::Sparse {
                active_frac,
                router_rank,
            } => self.scale.record_ffn_sparse_tree(
                meter,
                new_hs.len(),
                active_frac as f64,
                router_rank,
            ),
        }
        self.scale.record_norms_tree(meter, new_hs.len());
        outs
    }

    fn commit_tree_kv(&mut self, layer: usize, kv: &TreeKv, accepted: &[usize]) {
        let cache = &mut self.caches[layer];
        for &i in accepted {
            cache.push(&kv.k[i], &kv.v[i]);
        }
    }

    fn accept_tokens(&mut self, _tokens: &[TokenId]) {
        // The plain transformer keeps no semantic context; KV commitment is
        // handled by `commit_tree_kv`.
    }

    fn fill_layer_kv(
        &mut self,
        layer: usize,
        h: &[f32],
        pos: usize,
        policy: SkipKvPolicy,
        meter: &mut Meter,
    ) {
        let heads = self.config.n_heads;
        let head_dim = self.config.head_dim();
        let w = &self.weights.layers[layer];
        let cache = &mut self.caches[layer];
        debug_assert_eq!(cache.len(), pos, "skip-fill position");
        match policy {
            SkipKvPolicy::ProjectExitHidden => {
                let normed = ops::rmsnorm(h, &w.attn_norm, 1e-5);
                let mut k = w.wk.matvec_with(self.backend, &normed);
                crate::rope::apply_rope(&mut k, pos, heads, head_dim, self.config.rope_theta);
                let v = w.wv.matvec_with(self.backend, &normed);
                cache.push(&k, &v);
                self.scale.record_skip_kv_fill(meter);
            }
            SkipKvPolicy::ReuseLast => {
                if cache.is_empty() {
                    cache.push_zero();
                } else {
                    cache.push_repeat_last();
                }
            }
            SkipKvPolicy::ZeroFill => cache.push_zero(),
        }
    }

    fn final_logits(&mut self, h: &[f32], meter: &mut Meter) -> Vec<f32> {
        let normed = self.normed(h, &self.weights.final_norm.clone());
        if let Some(tap) = &mut self.tap {
            tap.record_head(&normed);
        }
        self.scale.record_lm_head_full(meter);
        self.weights.lm_head.matvec_with(self.backend, &normed)
    }

    fn final_logits_batch(&mut self, hs: &[Vec<f32>], meter: &mut Meter) -> Vec<Vec<f32>> {
        self.scale.record_lm_head_full_batch(meter, hs.len());
        hs.iter()
            .map(|h| {
                let normed = self.normed(h, &self.weights.final_norm.clone());
                self.weights.lm_head.matvec_with(self.backend, &normed)
            })
            .collect()
    }

    fn slice_logits(&mut self, h: &[f32], tokens: &[TokenId], meter: &mut Meter) -> Vec<f32> {
        let normed = self.normed(h, &self.weights.final_norm.clone());
        self.scale.record_lm_head_slice(meter, tokens.len());
        let rows: Vec<usize> = tokens.iter().map(|&t| t as usize).collect();
        self.weights.lm_head.matvec_rows(&rows, &normed)
    }

    fn grouped_slice_logits(
        &mut self,
        hs: &[&[f32]],
        candidate_sets: &[&[TokenId]],
        meter: &mut Meter,
    ) -> Vec<Vec<f32>> {
        assert_eq!(hs.len(), candidate_sets.len(), "groups mismatch");
        let total_k: usize = candidate_sets.iter().map(|c| c.len()).sum();
        self.scale.record_lm_head_slice(meter, total_k);
        hs.iter()
            .zip(candidate_sets.iter())
            .map(|(h, tokens)| {
                let normed = self.normed(h, &self.weights.final_norm.clone());
                let rows: Vec<usize> = tokens.iter().map(|&t| t as usize).collect();
                self.weights.lm_head.matvec_rows(&rows, &normed)
            })
            .collect()
    }

    fn kv_len(&self) -> usize {
        self.caches.first().map_or(0, KvCache::len)
    }

    fn truncate_kv(&mut self, len: usize) {
        for c in &mut self.caches {
            c.truncate(len);
        }
    }

    fn allocated_kv_tokens(&self) -> usize {
        self.caches.iter().map(KvCache::allocated_tokens).sum()
    }

    fn modelled_weight_bytes(&self) -> f64 {
        match &self.config.cost {
            Some(c) => c.weight_bytes_total(),
            None => self.weights.bytes() as f64,
        }
    }
}

/// Runs a full prompt prefill through all layers, committing KV for every
/// prompt position, and returns the final hidden state of the last prompt
/// token.
///
/// # Panics
///
/// Panics if `prompt` is empty.
pub fn prefill<M: LayeredLm + ?Sized>(
    model: &mut M,
    prompt: &[TokenId],
    meter: &mut Meter,
) -> Vec<f32> {
    assert!(!prompt.is_empty(), "prompt must be non-empty");
    let n_layers = model.config().n_layers;
    let mut last_hidden = Vec::new();
    let base = model.kv_len();
    for (i, &tok) in prompt.iter().enumerate() {
        let pos = base + i;
        let mut h = model.begin_token(tok, meter);
        for layer in 0..n_layers {
            h = model.forward_layer(layer, &h, pos, meter);
        }
        last_hidden = h;
    }
    last_hidden
}

#[cfg(test)]
mod tests {
    use super::*;
    use specee_tensor::ops::argmax;

    fn model() -> Transformer {
        Transformer::random(ModelConfig::tiny(), &mut Pcg::seed(42))
    }

    #[test]
    fn full_forward_produces_vocab_logits() {
        let mut m = model();
        let mut meter = Meter::new();
        let h = prefill(&mut m, &[1, 2, 3], &mut meter);
        let logits = m.final_logits(&h, &mut meter);
        assert_eq!(logits.len(), m.config().vocab_size);
        assert_eq!(m.kv_len(), 3);
        assert!(argmax(&logits).is_some());
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = model();
        let mut b = model();
        let mut meter = Meter::new();
        let ha = prefill(&mut a, &[5, 9], &mut meter);
        let hb = prefill(&mut b, &[5, 9], &mut meter);
        assert_eq!(ha, hb);
    }

    #[test]
    fn slice_logits_match_full_logits() {
        let mut m = model();
        let mut meter = Meter::new();
        let h = prefill(&mut m, &[7], &mut meter);
        let full = m.final_logits(&h, &mut meter);
        let slice = m.slice_logits(&h, &[3, 11, 64], &mut meter);
        assert!((slice[0] - full[3]).abs() < 1e-5);
        assert!((slice[1] - full[11]).abs() < 1e-5);
        assert!((slice[2] - full[64]).abs() < 1e-5);
    }

    #[test]
    fn reset_clears_kv() {
        let mut m = model();
        let mut meter = Meter::new();
        prefill(&mut m, &[1, 2], &mut meter);
        m.reset();
        assert_eq!(m.kv_len(), 0);
    }

    #[test]
    fn fill_skipped_kv_advances_all_layers() {
        let mut m = model();
        let mut meter = Meter::new();
        // run position 0 through only 2 of 4 layers
        let mut h = m.begin_token(1, &mut meter);
        for layer in 0..2 {
            h = m.forward_layer(layer, &h, 0, &mut meter);
        }
        m.fill_skipped_kv(2, &h, 0, SkipKvPolicy::ProjectExitHidden, &mut meter);
        for layer in 0..4 {
            assert_eq!(m.caches[layer].len(), 1, "layer {layer}");
        }
        // next token can now run all layers
        let mut h2 = m.begin_token(2, &mut meter);
        for layer in 0..4 {
            h2 = m.forward_layer(layer, &h2, 1, &mut meter);
        }
        assert_eq!(m.kv_len(), 2);
    }

    #[test]
    fn zero_fill_policy_pushes_zeros() {
        let mut m = model();
        let mut meter = Meter::new();
        let h = m.begin_token(1, &mut meter);
        let h = m.forward_layer(0, &h, 0, &mut meter);
        m.fill_skipped_kv(1, &h, 0, SkipKvPolicy::ZeroFill, &mut meter);
        assert_eq!(m.caches[3].key(0), vec![0.0; 32].as_slice());
    }

    #[test]
    fn tree_commit_matches_sequential_kv() {
        let mut m = model();
        let mut meter = Meter::new();
        prefill(&mut m, &[4, 6], &mut meter);
        let kv_before = m.kv_len();

        // One-node tree through all layers, then commit.
        let tokens = [9u32];
        let parents = [None];
        let mut hs = m.begin_tree(&tokens, &parents, &mut meter);
        let mut kvs = Vec::new();
        for layer in 0..m.config().n_layers {
            let (out, kv) = m.forward_layer_tree(layer, &hs, &parents, &mut meter);
            hs = out;
            kvs.push(kv);
        }
        for (layer, kv) in kvs.iter().enumerate() {
            m.commit_tree_kv(layer, kv, &[0]);
        }
        assert_eq!(m.kv_len(), kv_before + 1);

        // Sequential reference on a fresh, identical model.
        let mut reference = model();
        prefill(&mut reference, &[4, 6], &mut meter);
        let mut h = reference.begin_token(9, &mut meter);
        for layer in 0..reference.config().n_layers {
            h = reference.forward_layer(layer, &h, 2, &mut meter);
        }
        for (a, b) in hs[0].iter().zip(h.iter()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
        for layer in 0..4 {
            let ck = m.caches[layer].key(2);
            let rk = reference.caches[layer].key(2);
            for (a, b) in ck.iter().zip(rk.iter()) {
                assert!((a - b).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn split_kv_draft_then_resume_matches_full_sweep_bit_for_bit() {
        // The self-draft split: layers 0..exit run incrementally while the
        // tree grows (the draft pass), layers exit.. run once over the
        // finished tree (the verify pass). Both halves must match the
        // one-shot full sweep bit for bit, and committing the draft-pass
        // scratch must leave the caches exactly as if the shallow layers
        // had been re-run — without actually re-running them.
        let exit = 2usize;
        let tokens = [9u32, 5, 7];
        let parents = [None, Some(0), Some(1)];

        let mut m = model();
        let mut meter = Meter::new();
        prefill(&mut m, &[4, 6], &mut meter);

        // Draft pass: grow the chain one node at a time through the
        // shallow layers, keeping per-layer exit hiddens and scratch KV.
        let mut shallow_kvs: Vec<TreeKv> = vec![TreeKv::default(); exit];
        let mut exit_hs: Vec<Vec<f32>> = Vec::new();
        for first_new in 0..tokens.len() {
            let mut hs = m.extend_tree(
                &tokens[first_new..first_new + 1],
                &parents[..first_new + 1],
                first_new,
                &mut meter,
            );
            for (layer, scratch) in shallow_kvs.iter_mut().enumerate() {
                hs = m.forward_layer_tree_partial(
                    layer,
                    &hs,
                    &parents[..first_new + 1],
                    first_new,
                    scratch,
                    &mut meter,
                );
            }
            exit_hs.extend(hs);
        }

        // Verify pass: resume from the exit-layer hiddens over all nodes.
        let mut hs = exit_hs.clone();
        let mut deep_kvs = Vec::new();
        for layer in exit..m.config().n_layers {
            let (out, kv) = m.forward_layer_tree(layer, &hs, &parents, &mut meter);
            hs = out;
            deep_kvs.push(kv);
        }

        // One-shot full sweep on a fresh, identical model.
        let mut full = model();
        prefill(&mut full, &[4, 6], &mut meter);
        let mut fhs = full.begin_tree(&tokens, &parents, &mut meter);
        let mut full_kvs = Vec::new();
        for layer in 0..full.config().n_layers {
            let (out, kv) = full.forward_layer_tree(layer, &fhs, &parents, &mut meter);
            fhs = out;
            full_kvs.push(kv);
        }
        assert_eq!(hs, fhs, "split sweep must match the full sweep bit for bit");
        for layer in 0..exit {
            assert_eq!(shallow_kvs[layer], full_kvs[layer], "layer {layer}");
        }

        // Commit: shallow layers from the draft-pass scratch (no second
        // shallow forward), deep layers from the verify pass.
        let accepted = [0usize, 1];
        for (layer, kv) in shallow_kvs.iter().enumerate() {
            m.commit_tree_kv(layer, kv, &accepted);
        }
        for (i, kv) in deep_kvs.iter().enumerate() {
            m.commit_tree_kv(exit + i, kv, &accepted);
        }
        assert_eq!(m.kv_len(), 2 + accepted.len());

        // Sequential reference: the committed caches must match a model
        // that decoded the accepted tokens one at a time.
        let mut reference = model();
        prefill(&mut reference, &[4, 6], &mut meter);
        for (ord, &tok) in [9u32, 5].iter().enumerate() {
            let mut h = reference.begin_token(tok, &mut meter);
            for layer in 0..reference.config().n_layers {
                h = reference.forward_layer(layer, &h, 2 + ord, &mut meter);
            }
        }
        for layer in 0..4 {
            for pos in 2..4 {
                let ck = m.caches[layer].key(pos);
                let rk = reference.caches[layer].key(pos);
                for (a, b) in ck.iter().zip(rk.iter()) {
                    assert!((a - b).abs() < 1e-4, "layer {layer} pos {pos}");
                }
            }
        }
    }

    #[test]
    fn quantized_model_still_decodes() {
        let mut m = model();
        m.quantize(QuantBits::Int8);
        let mut meter = Meter::new();
        let h = prefill(&mut m, &[3, 2, 1], &mut meter);
        assert_eq!(m.final_logits(&h, &mut meter).len(), 128);
    }

    #[test]
    fn sparse_ffn_model_still_decodes() {
        let mut m = model();
        m.enable_sparse_ffn(0.25, 4, &mut Pcg::seed(9));
        let mut meter = Meter::new();
        let h = prefill(&mut m, &[3, 2, 1], &mut meter);
        assert_eq!(m.final_logits(&h, &mut meter).len(), 128);
    }
}
