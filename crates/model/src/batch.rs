//! The batched forward path: per-slot sequences swept through a shared
//! layer loop, backed by a paged-KV memory plane.
//!
//! A served batch runs N independent sequences in lock-step: one shared
//! sweep over the decoder layers in which each sequence participates only
//! while it still needs the layer (its *active mask*). Every slot keeps
//! its own KV state — the per-layer [`crate::KvCache`]s of its
//! [`LayeredLm`] instance — while page occupancy across slots is tracked
//! by a vllm-style [`SlotPool`] whose freed blocks are recycled when a
//! sequence retires.
//!
//! The pool is a *refcounted* page allocator: a page may be leased by
//! several sequences at once (copy-on-write prefix sharing), and an
//! optional capacity turns exhaustion into a checkable condition instead
//! of unbounded growth, which is what makes preemption in the batched
//! engine possible. Prefix sharing is driven by a [`PrefixIndex`] — a
//! radix-style tree over whole-page prompt chunks — consulted at
//! admission: a new sequence's prompt is matched against resident
//! prefixes and the matching pages are leased read-only, with a private
//! copy made only on the first divergent write
//! (see [`BatchedStack::admit_shared`]).
//!
//! [`BatchedStack`] is the substrate the `specee-batch` engine drives: it
//! owns the slot models, leases KV pages on their behalf, and exposes the
//! masked layer sweep ([`BatchedStack::sweep_layer`]) whose per-layer
//! runner counts are exactly the quantity batched pricing needs (a layer's
//! weights stream once for the whole batch if *any* slot runs it — the
//! Cannikin effect measured live by the batched engine).

use specee_metrics::Meter;

use crate::attention::TreeKv;
use crate::traits::LayeredLm;

/// A pool of fixed-size KV pages shared by every slot of a batch.
///
/// Pages are identified by index; freed pages go to a free list and are
/// handed out again before the pool grows (the block-allocator recycling
/// of vllm's PagedAttention). One page holds `page_size` token positions
/// of per-layer K/V for the whole decoder stack.
///
/// Every live page carries a reference count: [`SlotPool::alloc_page`]
/// hands out a page with one reference, [`SlotPool::share_page`] adds a
/// reader (copy-on-write prefix sharing), and [`SlotPool::free_page`]
/// drops one reference — the page returns to the free list exactly when
/// its count reaches zero. Physical statistics ([`SlotPool::pages_in_use`],
/// [`SlotPool::pages_peak`]) count each resident page once no matter how
/// many sequences lease it; [`SlotPool::logical_pages_in_use`] counts
/// leases, so `logical − physical` is the occupancy saved by sharing.
///
/// # Examples
///
/// ```
/// use specee_model::batch::SlotPool;
///
/// let mut pool = SlotPool::new(16);
/// let a = pool.alloc_page();
/// let b = pool.alloc_page();
/// pool.free_page(a);
/// assert_eq!(pool.alloc_page(), a); // recycled, not grown
/// assert_eq!(pool.pages_created(), 2);
///
/// // Copy-on-write sharing: two leases, one physical page.
/// pool.share_page(b);
/// assert_eq!(pool.shared_pages(), 1);
/// assert_eq!(pool.logical_pages_in_use(), 3);
/// assert_eq!(pool.pages_in_use(), 2);
/// pool.free_page(b); // drop one reader; the page stays resident
/// assert_eq!(pool.pages_in_use(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotPool {
    page_size: usize,
    free: Vec<usize>,
    /// Reference count per created page (`0` = on the free list).
    refs: Vec<u32>,
    /// Physical pages with at least one reference.
    in_use: usize,
    /// Total references across pages (lease count).
    logical: usize,
    /// Physical pages with two or more references.
    shared: usize,
    peak: usize,
    /// Physical-page ceiling; `None` grows without bound.
    capacity: Option<usize>,
    cow_copies: u64,
}

impl SlotPool {
    /// Creates an empty pool of `page_size`-token pages.
    ///
    /// # Panics
    ///
    /// Panics if `page_size` is zero.
    pub fn new(page_size: usize) -> Self {
        assert!(page_size > 0, "page_size must be positive");
        SlotPool {
            page_size,
            free: Vec::new(),
            refs: Vec::new(),
            in_use: 0,
            logical: 0,
            shared: 0,
            peak: 0,
            capacity: None,
            cow_copies: 0,
        }
    }

    /// Tokens per page.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Caps the pool at `capacity` physical pages (`None` removes the
    /// cap). With a cap in place, [`SlotPool::try_alloc_page`] returns
    /// `None` at the ceiling and [`SlotPool::alloc_page`] panics — the
    /// condition the batched engine turns into preemption.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is `Some(0)`.
    pub fn set_capacity(&mut self, capacity: Option<usize>) {
        assert!(capacity != Some(0), "page capacity must be positive");
        self.capacity = capacity;
    }

    /// The physical-page ceiling, if one is set.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Physical pages still allocatable before the ceiling
    /// (`usize::MAX` when uncapped).
    pub fn available_pages(&self) -> usize {
        self.capacity
            .map_or(usize::MAX, |c| c.saturating_sub(self.in_use))
    }

    /// Hands out a page id, preferring recycled pages over growth.
    ///
    /// # Panics
    ///
    /// Panics if a capacity is set and every physical page is resident.
    pub fn alloc_page(&mut self) -> usize {
        self.try_alloc_page().unwrap_or_else(|| {
            panic!(
                "page pool exhausted ({} pages resident at capacity {:?})",
                self.in_use, self.capacity
            )
        })
    }

    /// Hands out a page id, or `None` if the pool is at capacity.
    pub fn try_alloc_page(&mut self) -> Option<usize> {
        if self.available_pages() == 0 {
            return None;
        }
        let page = self.free.pop().unwrap_or_else(|| {
            self.refs.push(0);
            self.refs.len() - 1
        });
        debug_assert_eq!(self.refs[page], 0, "free page has live references");
        self.refs[page] = 1;
        self.in_use += 1;
        self.logical += 1;
        // Peak tracks *physical* residency and moves only when a page
        // transitions free→resident, so a block freed and regrown within
        // the same step counts once (regression: the old stat path could
        // double-count it), and share/release cycles never move it.
        self.peak = self.peak.max(self.in_use);
        Some(page)
    }

    /// Adds a reference to a resident page: the caller becomes a
    /// read-only co-lessee (copy-on-write sharing). Balance with one
    /// [`SlotPool::free_page`] per share.
    ///
    /// # Panics
    ///
    /// Panics if the page was never allocated or is currently free.
    pub fn share_page(&mut self, page: usize) {
        assert!(page < self.refs.len(), "page {page} was never allocated");
        assert!(self.refs[page] > 0, "page {page} is free, cannot share");
        self.refs[page] += 1;
        self.logical += 1;
        if self.refs[page] == 2 {
            self.shared += 1;
        }
    }

    /// Drops one reference; the page returns to the free list exactly
    /// when the last reference is dropped.
    ///
    /// # Panics
    ///
    /// Panics if the page was never allocated or has no live references
    /// (a double free).
    pub fn free_page(&mut self, page: usize) {
        assert!(page < self.refs.len(), "page {page} was never allocated");
        assert!(self.refs[page] > 0, "page {page} double-freed");
        if self.refs[page] == 2 {
            self.shared -= 1;
        }
        self.refs[page] -= 1;
        self.logical -= 1;
        if self.refs[page] == 0 {
            self.free.push(page);
            self.in_use -= 1;
        }
    }

    /// Copy-on-write: drops the caller's reference on shared `page` and
    /// hands back a fresh private page for the diverging copy. Counted
    /// in [`SlotPool::cow_copies`].
    ///
    /// # Panics
    ///
    /// Panics like [`SlotPool::free_page`] / [`SlotPool::alloc_page`].
    pub fn cow_page(&mut self, page: usize) -> usize {
        self.free_page(page);
        let fresh = self.alloc_page();
        self.cow_copies += 1;
        fresh
    }

    /// Live references on `page` (`0` = free).
    ///
    /// # Panics
    ///
    /// Panics if the page was never allocated.
    pub fn ref_count(&self, page: usize) -> u32 {
        assert!(page < self.refs.len(), "page {page} was never allocated");
        self.refs[page]
    }

    /// Physical pages currently resident (each counted once, however
    /// many sequences lease it).
    pub fn pages_in_use(&self) -> usize {
        self.in_use
    }

    /// Total leases across resident pages; `logical − physical` is the
    /// occupancy saved by copy-on-write sharing.
    pub fn logical_pages_in_use(&self) -> usize {
        self.logical
    }

    /// Resident pages with two or more lessees. Always
    /// `≤ pages_in_use()`.
    pub fn shared_pages(&self) -> usize {
        self.shared
    }

    /// Private copies made on first divergent write
    /// ([`SlotPool::cow_page`]).
    pub fn cow_copies(&self) -> u64 {
        self.cow_copies
    }

    /// Distinct pages ever created (the pool's backing-store size).
    pub fn pages_created(&self) -> usize {
        self.refs.len()
    }

    /// Peak simultaneous *physical* residency (the memory high-water
    /// mark). Sharing the same page many times does not move it.
    pub fn pages_peak(&self) -> usize {
        self.peak
    }

    /// Token capacity currently resident (`pages_in_use × page_size`).
    pub fn tokens_in_use(&self) -> usize {
        self.in_use * self.page_size
    }

    /// A point-in-time snapshot of the pool's statistics.
    pub fn stats(&self) -> KvStats {
        KvStats {
            pages_in_use: self.in_use,
            logical_pages: self.logical,
            shared_pages: self.shared,
            pages_peak: self.peak,
            pages_created: self.refs.len(),
            cow_copies: self.cow_copies,
            capacity: self.capacity,
        }
    }
}

/// A point-in-time snapshot of a [`SlotPool`]'s occupancy statistics,
/// carried by worker snapshots, reports and the CLI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KvStats {
    /// Physical pages resident.
    pub pages_in_use: usize,
    /// Leases across resident pages (≥ `pages_in_use`).
    pub logical_pages: usize,
    /// Resident pages with two or more lessees.
    pub shared_pages: usize,
    /// Peak physical residency over the pool's lifetime.
    pub pages_peak: usize,
    /// Distinct pages ever created.
    pub pages_created: usize,
    /// Copy-on-write copies performed.
    pub cow_copies: u64,
    /// Physical-page ceiling, if one is set.
    pub capacity: Option<usize>,
}

/// One page of a slot's lease: the page id plus whether the slot is a
/// read-only co-lessee (shared via the prefix index) or the sole owner.
#[derive(Debug, Clone, Copy)]
struct PageRef {
    page: usize,
    shared: bool,
}

/// The pages one slot currently leases from the pool, in position order:
/// `pages[p]` covers token positions `[p·page_size, (p+1)·page_size)`.
#[derive(Debug, Clone, Default)]
struct SlotLease {
    pages: Vec<PageRef>,
    /// Committed token positions the lease covers.
    tokens: usize,
}

impl SlotLease {
    /// Grows the lease until it covers `tokens` positions, performing
    /// copy-on-write on any shared page the new writes touch (the first
    /// divergent write to a shared prefix page copies it).
    fn grow(&mut self, pool: &mut SlotPool, tokens: usize) {
        if tokens <= self.tokens {
            return;
        }
        let ps = pool.page_size();
        let first_write = self.tokens / ps;
        let last_write = (tokens - 1) / ps;
        for p in first_write..=last_write {
            if p < self.pages.len() {
                if self.pages[p].shared {
                    let fresh = pool.cow_page(self.pages[p].page);
                    self.pages[p] = PageRef {
                        page: fresh,
                        shared: false,
                    };
                }
            } else {
                self.pages.push(PageRef {
                    page: pool.alloc_page(),
                    shared: false,
                });
            }
        }
        self.tokens = tokens;
    }

    /// Fresh physical allocations growing to `tokens` would trigger
    /// (new pages plus copy-on-write copies), without performing them.
    fn pages_needed_for(&self, page_size: usize, tokens: usize) -> usize {
        if tokens <= self.tokens {
            return 0;
        }
        let first_write = self.tokens / page_size;
        let last_write = (tokens - 1) / page_size;
        (first_write..=last_write)
            .filter(|&p| p >= self.pages.len() || self.pages[p].shared)
            .count()
    }

    /// Returns every leased page to the pool (shared pages drop one
    /// reference; sole-owned pages are freed).
    fn release(&mut self, pool: &mut SlotPool) {
        for page_ref in self.pages.drain(..) {
            pool.free_page(page_ref.page);
        }
        self.tokens = 0;
    }
}

/// A radix-style index over resident prompt prefixes, in whole-page
/// chunks.
///
/// Each node pins one *immutable* page: a page a resident sequence's
/// prompt filled completely (decode never rewrites committed prefix KV,
/// so full prompt pages are safe to share; partial tail pages, which
/// decode appends into, are never registered). The index holds its own
/// reference on every node's page, so a registered prefix stays
/// matchable while any registrant is resident even if the sequence that
/// first brought the page in has since retired.
///
/// At admission, [`PrefixIndex::matched`] returns the longest chain of
/// whole-page chunk matches plus, when the remainder of the prompt is a
/// prefix of some resident chunk at the next level, that page as a
/// *tail* match — the new sequence leases it read-only and copies it on
/// its first divergent write (when decode commits into the page).
///
/// # Examples
///
/// ```
/// use specee_model::batch::{PrefixIndex, SlotPool};
///
/// let mut pool = SlotPool::new(4);
/// let mut index = PrefixIndex::new(4);
/// // A resident sequence with prompt [1,2,3,4, 5,6,7,8] registers its
/// // two full pages.
/// let pages = [pool.alloc_page(), pool.alloc_page()];
/// index.register(&[1, 2, 3, 4, 5, 6, 7, 8], &pages, &mut pool);
/// // A newcomer sharing the first page and diverging inside the second
/// // matches one full chunk and the second page as a tail.
/// let (full, tail) = index.matched(&[1, 2, 3, 4, 5, 6]);
/// assert_eq!(full, vec![pages[0]]);
/// assert_eq!(tail, Some(pages[1]));
/// ```
#[derive(Debug, Clone, Default)]
pub struct PrefixIndex {
    page_size: usize,
    roots: Vec<PrefixNode>,
}

#[derive(Debug, Clone)]
struct PrefixNode {
    /// Exactly `page_size` tokens: the page's committed content.
    chunk: Vec<u32>,
    page: usize,
    /// Resident sequences registered through this node.
    leases: usize,
    children: Vec<PrefixNode>,
}

impl PrefixIndex {
    /// An empty index over `page_size`-token chunks.
    ///
    /// # Panics
    ///
    /// Panics if `page_size` is zero.
    pub fn new(page_size: usize) -> Self {
        assert!(page_size > 0, "page_size must be positive");
        PrefixIndex {
            page_size,
            roots: Vec::new(),
        }
    }

    /// The pages of `prompt`'s longest resident prefix: full whole-page
    /// chunk matches in position order, plus at most one *tail* page
    /// whose registered chunk begins with the prompt's remainder.
    pub fn matched(&self, prompt: &[u32]) -> (Vec<usize>, Option<usize>) {
        let ps = self.page_size;
        let mut full = Vec::new();
        let mut children = &self.roots;
        let mut complete = true;
        for chunk in prompt.chunks_exact(ps) {
            match children.iter().find(|c| c.chunk == chunk) {
                Some(node) => {
                    full.push(node.page);
                    children = &node.children;
                }
                None => {
                    complete = false;
                    break;
                }
            }
        }
        let rem = &prompt[(full.len() * ps).min(prompt.len())..];
        let tail = (complete && !rem.is_empty())
            .then(|| {
                children
                    .iter()
                    .find(|c| c.chunk.starts_with(rem))
                    .map(|c| c.page)
            })
            .flatten();
        (full, tail)
    }

    /// Registers a resident sequence's full prompt pages: one page per
    /// whole-page chunk of `prompt` (the partial tail, if any, is never
    /// registered). Chunks already indexed gain a lease; new chunks pin
    /// `pages[i]` with an index-owned reference taken from `pool`.
    ///
    /// # Panics
    ///
    /// Panics if `pages` has fewer entries than `prompt` has whole-page
    /// chunks.
    pub fn register(&mut self, prompt: &[u32], pages: &[usize], pool: &mut SlotPool) {
        let ps = self.page_size;
        let n_full = prompt.len() / ps;
        assert!(pages.len() >= n_full, "one page per whole-page chunk");
        let mut children = &mut self.roots;
        for (i, chunk) in prompt.chunks_exact(ps).enumerate() {
            let idx = match children.iter().position(|c| c.chunk == chunk) {
                Some(j) => {
                    children[j].leases += 1;
                    j
                }
                None => {
                    pool.share_page(pages[i]);
                    children.push(PrefixNode {
                        chunk: chunk.to_vec(),
                        page: pages[i],
                        leases: 1,
                        children: Vec::new(),
                    });
                    children.len() - 1
                }
            };
            children = &mut children[idx].children;
        }
    }

    /// Releases one registration of `prompt` (the reverse of
    /// [`PrefixIndex::register`]); nodes whose last registrant leaves
    /// are pruned and their index-owned page references returned to the
    /// pool.
    ///
    /// # Panics
    ///
    /// Panics if `prompt` was not registered.
    pub fn unregister(&mut self, prompt: &[u32], pool: &mut SlotPool) {
        fn walk(children: &mut Vec<PrefixNode>, chunks: &[&[u32]], pool: &mut SlotPool) {
            let Some((chunk, rest)) = chunks.split_first() else {
                return;
            };
            let j = children
                .iter()
                .position(|c| c.chunk == *chunk)
                .expect("unregister of a prefix that was never registered");
            children[j].leases -= 1;
            walk(&mut children[j].children, rest, pool);
            if children[j].leases == 0 {
                let node = children.swap_remove(j);
                release_subtree(node, pool);
            }
        }
        fn release_subtree(node: PrefixNode, pool: &mut SlotPool) {
            pool.free_page(node.page);
            for child in node.children {
                release_subtree(child, pool);
            }
        }
        let chunks: Vec<&[u32]> = prompt.chunks_exact(self.page_size).collect();
        walk(&mut self.roots, &chunks, pool);
    }

    /// Registered chunks currently indexed (tree node count).
    pub fn nodes(&self) -> usize {
        fn count(children: &[PrefixNode]) -> usize {
            children.iter().map(|c| 1 + count(&c.children)).sum()
        }
        count(&self.roots)
    }
}

struct Slot<M> {
    model: M,
    lease: SlotLease,
    /// The prompt registered with the prefix index (for unregistration
    /// at retirement); `None` when admitted without sharing.
    registered: Option<Vec<u32>>,
}

/// A fixed number of sequence slots stepped through a shared layer sweep.
///
/// Each occupied slot holds one [`LayeredLm`] instance — its own KV cache,
/// its own committed context — admitted by [`BatchedStack::admit`] and
/// recycled by [`BatchedStack::retire`]. The slot's KV footprint is leased
/// from the shared [`SlotPool`] and returned on retirement, so a
/// long-running server reuses freed blocks instead of growing without
/// bound. With prefix sharing enabled
/// ([`BatchedStack::enable_prefix_share`]), admission matches the prompt
/// against resident prefixes and co-leases matching pages copy-on-write.
///
/// # Examples
///
/// ```
/// use specee_metrics::Meter;
/// use specee_model::batch::BatchedStack;
/// use specee_model::{prefill, LayeredLm, ModelConfig, Transformer};
/// use specee_tensor::rng::Pcg;
///
/// let cfg = ModelConfig::tiny();
/// let mut stack: BatchedStack<Transformer> = BatchedStack::new(2, 16);
/// let mut meter = Meter::new();
/// let mut m = Transformer::random(cfg.clone(), &mut Pcg::seed(1));
/// prefill(&mut m, &[1, 2, 3], &mut meter);
/// let slot = stack.admit(m);
/// assert_eq!(stack.occupancy(), 1);
/// assert!(stack.pool().pages_in_use() > 0);
/// let _ = stack.retire(slot);
/// assert_eq!(stack.pool().pages_in_use(), 0);
/// ```
pub struct BatchedStack<M> {
    slots: Vec<Option<Slot<M>>>,
    pool: SlotPool,
    index: Option<PrefixIndex>,
}

impl<M: LayeredLm> BatchedStack<M> {
    /// Creates `max_batch` empty slots over a fresh page pool.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is zero (page-size validation is
    /// [`SlotPool::new`]'s).
    pub fn new(max_batch: usize, page_size: usize) -> Self {
        assert!(max_batch > 0, "max_batch must be positive");
        BatchedStack {
            slots: (0..max_batch).map(|_| None).collect(),
            pool: SlotPool::new(page_size),
            index: None,
        }
    }

    /// Number of slots (the batch cap).
    pub fn max_batch(&self) -> usize {
        self.slots.len()
    }

    /// Number of occupied slots.
    pub fn occupancy(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// The lowest free slot index, if any.
    pub fn free_slot(&self) -> Option<usize> {
        self.slots.iter().position(|s| s.is_none())
    }

    /// Whether `slot` currently holds a sequence.
    pub fn is_occupied(&self, slot: usize) -> bool {
        self.slots.get(slot).is_some_and(|s| s.is_some())
    }

    /// Indices of every occupied slot, ascending.
    pub fn occupied_slots(&self) -> Vec<usize> {
        (0..self.slots.len())
            .filter(|&i| self.is_occupied(i))
            .collect()
    }

    /// Caps the page pool at `capacity` physical pages (`None` uncaps).
    /// See [`SlotPool::set_capacity`].
    pub fn set_page_capacity(&mut self, capacity: Option<usize>) {
        self.pool.set_capacity(capacity);
    }

    /// Turns copy-on-write prefix sharing on or off. Subsequent
    /// [`BatchedStack::admit_shared`] calls match and register prompts;
    /// plain [`BatchedStack::admit`] is unaffected.
    ///
    /// # Panics
    ///
    /// Panics if any slot is occupied (toggling mid-flight would orphan
    /// index-held page references).
    pub fn enable_prefix_share(&mut self, on: bool) {
        assert_eq!(
            self.occupancy(),
            0,
            "prefix sharing can only be toggled on an empty stack"
        );
        self.index = on.then(|| PrefixIndex::new(self.pool.page_size()));
    }

    /// Whether prefix sharing is enabled.
    pub fn prefix_sharing(&self) -> bool {
        self.index.is_some()
    }

    /// Seats `model` in the lowest free slot, leasing pages for its
    /// already-committed KV (the prefilled prompt), and returns the slot
    /// index.
    ///
    /// # Panics
    ///
    /// Panics if every slot is occupied — check [`BatchedStack::free_slot`]
    /// first — or the page pool is at capacity.
    pub fn admit(&mut self, model: M) -> usize {
        let slot = self.free_slot().expect("no free slot");
        let mut lease = SlotLease::default();
        lease.grow(&mut self.pool, model.kv_len());
        self.slots[slot] = Some(Slot {
            model,
            lease,
            registered: None,
        });
        slot
    }

    /// Seats `model` like [`BatchedStack::admit`], additionally matching
    /// `prompt` (the tokens whose KV the model has committed) against the
    /// prefix index: matching whole pages are co-leased read-only instead
    /// of allocated, a matching tail page is co-leased copy-on-write, and
    /// the prompt's own full pages are registered for later arrivals.
    /// Falls back to a private lease when sharing is disabled.
    ///
    /// # Panics
    ///
    /// Panics like [`BatchedStack::admit`], or if `prompt.len()` differs
    /// from the model's committed KV length.
    pub fn admit_shared(&mut self, model: M, prompt: &[u32]) -> usize {
        let Some(mut index) = self.index.take() else {
            return self.admit(model);
        };
        let slot = self.free_slot().expect("no free slot");
        let kv = model.kv_len();
        assert_eq!(
            prompt.len(),
            kv,
            "admit_shared: model KV must cover exactly the prompt"
        );
        let ps = self.pool.page_size();
        let (full, tail) = index.matched(prompt);
        let mut lease = SlotLease::default();
        for &page in &full {
            self.pool.share_page(page);
            lease.pages.push(PageRef { page, shared: true });
        }
        lease.tokens = full.len() * ps;
        if let Some(page) = tail {
            self.pool.share_page(page);
            lease.pages.push(PageRef { page, shared: true });
            lease.tokens = kv;
        }
        // Private pages for whatever the index did not cover.
        lease.grow(&mut self.pool, kv);
        let full_pages: Vec<usize> = lease.pages[..kv / ps].iter().map(|r| r.page).collect();
        index.register(prompt, &full_pages, &mut self.pool);
        self.index = Some(index);
        self.slots[slot] = Some(Slot {
            model,
            lease,
            registered: Some(prompt.to_vec()),
        });
        slot
    }

    /// Fresh physical pages admitting a sequence with this `prompt`
    /// would allocate, accounting for prefix-index matches. Compare with
    /// [`SlotPool::available_pages`] to gate admission under a capacity.
    pub fn pages_for_admit(&self, prompt: &[u32]) -> usize {
        let ps = self.pool.page_size();
        let total = prompt.len().div_ceil(ps);
        let matched = self.index.as_ref().map_or(0, |index| {
            let (full, tail) = index.matched(prompt);
            full.len() + usize::from(tail.is_some())
        });
        total - matched
    }

    /// Fresh physical pages the next decode step could allocate: every
    /// resident sequence growing by one committed token (boundary
    /// crossings plus pending copy-on-write copies). The batched engine
    /// preempts until this fits [`SlotPool::available_pages`].
    pub fn next_step_page_demand(&self) -> usize {
        let extra = vec![1; self.slots.len()];
        self.next_step_page_demand_for(&extra)
    }

    /// Like [`BatchedStack::next_step_page_demand`], but with a
    /// per-slot growth bound: `extra[slot]` is the worst-case number of
    /// tokens the slot could commit this step. Self-draft steps commit
    /// up to `1 + tree depth` tokens per sequence per step, so the
    /// batched engine gates preemption on this bound instead of the
    /// one-token default.
    ///
    /// # Panics
    ///
    /// Panics if `extra` doesn't cover every slot.
    pub fn next_step_page_demand_for(&self, extra: &[usize]) -> usize {
        assert_eq!(extra.len(), self.slots.len(), "one growth bound per slot");
        let ps = self.pool.page_size();
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(slot, seat)| {
                seat.as_ref()
                    .map(|s| s.lease.pages_needed_for(ps, s.model.kv_len() + extra[slot]))
            })
            .sum()
    }

    /// Empties `slot`, returning its pages to the pool (and its prefix
    /// registration to the index) and its model to the caller.
    ///
    /// # Panics
    ///
    /// Panics if the slot is vacant.
    pub fn retire(&mut self, slot: usize) -> M {
        let mut s = self.slots[slot].take().expect("slot is vacant");
        if let (Some(index), Some(prompt)) = (self.index.as_mut(), s.registered.take()) {
            index.unregister(&prompt, &mut self.pool);
        }
        s.lease.release(&mut self.pool);
        s.model
    }

    /// Borrows the model seated in `slot`.
    ///
    /// # Panics
    ///
    /// Panics if the slot is vacant.
    pub fn model(&self, slot: usize) -> &M {
        &self.slots[slot].as_ref().expect("slot is vacant").model
    }

    /// Mutably borrows the model seated in `slot`.
    ///
    /// # Panics
    ///
    /// Panics if the slot is vacant.
    pub fn model_mut(&mut self, slot: usize) -> &mut M {
        &mut self.slots[slot].as_mut().expect("slot is vacant").model
    }

    /// The shared layer sweep: runs decoder layer `layer` on every slot
    /// whose `active` bit is set, replacing `hidden[slot]` in place, and
    /// returns the number of runners. `positions[slot]` is the KV position
    /// the slot's pending token occupies.
    ///
    /// # Panics
    ///
    /// Panics if the mask or state slices don't cover every slot, or an
    /// active slot is vacant or missing its hidden state.
    pub fn sweep_layer(
        &mut self,
        layer: usize,
        hidden: &mut [Option<Vec<f32>>],
        active: &[bool],
        positions: &[usize],
        meter: &mut Meter,
    ) -> usize {
        assert_eq!(hidden.len(), self.slots.len(), "one hidden state per slot");
        assert_eq!(active.len(), self.slots.len(), "one mask bit per slot");
        assert_eq!(positions.len(), self.slots.len(), "one position per slot");
        let mut runners = 0;
        for (slot, seat) in self.slots.iter_mut().enumerate() {
            if !active[slot] {
                continue;
            }
            let seat = seat.as_mut().expect("active slot is vacant");
            let h = hidden[slot].as_ref().expect("active slot has no state");
            hidden[slot] = Some(seat.model.forward_layer(layer, h, positions[slot], meter));
            runners += 1;
        }
        runners
    }

    /// The shared *tree* sweep for batched token-tree verification: runs
    /// decoder layer `layer` over every active slot's whole draft tree
    /// under that slot's tree attention mask, replacing `hidden[slot]`
    /// (per-node hidden states) in place and appending the layer's
    /// scratch K/V to `kvs[slot]`. Returns the number of runners.
    ///
    /// The per-slot scratch K/V accumulates in tree-node order, so after
    /// sweeping layers `exit..n_layers` the engine can commit the
    /// accepted root path per slot via `commit_tree_kv` with no pool
    /// residue from rejected branches.
    ///
    /// # Panics
    ///
    /// Panics if the mask or state slices don't cover every slot, or an
    /// active slot is vacant or missing its tree state.
    pub fn sweep_layer_tree(
        &mut self,
        layer: usize,
        hidden: &mut [Option<Vec<Vec<f32>>>],
        parents: &[Vec<Option<usize>>],
        active: &[bool],
        kvs: &mut [Vec<TreeKv>],
        meter: &mut Meter,
    ) -> usize {
        assert_eq!(hidden.len(), self.slots.len(), "one tree state per slot");
        assert_eq!(parents.len(), self.slots.len(), "one tree shape per slot");
        assert_eq!(active.len(), self.slots.len(), "one mask bit per slot");
        assert_eq!(kvs.len(), self.slots.len(), "one scratch stack per slot");
        let mut runners = 0;
        for (slot, seat) in self.slots.iter_mut().enumerate() {
            if !active[slot] {
                continue;
            }
            let seat = seat.as_mut().expect("active slot is vacant");
            let hs = hidden[slot].as_ref().expect("active slot has no tree");
            let (out, kv) = seat
                .model
                .forward_layer_tree(layer, hs, &parents[slot], meter);
            hidden[slot] = Some(out);
            kvs[slot].push(kv);
            runners += 1;
        }
        runners
    }

    /// Re-syncs every lease with its model's committed KV length, leasing
    /// new pages as sequences grow (and copy-on-write copying any shared
    /// page the growth writes into). Call once per decode step after KV
    /// commits.
    pub fn sync_leases(&mut self) {
        for seat in self.slots.iter_mut().flatten() {
            let needed = seat.model.kv_len();
            seat.lease.grow(&mut self.pool, needed);
        }
    }

    /// The shared page pool (occupancy, recycling and peak statistics).
    pub fn pool(&self) -> &SlotPool {
        &self.pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::transformer::{prefill, Transformer};
    use specee_tensor::rng::Pcg;

    fn model(seed: u64) -> Transformer {
        Transformer::random(ModelConfig::tiny(), &mut Pcg::seed(seed))
    }

    #[test]
    fn pool_recycles_freed_pages() {
        let mut pool = SlotPool::new(4);
        let a = pool.alloc_page();
        let b = pool.alloc_page();
        assert_eq!((a, b), (0, 1));
        pool.free_page(a);
        assert_eq!(pool.pages_in_use(), 1);
        assert_eq!(pool.alloc_page(), 0, "freed page is reused");
        assert_eq!(pool.pages_created(), 2);
        assert_eq!(pool.pages_peak(), 2);
    }

    #[test]
    #[should_panic(expected = "double-freed")]
    fn pool_rejects_double_free() {
        let mut pool = SlotPool::new(4);
        let a = pool.alloc_page();
        pool.free_page(a);
        pool.free_page(a);
    }

    /// Regression (ISSUE 9 satellite): the peak stat must track physical
    /// residency, so a block freed and regrown in the same step counts
    /// once — it must not read as two simultaneous pages.
    #[test]
    fn peak_counts_a_freed_then_regrown_block_once() {
        let mut pool = SlotPool::new(4);
        let a = pool.alloc_page();
        let _b = pool.alloc_page();
        let _c = pool.alloc_page();
        assert_eq!(pool.pages_peak(), 3);
        // Free one block and regrow it within the same step: residency
        // never exceeds 3, so neither may the peak.
        pool.free_page(a);
        let _a2 = pool.alloc_page();
        assert_eq!(pool.pages_peak(), 3, "free-then-regrow double-counted");
        // Sharing cycles add leases, not physical pages: peak is pinned.
        pool.share_page(_b);
        pool.share_page(_b);
        pool.free_page(_b);
        pool.free_page(_b);
        assert_eq!(pool.pages_peak(), 3, "share/release cycle moved peak");
        assert_eq!(pool.logical_pages_in_use(), 3);
    }

    #[test]
    fn refcounted_share_frees_exactly_once() {
        let mut pool = SlotPool::new(4);
        let a = pool.alloc_page();
        pool.share_page(a);
        pool.share_page(a);
        assert_eq!(pool.ref_count(a), 3);
        assert_eq!(pool.shared_pages(), 1);
        pool.free_page(a);
        pool.free_page(a);
        assert_eq!(pool.pages_in_use(), 1, "page resident until last ref");
        assert_eq!(pool.shared_pages(), 0);
        pool.free_page(a);
        assert_eq!(pool.pages_in_use(), 0);
        // The page is genuinely free now: reallocation recycles it.
        assert_eq!(pool.alloc_page(), a);
    }

    #[test]
    #[should_panic(expected = "cannot share")]
    fn sharing_a_free_page_panics() {
        let mut pool = SlotPool::new(4);
        let a = pool.alloc_page();
        pool.free_page(a);
        pool.share_page(a);
    }

    #[test]
    fn capacity_gates_allocation() {
        let mut pool = SlotPool::new(4);
        pool.set_capacity(Some(2));
        let a = pool.alloc_page();
        let _b = pool.alloc_page();
        assert_eq!(pool.available_pages(), 0);
        assert_eq!(pool.try_alloc_page(), None);
        // Sharing needs no new physical page, so it works at capacity.
        pool.share_page(a);
        pool.free_page(a);
        pool.free_page(a);
        assert_eq!(pool.available_pages(), 1);
        assert!(pool.try_alloc_page().is_some());
    }

    #[test]
    fn cow_copies_are_counted_and_keep_the_original_for_peers() {
        let mut pool = SlotPool::new(4);
        let a = pool.alloc_page();
        pool.share_page(a); // a second lessee
        let fresh = pool.cow_page(a);
        assert_ne!(fresh, a);
        assert_eq!(pool.cow_copies(), 1);
        assert_eq!(pool.ref_count(a), 1, "peer still holds the original");
        assert_eq!(pool.pages_in_use(), 2);
    }

    #[test]
    fn prefix_index_matches_register_and_prune() {
        let mut pool = SlotPool::new(2);
        let mut index = PrefixIndex::new(2);
        let p0 = pool.alloc_page();
        let p1 = pool.alloc_page();
        index.register(&[1, 2, 3, 4], &[p0, p1], &mut pool);
        assert_eq!(index.nodes(), 2);
        assert_eq!(pool.ref_count(p0), 2, "index pins registered pages");

        // Full + tail match.
        let (full, tail) = index.matched(&[1, 2, 3]);
        assert_eq!(full, vec![p0]);
        assert_eq!(tail, Some(p1));
        // Divergent second chunk: only the first page matches.
        let (full, tail) = index.matched(&[1, 2, 9, 9]);
        assert_eq!(full, vec![p0]);
        assert_eq!(tail, None);
        // Divergent first chunk: nothing matches, no tail either.
        let (full, tail) = index.matched(&[9, 9, 3, 4]);
        assert!(full.is_empty());
        assert_eq!(tail, None);

        // A second registrant of the same prefix, then both leave.
        index.register(&[1, 2, 3, 4], &[p0, p1], &mut pool);
        index.unregister(&[1, 2, 3, 4], &mut pool);
        assert_eq!(index.nodes(), 2, "still pinned by the second lease");
        index.unregister(&[1, 2, 3, 4], &mut pool);
        assert_eq!(index.nodes(), 0);
        assert_eq!(pool.ref_count(p0), 1, "index refs released on prune");
    }

    #[test]
    fn admit_leases_pages_for_prefilled_kv() {
        let mut stack: BatchedStack<Transformer> = BatchedStack::new(2, 2);
        let mut meter = Meter::new();
        let mut m = model(1);
        prefill(&mut m, &[1, 2, 3], &mut meter);
        stack.admit(m);
        // 3 committed positions at page size 2 → 2 pages.
        assert_eq!(stack.pool().pages_in_use(), 2);
        assert_eq!(stack.pool().tokens_in_use(), 4);
    }

    #[test]
    fn retire_returns_pages_and_next_admit_reuses_them() {
        let mut stack: BatchedStack<Transformer> = BatchedStack::new(2, 2);
        let mut meter = Meter::new();
        let mut m = model(2);
        prefill(&mut m, &[1, 2, 3, 4], &mut meter);
        let slot = stack.admit(m);
        let created = stack.pool().pages_created();
        let _ = stack.retire(slot);
        assert_eq!(stack.pool().pages_in_use(), 0);
        let mut m2 = model(3);
        prefill(&mut m2, &[5, 6], &mut meter);
        stack.admit(m2);
        // The second admission fits entirely in recycled pages.
        assert_eq!(stack.pool().pages_created(), created);
    }

    #[test]
    fn shared_admission_coleases_prefix_pages() {
        let mut stack: BatchedStack<Transformer> = BatchedStack::new(3, 2);
        stack.enable_prefix_share(true);
        let mut meter = Meter::new();
        let prompt = [1u32, 2, 3, 4];
        let mut a = model(1);
        prefill(&mut a, &prompt, &mut meter);
        stack.admit_shared(a, &prompt);
        assert_eq!(stack.pool().pages_in_use(), 2);

        // Identical prompt: zero fresh pages, both full pages co-leased.
        assert_eq!(stack.pages_for_admit(&prompt), 0);
        let mut b = model(2);
        prefill(&mut b, &prompt, &mut meter);
        let sb = stack.admit_shared(b, &prompt);
        assert_eq!(stack.pool().pages_in_use(), 2, "no new physical pages");
        assert_eq!(stack.pool().shared_pages(), 2);
        assert!(stack.pool().logical_pages_in_use() > stack.pool().pages_in_use());

        // Divergence in the second page: one fresh page only.
        let diverged = [1u32, 2, 7, 8];
        assert_eq!(stack.pages_for_admit(&diverged), 1);
        let mut c = model(3);
        prefill(&mut c, &diverged, &mut meter);
        stack.admit_shared(c, &diverged);
        assert_eq!(stack.pool().pages_in_use(), 3);

        // Retiring the sharer drops its co-leases but the pages stay
        // resident for the original owner.
        let _ = stack.retire(sb);
        assert_eq!(stack.pool().pages_in_use(), 3);
    }

    #[test]
    fn tail_share_copies_on_first_divergent_write() {
        let mut stack: BatchedStack<Transformer> = BatchedStack::new(2, 2);
        stack.enable_prefix_share(true);
        let mut meter = Meter::new();
        let long = [1u32, 2, 3, 4];
        let mut a = model(1);
        prefill(&mut a, &long, &mut meter);
        stack.admit_shared(a, &long);

        // A strict prefix of the resident prompt shares the tail page
        // read-only: no fresh pages at admission.
        let short = [1u32, 2, 3];
        assert_eq!(stack.pages_for_admit(&short), 0);
        let mut b = model(2);
        prefill(&mut b, &short, &mut meter);
        let sb = stack.admit_shared(b, &short);
        assert_eq!(stack.pool().pages_in_use(), 2);
        assert_eq!(stack.pool().cow_copies(), 0);
        // Next-step demand counts every resident growing one token: the
        // owner crossing into a fresh page plus the sharer's pending
        // copy-on-write copy.
        assert_eq!(stack.next_step_page_demand(), 2);
        let pos = stack.model(sb).kv_len();
        let mut h = stack.model_mut(sb).begin_token(9, &mut meter);
        for layer in 0..4 {
            h = stack
                .model_mut(sb)
                .forward_layer(layer, &h, pos, &mut meter);
        }
        stack.sync_leases();
        assert_eq!(stack.pool().cow_copies(), 1);
        assert_eq!(stack.pool().pages_in_use(), 3);
    }

    #[test]
    fn masked_sweep_matches_single_stream() {
        let mut stack: BatchedStack<Transformer> = BatchedStack::new(2, 16);
        let mut meter = Meter::new();
        let mut a = model(7);
        let mut b = model(7);
        prefill(&mut a, &[1, 2], &mut meter);
        prefill(&mut b, &[3], &mut meter);
        let sa = stack.admit(a);
        let sb = stack.admit(b);

        // Reference: the same models stepped individually.
        let mut ra = model(7);
        let mut rb = model(7);
        prefill(&mut ra, &[1, 2], &mut meter);
        prefill(&mut rb, &[3], &mut meter);
        let mut ha = ra.begin_token(5, &mut meter);
        let mut hb = rb.begin_token(6, &mut meter);

        let mut hidden = vec![None, None];
        hidden[sa] = Some(stack.model_mut(sa).begin_token(5, &mut meter));
        hidden[sb] = Some(stack.model_mut(sb).begin_token(6, &mut meter));
        let positions = [2, 1];
        let active = [true, true];
        for layer in 0..4 {
            let runners = stack.sweep_layer(layer, &mut hidden, &active, &positions, &mut meter);
            assert_eq!(runners, 2);
            ha = ra.forward_layer(layer, &ha, 2, &mut meter);
            hb = rb.forward_layer(layer, &hb, 1, &mut meter);
        }
        assert_eq!(hidden[sa].as_deref(), Some(ha.as_slice()));
        assert_eq!(hidden[sb].as_deref(), Some(hb.as_slice()));
    }

    #[test]
    fn masked_tree_sweep_matches_single_stream_tree() {
        let mut stack: BatchedStack<Transformer> = BatchedStack::new(2, 16);
        let mut meter = Meter::new();
        let mut a = model(11);
        let mut b = model(11);
        prefill(&mut a, &[1, 2], &mut meter);
        prefill(&mut b, &[3], &mut meter);
        let sa = stack.admit(a);
        let sb = stack.admit(b);

        // Reference: the same models sweeping their trees individually.
        let mut ra = model(11);
        let mut rb = model(11);
        prefill(&mut ra, &[1, 2], &mut meter);
        prefill(&mut rb, &[3], &mut meter);
        let pa: Vec<Option<usize>> = vec![None, Some(0), Some(0)];
        let pb: Vec<Option<usize>> = vec![None, Some(0)];
        let mut ha = ra.begin_tree(&[5, 6, 7], &pa, &mut meter);
        let mut hb = rb.begin_tree(&[8, 9], &pb, &mut meter);

        let mut hidden = vec![None, None];
        hidden[sa] = Some(stack.model_mut(sa).begin_tree(&[5, 6, 7], &pa, &mut meter));
        hidden[sb] = Some(stack.model_mut(sb).begin_tree(&[8, 9], &pb, &mut meter));
        let mut parents = vec![Vec::new(), Vec::new()];
        parents[sa] = pa.clone();
        parents[sb] = pb.clone();
        let mut kvs: Vec<Vec<TreeKv>> = vec![Vec::new(), Vec::new()];
        let mut ref_kvs: Vec<Vec<TreeKv>> = vec![Vec::new(), Vec::new()];
        for layer in 0..4 {
            let runners = stack.sweep_layer_tree(
                layer,
                &mut hidden,
                &parents,
                &[true, true],
                &mut kvs,
                &mut meter,
            );
            assert_eq!(runners, 2);
            let (oa, ka) = ra.forward_layer_tree(layer, &ha, &pa, &mut meter);
            let (ob, kb) = rb.forward_layer_tree(layer, &hb, &pb, &mut meter);
            ha = oa;
            hb = ob;
            ref_kvs[sa].push(ka);
            ref_kvs[sb].push(kb);
        }
        assert_eq!(hidden[sa].as_ref(), Some(&ha), "slot a tree states match");
        assert_eq!(hidden[sb].as_ref(), Some(&hb), "slot b tree states match");
        assert_eq!(kvs, ref_kvs, "per-layer scratch K/V matches per slot");
    }

    #[test]
    fn tree_sweep_skips_masked_slots() {
        let mut stack: BatchedStack<Transformer> = BatchedStack::new(2, 16);
        let mut meter = Meter::new();
        let mut a = model(13);
        let mut b = model(13);
        prefill(&mut a, &[1], &mut meter);
        prefill(&mut b, &[1], &mut meter);
        let sa = stack.admit(a);
        let sb = stack.admit(b);
        let parents: Vec<Option<usize>> = vec![None, Some(0)];
        let mut hidden = vec![None, None];
        hidden[sa] = Some(
            stack
                .model_mut(sa)
                .begin_tree(&[2, 3], &parents, &mut meter),
        );
        hidden[sb] = Some(
            stack
                .model_mut(sb)
                .begin_tree(&[2, 3], &parents, &mut meter),
        );
        let frozen = hidden[sb].clone();
        let all_parents = vec![parents.clone(), parents.clone()];
        let mut kvs: Vec<Vec<TreeKv>> = vec![Vec::new(), Vec::new()];
        let runners = stack.sweep_layer_tree(
            0,
            &mut hidden,
            &all_parents,
            &[true, false],
            &mut kvs,
            &mut meter,
        );
        assert_eq!(runners, 1);
        assert_eq!(hidden[sb], frozen, "masked-off slot keeps its tree");
        assert!(kvs[sb].is_empty(), "masked-off slot accrues no scratch");
        assert_eq!(kvs[sa].len(), 1);
    }

    #[test]
    fn per_slot_demand_bound_scales_with_tree_depth() {
        let mut stack: BatchedStack<Transformer> = BatchedStack::new(2, 4);
        let mut meter = Meter::new();
        let mut a = model(17);
        prefill(&mut a, &[1, 2, 3], &mut meter);
        let sa = stack.admit(a);
        // One token fits the current page; a 4-token tree commit crosses
        // into a second page.
        assert_eq!(stack.next_step_page_demand(), 0);
        let mut extra = vec![0, 0];
        extra[sa] = 4;
        assert_eq!(stack.next_step_page_demand_for(&extra), 1);
    }

    #[test]
    fn inactive_slots_do_not_run() {
        let mut stack: BatchedStack<Transformer> = BatchedStack::new(2, 16);
        let mut meter = Meter::new();
        let mut a = model(9);
        let mut b = model(9);
        prefill(&mut a, &[1], &mut meter);
        prefill(&mut b, &[1], &mut meter);
        let sa = stack.admit(a);
        let sb = stack.admit(b);
        let mut hidden = vec![None, None];
        hidden[sa] = Some(stack.model_mut(sa).begin_token(2, &mut meter));
        hidden[sb] = Some(stack.model_mut(sb).begin_token(2, &mut meter));
        let frozen = hidden[sb].clone();
        let runners = stack.sweep_layer(0, &mut hidden, &[true, false], &[1, 1], &mut meter);
        assert_eq!(runners, 1);
        assert_eq!(hidden[sb], frozen, "masked-off slot keeps its state");
        assert_ne!(hidden[sa], frozen);
    }

    #[test]
    fn sync_leases_tracks_growth() {
        let mut stack: BatchedStack<Transformer> = BatchedStack::new(1, 2);
        let mut meter = Meter::new();
        let mut m = model(4);
        prefill(&mut m, &[1, 2], &mut meter);
        let slot = stack.admit(m);
        assert_eq!(stack.pool().pages_in_use(), 1);
        // Decode one token through all layers, then sync.
        let pos = stack.model(slot).kv_len();
        let mut h = stack.model_mut(slot).begin_token(3, &mut meter);
        for layer in 0..4 {
            h = stack
                .model_mut(slot)
                .forward_layer(layer, &h, pos, &mut meter);
        }
        stack.sync_leases();
        assert_eq!(stack.pool().pages_in_use(), 2, "third token needs page 2");
    }

    #[test]
    #[should_panic(expected = "no free slot")]
    fn admit_checks_capacity() {
        let mut stack: BatchedStack<Transformer> = BatchedStack::new(1, 16);
        stack.admit(model(1));
        stack.admit(model(2));
    }
}
