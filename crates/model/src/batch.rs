//! The batched forward path: per-slot sequences swept through a shared
//! layer loop.
//!
//! A served batch runs N independent sequences in lock-step: one shared
//! sweep over the decoder layers in which each sequence participates only
//! while it still needs the layer (its *active mask*). Every slot keeps
//! its own KV state — the per-layer [`crate::KvCache`]s of its
//! [`LayeredLm`] instance — while page occupancy across slots is tracked
//! by a vllm-style [`SlotPool`] whose freed blocks are recycled when a
//! sequence retires.
//!
//! [`BatchedStack`] is the substrate the `specee-batch` engine drives: it
//! owns the slot models, leases KV pages on their behalf, and exposes the
//! masked layer sweep ([`BatchedStack::sweep_layer`]) whose per-layer
//! runner counts are exactly the quantity batched pricing needs (a layer's
//! weights stream once for the whole batch if *any* slot runs it — the
//! Cannikin effect measured live by the batched engine).

use specee_metrics::Meter;

use crate::traits::LayeredLm;

/// A pool of fixed-size KV pages shared by every slot of a batch.
///
/// Pages are identified by index; freed pages go to a free list and are
/// handed out again before the pool grows (the block-allocator recycling
/// of vllm's PagedAttention). One page holds `page_size` token positions
/// of per-layer K/V for the whole decoder stack.
///
/// # Examples
///
/// ```
/// use specee_model::batch::SlotPool;
///
/// let mut pool = SlotPool::new(16);
/// let a = pool.alloc_page();
/// let b = pool.alloc_page();
/// pool.free_page(a);
/// assert_eq!(pool.alloc_page(), a); // recycled, not grown
/// assert_eq!(pool.pages_created(), 2);
/// let _ = b;
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotPool {
    page_size: usize,
    free: Vec<usize>,
    next_page: usize,
    in_use: usize,
    peak: usize,
}

impl SlotPool {
    /// Creates an empty pool of `page_size`-token pages.
    ///
    /// # Panics
    ///
    /// Panics if `page_size` is zero.
    pub fn new(page_size: usize) -> Self {
        assert!(page_size > 0, "page_size must be positive");
        SlotPool {
            page_size,
            free: Vec::new(),
            next_page: 0,
            in_use: 0,
            peak: 0,
        }
    }

    /// Tokens per page.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Hands out a page id, preferring recycled pages over growth.
    pub fn alloc_page(&mut self) -> usize {
        let page = self.free.pop().unwrap_or_else(|| {
            let p = self.next_page;
            self.next_page += 1;
            p
        });
        self.in_use += 1;
        self.peak = self.peak.max(self.in_use);
        page
    }

    /// Returns a page to the free list.
    ///
    /// # Panics
    ///
    /// Panics if the page was never allocated or is already free.
    pub fn free_page(&mut self, page: usize) {
        assert!(page < self.next_page, "page {page} was never allocated");
        assert!(!self.free.contains(&page), "page {page} double-freed");
        self.free.push(page);
        self.in_use -= 1;
    }

    /// Pages currently leased to slots.
    pub fn pages_in_use(&self) -> usize {
        self.in_use
    }

    /// Distinct pages ever created (the pool's backing-store size).
    pub fn pages_created(&self) -> usize {
        self.next_page
    }

    /// Peak simultaneous lease count (the memory high-water mark).
    pub fn pages_peak(&self) -> usize {
        self.peak
    }

    /// Token capacity currently leased (`pages_in_use × page_size`).
    pub fn tokens_in_use(&self) -> usize {
        self.in_use * self.page_size
    }
}

/// The pages one slot currently leases from the pool.
#[derive(Debug, Clone, Default)]
struct SlotLease {
    pages: Vec<usize>,
    tokens: usize,
}

impl SlotLease {
    /// Grows the lease until it covers `tokens` positions.
    fn grow(&mut self, pool: &mut SlotPool, tokens: usize) {
        self.tokens = self.tokens.max(tokens);
        while self.pages.len() * pool.page_size() < self.tokens {
            self.pages.push(pool.alloc_page());
        }
    }

    /// Returns every leased page to the pool.
    fn release(&mut self, pool: &mut SlotPool) {
        for page in self.pages.drain(..) {
            pool.free_page(page);
        }
        self.tokens = 0;
    }
}

struct Slot<M> {
    model: M,
    lease: SlotLease,
}

/// A fixed number of sequence slots stepped through a shared layer sweep.
///
/// Each occupied slot holds one [`LayeredLm`] instance — its own KV cache,
/// its own committed context — admitted by [`BatchedStack::admit`] and
/// recycled by [`BatchedStack::retire`]. The slot's KV footprint is leased
/// from the shared [`SlotPool`] and returned on retirement, so a
/// long-running server reuses freed blocks instead of growing without
/// bound.
///
/// # Examples
///
/// ```
/// use specee_metrics::Meter;
/// use specee_model::batch::BatchedStack;
/// use specee_model::{prefill, LayeredLm, ModelConfig, Transformer};
/// use specee_tensor::rng::Pcg;
///
/// let cfg = ModelConfig::tiny();
/// let mut stack: BatchedStack<Transformer> = BatchedStack::new(2, 16);
/// let mut meter = Meter::new();
/// let mut m = Transformer::random(cfg.clone(), &mut Pcg::seed(1));
/// prefill(&mut m, &[1, 2, 3], &mut meter);
/// let slot = stack.admit(m);
/// assert_eq!(stack.occupancy(), 1);
/// assert!(stack.pool().pages_in_use() > 0);
/// let _ = stack.retire(slot);
/// assert_eq!(stack.pool().pages_in_use(), 0);
/// ```
pub struct BatchedStack<M> {
    slots: Vec<Option<Slot<M>>>,
    pool: SlotPool,
}

impl<M: LayeredLm> BatchedStack<M> {
    /// Creates `max_batch` empty slots over a fresh page pool.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is zero (page-size validation is
    /// [`SlotPool::new`]'s).
    pub fn new(max_batch: usize, page_size: usize) -> Self {
        assert!(max_batch > 0, "max_batch must be positive");
        BatchedStack {
            slots: (0..max_batch).map(|_| None).collect(),
            pool: SlotPool::new(page_size),
        }
    }

    /// Number of slots (the batch cap).
    pub fn max_batch(&self) -> usize {
        self.slots.len()
    }

    /// Number of occupied slots.
    pub fn occupancy(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// The lowest free slot index, if any.
    pub fn free_slot(&self) -> Option<usize> {
        self.slots.iter().position(|s| s.is_none())
    }

    /// Whether `slot` currently holds a sequence.
    pub fn is_occupied(&self, slot: usize) -> bool {
        self.slots.get(slot).is_some_and(|s| s.is_some())
    }

    /// Indices of every occupied slot, ascending.
    pub fn occupied_slots(&self) -> Vec<usize> {
        (0..self.slots.len())
            .filter(|&i| self.is_occupied(i))
            .collect()
    }

    /// Seats `model` in the lowest free slot, leasing pages for its
    /// already-committed KV (the prefilled prompt), and returns the slot
    /// index.
    ///
    /// # Panics
    ///
    /// Panics if every slot is occupied — check [`BatchedStack::free_slot`]
    /// first.
    pub fn admit(&mut self, model: M) -> usize {
        let slot = self.free_slot().expect("no free slot");
        let mut lease = SlotLease::default();
        lease.grow(&mut self.pool, model.kv_len());
        self.slots[slot] = Some(Slot { model, lease });
        slot
    }

    /// Empties `slot`, returning its pages to the pool and its model to
    /// the caller.
    ///
    /// # Panics
    ///
    /// Panics if the slot is vacant.
    pub fn retire(&mut self, slot: usize) -> M {
        let mut s = self.slots[slot].take().expect("slot is vacant");
        s.lease.release(&mut self.pool);
        s.model
    }

    /// Borrows the model seated in `slot`.
    ///
    /// # Panics
    ///
    /// Panics if the slot is vacant.
    pub fn model(&self, slot: usize) -> &M {
        &self.slots[slot].as_ref().expect("slot is vacant").model
    }

    /// Mutably borrows the model seated in `slot`.
    ///
    /// # Panics
    ///
    /// Panics if the slot is vacant.
    pub fn model_mut(&mut self, slot: usize) -> &mut M {
        &mut self.slots[slot].as_mut().expect("slot is vacant").model
    }

    /// The shared layer sweep: runs decoder layer `layer` on every slot
    /// whose `active` bit is set, replacing `hidden[slot]` in place, and
    /// returns the number of runners. `positions[slot]` is the KV position
    /// the slot's pending token occupies.
    ///
    /// # Panics
    ///
    /// Panics if the mask or state slices don't cover every slot, or an
    /// active slot is vacant or missing its hidden state.
    pub fn sweep_layer(
        &mut self,
        layer: usize,
        hidden: &mut [Option<Vec<f32>>],
        active: &[bool],
        positions: &[usize],
        meter: &mut Meter,
    ) -> usize {
        assert_eq!(hidden.len(), self.slots.len(), "one hidden state per slot");
        assert_eq!(active.len(), self.slots.len(), "one mask bit per slot");
        assert_eq!(positions.len(), self.slots.len(), "one position per slot");
        let mut runners = 0;
        for (slot, seat) in self.slots.iter_mut().enumerate() {
            if !active[slot] {
                continue;
            }
            let seat = seat.as_mut().expect("active slot is vacant");
            let h = hidden[slot].as_ref().expect("active slot has no state");
            hidden[slot] = Some(seat.model.forward_layer(layer, h, positions[slot], meter));
            runners += 1;
        }
        runners
    }

    /// Re-syncs every lease with its model's committed KV length, leasing
    /// new pages as sequences grow. Call once per decode step after KV
    /// commits.
    pub fn sync_leases(&mut self) {
        for seat in self.slots.iter_mut().flatten() {
            let needed = seat.model.kv_len();
            seat.lease.grow(&mut self.pool, needed);
        }
    }

    /// The shared page pool (occupancy, recycling and peak statistics).
    pub fn pool(&self) -> &SlotPool {
        &self.pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::transformer::{prefill, Transformer};
    use specee_tensor::rng::Pcg;

    fn model(seed: u64) -> Transformer {
        Transformer::random(ModelConfig::tiny(), &mut Pcg::seed(seed))
    }

    #[test]
    fn pool_recycles_freed_pages() {
        let mut pool = SlotPool::new(4);
        let a = pool.alloc_page();
        let b = pool.alloc_page();
        assert_eq!((a, b), (0, 1));
        pool.free_page(a);
        assert_eq!(pool.pages_in_use(), 1);
        assert_eq!(pool.alloc_page(), 0, "freed page is reused");
        assert_eq!(pool.pages_created(), 2);
        assert_eq!(pool.pages_peak(), 2);
    }

    #[test]
    #[should_panic(expected = "double-freed")]
    fn pool_rejects_double_free() {
        let mut pool = SlotPool::new(4);
        let a = pool.alloc_page();
        pool.free_page(a);
        pool.free_page(a);
    }

    #[test]
    fn admit_leases_pages_for_prefilled_kv() {
        let mut stack: BatchedStack<Transformer> = BatchedStack::new(2, 2);
        let mut meter = Meter::new();
        let mut m = model(1);
        prefill(&mut m, &[1, 2, 3], &mut meter);
        stack.admit(m);
        // 3 committed positions at page size 2 → 2 pages.
        assert_eq!(stack.pool().pages_in_use(), 2);
        assert_eq!(stack.pool().tokens_in_use(), 4);
    }

    #[test]
    fn retire_returns_pages_and_next_admit_reuses_them() {
        let mut stack: BatchedStack<Transformer> = BatchedStack::new(2, 2);
        let mut meter = Meter::new();
        let mut m = model(2);
        prefill(&mut m, &[1, 2, 3, 4], &mut meter);
        let slot = stack.admit(m);
        let created = stack.pool().pages_created();
        let _ = stack.retire(slot);
        assert_eq!(stack.pool().pages_in_use(), 0);
        let mut m2 = model(3);
        prefill(&mut m2, &[5, 6], &mut meter);
        stack.admit(m2);
        // The second admission fits entirely in recycled pages.
        assert_eq!(stack.pool().pages_created(), created);
    }

    #[test]
    fn masked_sweep_matches_single_stream() {
        let mut stack: BatchedStack<Transformer> = BatchedStack::new(2, 16);
        let mut meter = Meter::new();
        let mut a = model(7);
        let mut b = model(7);
        prefill(&mut a, &[1, 2], &mut meter);
        prefill(&mut b, &[3], &mut meter);
        let sa = stack.admit(a);
        let sb = stack.admit(b);

        // Reference: the same models stepped individually.
        let mut ra = model(7);
        let mut rb = model(7);
        prefill(&mut ra, &[1, 2], &mut meter);
        prefill(&mut rb, &[3], &mut meter);
        let mut ha = ra.begin_token(5, &mut meter);
        let mut hb = rb.begin_token(6, &mut meter);

        let mut hidden = vec![None, None];
        hidden[sa] = Some(stack.model_mut(sa).begin_token(5, &mut meter));
        hidden[sb] = Some(stack.model_mut(sb).begin_token(6, &mut meter));
        let positions = [2, 1];
        let active = [true, true];
        for layer in 0..4 {
            let runners = stack.sweep_layer(layer, &mut hidden, &active, &positions, &mut meter);
            assert_eq!(runners, 2);
            ha = ra.forward_layer(layer, &ha, 2, &mut meter);
            hb = rb.forward_layer(layer, &hb, 1, &mut meter);
        }
        assert_eq!(hidden[sa].as_deref(), Some(ha.as_slice()));
        assert_eq!(hidden[sb].as_deref(), Some(hb.as_slice()));
    }

    #[test]
    fn inactive_slots_do_not_run() {
        let mut stack: BatchedStack<Transformer> = BatchedStack::new(2, 16);
        let mut meter = Meter::new();
        let mut a = model(9);
        let mut b = model(9);
        prefill(&mut a, &[1], &mut meter);
        prefill(&mut b, &[1], &mut meter);
        let sa = stack.admit(a);
        let sb = stack.admit(b);
        let mut hidden = vec![None, None];
        hidden[sa] = Some(stack.model_mut(sa).begin_token(2, &mut meter));
        hidden[sb] = Some(stack.model_mut(sb).begin_token(2, &mut meter));
        let frozen = hidden[sb].clone();
        let runners = stack.sweep_layer(0, &mut hidden, &[true, false], &[1, 1], &mut meter);
        assert_eq!(runners, 1);
        assert_eq!(hidden[sb], frozen, "masked-off slot keeps its state");
        assert_ne!(hidden[sa], frozen);
    }

    #[test]
    fn sync_leases_tracks_growth() {
        let mut stack: BatchedStack<Transformer> = BatchedStack::new(1, 2);
        let mut meter = Meter::new();
        let mut m = model(4);
        prefill(&mut m, &[1, 2], &mut meter);
        let slot = stack.admit(m);
        assert_eq!(stack.pool().pages_in_use(), 1);
        // Decode one token through all layers, then sync.
        let pos = stack.model(slot).kv_len();
        let mut h = stack.model_mut(slot).begin_token(3, &mut meter);
        for layer in 0..4 {
            h = stack
                .model_mut(slot)
                .forward_layer(layer, &h, pos, &mut meter);
        }
        stack.sync_leases();
        assert_eq!(stack.pool().pages_in_use(), 2, "third token needs page 2");
    }

    #[test]
    #[should_panic(expected = "no free slot")]
    fn admit_checks_capacity() {
        let mut stack: BatchedStack<Transformer> = BatchedStack::new(1, 16);
        stack.admit(model(1));
        stack.admit(model(2));
    }
}
