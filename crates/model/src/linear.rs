//! Linear operators: dense f32, group-quantized, or AWQ-calibrated weights.

use serde::{Deserialize, Serialize};
use specee_tensor::awq::{AwqCalibration, AwqMatrix};
use specee_tensor::{BackendKind, Matrix, QuantBits, QuantizedMatrix};

/// A weight matrix that is dense f32, plain group-quantized
/// (round-to-nearest), or AWQ-quantized with activation-aware per-channel
/// scales. All variants expose the same mat-vec interface so the decoder
/// is agnostic to precision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LinearOp {
    /// Dense f32 weights.
    Dense(Matrix),
    /// Group-quantized weights with dequantize-on-the-fly mat-vec.
    Quant(QuantizedMatrix),
    /// AWQ-quantized weights (activation-calibrated channel scales).
    Awq(AwqMatrix),
}

impl LinearOp {
    /// Quantizes a dense operator in place (group size 32, clamped to the
    /// column count when smaller).
    ///
    /// # Panics
    ///
    /// Panics if the column count is not divisible by the chosen group size
    /// (all model dims in this workspace are powers of two ≥ 32).
    pub fn quantized(m: &Matrix, bits: QuantBits) -> Self {
        let group = 32.min(m.cols());
        LinearOp::Quant(QuantizedMatrix::quantize(m, bits, group).expect("pow2 dims"))
    }

    /// AWQ-quantizes a dense operator with a grid search over the channel
    /// scale exponent, calibrated on the recorded `activations` of this
    /// operator's input site.
    ///
    /// # Panics
    ///
    /// Panics if `activations` is empty, disagrees with the column count,
    /// or the group size does not divide the columns.
    pub fn awq_quantized(m: &Matrix, bits: QuantBits, activations: &[Vec<f32>]) -> Self {
        let group = 32.min(m.cols());
        let calib = AwqCalibration::from_activations(activations);
        LinearOp::Awq(AwqMatrix::quantize(m, &calib, bits, group, activations).expect("pow2 dims"))
    }

    /// Output rows.
    pub fn rows(&self) -> usize {
        match self {
            LinearOp::Dense(m) => m.rows(),
            LinearOp::Quant(q) => q.rows(),
            LinearOp::Awq(a) => a.rows(),
        }
    }

    /// Input columns.
    pub fn cols(&self) -> usize {
        match self {
            LinearOp::Dense(m) => m.cols(),
            LinearOp::Quant(q) => q.cols(),
            LinearOp::Awq(a) => a.cols(),
        }
    }

    /// Mat-vec product.
    pub fn matvec(&self, x: &[f32]) -> Vec<f32> {
        match self {
            LinearOp::Dense(m) => m.matvec(x),
            LinearOp::Quant(q) => q.matvec(x),
            LinearOp::Awq(a) => a.matvec(x),
        }
    }

    /// Mat-vec product through a compute backend. With
    /// [`BackendKind::Reference`] this is bit-identical to
    /// [`LinearOp::matvec`].
    pub fn matvec_with(&self, backend: BackendKind, x: &[f32]) -> Vec<f32> {
        match self {
            LinearOp::Dense(m) => backend.get().matvec(m, x),
            LinearOp::Quant(q) => backend.get().matvec_q(q, x),
            LinearOp::Awq(a) => a.matvec_with(backend.get(), x),
        }
    }

    /// Product against a subset of rows (speculative LM-head slice).
    ///
    /// # Panics
    ///
    /// Panics if a row index is out of bounds.
    pub fn matvec_rows(&self, rows: &[usize], x: &[f32]) -> Vec<f32> {
        match self {
            LinearOp::Dense(m) => m.matvec_rows(rows, x),
            LinearOp::Quant(q) => {
                // Dequantized gather for the handful of candidate rows.
                let dense = q.dequantize();
                dense.matvec_rows(rows, x)
            }
            LinearOp::Awq(a) => a.matvec_rows(rows, x),
        }
    }

    /// Payload bytes at the executed precision.
    pub fn bytes(&self) -> usize {
        match self {
            LinearOp::Dense(m) => m.bytes(),
            LinearOp::Quant(q) => q.bytes(),
            LinearOp::Awq(a) => a.bytes(),
        }
    }

    /// Whether the operator is quantized (either scheme).
    pub fn is_quantized(&self) -> bool {
        !matches!(self, LinearOp::Dense(_))
    }
}

impl From<Matrix> for LinearOp {
    fn from(m: Matrix) -> Self {
        LinearOp::Dense(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specee_tensor::rng::Pcg;

    #[test]
    fn dense_and_quant_agree_roughly() {
        let mut rng = Pcg::seed(1);
        let m = Matrix::random(8, 64, 0.3, &mut rng);
        let d = LinearOp::from(m.clone());
        let q = LinearOp::quantized(&m, QuantBits::Int8);
        let x: Vec<f32> = (0..64).map(|i| (i as f32).sin() * 0.1).collect();
        for (a, b) in d.matvec(&x).iter().zip(q.matvec(&x).iter()) {
            assert!((a - b).abs() < 0.05, "{a} vs {b}");
        }
    }

    #[test]
    fn quant_is_smaller() {
        let mut rng = Pcg::seed(2);
        let m = Matrix::random(16, 64, 1.0, &mut rng);
        let d = LinearOp::from(m.clone());
        let q = LinearOp::quantized(&m, QuantBits::Int4);
        assert!(q.bytes() < d.bytes() / 3);
        assert!(q.is_quantized());
        assert!(!d.is_quantized());
    }

    #[test]
    fn matvec_rows_matches_full() {
        let mut rng = Pcg::seed(3);
        let m = Matrix::random(10, 32, 0.5, &mut rng);
        let q = LinearOp::quantized(&m, QuantBits::Int8);
        let x = vec![0.05; 32];
        let full = q.matvec(&x);
        let sel = q.matvec_rows(&[2, 9], &x);
        assert!((sel[0] - full[2]).abs() < 1e-6);
        assert!((sel[1] - full[9]).abs() < 1e-6);
    }
}
