//! Per-layer key/value caches: contiguous (HuggingFace-style) and paged
//! (vllm-style block allocator).

use serde::{Deserialize, Serialize};

/// Allocation strategy for a [`KvCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum KvLayout {
    /// One growing buffer per layer; capacity doubles on growth (the
    /// HuggingFace dynamic-cache behaviour).
    Contiguous,
    /// Fixed-size pages of `page_size` token slots allocated on demand
    /// (the vllm PagedAttention behaviour).
    Paged {
        /// Tokens per page.
        page_size: usize,
    },
}

/// How to fill the KV cache of layers that were skipped by an early exit.
///
/// The paper does not specify this mechanism; all three policies preserve
/// the engine dataflow and are ablated in `ablation_kv_policy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SkipKvPolicy {
    /// Run only the K/V projections of each skipped layer on the exit
    /// hidden state (cheap; keeps keys/values on-distribution). Default.
    #[default]
    ProjectExitHidden,
    /// Copy the previous position's K/V entries.
    ReuseLast,
    /// Write zero vectors (attention will effectively ignore the slot).
    ZeroFill,
}

/// Key/value cache for a single decoder layer.
///
/// Stores one `kv_dim`-wide key and value row per committed position.
///
/// # Examples
///
/// ```
/// use specee_model::kv::{KvCache, KvLayout};
///
/// let mut cache = KvCache::new(8, KvLayout::Paged { page_size: 4 });
/// cache.push(&[0.0; 8], &[1.0; 8]);
/// assert_eq!(cache.len(), 1);
/// assert_eq!(cache.allocated_tokens(), 4); // one page
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KvCache {
    kv_dim: usize,
    layout: KvLayout,
    k: Vec<f32>,
    v: Vec<f32>,
    len: usize,
}

impl KvCache {
    /// Creates an empty cache for rows of width `kv_dim`.
    ///
    /// # Panics
    ///
    /// Panics if `kv_dim` is zero, or a paged layout has zero page size.
    pub fn new(kv_dim: usize, layout: KvLayout) -> Self {
        assert!(kv_dim > 0, "kv_dim must be positive");
        if let KvLayout::Paged { page_size } = layout {
            assert!(page_size > 0, "page_size must be positive");
        }
        KvCache {
            kv_dim,
            layout,
            k: Vec::new(),
            v: Vec::new(),
            len: 0,
        }
    }

    /// Row width.
    pub fn kv_dim(&self) -> usize {
        self.kv_dim
    }

    /// Allocation layout.
    pub fn layout(&self) -> KvLayout {
        self.layout
    }

    /// Number of committed positions.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no positions are committed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends one position.
    ///
    /// # Panics
    ///
    /// Panics if the slices are not `kv_dim` wide.
    pub fn push(&mut self, key: &[f32], value: &[f32]) {
        assert_eq!(key.len(), self.kv_dim, "key width");
        assert_eq!(value.len(), self.kv_dim, "value width");
        self.k.extend_from_slice(key);
        self.v.extend_from_slice(value);
        self.len += 1;
    }

    /// Copies the last position's K/V as a new position.
    ///
    /// # Panics
    ///
    /// Panics if the cache is empty.
    pub fn push_repeat_last(&mut self) {
        assert!(self.len > 0, "cannot repeat into empty cache");
        let start = (self.len - 1) * self.kv_dim;
        let key: Vec<f32> = self.k[start..start + self.kv_dim].to_vec();
        let value: Vec<f32> = self.v[start..start + self.kv_dim].to_vec();
        self.push(&key, &value);
    }

    /// Appends a zero position.
    pub fn push_zero(&mut self) {
        self.k.extend(std::iter::repeat_n(0.0, self.kv_dim));
        self.v.extend(std::iter::repeat_n(0.0, self.kv_dim));
        self.len += 1;
    }

    /// Key row at `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `pos >= len()`.
    pub fn key(&self, pos: usize) -> &[f32] {
        assert!(pos < self.len, "key pos {pos} >= {}", self.len);
        &self.k[pos * self.kv_dim..(pos + 1) * self.kv_dim]
    }

    /// Value row at `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `pos >= len()`.
    pub fn value(&self, pos: usize) -> &[f32] {
        assert!(pos < self.len, "value pos {pos} >= {}", self.len);
        &self.v[pos * self.kv_dim..(pos + 1) * self.kv_dim]
    }

    /// Discards positions beyond `new_len` (speculative rollback).
    pub fn truncate(&mut self, new_len: usize) {
        if new_len < self.len {
            self.len = new_len;
            self.k.truncate(new_len * self.kv_dim);
            self.v.truncate(new_len * self.kv_dim);
        }
    }

    /// Clears all positions.
    pub fn clear(&mut self) {
        self.truncate(0);
    }

    /// Token slots *allocated* under the layout (≥ `len()`): contiguous
    /// rounds to the geometric growth capacity, paged rounds up to whole
    /// pages. This drives the memory-usage experiment (Fig. 17).
    pub fn allocated_tokens(&self) -> usize {
        match self.layout {
            KvLayout::Contiguous => self.len.next_power_of_two().max(self.len),
            KvLayout::Paged { page_size } => self.len.div_ceil(page_size) * page_size,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_back() {
        let mut c = KvCache::new(4, KvLayout::Contiguous);
        c.push(&[1.0, 2.0, 3.0, 4.0], &[5.0, 6.0, 7.0, 8.0]);
        c.push(&[9.0; 4], &[0.5; 4]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.key(0), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c.value(1), &[0.5; 4]);
    }

    #[test]
    fn truncate_rolls_back() {
        let mut c = KvCache::new(2, KvLayout::Contiguous);
        for i in 0..5 {
            c.push(&[i as f32; 2], &[i as f32; 2]);
        }
        c.truncate(2);
        assert_eq!(c.len(), 2);
        assert_eq!(c.key(1), &[1.0, 1.0]);
    }

    #[test]
    fn repeat_last_copies() {
        let mut c = KvCache::new(2, KvLayout::Contiguous);
        c.push(&[3.0, 4.0], &[5.0, 6.0]);
        c.push_repeat_last();
        assert_eq!(c.key(1), c.key(0));
        assert_eq!(c.value(1), c.value(0));
    }

    #[test]
    fn zero_fill() {
        let mut c = KvCache::new(3, KvLayout::Contiguous);
        c.push_zero();
        assert_eq!(c.key(0), &[0.0; 3]);
    }

    #[test]
    fn paged_allocation_rounds_up() {
        let mut c = KvCache::new(2, KvLayout::Paged { page_size: 16 });
        assert_eq!(c.allocated_tokens(), 0);
        c.push(&[0.0; 2], &[0.0; 2]);
        assert_eq!(c.allocated_tokens(), 16);
        for _ in 0..16 {
            c.push(&[0.0; 2], &[0.0; 2]);
        }
        assert_eq!(c.allocated_tokens(), 32);
    }

    #[test]
    fn contiguous_allocation_grows_geometrically() {
        let mut c = KvCache::new(1, KvLayout::Contiguous);
        for _ in 0..5 {
            c.push(&[0.0], &[0.0]);
        }
        assert_eq!(c.allocated_tokens(), 8);
    }

    #[test]
    #[should_panic(expected = "key width")]
    fn validates_row_width() {
        KvCache::new(4, KvLayout::Contiguous).push(&[0.0; 3], &[0.0; 3]);
    }
}
