//! The [`LayeredLm`] abstraction: per-layer stepping for early exit.
//!
//! SpecEE interleaves decoder layers with predictor calls (Fig. 3), so the
//! engine cannot treat the model as a black-box `forward()`. `LayeredLm`
//! exposes exactly the control points the engine needs: embed a token, run
//! one layer, run one layer over a draft-token tree, read full or sliced
//! logits, and fill the KV cache of skipped layers after an exit.
//!
//! Both the real [`crate::Transformer`] and the calibrated synthetic model
//! in `specee-synth` implement this trait, so every engine runs unchanged
//! on either substrate.

use specee_metrics::Meter;
use specee_tensor::BackendKind;

use crate::attention::TreeKv;
use crate::config::{ModelConfig, TokenId};
use crate::kv::SkipKvPolicy;

/// A decoder-only LM that can be stepped one layer at a time.
pub trait LayeredLm {
    /// Model configuration (executed dims + cost twin).
    fn config(&self) -> &ModelConfig;

    /// Selects the compute backend for subsequent forwards. Models whose
    /// arithmetic is not expressed through `specee-tensor` mat-vecs (e.g.
    /// the calibrated synthetic model) may ignore the request; callers can
    /// check [`LayeredLm::backend`] to see what is in effect.
    fn set_backend(&mut self, _backend: BackendKind) {}

    /// The compute backend in effect ([`BackendKind::Reference`] unless
    /// the implementation routes mat-vecs through a backend).
    fn backend(&self) -> BackendKind {
        BackendKind::Reference
    }

    /// Clears all sequence state (KV caches, context bookkeeping).
    fn reset(&mut self);

    /// Notes `token` as the next committed context token and returns its
    /// embedding. Position bookkeeping is internal: tokens must be fed
    /// strictly in order.
    fn begin_token(&mut self, token: TokenId, meter: &mut Meter) -> Vec<f32>;

    /// Runs decoder layer `layer` on hidden state `h` at position `pos`,
    /// appending this layer's K/V for the position.
    fn forward_layer(&mut self, layer: usize, h: &[f32], pos: usize, meter: &mut Meter)
        -> Vec<f32>;

    /// Embeds a batch of draft-tree tokens (`parents[i]` is the in-batch
    /// parent index, `None` for tree roots hanging off the committed
    /// context).
    fn begin_tree(
        &mut self,
        tokens: &[TokenId],
        parents: &[Option<usize>],
        meter: &mut Meter,
    ) -> Vec<Vec<f32>>;

    /// Runs decoder layer `layer` over the whole draft tree with a tree
    /// attention mask; returns per-node outputs and the scratch K/V that
    /// [`LayeredLm::commit_tree_kv`] can later commit.
    fn forward_layer_tree(
        &mut self,
        layer: usize,
        hs: &[Vec<f32>],
        parents: &[Option<usize>],
        meter: &mut Meter,
    ) -> (Vec<Vec<f32>>, TreeKv);

    /// Embeds the nodes appended at indices `first_new..` of a growing
    /// draft tree (`parents` covers old and new nodes) and returns their
    /// embeddings. Together with
    /// [`LayeredLm::forward_layer_tree_partial`] this is the incremental
    /// half of the tree API: the self-draft pass grows the tree level by
    /// level without re-running already-drafted nodes.
    ///
    /// Calling `begin_tree` starts a fresh tree; `extend_tree` continues
    /// the most recently begun one.
    fn extend_tree(
        &mut self,
        tokens: &[TokenId],
        parents: &[Option<usize>],
        first_new: usize,
        meter: &mut Meter,
    ) -> Vec<Vec<f32>>;

    /// Runs decoder layer `layer` over only the nodes `first_new..` of a
    /// growing draft tree, reading ancestor K/V from `scratch` (which
    /// must hold rows for nodes `0..first_new`) and appending the new
    /// nodes' rows to it. Key order and RoPE positions match
    /// [`LayeredLm::forward_layer_tree`], so repeated partial calls over
    /// a growing tree are bit-identical to one full sweep.
    fn forward_layer_tree_partial(
        &mut self,
        layer: usize,
        new_hs: &[Vec<f32>],
        parents: &[Option<usize>],
        first_new: usize,
        scratch: &mut TreeKv,
        meter: &mut Meter,
    ) -> Vec<Vec<f32>>;

    /// Commits the K/V rows of the accepted node indices (in path order)
    /// into layer `layer`'s cache.
    fn commit_tree_kv(&mut self, layer: usize, kv: &TreeKv, accepted: &[usize]);

    /// Notes that `tokens` (in order) were accepted into the context after
    /// a speculative verification round.
    fn accept_tokens(&mut self, tokens: &[TokenId]);

    /// Fills a *single* layer's K/V for position `pos` according to
    /// `policy`, for a layer whose block computation was bypassed. Used by
    /// early exit (suffix skips, via [`LayeredLm::fill_skipped_kv`]) and by
    /// skip-layer baselines (mid-stack skips, MoD / D-LLM style) alike.
    fn fill_layer_kv(
        &mut self,
        layer: usize,
        h: &[f32],
        pos: usize,
        policy: SkipKvPolicy,
        meter: &mut Meter,
    );

    /// After an early exit at layer `first_skipped - 1`, fills layers
    /// `first_skipped..n_layers` K/V for position `pos` according to
    /// `policy`.
    fn fill_skipped_kv(
        &mut self,
        first_skipped: usize,
        h: &[f32],
        pos: usize,
        policy: SkipKvPolicy,
        meter: &mut Meter,
    ) {
        for layer in first_skipped..self.config().n_layers {
            self.fill_layer_kv(layer, h, pos, policy, meter);
        }
    }

    /// Final norm + full LM head over the whole vocabulary.
    fn final_logits(&mut self, h: &[f32], meter: &mut Meter) -> Vec<f32>;

    /// Batched full LM head over several hidden states (one weight read —
    /// how tree verification prices the head). The default computes
    /// per-state logits and meters each separately; `Transformer`
    /// overrides with batched metering.
    fn final_logits_batch(&mut self, hs: &[Vec<f32>], meter: &mut Meter) -> Vec<Vec<f32>> {
        hs.iter().map(|h| self.final_logits(h, meter)).collect()
    }

    /// Final norm + LM-head slice over the candidate `tokens` only
    /// (SpecEE's speculative LM head).
    fn slice_logits(&mut self, h: &[f32], tokens: &[TokenId], meter: &mut Meter) -> Vec<f32>;

    /// Grouped candidate-slice logits for several (hidden, candidates)
    /// pairs, metered as ONE block-wise grouped GEMM (T3's custom
    /// kernel, Fig. 13). The default meters per group; `Transformer`
    /// overrides with batched metering.
    fn grouped_slice_logits(
        &mut self,
        hs: &[&[f32]],
        candidate_sets: &[&[TokenId]],
        meter: &mut Meter,
    ) -> Vec<Vec<f32>> {
        hs.iter()
            .zip(candidate_sets.iter())
            .map(|(h, c)| self.slice_logits(h, c, meter))
            .collect()
    }

    /// Number of committed positions.
    fn kv_len(&self) -> usize;

    /// Rolls every layer's cache back to `len` positions.
    fn truncate_kv(&mut self, len: usize);

    /// Token slots currently allocated across layers (layout-dependent).
    fn allocated_kv_tokens(&self) -> usize;

    /// Modelled full-scale weight payload in bytes (for memory reports).
    fn modelled_weight_bytes(&self) -> f64;
}
