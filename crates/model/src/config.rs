//! Model configuration: executed dimensions plus an optional full-scale
//! "cost twin".
//!
//! The reproduction executes real transformer math at laptop-scale
//! dimensions, but meters every operation at the dimensions of the model it
//! stands in for (Table 3 of the paper). `ModelConfig` therefore carries
//! the *executed* dims and an optional [`CostDims`] twin; every op site
//! derives FLOPs/bytes from the twin when present.

use serde::{Deserialize, Serialize};

/// Token identifier within the model vocabulary.
pub type TokenId = u32;

/// Full-scale dimensions used for cost metering (the paper's Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostDims {
    /// Hidden dimension.
    pub hidden_dim: usize,
    /// Number of attention heads.
    pub n_heads: usize,
    /// Number of key/value heads (GQA; equals `n_heads` for MHA).
    pub n_kv_heads: usize,
    /// Decoder layer count.
    pub n_layers: usize,
    /// FFN intermediate dimension.
    pub ffn_dim: usize,
    /// Vocabulary size.
    pub vocab_size: usize,
    /// Bits per weight element (16 for f16, 4 for AWQ int4, ...).
    pub weight_bits: usize,
}

impl CostDims {
    /// Llama2-7B (Table 3: 4096 hidden, 32 heads, 32 layers).
    pub fn llama2_7b() -> Self {
        CostDims {
            hidden_dim: 4096,
            n_heads: 32,
            n_kv_heads: 32,
            n_layers: 32,
            ffn_dim: 11008,
            vocab_size: 32000,
            weight_bits: 16,
        }
    }

    /// Llama2-13B (5120 hidden, 40 heads, 40 layers).
    pub fn llama2_13b() -> Self {
        CostDims {
            hidden_dim: 5120,
            n_heads: 40,
            n_kv_heads: 40,
            n_layers: 40,
            ffn_dim: 13824,
            vocab_size: 32000,
            weight_bits: 16,
        }
    }

    /// Llama2-70B (8192 hidden, 64 heads, 8 KV heads, 80 layers).
    pub fn llama2_70b() -> Self {
        CostDims {
            hidden_dim: 8192,
            n_heads: 64,
            n_kv_heads: 8,
            n_layers: 80,
            ffn_dim: 28672,
            vocab_size: 32000,
            weight_bits: 16,
        }
    }

    /// The same dims with a different weight precision (AWQ int4 twin).
    pub fn with_weight_bits(mut self, bits: usize) -> Self {
        self.weight_bits = bits;
        self
    }

    /// Bytes of one weight element at this precision (may be fractional for
    /// sub-byte precisions, hence `f64`).
    pub fn weight_bytes_per_elem(&self) -> f64 {
        self.weight_bits as f64 / 8.0
    }

    /// Key/value hidden dimension (`n_kv_heads × head_dim`).
    pub fn kv_dim(&self) -> usize {
        self.hidden_dim / self.n_heads * self.n_kv_heads
    }

    /// Total weight payload in bytes: embeddings, decoder layers, LM head.
    pub fn weight_bytes_total(&self) -> f64 {
        let h = self.hidden_dim as f64;
        let kv = self.kv_dim() as f64;
        let attn = h * h * 2.0 + h * kv * 2.0;
        let ffn = 3.0 * h * self.ffn_dim as f64;
        let per_layer = attn + ffn + 2.0 * h; // + two norm gains
        let embed = self.vocab_size as f64 * h;
        let lm_head = self.vocab_size as f64 * h;
        (per_layer * self.n_layers as f64 + embed + lm_head) * self.weight_bytes_per_elem()
    }

    /// KV-cache bytes for one token position across all layers (f16 cache).
    pub fn kv_bytes_per_token(&self) -> f64 {
        2.0 * self.kv_dim() as f64 * self.n_layers as f64 * 2.0
    }
}

/// Configuration of an executable model.
///
/// # Examples
///
/// ```
/// use specee_model::ModelConfig;
///
/// let cfg = ModelConfig::sim_llama2_7b();
/// assert_eq!(cfg.n_layers, 32);
/// assert_eq!(cfg.head_dim(), cfg.hidden_dim / cfg.n_heads);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Model name for reports.
    pub name: String,
    /// Executed hidden dimension.
    pub hidden_dim: usize,
    /// Executed attention head count.
    pub n_heads: usize,
    /// Executed decoder layer count.
    pub n_layers: usize,
    /// Executed FFN intermediate dimension.
    pub ffn_dim: usize,
    /// Executed vocabulary size.
    pub vocab_size: usize,
    /// Maximum context length.
    pub context_len: usize,
    /// RoPE base frequency.
    pub rope_theta: f32,
    /// Full-scale metering twin; `None` meters at executed dims.
    pub cost: Option<CostDims>,
}

impl ModelConfig {
    /// A tiny configuration for unit tests.
    pub fn tiny() -> Self {
        ModelConfig {
            name: "tiny".to_string(),
            hidden_dim: 32,
            n_heads: 4,
            n_layers: 4,
            ffn_dim: 64,
            vocab_size: 128,
            context_len: 128,
            rope_theta: 10000.0,
            cost: None,
        }
    }

    /// Simulation stand-in for Llama2-7B: executed at reduced width, layer
    /// count preserved (exit-layer behaviour depends on depth), metered at
    /// the 7B twin.
    pub fn sim_llama2_7b() -> Self {
        ModelConfig {
            name: "Llama2-7B(sim)".to_string(),
            hidden_dim: 128,
            n_heads: 4,
            n_layers: 32,
            ffn_dim: 256,
            vocab_size: 2048,
            context_len: 1024,
            rope_theta: 10000.0,
            cost: Some(CostDims::llama2_7b()),
        }
    }

    /// Simulation stand-in for Llama2-13B (40 layers).
    pub fn sim_llama2_13b() -> Self {
        ModelConfig {
            name: "Llama2-13B(sim)".to_string(),
            hidden_dim: 128,
            n_heads: 4,
            n_layers: 40,
            ffn_dim: 256,
            vocab_size: 2048,
            context_len: 1024,
            rope_theta: 10000.0,
            cost: Some(CostDims::llama2_13b()),
        }
    }

    /// Simulation stand-in for Llama2-70B (80 layers).
    pub fn sim_llama2_70b() -> Self {
        ModelConfig {
            name: "Llama2-70B(sim)".to_string(),
            hidden_dim: 128,
            n_heads: 4,
            n_layers: 80,
            ffn_dim: 256,
            vocab_size: 2048,
            context_len: 1024,
            rope_theta: 10000.0,
            cost: Some(CostDims::llama2_70b()),
        }
    }

    /// Simulation stand-in for Vicuna-7B (same architecture as Llama2-7B;
    /// used by Fig. 10(c) for the second exit-distribution).
    pub fn sim_vicuna_7b() -> Self {
        let mut cfg = Self::sim_llama2_7b();
        cfg.name = "Vicuna-7B(sim)".to_string();
        cfg
    }

    /// Dimension of one attention head.
    ///
    /// # Panics
    ///
    /// Panics if `hidden_dim` is not divisible by `n_heads`.
    pub fn head_dim(&self) -> usize {
        assert!(
            self.hidden_dim % self.n_heads == 0,
            "hidden_dim {} not divisible by n_heads {}",
            self.hidden_dim,
            self.n_heads
        );
        self.hidden_dim / self.n_heads
    }

    /// Replaces the cost twin.
    pub fn with_cost(mut self, cost: CostDims) -> Self {
        self.cost = Some(cost);
        self
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.hidden_dim == 0 || self.n_layers == 0 || self.vocab_size == 0 {
            return Err("dimensions must be positive".to_string());
        }
        if self.hidden_dim % self.n_heads != 0 {
            return Err(format!(
                "hidden_dim {} not divisible by n_heads {}",
                self.hidden_dim, self.n_heads
            ));
        }
        if self.context_len == 0 {
            return Err("context_len must be positive".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        for cfg in [
            ModelConfig::tiny(),
            ModelConfig::sim_llama2_7b(),
            ModelConfig::sim_llama2_13b(),
            ModelConfig::sim_llama2_70b(),
        ] {
            cfg.validate().unwrap();
        }
    }

    #[test]
    fn cost_twins_match_paper_table3() {
        let c7 = CostDims::llama2_7b();
        assert_eq!((c7.hidden_dim, c7.n_heads, c7.n_layers), (4096, 32, 32));
        let c13 = CostDims::llama2_13b();
        assert_eq!((c13.hidden_dim, c13.n_heads, c13.n_layers), (5120, 40, 40));
        let c70 = CostDims::llama2_70b();
        assert_eq!((c70.hidden_dim, c70.n_heads, c70.n_layers), (8192, 64, 80));
    }

    #[test]
    fn weight_totals_are_plausible() {
        // Llama2-7B at f16 is ~13.5 GB.
        let gb = CostDims::llama2_7b().weight_bytes_total() / 1e9;
        assert!((12.0..15.5).contains(&gb), "7B weights {gb} GB");
        // int4 shrinks ~4x.
        let gb4 = CostDims::llama2_7b()
            .with_weight_bits(4)
            .weight_bytes_total()
            / 1e9;
        assert!(gb4 < gb / 3.5, "int4 {gb4} GB");
    }

    #[test]
    fn gqa_shrinks_kv() {
        let mha = CostDims::llama2_7b();
        let gqa = CostDims::llama2_70b();
        assert!(gqa.kv_dim() < gqa.hidden_dim);
        assert_eq!(mha.kv_dim(), mha.hidden_dim);
    }

    #[test]
    fn validate_rejects_bad_heads() {
        let mut cfg = ModelConfig::tiny();
        cfg.n_heads = 5;
        assert!(cfg.validate().is_err());
    }
}
