//! Rotary position embeddings (RoPE), as used by Llama-family models.

/// Applies rotary position embedding in place to a per-head vector layout:
/// `x` is `[n_heads × head_dim]`, rotated pairwise within each head.
///
/// # Panics
///
/// Panics if `x.len()` is not `n_heads * head_dim` or `head_dim` is odd.
pub fn apply_rope(x: &mut [f32], pos: usize, n_heads: usize, head_dim: usize, theta: f32) {
    assert_eq!(x.len(), n_heads * head_dim, "rope shape");
    assert!(head_dim % 2 == 0, "head_dim must be even");
    for h in 0..n_heads {
        let head = &mut x[h * head_dim..(h + 1) * head_dim];
        for i in 0..head_dim / 2 {
            let freq = theta.powf(-2.0 * i as f32 / head_dim as f32);
            let angle = pos as f32 * freq;
            let (sin, cos) = angle.sin_cos();
            let (a, b) = (head[2 * i], head[2 * i + 1]);
            head[2 * i] = a * cos - b * sin;
            head[2 * i + 1] = a * sin + b * cos;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specee_tensor::ops::l2_norm;

    #[test]
    fn position_zero_is_identity() {
        let mut x = vec![0.5, -0.25, 1.0, 2.0];
        let orig = x.clone();
        apply_rope(&mut x, 0, 1, 4, 10000.0);
        for (a, b) in x.iter().zip(orig.iter()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn rotation_preserves_norm() {
        let mut x = vec![0.3, -0.7, 0.2, 0.9, 1.1, -0.4, 0.0, 0.5];
        let before = l2_norm(&x);
        apply_rope(&mut x, 17, 2, 4, 10000.0);
        assert!((l2_norm(&x) - before).abs() < 1e-5);
    }

    #[test]
    fn relative_property_dot_depends_on_distance() {
        // q at pos p and k at pos q: their dot depends only on p - q.
        let base_q = vec![0.4, 0.1];
        let base_k = vec![-0.2, 0.8];
        let dot_at = |pq: usize, pk: usize| {
            let mut q = base_q.clone();
            let mut k = base_k.clone();
            apply_rope(&mut q, pq, 1, 2, 10000.0);
            apply_rope(&mut k, pk, 1, 2, 10000.0);
            q[0] * k[0] + q[1] * k[1]
        };
        assert!((dot_at(5, 3) - dot_at(9, 7)).abs() < 1e-5);
        assert!((dot_at(5, 3) - dot_at(5, 2)).abs() > 1e-6);
    }

    #[test]
    #[should_panic(expected = "rope shape")]
    fn validates_shape() {
        let mut x = vec![0.0; 6];
        apply_rope(&mut x, 0, 2, 4, 10000.0);
    }
}
