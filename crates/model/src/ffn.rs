//! Gated feed-forward network, dense and sparse-activation variants.

use serde::{Deserialize, Serialize};
use specee_metrics::Meter;
use specee_tensor::{ops, rng::Pcg, BackendKind, Matrix};

use crate::linear::LinearOp;
use crate::metering::OpScale;
use crate::weights::LayerWeights;

/// FFN execution mode.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FfnMode {
    /// Full dense gated FFN.
    Dense,
    /// Sparse activation: a low-rank router predicts the hot neurons and
    /// only `active_frac` of FFN rows are computed (the PowerInfer
    /// substitution).
    Sparse {
        /// Fraction of FFN neurons computed, in `(0, 1]`.
        active_frac: f32,
        /// Rank of the router factorization.
        router_rank: usize,
    },
}

/// Low-rank neuron-activity router for one layer (PowerInfer-style).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FfnRouter {
    a: Matrix,
    b: Matrix,
}

impl FfnRouter {
    /// Random router of the given rank for a layer of shape
    /// `hidden → ffn`.
    pub fn random(hidden: usize, ffn: usize, rank: usize, rng: &mut Pcg) -> Self {
        FfnRouter {
            a: Matrix::random(rank, hidden, 1.0 / (hidden as f32).sqrt(), rng),
            b: Matrix::random(ffn, rank, 1.0 / (rank as f32).sqrt(), rng),
        }
    }

    /// Predicted activity score per FFN neuron.
    pub fn scores(&self, x: &[f32]) -> Vec<f32> {
        self.b.matvec(&self.a.matvec(x))
    }

    /// Router rank.
    pub fn rank(&self) -> usize {
        self.a.rows()
    }
}

/// Dense gated FFN without metering (shared by the single-token and
/// tree-batched paths, which meter differently). The three mat-vecs run
/// on `backend`; [`BackendKind::Reference`] reproduces the historical
/// scalar path bit-for-bit.
pub fn ffn_apply(w: &LayerWeights, backend: BackendKind, x: &[f32]) -> Vec<f32> {
    let gate = w.w_gate.matvec_with(backend, x);
    let up = w.w_up.matvec_with(backend, x);
    let mut act = vec![0.0f32; gate.len()];
    for ((a, &g), &u) in act.iter_mut().zip(gate.iter()).zip(up.iter()) {
        *a = ops::silu(g) * u;
    }
    w.w_down.matvec_with(backend, &act)
}

/// Dense gated FFN: `w_down( silu(w_gate x) ⊙ w_up x )`.
pub fn ffn_forward(
    w: &LayerWeights,
    scale: &OpScale,
    backend: BackendKind,
    x: &[f32],
    meter: &mut Meter,
) -> Vec<f32> {
    scale.record_ffn(meter);
    ffn_apply(w, backend, x)
}

/// Sparse gated FFN: only the router-selected neurons are computed.
///
/// # Panics
///
/// Panics if the layer weights are quantized (the PC sparse path runs on
/// dense weights, matching PowerInfer's fp16 hot-neuron path) or if
/// `active_frac` is not in `(0, 1]`.
pub fn ffn_forward_sparse(
    w: &LayerWeights,
    router: &FfnRouter,
    active_frac: f32,
    scale: &OpScale,
    x: &[f32],
    meter: &mut Meter,
) -> Vec<f32> {
    scale.record_ffn_sparse(meter, active_frac as f64, router.rank());
    ffn_apply_sparse(w, router, active_frac, x)
}

/// Sparse gated FFN without metering (see [`ffn_apply`]).
///
/// # Panics
///
/// Panics under the same conditions as [`ffn_forward_sparse`].
pub fn ffn_apply_sparse(
    w: &LayerWeights,
    router: &FfnRouter,
    active_frac: f32,
    x: &[f32],
) -> Vec<f32> {
    assert!(
        active_frac > 0.0 && active_frac <= 1.0,
        "active_frac must be in (0,1]"
    );
    let (gate_m, up_m, down_m) = match (&w.w_gate, &w.w_up, &w.w_down) {
        (LinearOp::Dense(g), LinearOp::Dense(u), LinearOp::Dense(d)) => (g, u, d),
        _ => panic!("sparse FFN requires dense weights"),
    };
    let ffn_dim = gate_m.rows();
    let n_active = ((ffn_dim as f32 * active_frac).ceil() as usize).clamp(1, ffn_dim);
    let scores = router.scores(x);
    let active = ops::top_k(&scores, n_active);

    let mut out = vec![0.0f32; down_m.rows()];
    for &j in &active {
        let g = specee_tensor::matrix::dot(gate_m.row(j), x);
        let u = specee_tensor::matrix::dot(up_m.row(j), x);
        let a = ops::silu(g) * u;
        // w_down column j, strided over rows.
        for (i, o) in out.iter_mut().enumerate() {
            *o += a * down_m.get(i, j);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;

    fn setup() -> (ModelConfig, LayerWeights, OpScale) {
        let cfg = ModelConfig::tiny();
        let mut rng = Pcg::seed(21);
        let w = LayerWeights::random(&cfg, &mut rng);
        (cfg.clone(), w, OpScale::of(&cfg))
    }

    #[test]
    fn dense_output_shape() {
        let (cfg, w, scale) = setup();
        let mut meter = Meter::new();
        let y = ffn_forward(
            &w,
            &scale,
            BackendKind::Reference,
            &vec![0.2; cfg.hidden_dim],
            &mut meter,
        );
        assert_eq!(y.len(), cfg.hidden_dim);
        assert!(meter.total_flops() > 0.0);
    }

    #[test]
    fn full_fraction_sparse_equals_dense() {
        let (cfg, w, scale) = setup();
        let mut rng = Pcg::seed(22);
        let router = FfnRouter::random(cfg.hidden_dim, cfg.ffn_dim, 8, &mut rng);
        let x = vec![0.15; cfg.hidden_dim];
        let mut meter = Meter::new();
        let dense = ffn_forward(&w, &scale, BackendKind::Reference, &x, &mut meter);
        let sparse = ffn_forward_sparse(&w, &router, 1.0, &scale, &x, &mut meter);
        for (a, b) in dense.iter().zip(sparse.iter()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn partial_fraction_approximates_dense() {
        let (cfg, w, scale) = setup();
        let mut rng = Pcg::seed(23);
        let router = FfnRouter::random(cfg.hidden_dim, cfg.ffn_dim, 16, &mut rng);
        let x = vec![0.15; cfg.hidden_dim];
        let mut meter = Meter::new();
        let dense = ffn_forward(&w, &scale, BackendKind::Reference, &x, &mut meter);
        let sparse = ffn_forward_sparse(&w, &router, 0.5, &scale, &x, &mut meter);
        // Not exact, but same magnitude: sparse keeps half the mass.
        let dn = ops::l2_norm(&dense);
        let sn = ops::l2_norm(&sparse);
        assert!(sn > 0.0 && sn < dn * 2.0);
    }

    #[test]
    #[should_panic(expected = "active_frac")]
    fn rejects_zero_fraction() {
        let (cfg, w, scale) = setup();
        let mut rng = Pcg::seed(24);
        let router = FfnRouter::random(cfg.hidden_dim, cfg.ffn_dim, 4, &mut rng);
        let mut meter = Meter::new();
        ffn_forward_sparse(
            &w,
            &router,
            0.0,
            &scale,
            &vec![0.0; cfg.hidden_dim],
            &mut meter,
        );
    }
}
