//! From-scratch decoder-only transformer inference engine.
//!
//! This crate is the substrate standing in for the paper's Llama2 models:
//! a real Llama-style decoder (RMSNorm → RoPE attention → gated FFN,
//! pre-norm residuals, tied LM head) executed at laptop-scale dimensions
//! and metered at full scale through the cost-twin mechanism in
//! [`metering`]. It exposes per-layer stepping through [`traits::LayeredLm`]
//! so the SpecEE engine can interleave predictors with decoder layers, and
//! it implements the orthogonal substrates the paper composes with:
//! contiguous vs paged KV caches ([`kv`], the HF/vllm distinction),
//! group-quantized weights ([`linear`], AWQ) and sparse-activation FFNs
//! ([`ffn`], PowerInfer).
//!
//! # Examples
//!
//! ```
//! use specee_model::{ModelConfig, Transformer, transformer::prefill};
//! use specee_model::traits::LayeredLm;
//! use specee_metrics::Meter;
//! use specee_tensor::rng::Pcg;
//!
//! let mut model = Transformer::random(ModelConfig::tiny(), &mut Pcg::seed(0));
//! let mut meter = Meter::new();
//! let hidden = prefill(&mut model, &[1, 2, 3], &mut meter);
//! let logits = model.final_logits(&hidden, &mut meter);
//! assert_eq!(logits.len(), model.config().vocab_size);
//! ```

#![deny(missing_docs)]

pub mod attention;
pub mod batch;
pub mod calibration;
pub mod config;
pub mod ffn;
pub mod kv;
pub mod linear;
pub mod metering;
pub mod rope;
pub mod traits;
pub mod transformer;
pub mod weights;

pub use attention::TreeKv;
pub use batch::{BatchedStack, KvStats, PrefixIndex, SlotPool};
pub use calibration::{collect_awq_tap, quantize_awq, ActivationTap};
pub use config::{CostDims, ModelConfig, TokenId};
pub use ffn::{FfnMode, FfnRouter};
pub use kv::{KvCache, KvLayout, SkipKvPolicy};
pub use linear::LinearOp;
pub use metering::OpScale;
pub use traits::LayeredLm;
pub use transformer::{prefill, Transformer};
pub use weights::{LayerWeights, ModelWeights};
