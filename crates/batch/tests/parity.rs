//! Batch-1 parity: the lock-step batched runtime must reproduce the
//! single-stream `SpecEeEngine` token-for-token and
//! exit-layer-for-exit-layer on the same seed — both engines drive the
//! same `ExitScan` decision dataflow, so any divergence is a bug in the
//! batching, not a tuning difference.

use specee_batch::{Admission, BatchedEngine};
use specee_core::collect::{collect_training_data, train_bank};
use specee_core::engine::SpecEeEngine;
use specee_core::predictor::{PredictorBank, PredictorConfig};
use specee_core::{ScheduleEngine, SpecEeConfig};
use specee_model::{ModelConfig, TokenId};
use specee_nn::TrainConfig;
use specee_synth::{DatasetProfile, OracleDraft, SyntheticLm, SyntheticLmBuilder};
use specee_tensor::rng::Pcg;

const N_LAYERS: usize = 12;
const GEN: usize = 18;

fn cfg() -> ModelConfig {
    ModelConfig {
        n_layers: N_LAYERS,
        vocab_size: 512,
        ..ModelConfig::tiny()
    }
}

fn build_lm(seed: u64) -> SyntheticLm {
    SyntheticLmBuilder::new(cfg(), DatasetProfile::qa())
        .seed(seed)
        .build()
}

fn build_draft(lm: &SyntheticLm, seed: u64) -> OracleDraft {
    OracleDraft::new(*lm.language(), 0.9, &cfg(), seed)
}

/// Trains one predictor bank + schedule + config shared by both engines.
fn trained(seed: u64) -> (PredictorBank, ScheduleEngine, SpecEeConfig) {
    let mut lm = build_lm(seed);
    let mut draft = build_draft(&lm, seed);
    let prompts: Vec<(Vec<TokenId>, usize)> = (0..14)
        .map(|i| (vec![2 + i, 7 + (i % 5), 1 + i], 12usize))
        .collect();
    let report = collect_training_data(&mut lm, &mut draft, &prompts, 4);
    let pcfg = PredictorConfig {
        hidden_dim: 32,
        ..PredictorConfig::default()
    };
    let mut bank = PredictorBank::new(N_LAYERS, &pcfg, &mut Pcg::seed(seed));
    train_bank(
        &mut bank,
        &report.samples,
        1.0,
        &TrainConfig {
            epochs: 20,
            lr: 3e-3,
            ..Default::default()
        },
        seed,
    );
    let config = SpecEeConfig {
        predictor: pcfg,
        ..SpecEeConfig::default()
    };
    let schedule = config.build_schedule(N_LAYERS, Some(&report.exit_frequencies));
    (bank, schedule, config)
}

fn prompts() -> Vec<Vec<TokenId>> {
    vec![
        vec![4, 2, 9],
        vec![1, 5, 3, 7],
        vec![8, 8, 2],
        vec![3, 1, 4, 1, 5],
    ]
}

/// Single-stream reference run for one prompt (fresh engine per prompt so
/// schedule/noise state never leaks across requests).
fn single_stream(
    seed: u64,
    draft_seed: u64,
    parts: &(PredictorBank, ScheduleEngine, SpecEeConfig),
    prompt: &[TokenId],
) -> (Vec<TokenId>, Vec<usize>, u64, u64) {
    let lm = build_lm(seed);
    let draft = build_draft(&lm, draft_seed);
    let mut engine =
        SpecEeEngine::new(lm, draft, parts.0.clone(), parts.1.clone(), parts.2.clone());
    let out = engine.generate(prompt, GEN);
    (
        out.tokens,
        out.exit_layers,
        out.predictor_calls,
        out.verify_calls,
    )
}

#[test]
fn batch_one_is_token_and_exit_identical_to_single_stream() {
    let seed = 101;
    let parts = trained(seed);
    for (i, prompt) in prompts().iter().enumerate() {
        let draft_seed = seed ^ (i as u64);
        let (tokens, exits, pcalls, vcalls) = single_stream(seed, draft_seed, &parts, prompt);

        let mut engine: BatchedEngine<SyntheticLm, OracleDraft> = BatchedEngine::new(
            1,
            16,
            N_LAYERS,
            parts.0.clone(),
            parts.1.clone(),
            parts.2.clone(),
        );
        let lm = build_lm(seed);
        let draft = build_draft(&lm, draft_seed);
        assert!(matches!(
            engine.admit(i as u64, lm, draft, prompt, GEN),
            Admission::Seated { slot: 0 }
        ));
        let out = engine.drain().remove(0);

        assert_eq!(out.tokens, tokens, "prompt {i}: token stream diverged");
        assert_eq!(out.exit_layers, exits, "prompt {i}: exit layers diverged");
        assert_eq!(out.predictor_calls, pcalls, "prompt {i}: predictor calls");
        assert_eq!(out.verify_calls, vcalls, "prompt {i}: verify calls");
        // Sanity: the run genuinely exercised early exits, not just
        // full-depth agreement.
        assert!(
            out.exit_layers.iter().any(|&l| l < N_LAYERS),
            "prompt {i}: no early exit fired, parity is vacuous"
        );
    }
}

#[test]
fn co_batched_sequences_each_match_their_single_stream_run() {
    // The stronger form: at batch 4, every co-resident sequence still
    // matches its own single-stream run — lock-step batching changes step
    // timing (the Cannikin effect), never values.
    let seed = 103;
    let parts = trained(seed);
    let mut engine: BatchedEngine<SyntheticLm, OracleDraft> = BatchedEngine::new(
        4,
        16,
        N_LAYERS,
        parts.0.clone(),
        parts.1.clone(),
        parts.2.clone(),
    );
    for (i, prompt) in prompts().iter().enumerate() {
        let lm = build_lm(seed);
        let draft = build_draft(&lm, seed ^ (i as u64));
        let _ = engine.admit(i as u64, lm, draft, prompt, GEN);
    }
    let outputs = engine.drain();
    assert_eq!(outputs.len(), 4);
    for (i, (out, prompt)) in outputs.iter().zip(prompts()).enumerate() {
        let (tokens, exits, _, _) = single_stream(seed, seed ^ (i as u64), &parts, &prompt);
        assert_eq!(out.tokens, tokens, "slot {i}");
        assert_eq!(out.exit_layers, exits, "slot {i}");
    }
}

#[test]
fn static_controller_batch_one_matches_single_stream() {
    // `specee generate --controller static` routes through a batch-1
    // BatchedEngine with a static controller attached; its output must
    // be bit-identical to today's uncontrolled single-stream run.
    let seed = 107;
    let parts = trained(seed);
    for (i, prompt) in prompts().iter().enumerate() {
        let draft_seed = seed ^ (i as u64);
        let (tokens, exits, pcalls, vcalls) = single_stream(seed, draft_seed, &parts, prompt);

        let mut engine: BatchedEngine<SyntheticLm, OracleDraft> = BatchedEngine::new(
            1,
            16,
            N_LAYERS,
            parts.0.clone(),
            parts.1.clone(),
            parts.2.clone(),
        );
        engine.set_controller(
            specee_control::ControllerPolicy::Static
                .build_classed(parts.0.len(), parts.2.predictor.threshold),
        );
        let lm = build_lm(seed);
        let draft = build_draft(&lm, draft_seed);
        let _ = engine.admit(i as u64, lm, draft, prompt, GEN);
        let out = engine.drain().remove(0);

        assert_eq!(out.tokens, tokens, "prompt {i}: token stream diverged");
        assert_eq!(out.exit_layers, exits, "prompt {i}: exit layers diverged");
        assert_eq!(out.predictor_calls, pcalls, "prompt {i}: predictor calls");
        assert_eq!(out.verify_calls, vcalls, "prompt {i}: verify calls");
        let summary = engine.controller_summary().expect("controller attached");
        assert_eq!(summary.policy, "static");
        assert_eq!(summary.accepts + summary.rejects, vcalls, "event per fire");
    }
}
