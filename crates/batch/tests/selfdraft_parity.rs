//! Batch-1 self-draft parity: the lock-step batched runtime driving
//! per-slot shallow draft passes plus the masked deep tree sweep must
//! reproduce the single-sequence `SpeculativeEngine` self-draft run
//! token-for-token — both tiers drive the same
//! `specee_core::engine::selfdraft` round helpers, so any divergence is
//! a bug in the batching, not a tuning difference.

use specee_batch::{Admission, BatchedEngine};
use specee_core::engine::SpeculativeEngine;
use specee_core::predictor::{PredictorBank, PredictorConfig};
use specee_core::{ScheduleEngine, SpecEeConfig};
use specee_draft::{SelfDraft, SelfDraftSpec, TreeShape};
use specee_model::{ModelConfig, TokenId, Transformer};
use specee_obs::{EventKind, Recorder};
use specee_tensor::rng::Pcg;

const N_LAYERS: usize = 6;
const GEN: usize = 14;

fn cfg() -> ModelConfig {
    ModelConfig {
        n_layers: N_LAYERS,
        vocab_size: 96,
        ..ModelConfig::tiny()
    }
}

fn tf(seed: u64) -> Transformer {
    Transformer::random(cfg(), &mut Pcg::seed(seed))
}

fn engine(max_batch: usize) -> BatchedEngine<Transformer, SelfDraft> {
    // The predictor plane is inert under self-draft (the shallow pass
    // fills its role), but the engine still wants a well-formed bank.
    let pcfg = PredictorConfig {
        hidden_dim: 8,
        ..PredictorConfig::default()
    };
    let bank = PredictorBank::new(N_LAYERS, &pcfg, &mut Pcg::seed(5));
    let config = SpecEeConfig {
        predictor: pcfg,
        ..SpecEeConfig::default()
    };
    BatchedEngine::new(
        max_batch,
        16,
        N_LAYERS,
        bank,
        ScheduleEngine::all_layers(N_LAYERS),
        config,
    )
}

fn spec() -> SelfDraftSpec {
    SelfDraftSpec::new(2, TreeShape::new(vec![2, 2]))
}

fn prompts() -> Vec<Vec<TokenId>> {
    vec![vec![3, 8, 2, 5], vec![1, 5, 3], vec![7, 7, 1, 2, 4]]
}

/// Single-sequence reference self-draft run for one prompt.
fn solo(seed: u64, prompt: &[TokenId]) -> specee_core::GenOutput {
    let mut engine =
        SpeculativeEngine::baseline(tf(seed), SelfDraft::new(spec()), SpecEeConfig::default());
    engine.generate(prompt, GEN)
}

#[test]
fn batch_one_self_draft_is_bit_identical_to_single_engine() {
    let seed = 211;
    for (i, prompt) in prompts().iter().enumerate() {
        let reference = solo(seed, prompt);

        let mut eng = engine(1);
        let admission = eng.admit(i as u64, tf(seed), SelfDraft::new(spec()), prompt, GEN);
        assert!(matches!(admission, Admission::Seated { slot: 0 }));
        let out = eng.drain().remove(0);

        assert_eq!(out.tokens, reference.tokens, "prompt {i}: tokens diverged");
        assert_eq!(out.exit_layers, reference.exit_layers, "prompt {i}: exits");
        assert!(
            (out.ce_sum - reference.ce_sum).abs() < 1e-9,
            "prompt {i}: cross-entropy diverged"
        );
        assert_eq!(out.verify_calls, reference.rounds, "prompt {i}: rounds");
        assert_eq!(
            out.self_draft_calls, reference.self_draft_calls,
            "prompt {i}: shallow-call accounting diverged"
        );
        assert_eq!(out.draft_calls, 0, "no separate draft network ran");
        assert_eq!(out.predictor_calls, 0, "predictors are inert");
    }
}

#[test]
fn co_batched_self_draft_sequences_each_match_their_solo_run() {
    // The stronger form: at batch 3, every co-resident sequence still
    // matches its own single-sequence run — the masked deep tree sweep
    // changes step timing, never values.
    let seed = 223;
    let mut eng = engine(3);
    for (i, prompt) in prompts().iter().enumerate() {
        let admission = eng.admit(
            i as u64,
            tf(seed + i as u64),
            SelfDraft::new(spec()),
            prompt,
            GEN,
        );
        assert!(matches!(admission, Admission::Seated { .. }));
    }
    let mut outputs = eng.drain();
    outputs.sort_by_key(|o| o.id);
    assert_eq!(outputs.len(), 3);
    for (i, (out, prompt)) in outputs.iter().zip(prompts()).enumerate() {
        let reference = solo(seed + i as u64, &prompt);
        assert_eq!(out.tokens, reference.tokens, "slot {i}: tokens diverged");
        assert_eq!(out.tokens.len(), GEN, "slot {i}: overshoot not truncated");
        assert_eq!(
            out.self_draft_calls, reference.self_draft_calls,
            "slot {i}: shallow-call accounting diverged"
        );
    }
}

#[test]
fn self_draft_steps_report_tree_accounting_and_trace_events() {
    let seed = 227;
    let mut eng = engine(2);
    eng.set_recorder(Some(Recorder::for_worker(0)));
    for (i, prompt) in prompts().iter().take(2).enumerate() {
        let _ = eng.admit(i as u64, tf(seed), SelfDraft::new(spec()), prompt, GEN);
    }
    let step = eng.step();
    // Accounting: self-draft slots replace separate-draft slots, every
    // shallow layer counts both residents, and a tree round can emit
    // more than one token per sequence.
    assert_eq!(step.self_draft_slots, 2);
    assert_eq!(step.draft_slots, 0);
    assert_eq!(step.predictor_calls, 0);
    assert_eq!(step.lm_head_evals, 2, "one tree verification per slot");
    assert_eq!(step.rearmost_layer(), N_LAYERS);
    assert!(step.layer_runners.iter().all(|&r| r == 2));
    assert!(step.emitted >= 2);
    let _ = eng.drain();
    let rec = eng.take_recorder().expect("recorder attached");
    let passes = rec
        .events()
        .iter()
        .filter(|e| matches!(e.kind, EventKind::DraftPass { .. }))
        .count();
    let verified: Vec<u32> = rec
        .events()
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::TreeVerified { accepted, .. } => Some(accepted),
            _ => None,
        })
        .collect();
    assert!(passes > 0, "draft passes must be traced");
    assert_eq!(passes, verified.len(), "one verification per draft pass");
    assert!(verified.iter().all(|&a| a >= 1), "the bonus always commits");
}

#[test]
#[should_panic(expected = "below the model depth")]
fn admission_rejects_an_exit_layer_at_model_depth() {
    let mut eng = engine(1);
    let bad = SelfDraftSpec::new(N_LAYERS, TreeShape::chain(2));
    let _ = eng.admit(0, tf(3), SelfDraft::new(bad), &[1, 2, 3], GEN);
}
