//! Live lock-step batched decoding with per-sequence speculative early
//! exit.
//!
//! The serving simulation in `specee-serve` *replays* recorded
//! single-stream traces through a clock model; this crate *executes* the
//! batched regime. A [`BatchedEngine`] seats up to `max_batch` sequences
//! in the slots of a [`specee_model::BatchedStack`] and decodes them in
//! lock-step: one shared sweep over the decoder layers per step, each
//! sequence participating only while it still needs the layer. Per layer,
//! every pending sequence runs its own scheduled predictor
//! ([`specee_core::ExitScan`] — the exact decision dataflow of the
//! single-stream `SpecEeEngine`, so batch-1 output is token-identical).
//! Sequences *fire* independently; the step as a whole executes down to
//! the rearmost layer any sequence still needs — the Cannikin effect of
//! the paper's cloud scenario, measured from live exits instead of
//! assumed from traces.
//!
//! Each decode step yields a [`BatchStep`] carrying the measured per-layer
//! runner counts, context lengths, and draft/predictor/LM-head call
//! counts; `specee-serve`'s live mode prices those with the same batched
//! cost model the replay simulator uses, which is what makes the two
//! modes' speedup curves directly comparable.
//!
//! The engine also closes the control loop: every step's verifier
//! accept/reject events ride in [`BatchStep::feedback`], and an attached
//! [`specee_control::Controller`] ([`BatchedEngine::set_controller`])
//! consumes them — per sequence, in slot order — to adapt the shared
//! predictor bank's exit thresholds online. The `static` policy is a
//! bit-identical no-op (asserted in `tests/parity.rs`).
//!
//! # Examples
//!
//! ```
//! use specee_batch::{Admission, BatchedEngine};
//! use specee_core::predictor::{PredictorBank, PredictorConfig};
//! use specee_core::{ScheduleEngine, SpecEeConfig};
//! use specee_model::ModelConfig;
//! use specee_synth::{DatasetProfile, OracleDraft, SyntheticLmBuilder};
//! use specee_tensor::rng::Pcg;
//!
//! let cfg = ModelConfig { n_layers: 8, ..ModelConfig::tiny() };
//! let pcfg = PredictorConfig { hidden_dim: 16, ..PredictorConfig::default() };
//! let bank = PredictorBank::new(8, &pcfg, &mut Pcg::seed(1));
//! let config = SpecEeConfig { predictor: pcfg, ..SpecEeConfig::default() };
//! let mut engine = BatchedEngine::new(
//!     2, 16, 8, bank, ScheduleEngine::all_layers(8), config,
//! );
//! let lm = SyntheticLmBuilder::new(cfg.clone(), DatasetProfile::qa()).seed(3).build();
//! let draft = OracleDraft::new(*lm.language(), 0.9, &cfg, 3);
//! assert!(matches!(
//!     engine.admit(0, lm, draft, &[1, 2, 3], 6),
//!     Admission::Seated { slot: 0 }
//! ));
//! let outputs = engine.drain();
//! assert_eq!(outputs[0].tokens.len(), 6);
//! ```

#![deny(missing_docs)]

pub mod engine;

pub use engine::{Admission, BatchStep, BatchedEngine, BatchedOutput};
