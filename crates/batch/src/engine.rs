//! The lock-step batched decoding engine.

use specee_control::{ClassEvidence, ClassedController, ControllerSummary};
use specee_core::engine::scan::{ExitFeedback, ExitScan};
use specee_core::engine::selfdraft::{self_draft_pass, verify_commit, DraftPass};
use specee_core::predictor::PredictorBank;
use specee_core::scheduler::ScheduleEngine;
use specee_core::traffic::{ClassMap, Lane, TrafficClass};
use specee_core::SpecEeConfig;
use specee_draft::SpeculativeSource;
use specee_metrics::Meter;
use specee_model::{prefill, BatchedStack, LayeredLm, SlotPool, TokenId, TreeKv};
use specee_obs::{EventKind, Recorder, TraceSink};
use specee_tensor::ops;

/// The finished record of one batched sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchedOutput {
    /// Caller-chosen sequence id (e.g. the serving request index).
    pub id: u64,
    /// Traffic class the sequence was admitted under
    /// ([`TrafficClass::DEFAULT`] for untagged traffic).
    pub class: TrafficClass,
    /// Emitted tokens (the prefill token first).
    pub tokens: Vec<TokenId>,
    /// Decoder layers executed per emitted token.
    pub exit_layers: Vec<usize>,
    /// Sum of `-log p(token)` under the model's final distribution.
    pub ce_sum: f64,
    /// Predictor forwards this sequence executed.
    pub predictor_calls: u64,
    /// Full-LM-head verification calls this sequence triggered.
    pub verify_calls: u64,
    /// Separate-draft-model forwards this sequence executed (token syncs
    /// plus tree expansions); zero under self-draft.
    pub draft_calls: u64,
    /// Shallow (node × layer) runs of the target's own layers this
    /// sequence executed while self-drafting; zero with a separate
    /// draft model.
    pub self_draft_calls: u64,
}

impl BatchedOutput {
    /// Mean executed layers per token.
    pub fn avg_layers(&self) -> f64 {
        if self.exit_layers.is_empty() {
            0.0
        } else {
            self.exit_layers.iter().sum::<usize>() as f64 / self.exit_layers.len() as f64
        }
    }
}

/// Outcome of admitting a request into the engine.
#[derive(Debug)]
pub enum Admission {
    /// The sequence occupies a slot and will decode on subsequent steps.
    Seated {
        /// The slot index it was seated in.
        slot: usize,
    },
    /// The request wanted only the prefill token; it finished without
    /// occupying a slot.
    Done(BatchedOutput),
}

/// What one lock-step decode step executed, measured — not assumed — from
/// the live batch. Field meanings mirror the replay simulator's
/// `StepSpec` so the same batched cost model can price both.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchStep {
    /// `layer_runners[l]` = slots that executed layer `l` this step.
    pub layer_runners: Vec<usize>,
    /// KV positions attended per active slot this step.
    pub ctx_lens: Vec<usize>,
    /// Full-LM-head evaluations this step (final logits + verifications,
    /// successful or not).
    pub lm_head_evals: u64,
    /// Slots that ran the draft model this step (all active slots).
    pub draft_slots: usize,
    /// Slots that drafted through their own shallow layers this step
    /// (self-draft mode; zero on separate-draft steps).
    pub self_draft_slots: usize,
    /// Predictor forwards this step.
    pub predictor_calls: u64,
    /// Tokens emitted this step.
    pub emitted: usize,
    /// Sequences that finished this step (retired from their slots).
    pub finished: Vec<BatchedOutput>,
    /// The verifier accept/reject stream this step produced, in slot
    /// order (one event per predictor fire — the raw material of
    /// closed-loop threshold control).
    pub feedback: Vec<ExitFeedback>,
}

impl BatchStep {
    /// The rearmost layer any slot executed (the Cannikin position of the
    /// step): `0` when the step ran nothing.
    pub fn rearmost_layer(&self) -> usize {
        self.layer_runners
            .iter()
            .rposition(|&r| r > 0)
            .map_or(0, |l| l + 1)
    }
}

struct SeqState<D> {
    id: u64,
    class: TrafficClass,
    lane: Lane,
    draft: D,
    schedule: ScheduleEngine,
    scan: ExitScan,
    ctx: Vec<TokenId>,
    last: TokenId,
    gen_len: usize,
    tokens: Vec<TokenId>,
    exit_layers: Vec<usize>,
    ce_sum: f64,
    /// The draft source's forward-call counter at admission, so the
    /// output reports only this sequence's own draft work.
    draft_calls_base: u64,
    /// Shallow (node × layer) target runs accumulated while
    /// self-drafting.
    self_draft_calls: u64,
    /// Verified self-draft rounds (one full-LM-head tree verification
    /// each).
    self_draft_rounds: u64,
}

impl<D: SpeculativeSource> SeqState<D> {
    fn into_output(self) -> BatchedOutput {
        BatchedOutput {
            id: self.id,
            class: self.class,
            tokens: self.tokens,
            exit_layers: self.exit_layers,
            ce_sum: self.ce_sum,
            predictor_calls: self.scan.predictor_calls(),
            verify_calls: self.scan.verify_calls() + self.self_draft_rounds,
            draft_calls: self
                .draft
                .forward_calls()
                .saturating_sub(self.draft_calls_base),
            self_draft_calls: self.self_draft_calls,
        }
    }
}

/// A sequence evicted from its slot under KV page pressure: the model
/// (with its committed KV intact) and the generation state are parked
/// whole, so re-seating leases fresh pages and continues bit-identically.
struct Parked<M, D> {
    model: M,
    seq: SeqState<D>,
}

/// A live batched decoding runtime: up to `max_batch` sequences decode in
/// lock-step through the real layer stack, each making its own scheduled
/// predictor decisions ([`ExitScan`] — the exact dataflow of the
/// single-stream `SpecEeEngine`), firing independently, while the batch
/// as a whole executes every layer down to the rearmost one still needed.
///
/// The per-step [`BatchStep`] report carries the measured layer-runner
/// counts, so batched pricing reflects exits that actually happened
/// rather than replayed traces.
///
/// # Examples
///
/// ```
/// use specee_batch::{Admission, BatchedEngine};
/// use specee_control::ControllerPolicy;
/// use specee_core::predictor::{PredictorBank, PredictorConfig};
/// use specee_core::{ScheduleEngine, SpecEeConfig};
/// use specee_model::ModelConfig;
/// use specee_synth::{DatasetProfile, OracleDraft, SyntheticLmBuilder};
/// use specee_tensor::rng::Pcg;
///
/// let cfg = ModelConfig { n_layers: 8, ..ModelConfig::tiny() };
/// let pcfg = PredictorConfig { hidden_dim: 16, ..PredictorConfig::default() };
/// let bank = PredictorBank::new(8, &pcfg, &mut Pcg::seed(1));
/// let config = SpecEeConfig { predictor: pcfg, ..SpecEeConfig::default() };
/// let mut engine =
///     BatchedEngine::new(2, 16, 8, bank, ScheduleEngine::all_layers(8), config);
/// // Optional: close the threshold loop with an online controller
/// // (state keyed by traffic class; untagged traffic uses the default
/// // class).
/// engine.set_controller(ControllerPolicy::pid().build_classed(7, 0.5));
///
/// for id in 0..2u64 {
///     let lm = SyntheticLmBuilder::new(cfg.clone(), DatasetProfile::qa())
///         .seed(3)
///         .build();
///     let draft = OracleDraft::new(*lm.language(), 0.9, &cfg, id);
///     assert!(matches!(
///         engine.admit(id, lm, draft, &[1, 2, 3], 5),
///         Admission::Seated { .. }
///     ));
/// }
/// let outputs = engine.drain(); // lock-step decode to completion
/// assert_eq!(outputs.len(), 2);
/// assert!(outputs.iter().all(|o| o.tokens.len() == 5));
/// let summary = engine.controller_summary().expect("controller attached");
/// assert_eq!(summary.tokens, 8, "4 decode-step tokens per sequence");
/// ```
pub struct BatchedEngine<M, D> {
    stack: BatchedStack<M>,
    seqs: Vec<Option<SeqState<D>>>,
    /// The default class's predictor bank (the only bank untagged runs
    /// ever touch — parity with the pre-class runtime is structural).
    bank: PredictorBank,
    /// The bank's per-layer thresholds at construction: the pristine
    /// base every new class bank starts from.
    base_thresholds: Vec<f32>,
    /// One bank per non-default traffic class, lazily cloned at the
    /// first admission of the class so each class decodes under its own
    /// operating point.
    class_banks: ClassMap<PredictorBank>,
    schedule_template: ScheduleEngine,
    config: SpecEeConfig,
    n_layers: usize,
    meter: Meter,
    steps: u64,
    controller: Option<ClassedController>,
    /// Compute backend applied to every model at admission.
    backend: specee_tensor::BackendKind,
    /// Optional trace recorder (None = tracing disabled, zero cost).
    /// The engine has no clock of its own — whoever owns the simulated
    /// clock (the live batcher, a cluster worker) sets it via
    /// [`BatchedEngine::recorder_mut`] before each step.
    trace: Option<Recorder>,
    /// Sequences evicted under page pressure, awaiting re-admission.
    parked: Vec<Parked<M, D>>,
    /// Whether page pressure may evict residents (off = the pre-paged
    /// behaviour: exhaustion panics in the pool).
    preempt_enabled: bool,
    /// Evictions performed so far.
    preemptions: u64,
    /// Parked sequences re-seated so far.
    resumes: u64,
}

impl<M: LayeredLm, D: SpeculativeSource> BatchedEngine<M, D> {
    /// Creates an empty engine.
    ///
    /// `schedule` is the per-sequence scheduling template: every admitted
    /// sequence starts from a fresh clone of it, since the online window
    /// (T2) tracks one sequence's recent exits, not the batch's.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` or `page_size` is zero, or the bank does not
    /// cover `n_layers - 1` layers.
    pub fn new(
        max_batch: usize,
        page_size: usize,
        n_layers: usize,
        bank: PredictorBank,
        schedule: ScheduleEngine,
        config: SpecEeConfig,
    ) -> Self {
        assert_eq!(
            bank.len(),
            n_layers - 1,
            "one predictor per non-final layer"
        );
        let base_thresholds = (0..bank.len()).map(|l| bank.layer(l).threshold()).collect();
        BatchedEngine {
            stack: BatchedStack::new(max_batch, page_size),
            seqs: (0..max_batch).map(|_| None).collect(),
            bank,
            base_thresholds,
            class_banks: ClassMap::new(),
            schedule_template: schedule,
            config,
            n_layers,
            meter: Meter::new(),
            steps: 0,
            controller: None,
            backend: specee_tensor::BackendKind::default(),
            trace: None,
            parked: Vec::new(),
            preempt_enabled: false,
            preemptions: 0,
            resumes: 0,
        }
    }

    /// Caps the KV page pool at `capacity` physical pages (`None` lifts
    /// the cap). With preemption enabled, page pressure against this cap
    /// evicts the lowest-priority resident; without it, exhaustion
    /// panics.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is `Some(0)`.
    pub fn set_page_capacity(&mut self, capacity: Option<usize>) {
        self.stack.set_page_capacity(capacity);
    }

    /// Turns copy-on-write prefix sharing on or off: subsequent
    /// admissions match the prompt against resident prefixes and
    /// co-lease matching pages instead of allocating.
    ///
    /// # Panics
    ///
    /// Panics if any slot is occupied.
    pub fn enable_prefix_share(&mut self, on: bool) {
        self.stack.enable_prefix_share(on);
    }

    /// Whether prefix sharing is enabled.
    pub fn prefix_sharing(&self) -> bool {
        self.stack.prefix_sharing()
    }

    /// Enables (or disables) preemption under page pressure: when the
    /// next step's page demand exceeds the pool's free capacity, the
    /// engine evicts the lowest-priority resident — pages recycled,
    /// generation state parked — and re-seats it once pages free up,
    /// resuming bit-identically.
    pub fn set_preemption_enabled(&mut self, on: bool) {
        self.preempt_enabled = on;
    }

    /// Whether page-pressure preemption is enabled.
    pub fn preemption_enabled(&self) -> bool {
        self.preempt_enabled
    }

    /// Attaches (or detaches) a trace recorder. Subsequent steps emit
    /// exit-decision events (per predictor fire, stamped with the
    /// sequence id), controller-apply events (per class, at each step
    /// boundary a controller is attached) and gossip events. The
    /// recorder is write-only — traced and untraced runs decode
    /// bit-identically — and with `None` (the default) the whole plane
    /// costs one discriminant test per step.
    pub fn set_recorder(&mut self, recorder: Option<Recorder>) {
        self.trace = recorder;
    }

    /// The attached recorder, for clock/context stamping by the layer
    /// that owns the simulated clock.
    pub fn recorder_mut(&mut self) -> Option<&mut Recorder> {
        self.trace.as_mut()
    }

    /// Takes the recorder (and its events) back out of the engine.
    pub fn take_recorder(&mut self) -> Option<Recorder> {
        self.trace.take()
    }

    /// Selects the compute backend stamped onto every model at admission
    /// (already-seated sequences keep the backend they were admitted
    /// with). The reference scalar backend is the default; the blocked
    /// backend is bit-identical on dense weights.
    pub fn set_backend(&mut self, backend: specee_tensor::BackendKind) {
        self.backend = backend;
    }

    /// Attaches a traffic-class-keyed closed-loop threshold controller.
    /// After every decode step the engine drains each seated sequence's
    /// verifier accept/reject events and emitted-token depths **per
    /// class in slot order** (classes ascend, slots ascend within a
    /// class — a deterministic trajectory) and re-applies each class's
    /// thresholds to that class's predictor bank — threshold changes
    /// take effect at the next step boundary, never mid-scan. Attaching
    /// the `static` policy is bit-identical to attaching none.
    pub fn set_controller(&mut self, controller: ClassedController) {
        self.controller = Some(controller);
    }

    /// Forwards the SLO burn-rate pressure signal (computed by the
    /// serving tier's `specee_obs::slo::SloTracker` at step boundaries)
    /// to the attached controller's class instances. A no-op without a
    /// controller, and plain (non-`slo+*`) policies ignore it — so runs
    /// without an SLO plane are untouched. Like controller applies, the
    /// bent operating point takes effect at the next step boundary,
    /// never mid-scan.
    pub fn set_slo_pressure(&mut self, pressure: f64) {
        if let Some(ctl) = self.controller.as_mut() {
            ctl.set_slo_pressure(pressure);
        }
    }

    /// The attached controller's merged state, if one is attached.
    pub fn controller_summary(&self) -> Option<ControllerSummary> {
        self.controller.as_ref().map(|c| c.summary())
    }

    /// Per-class controller summaries (ascending class order), if a
    /// controller is attached.
    pub fn controller_class_summaries(&self) -> Option<Vec<(TrafficClass, ControllerSummary)>> {
        self.controller.as_ref().map(|c| c.class_summaries())
    }

    /// The base threshold the attached controller's classes start from.
    pub fn controller_base_threshold(&self) -> Option<f32> {
        self.controller.as_ref().map(|c| c.base_threshold())
    }

    /// Drains the per-class evidence deltas the controller accumulated
    /// since the last drain — the payload a cluster coordinator gossips
    /// to sibling workers. Empty when no controller is attached.
    pub fn take_gossip_evidence(&mut self) -> Vec<ClassEvidence> {
        self.controller
            .as_mut()
            .map(ClassedController::drain_evidence)
            .unwrap_or_default()
    }

    /// Absorbs merged remote evidence (cross-worker gossip) into the
    /// controller and immediately re-applies every class's operating
    /// point to its bank, so the update lands at this step boundary
    /// instead of one step late. A no-op without a controller; the
    /// static policy ignores evidence, so parity runs are untouched.
    pub fn absorb_gossip(&mut self, evidence: &[ClassEvidence]) {
        let Some(ctl) = self.controller.as_mut() else {
            return;
        };
        for delta in evidence {
            ctl.absorb(delta);
        }
        ctl.apply(TrafficClass::DEFAULT, &mut self.bank);
        for (class, bank) in self.class_banks.iter_mut() {
            ctl.apply(class, bank);
        }
        if self.trace.enabled() && !evidence.is_empty() {
            if let Some(rec) = self.trace.as_mut() {
                rec.set_seq(None);
                rec.record(EventKind::Gossip {
                    classes: evidence.len() as u32,
                    tokens: evidence.iter().map(|e| e.tokens).sum(),
                });
            }
        }
    }

    /// The predictor bank untagged (default-class) sequences decode with
    /// (thresholds reflect any attached controller's latest operating
    /// point).
    pub fn bank(&self) -> &PredictorBank {
        &self.bank
    }

    /// The predictor bank sequences of `class` decode with — the default
    /// bank until the class's first admission clones its own.
    pub fn class_bank(&self, class: TrafficClass) -> &PredictorBank {
        self.class_banks.get(class).unwrap_or(&self.bank)
    }

    /// The batch cap.
    pub fn max_batch(&self) -> usize {
        self.stack.max_batch()
    }

    /// Decoder depth the engine drives.
    pub fn n_layers(&self) -> usize {
        self.n_layers
    }

    /// Occupied slots.
    pub fn occupancy(&self) -> usize {
        self.stack.occupancy()
    }

    /// Whether a new sequence can be admitted.
    pub fn has_free_slot(&self) -> bool {
        self.stack.free_slot().is_some()
    }

    /// Decode steps executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The engine-wide op trace (prefills excluded, like the single-stream
    /// engines).
    pub fn meter(&self) -> &Meter {
        &self.meter
    }

    /// The shared KV page pool.
    pub fn pool(&self) -> &SlotPool {
        self.stack.pool()
    }

    /// Admits an untagged (default-class) sequence — see
    /// [`BatchedEngine::admit_classed`].
    pub fn admit(
        &mut self,
        id: u64,
        model: M,
        draft: D,
        prompt: &[TokenId],
        gen_len: usize,
    ) -> Admission {
        self.admit_classed(id, TrafficClass::DEFAULT, model, draft, prompt, gen_len)
    }

    /// Admits a sequence tagged with a traffic class: resets the model
    /// and draft, prefills the prompt (producing the first token at full
    /// depth, as the single-stream engines do), and seats it in a free
    /// slot. A `gen_len` of one finishes immediately without occupying a
    /// slot.
    ///
    /// The class keys the feedback plane: the sequence's exit scans run
    /// against the class's own predictor bank (lazily cloned from the
    /// base thresholds at the class's first admission), its feedback
    /// events carry the class, and an attached controller steers the
    /// class's thresholds independently of every other class's.
    ///
    /// # Panics
    ///
    /// Panics if no slot is free (check [`BatchedEngine::has_free_slot`]),
    /// `prompt` is empty, `gen_len` is zero, or the model's depth does not
    /// match the engine's.
    pub fn admit_classed(
        &mut self,
        id: u64,
        class: TrafficClass,
        model: M,
        draft: D,
        prompt: &[TokenId],
        gen_len: usize,
    ) -> Admission {
        self.admit_laned(id, class, Lane::DEFAULT, model, draft, prompt, gen_len)
    }

    /// Admits a sequence tagged with both a traffic class and a priority
    /// lane — see [`BatchedEngine::admit_classed`] for the class
    /// semantics. The lane orders the memory plane: under page pressure
    /// the engine evicts the highest-lane (lowest-priority) resident
    /// first, and parked sequences re-seat in ascending lane order. With
    /// prefix sharing enabled the prompt is matched against resident
    /// prefixes and matching pages are co-leased copy-on-write instead
    /// of allocated.
    ///
    /// # Panics
    ///
    /// Panics like [`BatchedEngine::admit_classed`], or if the page pool
    /// cannot cover the prompt (gate with [`BatchedEngine::can_seat`] /
    /// [`BatchedEngine::make_room`] first).
    #[allow(clippy::too_many_arguments)]
    pub fn admit_laned(
        &mut self,
        id: u64,
        class: TrafficClass,
        lane: Lane,
        mut model: M,
        mut draft: D,
        prompt: &[TokenId],
        gen_len: usize,
    ) -> Admission {
        assert!(self.has_free_slot(), "no free slot");
        assert!(!prompt.is_empty(), "prompt must be non-empty");
        assert!(gen_len > 0, "gen_len must be positive");
        assert_eq!(model.config().n_layers, self.n_layers, "model depth");
        self.ensure_class_bank(class);
        model.reset();
        model.set_backend(self.backend);
        draft.reset();
        if let Some(spec) = draft.self_spec() {
            if let Err(e) = spec.validate_for_depth(self.n_layers) {
                panic!("{e}");
            }
        }
        let draft_calls_base = draft.forward_calls();
        let mut prefill_meter = Meter::new();
        let h0 = prefill(&mut model, prompt, &mut prefill_meter);
        let logits = model.final_logits(&h0, &mut self.meter);
        let t = ops::argmax(&logits).expect("logits") as TokenId;
        let ce = f64::from(-ops::log_softmax(&logits)[t as usize]);
        self.meter.mark_token();

        let mut scan = ExitScan::new();
        scan.set_class(class);
        let seq = SeqState {
            id,
            class,
            lane,
            draft,
            schedule: self.schedule_template.clone(),
            scan,
            ctx: prompt.to_vec(),
            last: t,
            gen_len,
            tokens: vec![t],
            exit_layers: vec![self.n_layers],
            ce_sum: ce,
            draft_calls_base,
            self_draft_calls: 0,
            self_draft_rounds: 0,
        };
        if gen_len == 1 {
            return Admission::Done(seq.into_output());
        }
        let slot = if self.stack.prefix_sharing() {
            self.stack.admit_shared(model, prompt)
        } else {
            self.stack.admit(model)
        };
        self.seqs[slot] = Some(seq);
        Admission::Seated { slot }
    }

    /// Fresh physical pages admitting a sequence with this prompt would
    /// allocate (prefix-index matches subtract from the demand). Compare
    /// with the pool's available pages to budget a round of admissions
    /// under a capacity.
    pub fn pages_for_admit(&self, prompt: &[TokenId]) -> usize {
        self.stack.pages_for_admit(prompt)
    }

    /// Whether a sequence with this prompt can be seated right now: a
    /// slot is free and the pool can cover the fresh pages the prompt
    /// needs (prefix-index matches subtract from the demand).
    pub fn can_seat(&self, prompt: &[TokenId]) -> bool {
        self.has_free_slot() && self.stack.pages_for_admit(prompt) <= self.pool().available_pages()
    }

    /// Tries to make room for a `lane`-priority admission with this
    /// prompt by evicting strictly lower-priority (higher-lane)
    /// residents, lowest priority first, until [`BatchedEngine::can_seat`]
    /// holds or no eligible victim remains. Returns whether the
    /// admission now fits. A no-op (returning `can_seat`) when
    /// preemption is disabled.
    pub fn make_room(&mut self, prompt: &[TokenId], lane: Lane) -> bool {
        if !self.preempt_enabled {
            return self.can_seat(prompt);
        }
        while !self.can_seat(prompt) {
            let victim = self
                .seqs
                .iter()
                .enumerate()
                .filter_map(|(slot, s)| s.as_ref().map(|seq| (seq.lane, seq.id, slot)))
                .filter(|&(l, _, _)| l > lane)
                .max();
            let Some((_, _, slot)) = victim else {
                return false;
            };
            self.preempt_slot(slot);
        }
        true
    }

    /// Evicts the seated sequence in `slot`: its pages return to the
    /// pool, its model and generation state park whole, and a
    /// [`EventKind::Preempted`] instant is traced.
    fn preempt_slot(&mut self, slot: usize) {
        let seq = self.seqs[slot].take().expect("seated sequence");
        let before = self.pool().pages_in_use();
        let model = self.stack.retire(slot);
        let freed = before - self.pool().pages_in_use();
        self.preemptions += 1;
        if self.trace.enabled() {
            if let Some(rec) = self.trace.as_mut() {
                rec.set_seq(Some(seq.id));
                rec.record(EventKind::Preempted {
                    request: seq.id,
                    lane: seq.lane.id(),
                    pages: freed as u32,
                });
            }
        }
        self.parked.push(Parked { model, seq });
    }

    /// Re-seats parked sequences in priority order — ascending (lane,
    /// id) — while a slot is free and the pool covers each one's
    /// committed KV. Called at every step boundary before the sweep.
    fn resume_parked(&mut self) {
        if self.parked.is_empty() {
            return;
        }
        self.parked.sort_by_key(|p| (p.seq.lane, p.seq.id));
        let ps = self.pool().page_size();
        let mut i = 0;
        while i < self.parked.len() {
            let needed = self.parked[i].model.kv_len().div_ceil(ps);
            if self.has_free_slot() && needed <= self.pool().available_pages() {
                let parked = self.parked.remove(i);
                let slot = self.stack.admit(parked.model);
                self.resumes += 1;
                if self.trace.enabled() {
                    if let Some(rec) = self.trace.as_mut() {
                        rec.set_seq(Some(parked.seq.id));
                        rec.record(EventKind::Resumed {
                            request: parked.seq.id,
                            lane: parked.seq.lane.id(),
                        });
                    }
                }
                self.seqs[slot] = Some(parked.seq);
            } else {
                i += 1;
            }
        }
    }

    /// Evictions performed so far under page pressure.
    pub fn preemptions(&self) -> u64 {
        self.preemptions
    }

    /// Parked sequences re-seated so far.
    pub fn resumes(&self) -> u64 {
        self.resumes
    }

    /// Sequences currently parked awaiting re-admission.
    pub fn parked(&self) -> usize {
        self.parked.len()
    }

    /// The page pool's occupancy/sharing/peak statistics.
    pub fn kv_stats(&self) -> specee_model::KvStats {
        self.pool().stats()
    }

    /// Creates `class`'s predictor bank on first sight: a clone of the
    /// default bank reset to the engine's base thresholds (the default
    /// bank may already carry controller-moved values), then initialized
    /// by the controller — a pinned base lands here, and an adaptive
    /// policy (possibly gossip-warmed before any local traffic) applies
    /// its current operating point. The default class keeps using the
    /// primary bank, untouched at admission, so un-classed runs are
    /// bit-identical to the pre-class runtime.
    fn ensure_class_bank(&mut self, class: TrafficClass) {
        if class.is_default() || self.class_banks.get(class).is_some() {
            return;
        }
        let mut bank = self.bank.clone();
        for (layer, &t) in self.base_thresholds.iter().enumerate() {
            bank.layer_mut(layer).set_threshold(t);
        }
        if let Some(ctl) = self.controller.as_mut() {
            ctl.init_class_bank(class, &mut bank);
        }
        self.class_banks.get_or_insert_with(class, || bank);
    }

    /// Runs one synchronized decode step: every seated sequence proposes
    /// its candidates, feeds its pending token, and sweeps the layer stack
    /// in lock-step. A sequence whose scheduled predictor fires (and
    /// verifies) drops out of the sweep at its exit layer; the sweep
    /// itself continues to the rearmost layer any sequence still needs.
    /// Emits one token per seated sequence and retires the finished.
    ///
    /// Returns the measured step — an empty report (no runners, nothing
    /// emitted) when no sequence is seated.
    pub fn step(&mut self) -> BatchStep {
        // Self-draft batches take the tree-verification step path: the
        // whole batch must agree on the mode, because the two paths
        // disagree on how many tokens a step may commit.
        let is_self = |s: &SeqState<D>| s.draft.self_spec().is_some();
        let any_self =
            self.seqs.iter().flatten().any(is_self) || self.parked.iter().any(|p| is_self(&p.seq));
        if any_self {
            assert!(
                self.seqs.iter().flatten().all(is_self)
                    && self.parked.iter().all(|p| is_self(&p.seq)),
                "self-draft sequences cannot share a batch with \
                 separate-draft sequences"
            );
            return self.step_self_draft();
        }
        // Memory plane, at the boundary: re-seat parked sequences that
        // fit, then preempt the lowest-priority residents until the
        // step's worst-case page demand (boundary crossings plus pending
        // copy-on-write copies) fits the pool's free capacity. Never
        // preempts the last resident — a single sequence exceeding the
        // cap is a configuration error and panics in the pool.
        self.resume_parked();
        if self.preempt_enabled && self.pool().capacity().is_some() {
            while self.stack.next_step_page_demand() > self.pool().available_pages()
                && self.occupancy() > 1
            {
                let victim = self
                    .seqs
                    .iter()
                    .enumerate()
                    .filter_map(|(slot, s)| s.as_ref().map(|seq| (seq.lane, seq.id, slot)))
                    .max()
                    .expect("occupancy > 1");
                self.preempt_slot(victim.2);
            }
        }
        let max_batch = self.stack.max_batch();
        let mut report = BatchStep {
            layer_runners: vec![0; self.n_layers],
            ctx_lens: Vec::new(),
            lm_head_evals: 0,
            draft_slots: 0,
            self_draft_slots: 0,
            predictor_calls: 0,
            emitted: 0,
            finished: Vec::new(),
            feedback: Vec::new(),
        };
        let spec_k = self.config.predictor.spec_k;

        // Token setup per seated sequence: context, draft proposal, embed.
        let mut hidden: Vec<Option<Vec<f32>>> = vec![None; max_batch];
        let mut positions = vec![0usize; max_batch];
        let mut needs = vec![false; max_batch];
        let mut cands: Vec<Vec<TokenId>> = vec![Vec::new(); max_batch];
        let mut exited: Vec<Option<(usize, TokenId, Vec<f32>)>> = vec![None; max_batch];
        let mut scan_base: Vec<(u64, u64)> = vec![(0, 0); max_batch];
        for slot in 0..max_batch {
            let Some(seq) = self.seqs[slot].as_mut() else {
                continue;
            };
            seq.ctx.push(seq.last);
            cands[slot] = seq.draft.propose(&seq.ctx, spec_k, &mut self.meter);
            scan_base[slot] = (seq.scan.predictor_calls(), seq.scan.verify_calls());
            seq.scan.begin_token();
            let model = self.stack.model_mut(slot);
            positions[slot] = model.kv_len();
            hidden[slot] = Some(model.begin_token(seq.last, &mut self.meter));
            needs[slot] = true;
            report.ctx_lens.push(positions[slot] + 1);
            report.draft_slots += 1;
        }
        if report.draft_slots == 0 {
            return report;
        }

        // The shared layer sweep: active-masked, ending at the rearmost
        // layer any sequence still needs.
        for layer in 0..self.n_layers {
            if !needs.iter().any(|&n| n) {
                break;
            }
            report.layer_runners[layer] =
                self.stack
                    .sweep_layer(layer, &mut hidden, &needs, &positions, &mut self.meter);
            for slot in 0..max_batch {
                if !needs[slot] {
                    continue;
                }
                let seq = self.seqs[slot].as_mut().expect("seated sequence");
                let model = self.stack.model_mut(slot);
                let h = hidden[slot].as_ref().expect("swept state");
                // Thresholds resolve per sequence: each scan runs against
                // its class's bank (the default bank for untagged slots).
                let bank = self.class_banks.get(seq.class).unwrap_or(&self.bank);
                if let Some(rec) = self.trace.as_mut() {
                    rec.set_seq(Some(seq.id));
                }
                if let Some((tok, full)) = seq.scan.check_with_sink(
                    model,
                    bank,
                    &seq.schedule,
                    h,
                    &cands[slot],
                    layer,
                    &mut self.meter,
                    &mut self.trace,
                ) {
                    model.fill_skipped_kv(
                        layer + 1,
                        h,
                        positions[slot],
                        self.config.skip_kv_policy,
                        &mut self.meter,
                    );
                    exited[slot] = Some((layer + 1, tok, full));
                    needs[slot] = false;
                }
            }
        }

        // Emit one token per sequence; retire the finished. Feedback is
        // collected here in slot order and handed to the controller
        // afterwards, grouped by class.
        let mut drained: Vec<(TrafficClass, Vec<ExitFeedback>, usize)> = Vec::new();
        for slot in 0..max_batch {
            let Some(seq) = self.seqs[slot].as_mut() else {
                continue;
            };
            let (executed, next, full) = match exited[slot].take() {
                Some(exit) => exit,
                None => {
                    let h = hidden[slot].as_ref().expect("swept state");
                    let full = self.stack.model_mut(slot).final_logits(h, &mut self.meter);
                    let tok = ops::argmax(&full).expect("logits") as TokenId;
                    report.lm_head_evals += 1;
                    (self.n_layers, tok, full)
                }
            };
            seq.ce_sum += f64::from(-ops::log_softmax(&full)[next as usize]);
            seq.schedule.note_exit(executed.saturating_sub(1));
            seq.tokens.push(next);
            seq.exit_layers.push(executed);
            seq.last = next;
            self.meter.mark_token();
            report.emitted += 1;
            let (p0, v0) = scan_base[slot];
            report.predictor_calls += seq.scan.predictor_calls() - p0;
            report.lm_head_evals += seq.scan.verify_calls() - v0;
            // Drain this sequence's verifier outcomes. The step report
            // carries them in slot order; with a controller attached the
            // events are additionally retained for the per-class feed
            // below (without one, they move straight into the report).
            let feedback = seq.scan.take_feedback();
            if self.controller.is_some() {
                report.feedback.extend(feedback.iter().copied());
                drained.push((seq.class, feedback, executed));
            } else {
                report.feedback.extend(feedback);
            }
            if seq.tokens.len() >= seq.gen_len {
                let seq = self.seqs[slot].take().expect("seated sequence");
                let _ = self.stack.retire(slot);
                report.finished.push(seq.into_output());
            }
        }
        // Close the loop: feed the controller per class in slot order
        // (classes ascend; the stable sort keeps slot order within each
        // class), then push every class's operating point into its bank
        // so threshold changes land at the step boundary, never
        // mid-scan.
        if let Some(ctl) = self.controller.as_mut() {
            drained.sort_by_key(|(class, _, _)| *class);
            for (class, feedback, executed) in &drained {
                for event in feedback {
                    ctl.observe(event);
                }
                ctl.note_token(*class, *executed, self.n_layers);
            }
            ctl.apply(TrafficClass::DEFAULT, &mut self.bank);
            for (class, bank) in self.class_banks.iter_mut() {
                ctl.apply(class, bank);
            }
            // Trace the operating point each apply left in force: one
            // controller-apply event per class per step boundary, so a
            // trace shows the threshold trajectory the run decoded under.
            if self.trace.enabled() {
                let mean = |bank: &PredictorBank| {
                    (0..bank.len())
                        .map(|l| f64::from(bank.layer(l).threshold()))
                        .sum::<f64>()
                        / bank.len().max(1) as f64
                };
                let mut applies = vec![(TrafficClass::DEFAULT.id(), mean(&self.bank))];
                applies.extend(self.class_banks.iter().map(|(c, b)| (c.id(), mean(b))));
                if let Some(rec) = self.trace.as_mut() {
                    rec.set_seq(None);
                    for (class, threshold) in applies {
                        rec.record(EventKind::ControllerApply { class, threshold });
                    }
                }
            }
        }
        self.stack.sync_leases();
        // Sample page pressure at the boundary, but only when the memory
        // plane is actually configured (a capacity, prefix sharing, or a
        // parked backlog) — plain runs keep their exact event streams.
        if self.trace.enabled()
            && (self.pool().capacity().is_some()
                || self.stack.prefix_sharing()
                || !self.parked.is_empty())
        {
            let stats = self.pool().stats();
            let parked = self.parked.len() as u32;
            if let Some(rec) = self.trace.as_mut() {
                rec.set_seq(None);
                rec.record(EventKind::KvPressure {
                    pages: stats.pages_in_use as u32,
                    shared: stats.shared_pages as u32,
                    parked,
                });
            }
        }
        self.meter.mark_host_step();
        self.steps += 1;
        report
    }

    /// Runs one synchronized *self-draft* decode step: every seated
    /// sequence drafts a token tree through its own model's shallow
    /// layers (sequence-local — each slot's tree grows inside its own
    /// KV scratch), the deep layers then verify every slot's whole tree
    /// in lock-step masked sweeps
    /// ([`BatchedStack::sweep_layer_tree`]), and each slot commits its
    /// accepted root path under the split-KV rule: shallow layers from
    /// the draft-pass scratch (committed, never recomputed), deep
    /// layers from the verify sweep. Rejected branches leave no pool
    /// residue. Emits up to `1 + tree depth` tokens per sequence per
    /// step.
    fn step_self_draft(&mut self) -> BatchStep {
        let max_batch = self.stack.max_batch();
        self.resume_parked();
        // Preemption gate with the multi-token growth bound: a slot may
        // commit up to `1 + depth` tokens this step.
        if self.preempt_enabled && self.pool().capacity().is_some() {
            loop {
                let extras: Vec<usize> = (0..max_batch)
                    .map(|slot| {
                        self.seqs[slot].as_ref().map_or(0, |s| {
                            let spec = s.draft.self_spec().expect("self-draft batch");
                            1 + spec.shape.branching().len()
                        })
                    })
                    .collect();
                if self.stack.next_step_page_demand_for(&extras) <= self.pool().available_pages()
                    || self.occupancy() <= 1
                {
                    break;
                }
                let victim = self
                    .seqs
                    .iter()
                    .enumerate()
                    .filter_map(|(slot, s)| s.as_ref().map(|seq| (seq.lane, seq.id, slot)))
                    .max()
                    .expect("occupancy > 1");
                self.preempt_slot(victim.2);
            }
        }
        let mut report = BatchStep {
            layer_runners: vec![0; self.n_layers],
            ctx_lens: Vec::new(),
            lm_head_evals: 0,
            draft_slots: 0,
            self_draft_slots: 0,
            predictor_calls: 0,
            emitted: 0,
            finished: Vec::new(),
            feedback: Vec::new(),
        };

        // Per-slot shallow draft pass. Drafting is sequence-local (each
        // tree attends its own context), but every shallow layer a pass
        // ran still lands in the step's layer-runner counts — the
        // Cannikin price of the step is measured, not assumed.
        let mut passes: Vec<Option<DraftPass>> = vec![None; max_batch];
        let mut exits = vec![0usize; max_batch];
        for slot in 0..max_batch {
            let Some(seq) = self.seqs[slot].as_mut() else {
                continue;
            };
            let spec = seq.draft.self_spec().expect("self-draft batch").clone();
            seq.ctx.push(seq.last);
            let model = self.stack.model_mut(slot);
            report.ctx_lens.push(model.kv_len() + 1);
            let pass = self_draft_pass(model, seq.last, &spec, &mut self.meter);
            seq.self_draft_calls += pass.shallow_calls;
            for runner in report.layer_runners.iter_mut().take(spec.exit_layer) {
                *runner += 1;
            }
            if self.trace.enabled() {
                if let Some(rec) = self.trace.as_mut() {
                    rec.set_seq(Some(seq.id));
                    rec.record(EventKind::DraftPass {
                        nodes: pass.node_tokens.len() as u32,
                        exit_layer: spec.exit_layer as u32,
                    });
                }
            }
            exits[slot] = spec.exit_layer;
            passes[slot] = Some(pass);
            report.self_draft_slots += 1;
        }
        if report.self_draft_slots == 0 {
            return report;
        }

        // The lock-step verify sweep: deep layers run over every slot's
        // whole tree, masked per slot (slots with a deeper exit layer
        // join the sweep later).
        let mut hidden: Vec<Option<Vec<Vec<f32>>>> = passes
            .iter()
            .map(|p| p.as_ref().map(|p| p.exit_hs.clone()))
            .collect();
        let parents: Vec<Vec<Option<usize>>> = passes
            .iter()
            .map(|p| {
                p.as_ref()
                    .map(|p| p.node_parents.clone())
                    .unwrap_or_default()
            })
            .collect();
        let mut kvs: Vec<Vec<TreeKv>> = vec![Vec::new(); max_batch];
        let first = exits
            .iter()
            .zip(&passes)
            .filter(|(_, p)| p.is_some())
            .map(|(&e, _)| e)
            .min()
            .expect("an active slot");
        for layer in first..self.n_layers {
            let active: Vec<bool> = (0..max_batch)
                .map(|s| passes[s].is_some() && layer >= exits[s])
                .collect();
            report.layer_runners[layer] += self.stack.sweep_layer_tree(
                layer,
                &mut hidden,
                &parents,
                &active,
                &mut kvs,
                &mut self.meter,
            );
        }

        // Per-slot verification and split commit; retire the finished.
        for slot in 0..max_batch {
            let Some(pass) = passes[slot].take() else {
                continue;
            };
            let final_hs = hidden[slot].take().expect("swept tree");
            let seq = self.seqs[slot].as_mut().expect("seated sequence");
            let model = self.stack.model_mut(slot);
            let outcome = verify_commit(model, &pass, &final_hs, &kvs[slot], &mut self.meter);
            report.lm_head_evals += 1;
            seq.self_draft_rounds += 1;
            for &(tok, ce) in &outcome.emitted {
                seq.tokens.push(tok);
                seq.exit_layers.push(self.n_layers);
                seq.ce_sum += ce;
                self.meter.mark_token();
                report.emitted += 1;
            }
            // Context coherence: the accepted path joined the committed
            // context (the bonus was pushed before drafting).
            seq.ctx.extend(
                outcome
                    .emitted
                    .iter()
                    .take(outcome.accepted_len - 1)
                    .map(|&(t, _)| t),
            );
            seq.last = outcome.next_bonus;
            if self.trace.enabled() {
                let id = seq.id;
                if let Some(rec) = self.trace.as_mut() {
                    rec.set_seq(Some(id));
                    rec.record(EventKind::TreeVerified {
                        nodes: outcome.n_nodes as u32,
                        accepted: outcome.accepted_len as u32,
                    });
                }
            }
            let seq = self.seqs[slot].as_mut().expect("seated sequence");
            if seq.tokens.len() >= seq.gen_len {
                let mut seq = self.seqs[slot].take().expect("seated sequence");
                seq.tokens.truncate(seq.gen_len);
                seq.exit_layers.truncate(seq.gen_len);
                let _ = self.stack.retire(slot);
                report.finished.push(seq.into_output());
            }
        }
        self.stack.sync_leases();
        if self.trace.enabled()
            && (self.pool().capacity().is_some()
                || self.stack.prefix_sharing()
                || !self.parked.is_empty())
        {
            let stats = self.pool().stats();
            let parked = self.parked.len() as u32;
            if let Some(rec) = self.trace.as_mut() {
                rec.set_seq(None);
                rec.record(EventKind::KvPressure {
                    pages: stats.pages_in_use as u32,
                    shared: stats.shared_pages as u32,
                    parked,
                });
            }
        }
        self.meter.mark_host_step();
        self.steps += 1;
        report
    }

    /// Cancels the seated sequence with the given id, retiring its slot
    /// immediately and returning the partial output decoded so far (the
    /// prefill token plus every step it participated in). Returns `None`
    /// when no seated sequence carries the id — already finished,
    /// never admitted, or finished at admission — leaving the engine
    /// untouched. The freed slot and its KV pages are recycled exactly as
    /// on normal retirement.
    pub fn cancel(&mut self, id: u64) -> Option<BatchedOutput> {
        if let Some(pos) = self.parked.iter().position(|p| p.seq.id == id) {
            let parked = self.parked.remove(pos);
            return Some(parked.seq.into_output());
        }
        let slot = self
            .seqs
            .iter()
            .position(|s| s.as_ref().is_some_and(|seq| seq.id == id))?;
        let seq = self.seqs[slot].take().expect("seated sequence");
        let _ = self.stack.retire(slot);
        Some(seq.into_output())
    }

    /// Runs steps until every seated sequence finishes, returning the
    /// outputs in admission (`id`) order. Convenience for non-serving
    /// callers (tests, examples); servers drive [`BatchedEngine::step`]
    /// themselves to interleave admissions.
    ///
    /// # Panics
    ///
    /// Panics if a parked sequence can never be re-seated (the page
    /// capacity is smaller than its committed KV).
    pub fn drain(&mut self) -> Vec<BatchedOutput> {
        let mut outputs = Vec::new();
        while self.occupancy() > 0 || !self.parked.is_empty() {
            let step = self.step();
            let stuck = step.emitted == 0 && !self.parked.is_empty();
            outputs.extend(step.finished);
            assert!(
                !stuck,
                "page capacity too small to resume a parked sequence"
            );
        }
        outputs.sort_by_key(|o| o.id);
        outputs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specee_core::collect::{collect_training_data, train_bank};
    use specee_core::predictor::PredictorConfig;
    use specee_model::ModelConfig;
    use specee_synth::{DatasetProfile, OracleDraft, SyntheticLm, SyntheticLmBuilder};
    use specee_tensor::rng::Pcg;

    fn cfg() -> ModelConfig {
        ModelConfig {
            n_layers: 12,
            vocab_size: 512,
            ..ModelConfig::tiny()
        }
    }

    fn build_lm(seed: u64) -> SyntheticLm {
        SyntheticLmBuilder::new(cfg(), DatasetProfile::qa())
            .seed(seed)
            .build()
    }

    fn build_draft(lm: &SyntheticLm, seed: u64) -> OracleDraft {
        OracleDraft::new(*lm.language(), 0.9, &cfg(), seed)
    }

    fn trained_parts(seed: u64) -> (PredictorBank, ScheduleEngine, SpecEeConfig) {
        let mut lm = build_lm(seed);
        let mut draft = build_draft(&lm, seed);
        let prompts: Vec<(Vec<TokenId>, usize)> = (0..12)
            .map(|i| (vec![2 + i, 7 + (i % 5), 1 + i], 12usize))
            .collect();
        let report = collect_training_data(&mut lm, &mut draft, &prompts, 4);
        let pcfg = PredictorConfig {
            hidden_dim: 32,
            ..PredictorConfig::default()
        };
        let mut bank = PredictorBank::new(12, &pcfg, &mut Pcg::seed(2));
        train_bank(
            &mut bank,
            &report.samples,
            1.0,
            &specee_nn::TrainConfig {
                epochs: 20,
                lr: 3e-3,
                ..Default::default()
            },
            3,
        );
        let config = SpecEeConfig {
            predictor: pcfg,
            ..SpecEeConfig::default()
        };
        let schedule = config.build_schedule(12, Some(&report.exit_frequencies));
        (bank, schedule, config)
    }

    fn engine(max_batch: usize, seed: u64) -> BatchedEngine<SyntheticLm, OracleDraft> {
        let (bank, schedule, config) = trained_parts(seed);
        BatchedEngine::new(max_batch, 16, 12, bank, schedule, config)
    }

    #[test]
    fn single_sequence_decodes_and_exits_early() {
        let mut eng = engine(1, 61);
        let lm = build_lm(61);
        let draft = build_draft(&lm, 61);
        match eng.admit(0, lm, draft, &[4, 2, 9], 16) {
            Admission::Seated { slot } => assert_eq!(slot, 0),
            Admission::Done(_) => panic!("should seat"),
        }
        let outs = eng.drain();
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].tokens.len(), 16);
        assert_eq!(outs[0].exit_layers.len(), 16);
        assert!(outs[0].avg_layers() < 12.0, "avg {}", outs[0].avg_layers());
        assert_eq!(eng.occupancy(), 0);
        assert_eq!(eng.pool().pages_in_use(), 0, "pages recycled on retire");
    }

    #[test]
    fn gen_len_one_finishes_at_prefill() {
        let mut eng = engine(2, 63);
        let lm = build_lm(63);
        let draft = build_draft(&lm, 63);
        match eng.admit(7, lm, draft, &[1, 2], 1) {
            Admission::Done(out) => {
                assert_eq!(out.id, 7);
                assert_eq!(out.tokens.len(), 1);
                assert_eq!(out.exit_layers, vec![12]);
            }
            Admission::Seated { .. } => panic!("gen_len 1 should finish at prefill"),
        }
        assert_eq!(eng.occupancy(), 0);
    }

    #[test]
    fn step_measures_rearmost_layer_and_runners() {
        let mut eng = engine(3, 65);
        for i in 0..3u64 {
            let lm = build_lm(65);
            let draft = build_draft(&lm, 65 ^ i);
            let _ = eng.admit(i, lm, draft, &[3 + i as TokenId, 8, 1 + i as TokenId], 8);
        }
        let step = eng.step();
        assert_eq!(step.emitted, 3);
        assert_eq!(step.draft_slots, 3);
        assert_eq!(step.ctx_lens.len(), 3);
        // Layer runner counts are monotone non-increasing (exits are
        // suffix skips) and the rearmost layer bounds every exit.
        for w in step.layer_runners.windows(2) {
            assert!(w[0] >= w[1], "runners {:?}", step.layer_runners);
        }
        assert_eq!(step.layer_runners[0], 3, "all slots run layer 0");
        assert!(step.rearmost_layer() >= 1);
    }

    #[test]
    fn batch_decode_equals_solo_decode_per_sequence() {
        // Lock-step batching changes timing, never values: each co-batched
        // sequence must emit exactly what it emits alone.
        let prompts: [&[TokenId]; 3] = [&[4, 2, 9], &[1, 5, 3], &[8, 8, 2]];
        let mut solo_outputs = Vec::new();
        for (i, p) in prompts.iter().enumerate() {
            let mut eng = engine(1, 71);
            let lm = build_lm(71);
            let draft = build_draft(&lm, 71 ^ i as u64);
            let _ = eng.admit(i as u64, lm, draft, p, 12);
            solo_outputs.push(eng.drain().remove(0));
        }
        let mut eng = engine(3, 71);
        for (i, p) in prompts.iter().enumerate() {
            let lm = build_lm(71);
            let draft = build_draft(&lm, 71 ^ i as u64);
            let _ = eng.admit(i as u64, lm, draft, p, 12);
        }
        let batched = eng.drain();
        assert_eq!(batched.len(), 3);
        for (solo, b) in solo_outputs.iter().zip(&batched) {
            assert_eq!(solo.tokens, b.tokens, "id {}", b.id);
            assert_eq!(solo.exit_layers, b.exit_layers, "id {}", b.id);
        }
    }

    #[test]
    fn freed_slots_readmit_and_reuse_pages() {
        let mut eng = engine(2, 77);
        let lm = build_lm(77);
        let d = build_draft(&lm, 77);
        let _ = eng.admit(0, lm, d, &[1, 2, 3], 4);
        let outs = eng.drain();
        assert_eq!(outs.len(), 1);
        let created = eng.pool().pages_created();
        // Re-admit: the new sequence's pages come from the free list.
        let lm = build_lm(77);
        let d = build_draft(&lm, 78);
        let _ = eng.admit(1, lm, d, &[5, 1], 4);
        assert!(eng.pool().pages_created() <= created + 1);
        let outs = eng.drain();
        assert_eq!(outs[0].id, 1);
    }

    #[test]
    fn cancel_retires_slot_and_returns_partial_output() {
        let mut eng = engine(2, 83);
        let lm = build_lm(83);
        let d = build_draft(&lm, 83);
        let _ = eng.admit(4, lm, d, &[1, 2, 3], 16);
        let _ = eng.step();
        let _ = eng.step();
        assert!(eng.cancel(9).is_none(), "unknown id leaves engine alone");
        assert_eq!(eng.occupancy(), 1);
        let out = eng.cancel(4).expect("seated sequence");
        assert_eq!(out.id, 4);
        assert_eq!(out.tokens.len(), 3, "prefill token + two steps");
        assert_eq!(out.exit_layers.len(), 3);
        assert_eq!(eng.occupancy(), 0);
        assert_eq!(eng.pool().pages_in_use(), 0, "pages recycled on cancel");
        assert!(eng.cancel(4).is_none(), "cancel is idempotent");
    }

    #[test]
    fn static_controller_is_bit_identical_to_none() {
        // The acceptance bar for `--controller static`: same tokens, same
        // exit layers, same call counts as an uncontrolled run.
        let run = |controlled: bool| {
            let mut eng = engine(2, 91);
            if controlled {
                let base = eng.bank().layer(0).threshold();
                let n = eng.bank().len();
                eng.set_controller(specee_control::ControllerPolicy::Static.build_classed(n, base));
            }
            for i in 0..2u64 {
                let lm = build_lm(91);
                let draft = build_draft(&lm, 91 ^ i);
                let _ = eng.admit(i, lm, draft, &[4 + i as TokenId, 2, 9], 12);
            }
            eng.drain()
        };
        let (plain, controlled) = (run(false), run(true));
        assert_eq!(plain.len(), controlled.len());
        for (a, b) in plain.iter().zip(&controlled) {
            assert_eq!(a.tokens, b.tokens, "id {}", a.id);
            assert_eq!(a.exit_layers, b.exit_layers, "id {}", a.id);
            assert_eq!(a.predictor_calls, b.predictor_calls, "id {}", a.id);
            assert_eq!(a.verify_calls, b.verify_calls, "id {}", a.id);
        }
    }

    #[test]
    fn traced_batch_run_is_bit_identical_and_records_decisions() {
        // Tracing on vs off: same tokens, same exit layers, same meter —
        // and the trace carries one accepted exit instant per early exit
        // plus controller-apply events at every step boundary.
        let run = |traced: bool| {
            let mut eng = engine(2, 91);
            let base = eng.bank().layer(0).threshold();
            let n = eng.bank().len();
            eng.set_controller(specee_control::ControllerPolicy::pid().build_classed(n, base));
            if traced {
                eng.set_recorder(Some(Recorder::for_worker(0)));
            }
            for i in 0..2u64 {
                let lm = build_lm(91);
                let draft = build_draft(&lm, 91 ^ i);
                let _ = eng.admit(i, lm, draft, &[4 + i as TokenId, 2, 9], 12);
            }
            let outs = eng.drain();
            let events = eng
                .take_recorder()
                .map(Recorder::into_events)
                .unwrap_or_default();
            let meter = eng.meter().clone();
            (outs, events, meter)
        };
        let (plain, no_events, plain_meter) = run(false);
        let (traced, events, traced_meter) = run(true);
        assert!(no_events.is_empty());
        assert_eq!(plain_meter, traced_meter, "identical op totals");
        let mut early = 0usize;
        for (a, b) in plain.iter().zip(&traced) {
            assert_eq!(a.tokens, b.tokens, "id {}", a.id);
            assert_eq!(a.exit_layers, b.exit_layers, "id {}", a.id);
            early += a.exit_layers.iter().skip(1).filter(|&&l| l < 12).count();
        }
        let accepts = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::ExitDecision { accepted: true, .. }))
            .count();
        assert_eq!(accepts, early, "one accepted instant per taken exit");
        assert!(
            events
                .iter()
                .any(|e| matches!(e.kind, EventKind::ControllerApply { .. })),
            "controller applies are traced"
        );
        // Exit decisions carry the sequence id they belong to.
        assert!(events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::ExitDecision { .. }))
            .all(|e| e.seq.is_some()));
    }

    #[test]
    fn step_feedback_accounts_for_fires() {
        // Engine-level accounting: over a drained run, the feedback
        // stream carries exactly one event per verify call, and accepted
        // events equal the early exits actually taken.
        let mut eng = engine(2, 93);
        let base = eng.bank().layer(0).threshold();
        let n = eng.bank().len();
        eng.set_controller(specee_control::ControllerPolicy::Static.build_classed(n, base));
        for i in 0..2u64 {
            let lm = build_lm(93);
            let draft = build_draft(&lm, 93 ^ i);
            let _ = eng.admit(i, lm, draft, &[3 + i as TokenId, 7, 1], 10);
        }
        let mut accepts = 0u64;
        let mut rejects = 0u64;
        let mut early_exits = 0u64;
        let mut outputs = Vec::new();
        while eng.occupancy() > 0 {
            let step = eng.step();
            accepts += step.feedback.iter().filter(|f| f.accepted).count() as u64;
            rejects += step.feedback.iter().filter(|f| !f.accepted).count() as u64;
            outputs.extend(step.finished);
        }
        let verify_calls: u64 = outputs.iter().map(|o| o.verify_calls).sum();
        for out in &outputs {
            early_exits += out
                .exit_layers
                .iter()
                .skip(1) // the prefill token never scans
                .filter(|&&l| l < eng.n_layers())
                .count() as u64;
        }
        assert!(verify_calls > 0, "workload must exercise the verifier");
        assert_eq!(accepts + rejects, verify_calls, "one event per fire");
        assert_eq!(accepts, early_exits, "accepted fires are taken exits");
        let summary = eng.controller_summary().expect("controller attached");
        assert_eq!(summary.accepts + summary.rejects, verify_calls);
    }

    #[test]
    fn pid_controller_moves_thresholds_between_steps() {
        let mut eng = engine(1, 95);
        let n = eng.bank().len();
        // Start absurdly strict: the PID loop's idle decay plus feedback
        // must walk thresholds down, changing the bank between steps.
        eng.set_controller(specee_control::ControllerPolicy::pid().build_classed(n, 0.95));
        let lm = build_lm(95);
        let draft = build_draft(&lm, 95);
        let _ = eng.admit(0, lm, draft, &[4, 2, 9], 24);
        let outs = eng.drain();
        let after: Vec<f32> = (0..n).map(|l| eng.bank().layer(l).threshold()).collect();
        assert_eq!(outs[0].tokens.len(), 24);
        // The controller's operating point (not the bank's trained 0.5)
        // governs the run, and feedback walked some layers off it.
        assert!(after.iter().all(|&a| a > 0.5), "applied: {after:?}");
        assert!(
            after.iter().any(|&a| a < 0.95),
            "thresholds should move off the 0.95 start: {after:?}"
        );
        let summary = eng.controller_summary().expect("controller");
        assert_eq!(summary.policy, "pid");
        assert_eq!(summary.tokens, 23, "every decode-step token observed");
    }

    #[test]
    fn classed_admission_without_controller_matches_untagged() {
        // A class tag alone changes keys, never values: with no
        // controller attached, the class bank is a clone at base
        // thresholds, so a tagged run decodes exactly like an untagged
        // one.
        let run = |class: Option<TrafficClass>| {
            let mut eng = engine(2, 97);
            for i in 0..2u64 {
                let lm = build_lm(97);
                let draft = build_draft(&lm, 97 ^ i);
                match class {
                    Some(c) => {
                        let _ = eng.admit_classed(i, c, lm, draft, &[4 + i as TokenId, 2, 9], 12);
                    }
                    None => {
                        let _ = eng.admit(i, lm, draft, &[4 + i as TokenId, 2, 9], 12);
                    }
                }
            }
            eng.drain()
        };
        let (untagged, tagged) = (run(None), run(Some(TrafficClass::new(3))));
        for (a, b) in untagged.iter().zip(&tagged) {
            assert_eq!(a.tokens, b.tokens, "id {}", a.id);
            assert_eq!(a.exit_layers, b.exit_layers, "id {}", a.id);
            assert_eq!(a.predictor_calls, b.predictor_calls, "id {}", a.id);
        }
        assert!(untagged.iter().all(|o| o.class.is_default()));
        assert!(tagged.iter().all(|o| o.class == TrafficClass::new(3)));
    }

    #[test]
    fn per_class_banks_isolate_operating_points() {
        // Pin one class's static operating point to "exits off" while the
        // other keeps the trained base: co-batched sequences of the two
        // classes must decode under different thresholds in the same
        // engine, and feedback events must carry their class.
        let mut eng = engine(2, 99);
        let n = eng.bank().len();
        let base = eng.bank().layer(0).threshold();
        let (off, open) = (TrafficClass::new(1), TrafficClass::new(2));
        let mut ctl = specee_control::ControllerPolicy::Static.build_classed(n, base);
        ctl.pin_class_base(off, 1.0); // no sigmoid score exceeds 1.0
        eng.set_controller(ctl);
        for (i, class) in [(0u64, off), (1u64, open)] {
            let lm = build_lm(99);
            let draft = build_draft(&lm, 99 ^ i);
            let _ = eng.admit_classed(i, class, lm, draft, &[4 + i as TokenId, 2, 9], 12);
        }
        assert_eq!(eng.class_bank(off).layer(0).threshold(), 1.0);
        assert_eq!(eng.class_bank(open).layer(0).threshold(), base);
        let mut feedback = Vec::new();
        let mut outputs = Vec::new();
        while eng.occupancy() > 0 {
            let step = eng.step();
            feedback.extend(step.feedback);
            outputs.extend(step.finished);
        }
        outputs.sort_by_key(|o| o.id);
        assert!(
            outputs[0].exit_layers.iter().all(|&l| l == 12),
            "exits-off class must run full depth: {:?}",
            outputs[0].exit_layers
        );
        assert!(
            outputs[1].exit_layers.iter().any(|&l| l < 12),
            "open class must still exit early"
        );
        assert!(!feedback.is_empty());
        assert!(
            feedback.iter().all(|f| f.class == open),
            "only the open class fires"
        );
        let summaries = eng.controller_class_summaries().expect("controller");
        assert_eq!(
            summaries.iter().map(|(c, _)| *c).collect::<Vec<_>>(),
            vec![off, open]
        );
    }

    #[test]
    fn absorbed_gossip_moves_class_thresholds_at_the_boundary() {
        // Remote rejection-heavy evidence for a class this engine never
        // served must warm the class: the bank created at its first
        // admission starts from the gossip-tightened operating point.
        let mut eng = engine(2, 95);
        let n = eng.bank().len();
        eng.set_controller(specee_control::ControllerPolicy::pid().build_classed(n, 0.5));
        let c = TrafficClass::new(2);
        let mut evidence = specee_control::ClassEvidence::empty(c, n, 12);
        evidence.layer_rejects[3] = 12;
        evidence.tokens = 12;
        evidence.executed_layers = 12 * 5;
        evidence.mean_threshold = 0.5;
        for _ in 0..6 {
            eng.absorb_gossip(&[evidence.clone()]);
        }
        let lm = build_lm(95);
        let draft = build_draft(&lm, 95);
        let _ = eng.admit_classed(0, c, lm, draft, &[4, 2, 9], 4);
        assert!(
            eng.class_bank(c).layer(3).threshold() > 0.5,
            "gossip-warmed class bank starts tightened: {}",
            eng.class_bank(c).layer(3).threshold()
        );
        // The default bank's layer-3 loop was not touched by class-2
        // evidence.
        assert_eq!(eng.bank().layer(3).threshold(), 0.5);
    }

    #[test]
    fn preempted_then_resumed_is_bit_identical() {
        // The headline memory-plane invariant: a sequence evicted under
        // page pressure and later re-seated emits exactly what it emits
        // uninterrupted — the pool is accounting, the KV stays with the
        // model.
        let prompts: [&[TokenId]; 2] = [&[4, 2, 9], &[1, 5, 3]];
        let run = |capacity: Option<usize>| {
            let mut eng = engine(2, 103);
            eng.set_page_capacity(capacity);
            eng.set_preemption_enabled(capacity.is_some());
            for (i, p) in prompts.iter().enumerate() {
                let lm = build_lm(103);
                let draft = build_draft(&lm, 103 ^ i as u64);
                let _ = eng.admit_laned(
                    i as u64,
                    TrafficClass::DEFAULT,
                    Lane::new(i as u8),
                    lm,
                    draft,
                    p,
                    40,
                );
            }
            let outs = eng.drain();
            (outs, eng.preemptions(), eng.resumes())
        };
        // Final KV per sequence: 3 + 39 = 42 tokens → 3 pages of 16.
        // A cap of 3 seats both (1 page each) but cannot cover both
        // crossing into their second page, so the lane-1 sequence must
        // be evicted and finish after the lane-0 one.
        let (unlimited, p0, r0) = run(None);
        let (capped, p1, r1) = run(Some(3));
        assert_eq!(p0, 0);
        assert_eq!(r0, 0);
        assert!(p1 > 0, "cap of 3 pages must force an eviction");
        assert_eq!(p1, r1, "every eviction resumed");
        assert_eq!(unlimited.len(), capped.len());
        for (a, b) in unlimited.iter().zip(&capped) {
            assert_eq!(a.tokens, b.tokens, "id {}", a.id);
            assert_eq!(a.exit_layers, b.exit_layers, "id {}", a.id);
            assert_eq!(a.predictor_calls, b.predictor_calls, "id {}", a.id);
            assert_eq!(a.verify_calls, b.verify_calls, "id {}", a.id);
        }
    }

    #[test]
    fn prefix_shared_admission_is_bit_identical_and_cuts_pages() {
        // Two sequences sharing a one-page system prompt: sharing must
        // co-lease the prompt page (lower peak occupancy) while decoding
        // the exact same tokens as private leases.
        let mut prompt: Vec<TokenId> = (0..20).map(|i| 3 + (i % 7) as TokenId).collect();
        prompt[18] = 11; // a non-degenerate tail
        let run = |shared: bool| {
            let mut eng = engine(2, 107);
            eng.enable_prefix_share(shared);
            for i in 0..2u64 {
                let lm = build_lm(107);
                let draft = build_draft(&lm, 107 ^ i);
                let _ = eng.admit(i, lm, draft, &prompt, 8);
            }
            let shared_now = eng.pool().shared_pages();
            let outs = eng.drain();
            (outs, eng.pool().pages_peak(), shared_now)
        };
        let (private, peak_private, s0) = run(false);
        let (shared, peak_shared, s1) = run(true);
        assert_eq!(s0, 0);
        assert!(s1 > 0, "the 16-token prompt page must be co-leased");
        assert!(
            peak_shared < peak_private,
            "sharing must cut peak pages: {peak_shared} vs {peak_private}"
        );
        for (a, b) in private.iter().zip(&shared) {
            assert_eq!(a.tokens, b.tokens, "id {}", a.id);
            assert_eq!(a.exit_layers, b.exit_layers, "id {}", a.id);
        }
    }

    #[test]
    fn make_room_evicts_strictly_lower_priority_only() {
        let mut eng = engine(2, 109);
        eng.set_page_capacity(Some(2));
        eng.set_preemption_enabled(true);
        let admit = |eng: &mut BatchedEngine<SyntheticLm, OracleDraft>, id: u64, lane: u8| {
            let lm = build_lm(109);
            let draft = build_draft(&lm, 109 ^ id);
            let _ = eng.admit_laned(
                id,
                TrafficClass::DEFAULT,
                Lane::new(lane),
                lm,
                draft,
                &[4, 2, 9],
                6,
            );
        };
        admit(&mut eng, 0, 0);
        admit(&mut eng, 1, 2);
        assert!(!eng.can_seat(&[1, 2, 3]), "slots and pages are full");
        // A lane-1 arrival outranks only the lane-2 resident.
        assert!(eng.make_room(&[1, 2, 3], Lane::new(1)));
        assert_eq!(eng.preemptions(), 1);
        assert_eq!(eng.parked(), 1);
        admit(&mut eng, 2, 1);
        // Residents are now lanes 0 and 1: a lane-1 arrival has no
        // strictly lower-priority victim, and lane 0 never yields.
        assert!(!eng.make_room(&[1, 2, 3], Lane::new(1)));
        assert_eq!(eng.preemptions(), 1, "no further eviction");
        // Draining re-seats the parked lane-2 sequence and finishes it.
        let outs = eng.drain();
        assert_eq!(outs.len(), 3);
        assert_eq!(eng.resumes(), 1);
        assert_eq!(eng.parked(), 0);
        assert!(outs.iter().all(|o| o.tokens.len() == 6));
    }

    #[test]
    fn traced_preemption_emits_preempt_resume_and_pressure_events() {
        let mut eng = engine(2, 113);
        eng.set_page_capacity(Some(3));
        eng.set_preemption_enabled(true);
        eng.set_recorder(Some(Recorder::for_worker(0)));
        for i in 0..2u64 {
            let lm = build_lm(113);
            let draft = build_draft(&lm, 113 ^ i);
            let _ = eng.admit_laned(
                i,
                TrafficClass::DEFAULT,
                Lane::new(i as u8),
                lm,
                draft,
                &[4 + i as TokenId, 2, 9],
                40,
            );
        }
        let _ = eng.drain();
        assert!(eng.preemptions() > 0);
        let events = eng.take_recorder().map(Recorder::into_events).unwrap();
        let count = |name: &str| events.iter().filter(|e| e.kind.name() == name).count();
        assert_eq!(count("preempt"), eng.preemptions() as usize);
        assert_eq!(count("resume"), eng.resumes() as usize);
        assert!(count("kv-pressure") > 0, "pressure sampled at boundaries");
        // Preempt/resume instants carry the victim's sequence id.
        assert!(events
            .iter()
            .filter(|e| matches!(
                e.kind,
                EventKind::Preempted { .. } | EventKind::Resumed { .. }
            ))
            .all(|e| e.seq.is_some()));
    }

    #[test]
    fn cancel_reaches_parked_sequences() {
        let mut eng = engine(2, 127);
        eng.set_page_capacity(Some(2));
        eng.set_preemption_enabled(true);
        for i in 0..2u64 {
            let lm = build_lm(127);
            let draft = build_draft(&lm, 127 ^ i);
            let _ = eng.admit_laned(
                i,
                TrafficClass::DEFAULT,
                Lane::new(i as u8),
                lm,
                draft,
                &[4, 2, 9],
                25,
            );
        }
        // Step until pressure parks the lane-1 sequence.
        while eng.parked() == 0 {
            let _ = eng.step();
        }
        let out = eng.cancel(1).expect("parked sequence cancellable");
        assert_eq!(out.id, 1);
        assert!(!out.tokens.is_empty());
        assert_eq!(eng.parked(), 0);
        let outs = eng.drain();
        assert_eq!(outs.len(), 1, "only the survivor finishes");
        assert_eq!(outs[0].id, 0);
    }

    #[test]
    fn empty_step_reports_nothing() {
        let mut eng = engine(2, 80);
        let step = eng.step();
        assert_eq!(step.emitted, 0);
        assert_eq!(step.rearmost_layer(), 0);
        assert!(step.finished.is_empty());
    }

    #[test]
    #[should_panic(expected = "no free slot")]
    fn admit_requires_free_slot() {
        let mut eng = engine(1, 81);
        let lm = build_lm(81);
        let d = build_draft(&lm, 81);
        let _ = eng.admit(0, lm, d, &[1, 2], 8);
        let lm = build_lm(81);
        let d = build_draft(&lm, 82);
        let _ = eng.admit(1, lm, d, &[1, 2], 8);
    }
}
