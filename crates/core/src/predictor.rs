//! The lightweight MLP exit predictor and its training pipeline (T1).

use serde::{Deserialize, Serialize};
use specee_metrics::{Meter, OpKind};
use specee_nn::{Activation, BinaryTrainer, Mlp, TrainConfig, TrainReport};
use specee_tensor::{ops, rng::Pcg};

use crate::features::ExitFeatures;

/// Architecture of an exit predictor.
///
/// The paper's design-space exploration (Fig. 8) lands on a 2-layer MLP
/// with hidden dimension 512; both knobs stay configurable so the sweep
/// can be reproduced.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PredictorConfig {
    /// Number of speculative tokens K (feature dim is 3 × K).
    pub spec_k: usize,
    /// Hidden width of the MLP.
    pub hidden_dim: usize,
    /// Number of dense layers (2 = one hidden layer).
    pub layers: usize,
    /// Exit threshold on the sigmoid output.
    pub threshold: f32,
}

impl Default for PredictorConfig {
    fn default() -> Self {
        PredictorConfig {
            spec_k: 4,
            hidden_dim: 512,
            layers: 2,
            threshold: 0.5,
        }
    }
}

impl PredictorConfig {
    /// Input feature dimension.
    pub fn feature_dim(&self) -> usize {
        3 * self.spec_k
    }

    fn dims(&self) -> Vec<usize> {
        let mut dims = vec![self.feature_dim()];
        for _ in 0..self.layers.saturating_sub(1) {
            dims.push(self.hidden_dim);
        }
        dims.push(1);
        dims
    }
}

/// A trained (or trainable) early-exit predictor for one decoder layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExitPredictor {
    mlp: Mlp,
    threshold: f32,
}

impl ExitPredictor {
    /// Creates an untrained predictor.
    pub fn new(config: &PredictorConfig, rng: &mut Pcg) -> Self {
        ExitPredictor {
            mlp: Mlp::new(&config.dims(), Activation::Relu, rng),
            threshold: config.threshold,
        }
    }

    /// The exit threshold.
    pub fn threshold(&self) -> f32 {
        self.threshold
    }

    /// Adjusts the exit threshold (the accuracy/speedup knob of §4.3.2;
    /// weights are untouched).
    pub fn set_threshold(&mut self, threshold: f32) {
        self.threshold = threshold.clamp(0.0, 1.0);
    }

    /// Scores features: sigmoid probability that exiting now reproduces the
    /// full-depth token. Records one predictor forward in the meter (the
    /// predictor's parameters are the same at paper scale — this op is the
    /// ~0.07 M-parameter workload of Fig. 2(c)).
    pub fn score(&self, features: &ExitFeatures, meter: &mut Meter) -> f32 {
        let x = features.to_vec();
        let logit = self.mlp.forward(&x)[0];
        // two matmuls + activation + sigmoid, each its own small kernel
        meter.record(
            OpKind::Predictor,
            self.mlp.flops(),
            self.mlp.bytes() as f64 + x.len() as f64 * 2.0,
            4,
        );
        ops::sigmoid(logit)
    }

    /// Whether a score fires at the configured threshold — the single
    /// definition of the fire decision; [`ExitPredictor::should_exit`]
    /// and the exit scan both route through it, so the "one feedback
    /// event per fire" invariant cannot silently diverge.
    pub fn fires(&self, score: f32) -> bool {
        score > self.threshold
    }

    /// Hard exit decision at the configured threshold.
    pub fn should_exit(&self, features: &ExitFeatures, meter: &mut Meter) -> bool {
        let score = self.score(features, meter);
        self.fires(score)
    }

    /// Scores a batch of feature vectors as one batched kernel (how the
    /// tree-mode predictor runs on GPU: weights read once, 4 launches).
    pub fn score_batch(&self, features: &[ExitFeatures], meter: &mut Meter) -> Vec<f32> {
        if features.is_empty() {
            return Vec::new();
        }
        let outs: Vec<f32> = features
            .iter()
            .map(|f| ops::sigmoid(self.mlp.forward(&f.to_vec())[0]))
            .collect();
        meter.record(
            OpKind::Predictor,
            self.mlp.flops() * features.len() as f64,
            self.mlp.bytes() as f64 + features.len() as f64 * 12.0 * 2.0,
            4,
        );
        outs
    }

    /// Trains on collected `(features, label)` samples.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn train(&mut self, samples: &[(Vec<f32>, bool)], train: &TrainConfig) -> TrainReport {
        let inputs: Vec<Vec<f32>> = samples.iter().map(|(f, _)| f.clone()).collect();
        let labels: Vec<bool> = samples.iter().map(|(_, l)| *l).collect();
        BinaryTrainer::new(train.clone()).train(&mut self.mlp, &inputs, &labels)
    }

    /// Classification accuracy on held-out samples at the exit threshold.
    pub fn accuracy(&self, samples: &[(Vec<f32>, bool)]) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let correct = samples
            .iter()
            .filter(|(f, l)| (ops::sigmoid(self.mlp.forward(f)[0]) > self.threshold) == *l)
            .count();
        correct as f64 / samples.len() as f64
    }

    /// Trainable parameter count (~0.07 M for the default config).
    pub fn param_count(&self) -> usize {
        self.mlp.param_count()
    }

    /// FLOPs of one forward pass.
    pub fn flops(&self) -> f64 {
        self.mlp.flops()
    }

    /// Parameter payload in bytes.
    pub fn bytes(&self) -> usize {
        self.mlp.bytes()
    }
}

/// One predictor per decoder layer (the last layer never needs one).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictorBank {
    predictors: Vec<ExitPredictor>,
}

impl PredictorBank {
    /// Creates untrained predictors for layers `0..n_layers - 1`.
    ///
    /// # Panics
    ///
    /// Panics if `n_layers < 2`.
    pub fn new(n_layers: usize, config: &PredictorConfig, rng: &mut Pcg) -> Self {
        assert!(n_layers >= 2, "need at least two layers");
        PredictorBank {
            predictors: (0..n_layers - 1)
                .map(|_| ExitPredictor::new(config, rng))
                .collect(),
        }
    }

    /// Number of layer predictors.
    pub fn len(&self) -> usize {
        self.predictors.len()
    }

    /// Whether the bank is empty.
    pub fn is_empty(&self) -> bool {
        self.predictors.is_empty()
    }

    /// Borrows the predictor of a layer.
    ///
    /// # Panics
    ///
    /// Panics if the layer has no predictor (the last layer).
    pub fn layer(&self, layer: usize) -> &ExitPredictor {
        &self.predictors[layer]
    }

    /// Mutably borrows the predictor of a layer.
    ///
    /// # Panics
    ///
    /// Panics if the layer has no predictor.
    pub fn layer_mut(&mut self, layer: usize) -> &mut ExitPredictor {
        &mut self.predictors[layer]
    }

    /// Total memory of all predictors in bytes (the paper reports ~416 KB
    /// for Llama2-7B, §7.4.2).
    pub fn total_bytes(&self) -> usize {
        self.predictors.iter().map(ExitPredictor::bytes).sum()
    }

    /// Adjusts every layer predictor's exit threshold.
    pub fn set_threshold(&mut self, threshold: f32) {
        for p in &mut self.predictors {
            p.set_threshold(threshold);
        }
    }

    /// Serializes the trained bank to a JSON string (predictors are
    /// shipped as a model configuration artefact, §5.3).
    ///
    /// # Errors
    ///
    /// Returns the underlying serializer error on failure.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Restores a bank from [`PredictorBank::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns the underlying deserializer error on malformed input.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_samples(n: usize, seed: u64) -> Vec<(Vec<f32>, bool)> {
        // Learnable rule mimicking the probability shift: exit iff the top
        // local probability is high AND rose since last layer.
        let mut rng = Pcg::seed(seed);
        (0..n)
            .map(|_| {
                let p0 = rng.next_f32();
                let d0 = rng.next_f32() - 0.5;
                let label = p0 > 0.6 && d0 > 0.05;
                let logits = vec![p0 * 10.0, 2.0, 1.0, 0.5];
                let rest = 1.0 - p0;
                let probs = vec![p0, rest * 0.5, rest * 0.3, rest * 0.2];
                let delta = vec![d0, -d0 * 0.5, -d0 * 0.3, -d0 * 0.2];
                let f = ExitFeatures {
                    logits,
                    probs,
                    delta,
                };
                (f.to_vec(), label)
            })
            .collect()
    }

    #[test]
    fn default_matches_paper_design_point() {
        let cfg = PredictorConfig::default();
        assert_eq!(cfg.feature_dim(), 12);
        let p = ExitPredictor::new(&cfg, &mut Pcg::seed(1));
        // 12*512 + 512 + 512 + 1 ≈ 0.007 M params... the paper's ~0.07M
        // counts all 32 per-layer predictors; a single one is ~7 K.
        assert_eq!(p.param_count(), 12 * 512 + 512 + 512 + 1);
    }

    #[test]
    fn bank_memory_matches_paper_estimate() {
        // §7.4.2: (12×512 + 512×1) × 32 × 4 bytes ≈ 416 KB for Llama2-7B.
        let cfg = PredictorConfig::default();
        let bank = PredictorBank::new(32, &cfg, &mut Pcg::seed(2));
        let kb = bank.total_bytes() as f64 / 1024.0;
        assert!(
            (700.0..900.0).contains(&kb) || (350.0..500.0).contains(&kb),
            "{kb} KB"
        );
    }

    #[test]
    fn learns_probability_shift_rule() {
        let cfg = PredictorConfig {
            hidden_dim: 64,
            ..PredictorConfig::default()
        };
        let mut p = ExitPredictor::new(&cfg, &mut Pcg::seed(3));
        let train = synthetic_samples(800, 4);
        let test = synthetic_samples(200, 5);
        p.train(
            &train,
            &TrainConfig {
                epochs: 30,
                lr: 3e-3,
                ..Default::default()
            },
        );
        let acc = p.accuracy(&test);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn score_records_predictor_op() {
        let cfg = PredictorConfig::default();
        let p = ExitPredictor::new(&cfg, &mut Pcg::seed(6));
        let mut meter = Meter::new();
        let f = ExitFeatures {
            logits: vec![0.0; 4],
            probs: vec![0.25; 4],
            delta: vec![0.0; 4],
        };
        let s = p.score(&f, &mut meter);
        assert!((0.0..=1.0).contains(&s));
        assert_eq!(meter.kind(OpKind::Predictor).kernels, 4);
        assert!(meter.kind(OpKind::Predictor).flops > 10_000.0);
    }

    #[test]
    fn bank_has_no_predictor_for_last_layer() {
        let bank = PredictorBank::new(32, &PredictorConfig::default(), &mut Pcg::seed(7));
        assert_eq!(bank.len(), 31);
    }

    #[test]
    fn bank_json_roundtrip_preserves_scores() {
        let cfg = PredictorConfig {
            hidden_dim: 16,
            ..PredictorConfig::default()
        };
        let mut bank = PredictorBank::new(4, &cfg, &mut Pcg::seed(8));
        bank.layer_mut(0).train(
            &synthetic_samples(64, 9),
            &TrainConfig {
                epochs: 4,
                ..Default::default()
            },
        );
        let json = bank.to_json().unwrap();
        let restored = PredictorBank::from_json(&json).unwrap();
        let f = ExitFeatures {
            logits: vec![5.0, 1.0, 0.5, 0.2],
            probs: vec![0.8, 0.1, 0.06, 0.04],
            delta: vec![0.3, -0.1, -0.1, -0.1],
        };
        let mut meter = Meter::new();
        let a = bank.layer(0).score(&f, &mut meter);
        let b = restored.layer(0).score(&f, &mut meter);
        assert_eq!(a, b);
    }
}
