//! Engine configuration.

use serde::{Deserialize, Serialize};
use specee_draft::TreeShape;
use specee_model::SkipKvPolicy;

use crate::predictor::PredictorConfig;
use crate::scheduler::{OfflineScheduler, OnlineScheduler, ScheduleEngine};

/// Which predictor-scheduling technique is active (T2 ablation knob).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulingMode {
    /// A predictor after every layer (T1 only).
    AllLayers,
    /// Offline scheduling only.
    OfflineOnly,
    /// Offline ∪ online (the full T2).
    TwoLevel,
}

/// SpecEE engine configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpecEeConfig {
    /// Predictor architecture (T1).
    pub predictor: PredictorConfig,
    /// Scheduling technique (T2).
    pub scheduling: SchedulingMode,
    /// Number of layers the offline scheduler keeps.
    pub offline_keep: usize,
    /// Online circular-queue length N (paper: 5).
    pub online_window: usize,
    /// Online ±neighborhood (paper: 2).
    pub neighborhood: usize,
    /// How skipped layers' KV is filled after an exit.
    pub skip_kv_policy: SkipKvPolicy,
    /// Draft tree shape for speculative decoding.
    pub tree_shape: TreeShape,
    /// Optional EAGLE-2-style node budget: after drafting, the tree is
    /// pruned to its `budget` highest joint-probability nodes
    /// ([`specee_draft::TokenTree::prune_to_budget`]). `None` verifies the
    /// full fixed-shape tree.
    pub tree_budget: Option<usize>,
    /// Whether the speculative engine applies hyper-token early exit (T3).
    pub tree_early_exit: bool,
}

impl Default for SpecEeConfig {
    fn default() -> Self {
        SpecEeConfig {
            predictor: PredictorConfig::default(),
            scheduling: SchedulingMode::TwoLevel,
            offline_keep: 12,
            online_window: 5,
            neighborhood: 2,
            skip_kv_policy: SkipKvPolicy::ProjectExitHidden,
            tree_shape: TreeShape::eagle_default(),
            tree_budget: None,
            tree_early_exit: true,
        }
    }
}

impl SpecEeConfig {
    /// Builds the schedule engine for `n_layers`, using collected exit
    /// frequencies for offline allocation when available (uniform keep-all
    /// otherwise).
    pub fn build_schedule(&self, n_layers: usize, frequencies: Option<&[f64]>) -> ScheduleEngine {
        let offline = || match frequencies {
            Some(f) => OfflineScheduler::from_frequencies(f, self.offline_keep),
            None => OfflineScheduler::keep_all(n_layers),
        };
        match self.scheduling {
            SchedulingMode::AllLayers => ScheduleEngine::all_layers(n_layers),
            SchedulingMode::OfflineOnly => ScheduleEngine::offline_only(offline()),
            SchedulingMode::TwoLevel => ScheduleEngine::two_level(
                offline(),
                OnlineScheduler::new(n_layers, self.online_window, self.neighborhood),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let cfg = SpecEeConfig::default();
        assert_eq!(cfg.predictor.spec_k, 4);
        assert_eq!(cfg.predictor.hidden_dim, 512);
        assert_eq!(cfg.online_window, 5);
        assert_eq!(cfg.neighborhood, 2);
        assert_eq!(cfg.scheduling, SchedulingMode::TwoLevel);
        assert!(cfg.tree_early_exit);
    }

    #[test]
    fn build_schedule_respects_mode() {
        let mut cfg = SpecEeConfig::default();
        let freq: Vec<f64> = (0..32).map(|i| i as f64).collect();

        cfg.scheduling = SchedulingMode::AllLayers;
        let s = cfg.build_schedule(32, Some(&freq));
        assert_eq!(s.current_active_count(), 32);

        cfg.scheduling = SchedulingMode::OfflineOnly;
        let s = cfg.build_schedule(32, Some(&freq));
        assert_eq!(s.current_active_count(), 12);

        cfg.scheduling = SchedulingMode::TwoLevel;
        let s = cfg.build_schedule(32, Some(&freq));
        // cold start: online activates everything
        assert_eq!(s.current_active_count(), 32);
    }
}
