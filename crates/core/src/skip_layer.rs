//! Skip-layer and confidence-threshold comparators (Table 1's rows).
//!
//! The paper positions SpecEE against two families beyond AdaInfer/RAEE:
//!
//! * **Skip layer** — MoD \[35\] routes tokens *around* individual blocks
//!   with a learned router under a capacity budget; D-LLM \[45\] places a
//!   dynamic decision gate before every layer. Both are "light prediction,
//!   low latency" but "high training" in Table 1: the real methods
//!   fine-tune the LLM jointly with the routers. Our routers are trained
//!   standalone on the frozen model (the strongest version that does not
//!   touch model parameters) and the bench reports the paper's modelled
//!   fine-tuning cost alongside.
//! * **Confidence early exit** (CALM-style) — exit when the full-vocabulary
//!   top softmax probability crosses a threshold. Training-free, but the
//!   prediction step pays a full LM-head traversal per layer, the exact
//!   cost SpecEE's vocabulary reduction removes.
//!
//! Skipped middle layers keep the KV cache aligned through
//! [`LayeredLm::fill_layer_kv`], the same mechanism early exits use for
//! skipped suffixes.

use serde::{Deserialize, Serialize};
use specee_metrics::{Meter, OpKind};
use specee_model::{prefill, LayeredLm, SkipKvPolicy, TokenId};
use specee_nn::LogisticRegression;
use specee_tensor::ops;

use crate::output::GenOutput;

/// Dimension of the router feature vector ([`hidden_summary`]).
pub const ROUTER_FEATURES: usize = 6;

/// Low-dimensional summary of a hidden state for router/gate input: mean,
/// RMS, max, min, positive fraction, and the RMS of the change from the
/// previous layer (stability signal — the skip-layer analogue of SpecEE's
/// probability variation).
pub fn hidden_summary(h: &[f32], prev: Option<&[f32]>) -> Vec<f32> {
    let n = h.len().max(1) as f32;
    let mean = h.iter().sum::<f32>() / n;
    let rms = (h.iter().map(|x| x * x).sum::<f32>() / n).sqrt();
    let max = h.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let min = h.iter().copied().fold(f32::INFINITY, f32::min);
    let pos_frac = h.iter().filter(|&&x| x > 0.0).count() as f32 / n;
    let delta_rms = match prev {
        Some(p) if p.len() == h.len() => {
            (h.iter().zip(p).map(|(a, b)| (a - b) * (a - b)).sum::<f32>() / n).sqrt()
        }
        _ => rms,
    };
    vec![mean, rms, max, min, pos_frac, delta_rms]
}

/// One collected router training sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouterSample {
    /// Layer the features were taken *after*.
    pub layer: usize,
    /// [`hidden_summary`] features.
    pub features: Vec<f32>,
    /// Whether the token was already settled here (exiting at this layer
    /// reproduces the full-depth token), i.e. deeper blocks are redundant.
    pub label: bool,
}

/// Collects router training data from dense runs (one full LM-head read
/// per layer is paid at *collection* time only, not at inference).
///
/// # Panics
///
/// Panics if `prompts` is empty.
pub fn collect_router_data<M: LayeredLm>(
    model: &mut M,
    prompts: &[(Vec<TokenId>, usize)],
) -> Vec<RouterSample> {
    assert!(!prompts.is_empty(), "need prompts");
    let n_layers = model.config().n_layers;
    let mut meter = Meter::new();
    let mut samples = Vec::new();
    for (prompt, gen_len) in prompts {
        model.reset();
        let mut h = prefill(model, prompt, &mut meter);
        let logits = model.final_logits(&h, &mut meter);
        let mut t = ops::argmax(&logits).expect("logits") as TokenId;
        for _ in 1..*gen_len {
            let pos = model.kv_len();
            h = model.begin_token(t, &mut meter);
            let mut prev = h.clone();
            let mut per_layer = Vec::with_capacity(n_layers);
            for layer in 0..n_layers {
                let next = model.forward_layer(layer, &h, pos, &mut meter);
                if layer + 1 < n_layers {
                    let feats = hidden_summary(&next, Some(&prev));
                    let full = model.final_logits(&next, &mut meter);
                    let tok = ops::argmax(&full).expect("logits") as TokenId;
                    per_layer.push((layer, feats, tok));
                }
                prev = h;
                h = next;
            }
            let full = model.final_logits(&h, &mut meter);
            let final_tok = ops::argmax(&full).expect("logits") as TokenId;
            for (layer, features, tok) in per_layer {
                samples.push(RouterSample {
                    layer,
                    features,
                    label: tok == final_tok,
                });
            }
            t = final_tok;
        }
    }
    samples
}

fn meter_router(meter: &mut Meter) {
    // One logistic evaluation: 2·dim FLOPs over f32 weights.
    meter.record(
        OpKind::Predictor,
        2.0 * ROUTER_FEATURES as f64,
        4.0 * (ROUTER_FEATURES + 1) as f64,
        1,
    );
}

/// Shared decode loop for layer-skipping engines: `decide(layer, feats)`
/// returns `true` when the layer should be *skipped* (residual
/// pass-through + KV fill).
fn generate_with_skips<M: LayeredLm>(
    model: &mut M,
    prompt: &[TokenId],
    gen_len: usize,
    skip_policy: SkipKvPolicy,
    mut decide: impl FnMut(usize, &[f32], &mut Meter) -> bool,
) -> GenOutput {
    assert!(!prompt.is_empty(), "prompt must be non-empty");
    assert!(gen_len > 0, "gen_len must be positive");
    let n_layers = model.config().n_layers;
    let mut meter = Meter::new();
    model.reset();

    let mut tokens = Vec::with_capacity(gen_len);
    let mut exit_layers = Vec::with_capacity(gen_len);
    let mut ce_sum = 0.0f64;
    let mut predictor_calls = 0u64;

    let mut prefill_meter = Meter::new();
    let h0 = prefill(model, prompt, &mut prefill_meter);
    let logits = model.final_logits(&h0, &mut meter);
    let mut t = ops::argmax(&logits).expect("logits") as TokenId;
    ce_sum += f64::from(-ops::log_softmax(&logits)[t as usize]);
    tokens.push(t);
    exit_layers.push(n_layers);
    meter.mark_token();

    while tokens.len() < gen_len {
        let pos = model.kv_len();
        let mut h = model.begin_token(t, &mut meter);
        let mut prev = h.clone();
        let mut executed = 0usize;
        for layer in 0..n_layers {
            let feats = hidden_summary(&h, Some(&prev));
            predictor_calls += 1;
            if decide(layer, &feats, &mut meter) {
                model.fill_layer_kv(layer, &h, pos, skip_policy, &mut meter);
            } else {
                prev = h.clone();
                h = model.forward_layer(layer, &h, pos, &mut meter);
                executed += 1;
            }
        }
        let full = model.final_logits(&h, &mut meter);
        let next = ops::argmax(&full).expect("logits") as TokenId;
        ce_sum += f64::from(-ops::log_softmax(&full)[next as usize]);
        tokens.push(next);
        exit_layers.push(executed);
        meter.mark_token();
        meter.mark_host_step();
        t = next;
    }

    GenOutput {
        tokens,
        exit_layers,
        ce_sum,
        meter,
        predictor_calls,
        verify_calls: 0,
        rounds: 0,
        draft_calls: 0,
        self_draft_calls: 0,
    }
}

/// Mixture-of-Depths-style engine: per-layer routers under a capacity
/// budget. A layer processes the token only when its router score lands in
/// the layer's top-`capacity` quantile of training scores — the batch-1
/// analogue of MoD's top-k routing.
#[derive(Debug, Clone)]
pub struct MoDEngine<M> {
    model: M,
    routers: Vec<LogisticRegression>,
    thresholds: Vec<f32>,
    warmup_layers: usize,
}

impl<M: LayeredLm> MoDEngine<M> {
    /// Trains per-layer routers and calibrates capacity thresholds.
    ///
    /// `capacity` is the fraction of tokens each (non-warmup) layer should
    /// process (MoD's 87.5 % ≙ every-other-block 12.5 % routing is a
    /// common setting; pass 1.0 to disable skipping).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is outside `(0, 1]`.
    pub fn train(model: M, samples: &[RouterSample], capacity: f64, seed: u64) -> Self {
        assert!(
            capacity > 0.0 && capacity <= 1.0,
            "capacity must be in (0, 1]"
        );
        let n_layers = model.config().n_layers;
        let mut routers = Vec::with_capacity(n_layers);
        let mut thresholds = Vec::with_capacity(n_layers);
        for layer in 0..n_layers {
            let data: Vec<&RouterSample> = samples.iter().filter(|s| s.layer == layer).collect();
            let mut router = LogisticRegression::new(ROUTER_FEATURES);
            let mut threshold = 2.0f32; // unreachable: never skip
            if !data.is_empty() {
                let xs: Vec<Vec<f32>> = data.iter().map(|s| s.features.clone()).collect();
                let ys: Vec<bool> = data.iter().map(|s| s.label).collect();
                router.fit(&xs, &ys, 30, 0.1, seed ^ layer as u64);
                // Skip when p(redundant) exceeds the capacity quantile.
                let mut scores: Vec<f32> = xs.iter().map(|x| router.predict_proba(x)).collect();
                scores.sort_by(|a, b| a.partial_cmp(b).expect("finite scores"));
                let rank = ((capacity * scores.len() as f64).floor() as usize)
                    .min(scores.len().saturating_sub(1));
                threshold = scores[rank].max(0.5);
            }
            routers.push(router);
            thresholds.push(threshold);
        }
        MoDEngine {
            model,
            routers,
            thresholds,
            warmup_layers: 2,
        }
    }

    /// Borrows the model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Generates with capacity-routed layer skipping.
    ///
    /// # Panics
    ///
    /// Panics if `prompt` is empty or `gen_len` is zero.
    pub fn generate(&mut self, prompt: &[TokenId], gen_len: usize) -> GenOutput {
        let routers = &self.routers;
        let thresholds = &self.thresholds;
        let warmup = self.warmup_layers;
        generate_with_skips(
            &mut self.model,
            prompt,
            gen_len,
            SkipKvPolicy::ProjectExitHidden,
            |layer, feats, meter| {
                if layer < warmup {
                    return false;
                }
                meter_router(meter);
                routers[layer].predict_proba(feats) > thresholds[layer]
            },
        )
    }
}

/// D-LLM-style engine: a trained decision gate before every layer, no
/// capacity budget — each token dynamically chooses its own subnetwork.
#[derive(Debug, Clone)]
pub struct DLlmEngine<M> {
    model: M,
    gates: Vec<LogisticRegression>,
    warmup_layers: usize,
}

impl<M: LayeredLm> DLlmEngine<M> {
    /// Trains the per-layer gates from collected samples.
    pub fn train(model: M, samples: &[RouterSample], seed: u64) -> Self {
        let n_layers = model.config().n_layers;
        let gates = (0..n_layers)
            .map(|layer| {
                let data: Vec<&RouterSample> =
                    samples.iter().filter(|s| s.layer == layer).collect();
                let mut gate = LogisticRegression::new(ROUTER_FEATURES);
                if !data.is_empty() {
                    let xs: Vec<Vec<f32>> = data.iter().map(|s| s.features.clone()).collect();
                    let ys: Vec<bool> = data.iter().map(|s| s.label).collect();
                    gate.fit(&xs, &ys, 30, 0.1, seed ^ (layer as u64) << 1);
                }
                gate
            })
            .collect();
        DLlmEngine {
            model,
            gates,
            warmup_layers: 4,
        }
    }

    /// Borrows the model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Generates with gate-decided layer skipping.
    ///
    /// # Panics
    ///
    /// Panics if `prompt` is empty or `gen_len` is zero.
    pub fn generate(&mut self, prompt: &[TokenId], gen_len: usize) -> GenOutput {
        let gates = &self.gates;
        let warmup = self.warmup_layers;
        generate_with_skips(
            &mut self.model,
            prompt,
            gen_len,
            SkipKvPolicy::ProjectExitHidden,
            |layer, feats, meter| {
                if layer < warmup {
                    return false;
                }
                meter_router(meter);
                gates[layer].predict(feats)
            },
        )
    }
}

/// Calibrates a CALM confidence threshold on dense runs: the midpoint
/// between the mean top probability of *settled* layer states (exiting
/// reproduces the final token) and *unsettled* ones. On a real LLM this
/// lands near the conventional 0.9; on the reduced-vocabulary substrate
/// the plateau sits lower, so thresholds must be data-derived rather than
/// copied from the literature.
///
/// # Panics
///
/// Panics if `prompts` is empty.
pub fn calibrate_calm_threshold<M: LayeredLm>(
    model: &mut M,
    prompts: &[(Vec<TokenId>, usize)],
) -> f32 {
    assert!(!prompts.is_empty(), "need prompts");
    let n_layers = model.config().n_layers;
    let mut meter = Meter::new();
    let (mut settled_sum, mut settled_n) = (0.0f64, 0u64);
    let (mut unsettled_sum, mut unsettled_n) = (0.0f64, 0u64);
    for (prompt, gen_len) in prompts {
        model.reset();
        let mut h = prefill(model, prompt, &mut meter);
        let logits = model.final_logits(&h, &mut meter);
        let mut t = ops::argmax(&logits).expect("logits") as TokenId;
        for _ in 1..*gen_len {
            let pos = model.kv_len();
            h = model.begin_token(t, &mut meter);
            let mut per_layer = Vec::with_capacity(n_layers);
            for layer in 0..n_layers {
                h = model.forward_layer(layer, &h, pos, &mut meter);
                if layer + 1 < n_layers {
                    let full = model.final_logits(&h, &mut meter);
                    let probs = ops::softmax(&full);
                    let top = probs.iter().copied().fold(0.0f32, f32::max);
                    let tok = ops::argmax(&full).expect("logits") as TokenId;
                    per_layer.push((top, tok));
                }
            }
            let full = model.final_logits(&h, &mut meter);
            let final_tok = ops::argmax(&full).expect("logits") as TokenId;
            for (top, tok) in per_layer {
                if tok == final_tok {
                    settled_sum += f64::from(top);
                    settled_n += 1;
                } else {
                    unsettled_sum += f64::from(top);
                    unsettled_n += 1;
                }
            }
            t = final_tok;
        }
    }
    let settled = if settled_n > 0 {
        settled_sum / settled_n as f64
    } else {
        0.9
    };
    let unsettled = if unsettled_n > 0 {
        unsettled_sum / unsettled_n as f64
    } else {
        0.0
    };
    (((settled + unsettled) / 2.0) as f32).clamp(1e-3, 1.0 - 1e-3)
}

/// CALM-style confidence engine: exit when the full-vocabulary top softmax
/// probability crosses `threshold`. Training-free; pays a full LM-head
/// traversal at every evaluated layer.
#[derive(Debug, Clone)]
pub struct CalmEngine<M> {
    model: M,
    threshold: f32,
    skip_policy: SkipKvPolicy,
}

impl<M: LayeredLm> CalmEngine<M> {
    /// Creates the engine with an exit-confidence threshold.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is outside `(0, 1)`.
    pub fn new(model: M, threshold: f32) -> Self {
        assert!(
            threshold > 0.0 && threshold < 1.0,
            "threshold must be in (0, 1)"
        );
        CalmEngine {
            model,
            threshold,
            skip_policy: SkipKvPolicy::ProjectExitHidden,
        }
    }

    /// Borrows the model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Generates with confidence-threshold early exiting.
    ///
    /// # Panics
    ///
    /// Panics if `prompt` is empty or `gen_len` is zero.
    pub fn generate(&mut self, prompt: &[TokenId], gen_len: usize) -> GenOutput {
        assert!(!prompt.is_empty(), "prompt must be non-empty");
        assert!(gen_len > 0, "gen_len must be positive");
        let n_layers = self.model.config().n_layers;
        let mut meter = Meter::new();
        self.model.reset();

        let mut tokens = Vec::with_capacity(gen_len);
        let mut exit_layers = Vec::with_capacity(gen_len);
        let mut ce_sum = 0.0f64;
        let mut predictor_calls = 0u64;

        let mut prefill_meter = Meter::new();
        let h0 = prefill(&mut self.model, prompt, &mut prefill_meter);
        let logits = self.model.final_logits(&h0, &mut meter);
        let mut t = ops::argmax(&logits).expect("logits") as TokenId;
        ce_sum += f64::from(-ops::log_softmax(&logits)[t as usize]);
        tokens.push(t);
        exit_layers.push(n_layers);
        meter.mark_token();

        while tokens.len() < gen_len {
            let pos = self.model.kv_len();
            let mut h = self.model.begin_token(t, &mut meter);
            let mut exit: Option<(TokenId, Vec<f32>)> = None;
            let mut executed = n_layers;
            for layer in 0..n_layers {
                h = self.model.forward_layer(layer, &h, pos, &mut meter);
                if layer + 1 >= n_layers {
                    break;
                }
                // Confidence needs the FULL vocabulary distribution.
                let full = self.model.final_logits(&h, &mut meter);
                predictor_calls += 1;
                let probs = ops::softmax(&full);
                let top = probs.iter().copied().fold(0.0f32, f32::max);
                if top >= self.threshold {
                    let tok = ops::argmax(&full).expect("logits") as TokenId;
                    self.model
                        .fill_skipped_kv(layer + 1, &h, pos, self.skip_policy, &mut meter);
                    executed = layer + 1;
                    exit = Some((tok, full));
                    break;
                }
            }
            let (next, full) = match exit {
                Some(x) => x,
                None => {
                    let full = self.model.final_logits(&h, &mut meter);
                    (ops::argmax(&full).expect("logits") as TokenId, full)
                }
            };
            ce_sum += f64::from(-ops::log_softmax(&full)[next as usize]);
            tokens.push(next);
            exit_layers.push(executed);
            meter.mark_token();
            meter.mark_host_step();
            t = next;
        }

        GenOutput {
            tokens,
            exit_layers,
            ce_sum,
            meter,
            predictor_calls,
            verify_calls: 0,
            rounds: 0,
            draft_calls: 0,
            self_draft_calls: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::DenseEngine;
    use crate::output::agreement;
    use specee_model::ModelConfig;
    use specee_synth::{DatasetProfile, SyntheticLm, SyntheticLmBuilder};

    fn cfg() -> ModelConfig {
        ModelConfig {
            n_layers: 12,
            vocab_size: 512,
            ..ModelConfig::tiny()
        }
    }

    fn build_lm(seed: u64) -> SyntheticLm {
        SyntheticLmBuilder::new(cfg(), DatasetProfile::qa())
            .seed(seed)
            .build()
    }

    fn train_prompts() -> Vec<(Vec<TokenId>, usize)> {
        (0..12u32)
            .map(|i| (vec![2 + i, 7 + (i % 5), 1 + i], 12usize))
            .collect()
    }

    #[test]
    fn hidden_summary_has_expected_shape_and_values() {
        let h = vec![1.0f32, -1.0, 3.0, 0.0];
        let f = hidden_summary(&h, None);
        assert_eq!(f.len(), ROUTER_FEATURES);
        assert!((f[0] - 0.75).abs() < 1e-6, "mean {}", f[0]);
        assert_eq!(f[2], 3.0);
        assert_eq!(f[3], -1.0);
        assert!((f[4] - 0.5).abs() < 1e-6, "pos frac {}", f[4]);
        // with prev == h the delta is zero
        let f2 = hidden_summary(&h, Some(&h));
        assert_eq!(f2[5], 0.0);
    }

    #[test]
    fn collect_router_data_covers_all_intermediate_layers() {
        let mut lm = build_lm(71);
        let samples = collect_router_data(&mut lm, &train_prompts());
        assert!(!samples.is_empty());
        for layer in 0..11 {
            assert!(samples.iter().any(|s| s.layer == layer), "layer {layer}");
        }
        assert!(samples.iter().all(|s| s.features.len() == ROUTER_FEATURES));
        assert!(samples.iter().any(|s| s.label));
    }

    #[test]
    fn mod_engine_skips_layers_and_stays_aligned() {
        let mut lm = build_lm(73);
        let samples = collect_router_data(&mut lm, &train_prompts());
        let mut engine = MoDEngine::train(build_lm(73), &samples, 0.7, 9);
        let out = engine.generate(&[1, 2, 3], 14);
        assert_eq!(out.tokens.len(), 14);
        assert!(out.avg_layers() < 12.0, "avg {}", out.avg_layers());
        // warmup layers always run
        assert!(out.exit_layers.iter().all(|&l| l >= 2));
        // KV stays aligned: every position committed
        assert_eq!(engine.model().kv_len(), 3 + 13);

        let reference = DenseEngine::new(build_lm(73)).generate(&[1, 2, 3], 14);
        let agr = agreement(&out.tokens, &reference.tokens);
        assert!(agr >= 0.5, "agreement {agr}");
    }

    #[test]
    fn mod_full_capacity_never_skips() {
        let mut lm = build_lm(75);
        let samples = collect_router_data(&mut lm, &train_prompts());
        let mut engine = MoDEngine::train(build_lm(75), &samples, 1.0, 9);
        let out = engine.generate(&[1, 2, 3], 8);
        assert!(
            out.exit_layers.iter().skip(1).all(|&l| l == 12),
            "layers {:?}",
            out.exit_layers
        );
    }

    #[test]
    fn dllm_engine_runs_and_respects_warmup() {
        let mut lm = build_lm(77);
        let samples = collect_router_data(&mut lm, &train_prompts());
        let mut engine = DLlmEngine::train(build_lm(77), &samples, 5);
        let out = engine.generate(&[4, 2, 9], 12);
        assert_eq!(out.tokens.len(), 12);
        assert!(out.exit_layers.iter().all(|&l| l >= 4));
        assert!(out.predictor_calls > 0);
    }

    #[test]
    fn calm_threshold_calibrates_between_plateaus() {
        let mut lm = build_lm(79);
        let thr = calibrate_calm_threshold(&mut lm, &train_prompts());
        // On this substrate the unsettled plateau is ~0.02 and the settled
        // one ~0.25; the midpoint must separate them.
        assert!(thr > 0.03 && thr < 0.25, "threshold {thr}");
    }

    #[test]
    fn calm_exits_early_without_training() {
        let mut lm = build_lm(79);
        let thr = calibrate_calm_threshold(&mut lm, &train_prompts());
        let mut engine = CalmEngine::new(build_lm(79), thr);
        let out = engine.generate(&[1, 2, 3], 14);
        assert_eq!(out.tokens.len(), 14);
        assert!(out.avg_layers() < 12.0, "avg {}", out.avg_layers());
        // CALM reads the full head at every evaluated layer
        let heads = out.meter.kind(OpKind::LmHeadFull).kernels;
        assert!(heads as usize > out.tokens.len(), "{heads}");

        let reference = DenseEngine::new(build_lm(79)).generate(&[1, 2, 3], 14);
        let agr = agreement(&out.tokens, &reference.tokens);
        assert!(agr >= 0.7, "agreement {agr}");
    }

    #[test]
    fn calm_stricter_threshold_exits_later() {
        let mut lm = build_lm(81);
        let thr = calibrate_calm_threshold(&mut lm, &train_prompts());
        let lax = CalmEngine::new(build_lm(81), thr).generate(&[1, 2, 3], 10);
        let strict = CalmEngine::new(build_lm(81), 0.995).generate(&[1, 2, 3], 10);
        assert!(strict.avg_layers() >= lax.avg_layers());
        // 0.995 is unreachable on this substrate: no exits at all.
        assert!(strict.exit_layers.iter().skip(1).all(|&l| l == 12));
    }

    #[test]
    #[should_panic(expected = "capacity must be in (0, 1]")]
    fn mod_capacity_validated() {
        let lm = build_lm(1);
        let _ = MoDEngine::train(lm, &[], 0.0, 1);
    }

    #[test]
    #[should_panic(expected = "threshold must be in (0, 1)")]
    fn calm_threshold_validated() {
        let _ = CalmEngine::new(build_lm(1), 1.0);
    }
}
