//! Offline training-data collection and predictor training (§7.4.4).
//!
//! The engine runs *densely* (all layers) over a prompt set; at every
//! intermediate layer it extracts the T1 features and labels them by
//! whether exiting there would already produce the full-depth token. The
//! same pass yields the per-layer earliest-correct frequencies that feed
//! offline scheduling (T2) and the theoretical-lower-bound layer counts of
//! Fig. 7.

use serde::{Deserialize, Serialize};
use specee_draft::SpeculativeSource;
use specee_metrics::Meter;
use specee_model::{prefill, LayeredLm, TokenId};
use specee_nn::TrainConfig;
use specee_tensor::{ops, rng::Pcg};

use crate::features::FeatureTracker;
use crate::predictor::PredictorBank;

/// One labelled feature vector from one (token, layer) site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CollectedSample {
    /// Decoder layer the features were taken after.
    pub layer: usize,
    /// Flattened T1 features.
    pub features: Vec<f32>,
    /// Whether exiting here reproduces the full-depth token.
    pub label: bool,
}

/// Result of a collection pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CollectionReport {
    /// All collected samples.
    pub samples: Vec<CollectedSample>,
    /// Per-layer earliest-correct frequencies (sums to ~1), the offline
    /// scheduling statistic of Fig. 10(a).
    pub exit_frequencies: Vec<f64>,
    /// Mean earliest-correct layer count + 1 — the theoretical average
    /// forward layers of Fig. 7.
    pub theoretical_layers: f64,
    /// Number of decode tokens observed.
    pub tokens: u64,
}

/// Runs dense decoding over the prompts and collects per-layer features,
/// labels and exit statistics.
///
/// # Panics
///
/// Panics if `prompts` is empty or any prompt is empty.
pub fn collect_training_data<M, D>(
    model: &mut M,
    draft: &mut D,
    prompts: &[(Vec<TokenId>, usize)],
    spec_k: usize,
) -> CollectionReport
where
    M: LayeredLm,
    D: SpeculativeSource,
{
    assert!(!prompts.is_empty(), "need at least one prompt");
    let n_layers = model.config().n_layers;
    let mut samples = Vec::new();
    let mut exit_counts = vec![0u64; n_layers];
    let mut earliest_sum = 0u64;
    let mut tokens = 0u64;
    // Offline pass: metering is irrelevant, use a scratch meter.
    let mut meter = Meter::new();

    for (prompt, gen_len) in prompts {
        assert!(!prompt.is_empty(), "prompt must be non-empty");
        model.reset();
        draft.reset();
        let mut h = prefill(model, prompt, &mut meter);
        let logits = model.final_logits(&h, &mut meter);
        let mut t = ops::argmax(&logits).expect("logits") as TokenId;
        let mut ctx = prompt.clone();

        for _ in 1..*gen_len {
            ctx.push(t);
            let spec = draft.propose(&ctx, spec_k, &mut meter);
            let pos = model.kv_len();
            h = model.begin_token(t, &mut meter);
            let mut tracker = FeatureTracker::new();
            let mut per_layer: Vec<(Vec<f32>, TokenId)> = Vec::with_capacity(n_layers - 1);
            for layer in 0..n_layers {
                h = model.forward_layer(layer, &h, pos, &mut meter);
                if layer + 1 < n_layers {
                    let feats = tracker.extract(model, &h, &spec, &mut meter);
                    let full = model.final_logits(&h, &mut meter);
                    let tok = ops::argmax(&full).expect("logits") as TokenId;
                    per_layer.push((feats.to_vec(), tok));
                }
            }
            let full = model.final_logits(&h, &mut meter);
            let final_tok = ops::argmax(&full).expect("logits") as TokenId;
            let mut earliest = n_layers - 1;
            for (layer, (features, tok)) in per_layer.into_iter().enumerate() {
                let label = tok == final_tok;
                if label && earliest == n_layers - 1 {
                    earliest = layer;
                }
                samples.push(CollectedSample {
                    layer,
                    features,
                    label,
                });
            }
            exit_counts[earliest] += 1;
            earliest_sum += earliest as u64 + 1;
            tokens += 1;
            t = final_tok;
        }
    }

    let total: u64 = exit_counts.iter().sum();
    let exit_frequencies = exit_counts
        .iter()
        .map(|&c| {
            if total == 0 {
                0.0
            } else {
                c as f64 / total as f64
            }
        })
        .collect();
    CollectionReport {
        samples,
        exit_frequencies,
        theoretical_layers: if tokens == 0 {
            n_layers as f64
        } else {
            earliest_sum as f64 / tokens as f64
        },
        tokens,
    }
}

/// Per-layer training outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BankTrainingReport {
    /// Held-out predictor accuracy per layer (1.0 for layers with no data).
    pub layer_accuracy: Vec<f64>,
    /// Mean held-out accuracy over layers that had data.
    pub mean_accuracy: f64,
    /// Samples used after subsetting.
    pub samples_used: usize,
}

/// Trains every layer predictor of a bank on a fraction of the collected
/// samples (Fig. 18 sweeps this fraction), evaluating on the held-out
/// remainder.
///
/// # Panics
///
/// Panics if `fraction` is not in `(0, 1]`.
pub fn train_bank(
    bank: &mut PredictorBank,
    samples: &[CollectedSample],
    fraction: f64,
    train: &TrainConfig,
    seed: u64,
) -> BankTrainingReport {
    assert!(fraction > 0.0 && fraction <= 1.0, "fraction in (0,1]");
    let n_layers = bank.len();
    let mut by_layer: Vec<Vec<(Vec<f32>, bool)>> = vec![Vec::new(); n_layers];
    for s in samples {
        if s.layer < n_layers {
            by_layer[s.layer].push((s.features.clone(), s.label));
        }
    }
    let mut layer_accuracy = vec![1.0f64; n_layers];
    let mut used = 0usize;
    let mut acc_sum = 0.0;
    let mut acc_n = 0usize;
    let mut rng = Pcg::seed(seed);
    for (layer, data) in by_layer.iter_mut().enumerate() {
        if data.is_empty() {
            continue;
        }
        rng.shuffle(data);
        let test_cut = (data.len() as f64 * 0.2).ceil() as usize;
        let (test, pool) = data.split_at(
            test_cut
                .min(data.len().saturating_sub(1))
                .max(1)
                .min(data.len()),
        );
        let take = ((pool.len() as f64) * fraction).ceil() as usize;
        let train_set = &pool[..take.clamp(1.min(pool.len()), pool.len())];
        if train_set.is_empty() {
            continue;
        }
        used += train_set.len();
        bank.layer_mut(layer).train(train_set, train);
        if !test.is_empty() {
            let acc = bank.layer(layer).accuracy(test);
            layer_accuracy[layer] = acc;
            acc_sum += acc;
            acc_n += 1;
        }
    }
    BankTrainingReport {
        layer_accuracy,
        mean_accuracy: if acc_n == 0 {
            0.0
        } else {
            acc_sum / acc_n as f64
        },
        samples_used: used,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::PredictorConfig;
    use specee_model::ModelConfig;
    use specee_synth::{DatasetProfile, OracleDraft, SyntheticLmBuilder};

    fn setup() -> (specee_synth::SyntheticLm, OracleDraft) {
        let cfg = ModelConfig {
            n_layers: 8,
            ..ModelConfig::tiny()
        };
        let lm = SyntheticLmBuilder::new(cfg.clone(), DatasetProfile::qa())
            .seed(11)
            .build();
        let draft = OracleDraft::new(*lm.language(), 0.9, &cfg, 13);
        (lm, draft)
    }

    #[test]
    fn collection_produces_layered_samples() {
        let (mut lm, mut draft) = setup();
        let prompts = vec![(vec![1u32, 2, 3], 8usize), (vec![4, 5, 6], 8)];
        let report = collect_training_data(&mut lm, &mut draft, &prompts, 4);
        assert!(report.tokens >= 14);
        // every decode token contributes one sample per intermediate layer
        assert_eq!(report.samples.len() as u64, report.tokens * 7);
        let freq_sum: f64 = report.exit_frequencies.iter().sum();
        assert!((freq_sum - 1.0).abs() < 1e-9);
        assert!(report.theoretical_layers >= 1.0);
        assert!(report.theoretical_layers <= 8.0);
    }

    #[test]
    fn labels_contain_both_classes() {
        let (mut lm, mut draft) = setup();
        let prompts = vec![(vec![1u32, 2, 3], 12usize)];
        let report = collect_training_data(&mut lm, &mut draft, &prompts, 4);
        let pos = report.samples.iter().filter(|s| s.label).count();
        let neg = report.samples.len() - pos;
        assert!(pos > 0, "need positive labels");
        assert!(neg > 0, "need negative labels");
    }

    #[test]
    fn trained_bank_beats_chance() {
        let (mut lm, mut draft) = setup();
        let prompts: Vec<(Vec<TokenId>, usize)> = (0..6)
            .map(|i| (vec![1 + i, 2 + i, 3 + i], 10usize))
            .collect();
        let report = collect_training_data(&mut lm, &mut draft, &prompts, 4);
        let pcfg = PredictorConfig {
            hidden_dim: 32,
            ..PredictorConfig::default()
        };
        let mut bank = PredictorBank::new(8, &pcfg, &mut Pcg::seed(3));
        let tr = train_bank(
            &mut bank,
            &report.samples,
            1.0,
            &TrainConfig {
                epochs: 20,
                lr: 3e-3,
                ..Default::default()
            },
            5,
        );
        assert!(tr.mean_accuracy > 0.7, "mean accuracy {}", tr.mean_accuracy);
        assert!(tr.samples_used > 0);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn train_bank_validates_fraction() {
        let mut bank = PredictorBank::new(4, &PredictorConfig::default(), &mut Pcg::seed(1));
        train_bank(&mut bank, &[], 0.0, &TrainConfig::default(), 1);
    }
}
