//! Decoding engines: dense baseline, SpecEE autoregressive, and
//! speculative (EAGLE ± SpecEE).

mod autoregressive;
mod dense;
mod speculative;

pub use autoregressive::SpecEeEngine;
pub use dense::DenseEngine;
pub use speculative::SpeculativeEngine;
