//! Decoding engines: dense baseline, SpecEE autoregressive, and
//! speculative (EAGLE ± SpecEE).

mod autoregressive;
mod dense;
pub mod scan;
mod speculative;

pub use autoregressive::SpecEeEngine;
pub use dense::DenseEngine;
pub use scan::{ExitFeedback, ExitScan};
pub use speculative::SpeculativeEngine;
