//! Decoding engines: dense baseline, SpecEE autoregressive, and
//! speculative (EAGLE ± SpecEE, separate-draft or self-draft).

mod autoregressive;
mod dense;
pub mod scan;
pub mod selfdraft;
mod speculative;

pub use autoregressive::SpecEeEngine;
pub use dense::DenseEngine;
pub use scan::{ExitFeedback, ExitScan};
pub use selfdraft::{DraftPass, RoundOutcome};
pub use speculative::SpeculativeEngine;
