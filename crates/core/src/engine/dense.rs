//! Dense autoregressive baseline (the HuggingFace/vllm/AWQ stand-in).

use specee_metrics::Meter;
use specee_model::{prefill, LayeredLm, TokenId};
use specee_tensor::ops;

use crate::output::GenOutput;

/// Greedy autoregressive decoding through every layer.
///
/// # Examples
///
/// ```
/// use specee_core::engine::DenseEngine;
/// use specee_model::{ModelConfig, Transformer};
/// use specee_tensor::rng::Pcg;
///
/// let model = Transformer::random(ModelConfig::tiny(), &mut Pcg::seed(1));
/// let mut engine = DenseEngine::new(model);
/// let out = engine.generate(&[1, 2, 3], 8);
/// assert_eq!(out.tokens.len(), 8);
/// ```
#[derive(Debug, Clone)]
pub struct DenseEngine<M> {
    model: M,
}

impl<M: LayeredLm> DenseEngine<M> {
    /// Wraps a model.
    pub fn new(model: M) -> Self {
        DenseEngine { model }
    }

    /// Borrows the model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Mutably borrows the model.
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Generates `gen_len` tokens greedily.
    ///
    /// # Panics
    ///
    /// Panics if `prompt` is empty or `gen_len` is zero.
    pub fn generate(&mut self, prompt: &[TokenId], gen_len: usize) -> GenOutput {
        assert!(!prompt.is_empty(), "prompt must be non-empty");
        assert!(gen_len > 0, "gen_len must be positive");
        let n_layers = self.model.config().n_layers;
        let mut meter = Meter::new();
        self.model.reset();

        let mut tokens = Vec::with_capacity(gen_len);
        let mut exit_layers = Vec::with_capacity(gen_len);
        let mut ce_sum = 0.0f64;

        // TPOT convention: prefill runs on a scratch meter (real engines
        // process the prompt in one batched forward; reported numbers are
        // decode tokens/s).
        let mut prefill_meter = Meter::new();
        let mut h = prefill(&mut self.model, prompt, &mut prefill_meter);
        loop {
            let logits = self.model.final_logits(&h, &mut meter);
            let t = ops::argmax(&logits).expect("non-empty logits") as TokenId;
            ce_sum += f64::from(-ops::log_softmax(&logits)[t as usize]);
            tokens.push(t);
            exit_layers.push(n_layers);
            meter.mark_token();
            meter.mark_host_step();
            if tokens.len() == gen_len {
                break;
            }
            let pos = self.model.kv_len();
            h = self.model.begin_token(t, &mut meter);
            for layer in 0..n_layers {
                h = self.model.forward_layer(layer, &h, pos, &mut meter);
            }
        }

        GenOutput {
            tokens,
            exit_layers,
            ce_sum,
            meter,
            predictor_calls: 0,
            verify_calls: 0,
            rounds: 0,
            draft_calls: 0,
            self_draft_calls: 0,
        }
    }

    /// Consumes the engine, returning the model.
    pub fn into_model(self) -> M {
        self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specee_model::{ModelConfig, Transformer};
    use specee_synth::{DatasetProfile, SyntheticLmBuilder};
    use specee_tensor::rng::Pcg;

    #[test]
    fn emits_requested_tokens_at_full_depth() {
        let model = Transformer::random(ModelConfig::tiny(), &mut Pcg::seed(1));
        let mut e = DenseEngine::new(model);
        let out = e.generate(&[1, 2], 5);
        assert_eq!(out.tokens.len(), 5);
        assert!(out.exit_layers.iter().all(|&l| l == 4));
        assert_eq!(out.meter.tokens(), 5);
    }

    #[test]
    fn synthetic_model_tracks_ground_truth() {
        let lm = SyntheticLmBuilder::new(ModelConfig::tiny(), DatasetProfile::qa())
            .seed(4)
            .build();
        let lang = *lm.language();
        let mut e = DenseEngine::new(lm);
        let prompt = vec![3u32, 1, 4];
        let out = e.generate(&prompt, 12);
        let mut ctx = prompt.clone();
        let mut correct = 0;
        for &t in &out.tokens {
            if t == lang.next_token(&ctx) {
                correct += 1;
            }
            ctx.push(t);
        }
        assert!(correct >= 10, "dense accuracy {correct}/12");
    }

    #[test]
    fn deterministic() {
        let build = || {
            let lm = SyntheticLmBuilder::new(ModelConfig::tiny(), DatasetProfile::sum())
                .seed(8)
                .build();
            DenseEngine::new(lm)
        };
        let a = build().generate(&[5, 6], 6);
        let b = build().generate(&[5, 6], 6);
        assert_eq!(a.tokens, b.tokens);
    }
}
