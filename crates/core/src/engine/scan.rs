//! The per-token exit scan shared by the single-stream and batched
//! autoregressive engines.
//!
//! [`ExitScan`] bundles the layer-by-layer decision dataflow of Fig. 3 —
//! consult the predictor schedule, extract candidate-slice features, score
//! them, and verify a positive prediction against the full LM head —
//! behind one `check` call per layer. `SpecEeEngine` drives one scan per
//! token; the lock-step runtime in `specee-batch` drives one scan per
//! (slot, token), so a batched sequence takes exactly the exits its
//! single-stream run would (parity by construction, not by test alone).
//!
//! The scan is the *early-exit* half of the draft/verify seam. Its
//! sibling, [`crate::engine::selfdraft`], covers the *self-speculative*
//! half: there the shallow layers themselves play the draft role and no
//! per-layer predictor scan runs at all — sequences in self-draft mode
//! bypass `ExitScan` entirely (exit layers are always the full depth).

use specee_metrics::Meter;
use specee_model::{LayeredLm, TokenId};
use specee_obs::{EventKind, NullSink, TraceSink};

use crate::features::FeatureTracker;
use crate::predictor::PredictorBank;
use crate::scheduler::ScheduleEngine;
use crate::traffic::TrafficClass;
use crate::verify::verify_exit;

/// One verifier outcome for one predictor *fire*: the raw accept/reject
/// stream closed-loop threshold controllers feed on.
///
/// A feedback event is emitted exactly when a scheduled predictor's score
/// crosses its layer threshold — i.e. once per [`ExitScan::verify_calls`]
/// increment — so over any window `accepts + rejects` equals the number
/// of predictor fires. Negative predictions (score at or below the
/// threshold) emit nothing: the verifier never ran, so there is no
/// outcome to learn from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExitFeedback {
    /// Traffic class of the sequence whose scan fired (the key of the
    /// per-class feedback plane; [`TrafficClass::DEFAULT`] for untagged
    /// traffic).
    pub class: TrafficClass,
    /// Decoder layer whose predictor fired (0-based; the exit, if taken,
    /// executes `layer + 1` layers).
    pub layer: usize,
    /// The predictor's sigmoid score for this fire.
    pub score: f32,
    /// The threshold the score was compared against when it fired.
    pub threshold: f32,
    /// Whether the full-LM-head verification of §4.3.3 accepted the exit
    /// (`false` = a *false exit*: the fire wasted one LM-head forward).
    pub accepted: bool,
}

/// Layer-by-layer early-exit decisions for one token's forward pass.
///
/// Call [`ExitScan::begin_token`] at each token boundary, then
/// [`ExitScan::check`] after every executed layer until it returns a
/// verified exit (or the stack runs out of layers). Every predictor fire
/// additionally records an [`ExitFeedback`] event; runtimes that adapt
/// thresholds online drain them with [`ExitScan::take_feedback`].
#[derive(Debug, Clone, Default)]
pub struct ExitScan {
    tracker: FeatureTracker,
    class: TrafficClass,
    predictor_calls: u64,
    verify_calls: u64,
    feedback: Vec<ExitFeedback>,
}

impl ExitScan {
    /// Creates a scan with fresh feature history and zeroed counters,
    /// tagged with the default traffic class.
    pub fn new() -> Self {
        ExitScan::default()
    }

    /// Tags the scan with the sequence's traffic class: every subsequent
    /// [`ExitFeedback`] event carries it, so per-class consumers can key
    /// controller state without re-deriving the class downstream.
    pub fn set_class(&mut self, class: TrafficClass) {
        self.class = class;
    }

    /// The traffic class this scan stamps on its feedback events.
    pub fn class(&self) -> TrafficClass {
        self.class
    }

    /// Starts a new token: clears the probability-variation history the
    /// feature tracker carries between layers, and discards any feedback
    /// events the previous token's consumer left undrained — so a run
    /// with no controller attached never accumulates more than one
    /// token's worth of events.
    pub fn begin_token(&mut self) {
        self.tracker.reset();
        self.feedback.clear();
    }

    /// Runs the scheduled exit decision after `layer` on hidden state `h`.
    ///
    /// Returns `Some((token, full_logits))` when the predictor fired *and*
    /// the full-LM-head verification of §4.3.3 accepted the exit; `None`
    /// when decoding must continue to the next layer (inactive schedule
    /// slot, negative prediction, or failed verification — the failed
    /// verification's LM-head cost is recorded in `meter` and counted in
    /// [`ExitScan::verify_calls`]).
    #[allow(clippy::too_many_arguments)]
    pub fn check<M: LayeredLm + ?Sized>(
        &mut self,
        model: &mut M,
        bank: &PredictorBank,
        schedule: &ScheduleEngine,
        h: &[f32],
        candidates: &[TokenId],
        layer: usize,
        meter: &mut Meter,
    ) -> Option<(TokenId, Vec<f32>)> {
        self.check_with_sink(
            model,
            bank,
            schedule,
            h,
            candidates,
            layer,
            meter,
            &mut NullSink,
        )
    }

    /// [`ExitScan::check`] with a [`TraceSink`] attached: every predictor
    /// fire additionally emits an [`EventKind::ExitDecision`] (same
    /// layer/score/threshold/accepted payload as the [`ExitFeedback`]
    /// event, stamped with the sink's ambient clock and sequence id).
    ///
    /// The sink is write-only, so a traced scan decides exactly what the
    /// untraced scan decides; with [`NullSink`] the extra parameter
    /// monomorphizes away entirely — which is why `check` simply
    /// delegates here.
    #[allow(clippy::too_many_arguments)]
    pub fn check_with_sink<M: LayeredLm + ?Sized, S: TraceSink>(
        &mut self,
        model: &mut M,
        bank: &PredictorBank,
        schedule: &ScheduleEngine,
        h: &[f32],
        candidates: &[TokenId],
        layer: usize,
        meter: &mut Meter,
        sink: &mut S,
    ) -> Option<(TokenId, Vec<f32>)> {
        if layer + 1 >= model.config().n_layers || !schedule.is_active(layer) {
            return None;
        }
        let feats = self.tracker.extract(model, h, candidates, meter);
        self.predictor_calls += 1;
        let predictor = bank.layer(layer);
        let (score, threshold) = (predictor.score(&feats, meter), predictor.threshold());
        if !predictor.fires(score) {
            return None;
        }
        self.verify_calls += 1;
        let full = model.final_logits(h, meter);
        let exit = verify_exit(&full, candidates).map(|tok| (tok, full));
        if sink.enabled() {
            sink.record(EventKind::ExitDecision {
                class: self.class.id(),
                layer: layer as u32,
                score: f64::from(score),
                threshold: f64::from(threshold),
                accepted: exit.is_some(),
            });
        }
        self.feedback.push(ExitFeedback {
            class: self.class,
            layer,
            score,
            threshold,
            accepted: exit.is_some(),
        });
        exit
    }

    /// Predictor forwards executed so far.
    pub fn predictor_calls(&self) -> u64 {
        self.predictor_calls
    }

    /// Full-LM-head verification calls triggered so far (successful or
    /// not).
    pub fn verify_calls(&self) -> u64 {
        self.verify_calls
    }

    /// Feedback events recorded since the last [`ExitScan::take_feedback`]
    /// (one per predictor fire, in fire order).
    pub fn feedback(&self) -> &[ExitFeedback] {
        &self.feedback
    }

    /// Drains the recorded feedback events, leaving the buffer empty.
    /// Controllers consume the stream through this call so no event is
    /// observed twice.
    pub fn take_feedback(&mut self) -> Vec<ExitFeedback> {
        std::mem::take(&mut self.feedback)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::PredictorConfig;
    use specee_model::{prefill, ModelConfig, Transformer};
    use specee_tensor::rng::Pcg;

    fn parts() -> (Transformer, PredictorBank, Meter) {
        let cfg = ModelConfig::tiny();
        let model = Transformer::random(cfg.clone(), &mut Pcg::seed(11));
        let bank = PredictorBank::new(
            cfg.n_layers,
            &PredictorConfig {
                hidden_dim: 16,
                ..PredictorConfig::default()
            },
            &mut Pcg::seed(4),
        );
        (model, bank, Meter::new())
    }

    #[test]
    fn last_layer_never_checks() {
        let (mut model, bank, mut meter) = parts();
        let schedule = ScheduleEngine::all_layers(4);
        let h = prefill(&mut model, &[1, 2], &mut meter);
        let mut scan = ExitScan::new();
        scan.begin_token();
        let out = scan.check(
            &mut model,
            &bank,
            &schedule,
            &h,
            &[1, 2, 3, 4],
            3,
            &mut meter,
        );
        assert!(out.is_none());
        assert_eq!(scan.predictor_calls(), 0);
    }

    #[test]
    fn inactive_schedule_skips_predictor() {
        let (mut model, bank, mut meter) = parts();
        // Offline scheduler keeping only layer 2: layer 0 is inactive.
        let off = crate::scheduler::OfflineScheduler::from_frequencies(&[0.0, 0.0, 1.0, 0.0], 1);
        let schedule = ScheduleEngine::offline_only(off);
        let h = prefill(&mut model, &[1], &mut meter);
        let mut scan = ExitScan::new();
        scan.begin_token();
        assert!(scan
            .check(
                &mut model,
                &bank,
                &schedule,
                &h,
                &[1, 2, 3, 4],
                0,
                &mut meter
            )
            .is_none());
        assert_eq!(scan.predictor_calls(), 0);
        let _ = scan.check(
            &mut model,
            &bank,
            &schedule,
            &h,
            &[1, 2, 3, 4],
            2,
            &mut meter,
        );
        assert_eq!(scan.predictor_calls(), 1);
    }

    #[test]
    fn verified_exit_returns_global_argmax() {
        let (mut model, mut bank, mut meter) = parts();
        // Force the layer-0 predictor to always fire.
        bank.layer_mut(0).set_threshold(0.0);
        let schedule = ScheduleEngine::all_layers(4);
        let h = prefill(&mut model, &[3], &mut meter);
        let full = model.final_logits(&h, &mut meter);
        let global = specee_tensor::ops::argmax(&full).unwrap() as TokenId;
        let mut scan = ExitScan::new();
        scan.begin_token();
        // Candidate set containing the global argmax: exit verifies.
        let cands = [global, global ^ 1, global ^ 2, global ^ 3];
        let out = scan.check(&mut model, &bank, &schedule, &h, &cands, 0, &mut meter);
        assert_eq!(out.map(|(t, _)| t), Some(global));
        assert_eq!(scan.verify_calls(), 1);
    }

    #[test]
    fn feedback_accounts_for_every_fire() {
        // accepts + rejects == predictor fires (== verify calls), with one
        // event per fire carrying the score/threshold pair that fired.
        let (mut model, mut bank, mut meter) = parts();
        bank.layer_mut(0).set_threshold(0.0);
        bank.layer_mut(1).set_threshold(0.0);
        let schedule = ScheduleEngine::all_layers(4);
        let h = prefill(&mut model, &[3], &mut meter);
        let full = model.final_logits(&h, &mut meter);
        let global = specee_tensor::ops::argmax(&full).unwrap() as TokenId;
        let wrong: Vec<TokenId> = (0..8).filter(|&t| t != global).take(4).collect();
        let good = [global, global ^ 1, global ^ 2, global ^ 3];

        let mut scan = ExitScan::new();
        scan.begin_token();
        // Layer 0 fires and rejects (candidates miss the argmax), layer 1
        // fires and accepts.
        assert!(scan
            .check(&mut model, &bank, &schedule, &h, &wrong, 0, &mut meter)
            .is_none());
        assert!(scan
            .check(&mut model, &bank, &schedule, &h, &good, 1, &mut meter)
            .is_some());

        let fb = scan.feedback().to_vec();
        let accepts = fb.iter().filter(|f| f.accepted).count() as u64;
        let rejects = fb.iter().filter(|f| !f.accepted).count() as u64;
        assert_eq!(accepts + rejects, scan.verify_calls());
        assert_eq!((accepts, rejects), (1, 1));
        assert_eq!(fb[0].layer, 0);
        assert!(!fb[0].accepted);
        assert_eq!(fb[1].layer, 1);
        assert!(fb[1].accepted);
        for f in &fb {
            assert!(f.score > f.threshold, "events only exist for fires");
        }
        // Draining consumes the stream exactly once.
        assert_eq!(scan.take_feedback().len(), 2);
        assert!(scan.feedback().is_empty());
        assert!(scan.take_feedback().is_empty());
    }

    #[test]
    fn begin_token_discards_undrained_feedback() {
        // No consumer attached: the buffer must stay bounded by one
        // token's fires, not grow for the whole generation.
        let (mut model, mut bank, mut meter) = parts();
        bank.layer_mut(0).set_threshold(0.0);
        let schedule = ScheduleEngine::all_layers(4);
        let h = prefill(&mut model, &[3], &mut meter);
        let mut scan = ExitScan::new();
        for _ in 0..3 {
            scan.begin_token();
            let _ = scan.check(
                &mut model,
                &bank,
                &schedule,
                &h,
                &[1, 2, 3, 4],
                0,
                &mut meter,
            );
            assert!(scan.feedback().len() <= 1, "buffer bounded per token");
        }
        assert_eq!(scan.verify_calls(), 3, "counters still accumulate");
    }

    #[test]
    fn feedback_carries_the_scans_traffic_class() {
        let (mut model, mut bank, mut meter) = parts();
        bank.layer_mut(0).set_threshold(0.0);
        let schedule = ScheduleEngine::all_layers(4);
        let h = prefill(&mut model, &[3], &mut meter);
        let mut scan = ExitScan::new();
        assert!(scan.class().is_default());
        scan.set_class(TrafficClass::new(3));
        scan.begin_token();
        let _ = scan.check(
            &mut model,
            &bank,
            &schedule,
            &h,
            &[1, 2, 3, 4],
            0,
            &mut meter,
        );
        assert_eq!(scan.feedback().len(), 1);
        assert_eq!(scan.feedback()[0].class, TrafficClass::new(3));
    }

    #[test]
    fn sink_mirrors_feedback_exactly() {
        use specee_obs::Recorder;
        // One ExitDecision trace event per predictor fire, carrying the
        // same payload as the ExitFeedback stream — and the traced scan
        // returns exactly what the untraced scan returns.
        let (mut model, mut bank, mut meter) = parts();
        bank.layer_mut(0).set_threshold(0.0);
        let schedule = ScheduleEngine::all_layers(4);
        let h = prefill(&mut model, &[3], &mut meter);
        let mut scan = ExitScan::new();
        scan.set_class(TrafficClass::new(2));
        scan.begin_token();
        let mut rec = Some(Recorder::for_worker(0));
        let traced = scan.check_with_sink(
            &mut model,
            &bank,
            &schedule,
            &h,
            &[1, 2, 3, 4],
            0,
            &mut meter,
            &mut rec,
        );
        let events = rec.unwrap().into_events();
        assert_eq!(events.len(), 1);
        let fb = scan.feedback()[0];
        match events[0].kind {
            specee_obs::EventKind::ExitDecision {
                class,
                layer,
                score,
                threshold,
                accepted,
            } => {
                assert_eq!(class, 2);
                assert_eq!(layer as usize, fb.layer);
                assert_eq!(score, f64::from(fb.score));
                assert_eq!(threshold, f64::from(fb.threshold));
                assert_eq!(accepted, fb.accepted);
                assert_eq!(accepted, traced.is_some());
            }
            ref other => panic!("expected an exit decision, got {other:?}"),
        }

        // Same inputs through the untraced path: identical outcome.
        let mut model2 = parts().0;
        let mut scan2 = ExitScan::new();
        scan2.set_class(TrafficClass::new(2));
        scan2.begin_token();
        let h2 = prefill(&mut model2, &[3], &mut Meter::new());
        let untraced = scan2.check(
            &mut model2,
            &bank,
            &schedule,
            &h2,
            &[1, 2, 3, 4],
            0,
            &mut Meter::new(),
        );
        assert_eq!(traced.map(|(t, _)| t), untraced.map(|(t, _)| t));
    }

    #[test]
    fn negative_prediction_emits_no_feedback() {
        let (mut model, mut bank, mut meter) = parts();
        bank.layer_mut(0).set_threshold(1.0); // sigmoid never exceeds 1
        let schedule = ScheduleEngine::all_layers(4);
        let h = prefill(&mut model, &[2], &mut meter);
        let mut scan = ExitScan::new();
        scan.begin_token();
        assert!(scan
            .check(
                &mut model,
                &bank,
                &schedule,
                &h,
                &[1, 2, 3, 4],
                0,
                &mut meter
            )
            .is_none());
        assert_eq!(scan.predictor_calls(), 1);
        assert_eq!(scan.verify_calls(), 0);
        assert!(scan.feedback().is_empty());
    }

    #[test]
    fn failed_verification_counts_and_continues() {
        let (mut model, mut bank, mut meter) = parts();
        bank.layer_mut(0).set_threshold(0.0);
        let schedule = ScheduleEngine::all_layers(4);
        let h = prefill(&mut model, &[3], &mut meter);
        let full = model.final_logits(&h, &mut meter);
        let global = specee_tensor::ops::argmax(&full).unwrap() as TokenId;
        // Candidate set avoiding the global argmax: verification rejects.
        let wrong: Vec<TokenId> = (0..8).filter(|&t| t != global).take(4).collect();
        let mut scan = ExitScan::new();
        scan.begin_token();
        let out = scan.check(&mut model, &bank, &schedule, &h, &wrong, 0, &mut meter);
        assert!(out.is_none());
        assert_eq!(scan.verify_calls(), 1);
        assert_eq!(scan.predictor_calls(), 1);
    }
}
