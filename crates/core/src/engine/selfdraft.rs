//! Self-speculative draft/verify round helpers (Kangaroo-style split).
//!
//! The self-draft mode runs the *target's own* shallow layers
//! `0..exit_layer` as the draft model: each round grows a token tree level
//! by level through the shallow stack (expanding every frontier node with
//! the tied LM head on its exit-layer hidden state), then resumes the deep
//! layers `exit_layer..n_layers` over the whole tree in one masked sweep
//! for verification. The KV cache is split at the exit layer — shallow K/V
//! written during drafting is *committed, not recomputed* when nodes are
//! accepted, so each accepted token pays for each shallow layer exactly
//! once.
//!
//! Both [`crate::SpeculativeEngine`] (single sequence) and the batched
//! engine in `specee-batch` drive their rounds through these helpers, so
//! the two tiers stay in parity by construction: the batched engine runs
//! [`self_draft_pass`] per slot, sweeps the deep layers in lock-step, and
//! finishes each slot with [`verify_commit`]; the single engine's
//! [`deep_sweep`] is the batch-of-one special case.

use specee_draft::SelfDraftSpec;
use specee_metrics::Meter;
use specee_model::{LayeredLm, TokenId, TreeKv};
use specee_tensor::ops;

/// Output of one shallow draft pass: the speculated node batch (index 0 is
/// the pending bonus token; tree nodes follow, roots hanging off it), the
/// per-shallow-layer scratch K/V covering every node, and the exit-layer
/// hidden state per node that the verify pass resumes from.
#[derive(Debug, Clone)]
pub struct DraftPass {
    /// Token per node (index 0 = bonus).
    pub node_tokens: Vec<TokenId>,
    /// In-batch parent per node (`None` only for the bonus root).
    pub node_parents: Vec<Option<usize>>,
    /// Scratch K/V per shallow layer (`shallow_kvs[l]` covers all nodes at
    /// layer `l`), written incrementally while drafting.
    pub shallow_kvs: Vec<TreeKv>,
    /// Exit-layer hidden state per node.
    pub exit_hs: Vec<Vec<f32>>,
    /// Shallow (node × layer) runs this pass executed.
    pub shallow_calls: u64,
}

/// Runs the shallow draft pass for one round: seeds the tree with the
/// pending `bonus` token, then per level expands every frontier node with
/// the top-`b` tokens of the tied LM head read at the exit layer, feeding
/// only the *new* nodes through layers `0..exit_layer`
/// (`forward_layer_tree_partial` — already-drafted nodes are never
/// re-run; their K/V stays in the per-layer scratch).
pub fn self_draft_pass<M: LayeredLm + ?Sized>(
    model: &mut M,
    bonus: TokenId,
    spec: &SelfDraftSpec,
    meter: &mut Meter,
) -> DraftPass {
    let exit = spec.exit_layer;
    let mut node_tokens = vec![bonus];
    let mut node_parents: Vec<Option<usize>> = vec![None];
    let mut shallow_kvs: Vec<TreeKv> = vec![TreeKv::default(); exit];
    let mut shallow_calls = 0u64;

    // Node 0: the bonus token through the shallow stack.
    let mut new_hs = model.begin_tree(&node_tokens, &node_parents, meter);
    for (layer, scratch) in shallow_kvs.iter_mut().enumerate() {
        new_hs = model.forward_layer_tree_partial(layer, &new_hs, &node_parents, 0, scratch, meter);
    }
    shallow_calls += exit as u64;
    let mut exit_hs = new_hs;
    let mut frontier = vec![0usize];

    for &b in spec.shape.branching() {
        // Tied-head draft expansion: one batched LM-head read over the
        // frontier's exit-layer hiddens.
        let frontier_hs: Vec<Vec<f32>> = frontier.iter().map(|&i| exit_hs[i].clone()).collect();
        let logits = model.final_logits_batch(&frontier_hs, meter);
        let first_new = node_tokens.len();
        let mut new_tokens = Vec::with_capacity(frontier.len() * b);
        for (&parent, l) in frontier.iter().zip(&logits) {
            for &t in ops::top_k(l, b).iter() {
                new_tokens.push(t as TokenId);
                node_parents.push(Some(parent));
            }
        }
        node_tokens.extend_from_slice(&new_tokens);

        let mut hs = model.extend_tree(&new_tokens, &node_parents, first_new, meter);
        for (layer, scratch) in shallow_kvs.iter_mut().enumerate() {
            hs = model.forward_layer_tree_partial(
                layer,
                &hs,
                &node_parents,
                first_new,
                scratch,
                meter,
            );
        }
        shallow_calls += (new_tokens.len() * exit) as u64;
        exit_hs.extend(hs);
        frontier = (first_new..first_new + new_tokens.len()).collect();
    }

    DraftPass {
        node_tokens,
        node_parents,
        shallow_kvs,
        exit_hs,
        shallow_calls,
    }
}

/// Resumes the deep layers `exit_layer..n_layers` over the whole drafted
/// tree in full masked sweeps (the batch-of-one verify pass); returns the
/// final hidden states and the deep scratch K/V per layer.
pub fn deep_sweep<M: LayeredLm + ?Sized>(
    model: &mut M,
    pass: &DraftPass,
    exit_layer: usize,
    meter: &mut Meter,
) -> (Vec<Vec<f32>>, Vec<TreeKv>) {
    let n_layers = model.config().n_layers;
    let mut hs = pass.exit_hs.clone();
    let mut deep_kvs = Vec::with_capacity(n_layers - exit_layer);
    for layer in exit_layer..n_layers {
        let (out, kv) = model.forward_layer_tree(layer, &hs, &pass.node_parents, meter);
        hs = out;
        deep_kvs.push(kv);
    }
    (hs, deep_kvs)
}

/// Outcome of one verified self-draft round.
#[derive(Debug, Clone)]
pub struct RoundOutcome {
    /// Emitted `(token, cross-entropy)` pairs, in order.
    pub emitted: Vec<(TokenId, f64)>,
    /// The next round's bonus token (first rejected position's greedy fix,
    /// or the continuation past a fully accepted path).
    pub next_bonus: TokenId,
    /// Nodes accepted into the context (≥ 1: the bonus always commits).
    pub accepted_len: usize,
    /// Total nodes verified this round.
    pub n_nodes: usize,
}

/// Verifies the drafted tree against the deep final hidden states and
/// commits the accepted path's K/V: ONE batched LM-head GEMM over all
/// nodes, a greedy walk from the bonus node accepting the longest matching
/// path, then the split commit — shallow layers from the draft-pass
/// scratch (never recomputed), deep layers from the verify sweep. Rejected
/// branches' scratch rows are simply dropped; nothing of them reaches the
/// model's cache or pool.
pub fn verify_commit<M: LayeredLm + ?Sized>(
    model: &mut M,
    pass: &DraftPass,
    final_hs: &[Vec<f32>],
    deep_kvs: &[TreeKv],
    meter: &mut Meter,
) -> RoundOutcome {
    let n_nodes = pass.node_tokens.len();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n_nodes];
    for (j, p) in pass.node_parents.iter().enumerate() {
        if let Some(p) = *p {
            children[p].push(j);
        }
    }

    let node_logits = model.final_logits_batch(final_hs, meter);
    let mut accepted = vec![0usize];
    let mut emitted: Vec<(TokenId, f64)> = Vec::new();
    let mut cur = 0usize;
    let next_bonus;
    loop {
        let full = &node_logits[cur];
        let pred = ops::argmax(full).expect("logits") as TokenId;
        let ce = f64::from(-ops::log_softmax(full)[pred as usize]);
        emitted.push((pred, ce));
        match children[cur].iter().find(|&&j| pass.node_tokens[j] == pred) {
            Some(&j) => {
                accepted.push(j);
                cur = j;
            }
            None => {
                next_bonus = pred;
                break;
            }
        }
    }

    // Split commit: layer 0 first (the synthetic model's tree scripts are
    // keyed there), shallow from draft scratch, deep from the verify kvs.
    for (layer, kv) in pass.shallow_kvs.iter().enumerate() {
        model.commit_tree_kv(layer, kv, &accepted);
    }
    for (off, kv) in deep_kvs.iter().enumerate() {
        model.commit_tree_kv(pass.shallow_kvs.len() + off, kv, &accepted);
    }
    let accepted_tokens: Vec<TokenId> = accepted.iter().map(|&i| pass.node_tokens[i]).collect();
    model.accept_tokens(&accepted_tokens);

    RoundOutcome {
        emitted,
        next_bonus,
        accepted_len: accepted.len(),
        n_nodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specee_draft::TreeShape;
    use specee_model::{prefill, ModelConfig, Transformer};
    use specee_tensor::rng::Pcg;

    fn model() -> Transformer {
        Transformer::random(
            ModelConfig {
                n_layers: 4,
                vocab_size: 64,
                ..ModelConfig::tiny()
            },
            &mut Pcg::seed(11),
        )
    }

    #[test]
    fn draft_pass_builds_shape_plus_bonus() {
        let mut m = model();
        let mut meter = Meter::new();
        let _ = prefill(&mut m, &[1, 2, 3], &mut meter);
        let spec = SelfDraftSpec::new(2, TreeShape::new(vec![2, 2]));
        let pass = self_draft_pass(&mut m, 5, &spec, &mut meter);
        // bonus + 2 roots + 4 children
        assert_eq!(pass.node_tokens.len(), 7);
        assert_eq!(pass.node_parents[0], None);
        assert_eq!(pass.exit_hs.len(), 7);
        assert_eq!(pass.shallow_kvs.len(), 2);
        for kv in &pass.shallow_kvs {
            assert_eq!(kv.len(), 7, "scratch covers every node per layer");
        }
        assert_eq!(pass.shallow_calls, 7 * 2);
        // Parents are well-formed: roots hang off the bonus.
        for (j, p) in pass.node_parents.iter().enumerate().skip(1) {
            assert!(p.expect("non-root") < j);
        }
    }

    #[test]
    fn accepted_tokens_commit_without_a_second_shallow_pass() {
        // KV-split invariant at the round level: after verify_commit, the
        // model's committed cache grew by accepted_len at EVERY layer, and
        // the shallow rows are bit-identical to the draft-pass scratch —
        // proof they were committed, not recomputed (a recompute would have
        // attended over a longer cache and produced different rows).
        let mut m = model();
        let mut meter = Meter::new();
        let _ = prefill(&mut m, &[1, 2, 3], &mut meter);
        let base = m.kv_len();
        let spec = SelfDraftSpec::new(2, TreeShape::chain(3));
        let pass = self_draft_pass(&mut m, 5, &spec, &mut meter);
        let (final_hs, deep_kvs) = deep_sweep(&mut m, &pass, 2, &mut meter);
        let out = verify_commit(&mut m, &pass, &final_hs, &deep_kvs, &mut meter);
        assert!(out.accepted_len >= 1);
        assert_eq!(out.n_nodes, 4);
        assert_eq!(m.kv_len(), base + out.accepted_len);
        // Every layer's cache holds exactly the committed positions:
        // rejected nodes left no residue anywhere.
        for layer in 0..4 {
            assert_eq!(m.cache(layer).len(), base + out.accepted_len);
        }
        // Shallow rows in the cache are the draft-pass scratch rows, bit
        // for bit — committed, not recomputed (a recompute would attend
        // over a longer cache and produce different rows).
        for layer in 0..2 {
            assert_eq!(
                m.cache(layer).key(base),
                pass.shallow_kvs[layer].k[0].as_slice()
            );
            assert_eq!(
                m.cache(layer).value(base),
                pass.shallow_kvs[layer].v[0].as_slice()
            );
        }
    }

    #[test]
    fn emitted_stream_is_greedy_continuation() {
        // Chain-shaped self-draft emits exactly the greedy stream: run one
        // round, then check each emitted token against a fresh greedy
        // reference.
        let prompt = [1u32, 2, 3];
        let mut m = model();
        let mut meter = Meter::new();
        let h = prefill(&mut m, &prompt, &mut meter);
        let logits = m.final_logits(&h, &mut meter);
        let bonus = ops::argmax(&logits).expect("logits") as TokenId;
        let spec = SelfDraftSpec::new(2, TreeShape::chain(3));
        let pass = self_draft_pass(&mut m, bonus, &spec, &mut meter);
        let (final_hs, deep_kvs) = deep_sweep(&mut m, &pass, 2, &mut meter);
        let out = verify_commit(&mut m, &pass, &final_hs, &deep_kvs, &mut meter);

        // Greedy reference: token-by-token decode on a fresh model.
        let mut r = model();
        let mut ctx: Vec<TokenId> = prompt.to_vec();
        ctx.push(bonus);
        let mut scratch = Meter::new();
        let mut hh = prefill(&mut r, &ctx, &mut scratch);
        for &(tok, _) in &out.emitted {
            let l = r.final_logits(&hh, &mut scratch);
            let want = ops::argmax(&l).expect("logits") as TokenId;
            assert_eq!(tok, want, "self-draft must emit the greedy stream");
            let pos = r.kv_len();
            let mut h2 = r.begin_token(want, &mut scratch);
            for layer in 0..4 {
                h2 = r.forward_layer(layer, &h2, pos, &mut scratch);
            }
            hh = h2;
        }
    }
}
