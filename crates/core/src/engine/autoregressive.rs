//! The SpecEE autoregressive engine: T1 (speculation-based predictor) and
//! T2 (two-level scheduling) on top of ordinary greedy decoding.

use specee_draft::SpeculativeSource;
use specee_metrics::Meter;
use specee_model::{prefill, LayeredLm, TokenId};
use specee_obs::Recorder;
use specee_tensor::ops;

use crate::config::SpecEeConfig;
use crate::engine::scan::ExitScan;
use crate::output::GenOutput;
use crate::predictor::PredictorBank;
use crate::scheduler::ScheduleEngine;

/// Autoregressive decoding with speculative early exiting (Fig. 3's
/// dataflow):
///
/// 1. the speculator proposes K candidate tokens,
/// 2. between consecutive decoder layers, scheduled predictors score the
///    candidate-slice features,
/// 3. a positive prediction is verified against the full LM head before
///    the exit is taken,
/// 4. the skipped layers' KV cache is filled so later tokens can attend.
#[derive(Debug, Clone)]
pub struct SpecEeEngine<M, D> {
    model: M,
    draft: D,
    bank: PredictorBank,
    schedule: ScheduleEngine,
    config: SpecEeConfig,
    trace: Option<Recorder>,
}

impl<M: LayeredLm, D: SpeculativeSource> SpecEeEngine<M, D> {
    /// Assembles an engine from its parts. The bank must cover
    /// `n_layers - 1` layers.
    ///
    /// # Panics
    ///
    /// Panics if the bank size does not match the model depth.
    pub fn new(
        model: M,
        draft: D,
        bank: PredictorBank,
        schedule: ScheduleEngine,
        config: SpecEeConfig,
    ) -> Self {
        assert_eq!(
            bank.len(),
            model.config().n_layers - 1,
            "one predictor per non-final layer"
        );
        SpecEeEngine {
            model,
            draft,
            bank,
            schedule,
            config,
            trace: None,
        }
    }

    /// Attaches (or detaches) a trace recorder. Single-stream decoding
    /// has no simulated clock, so exit-decision events are stamped with
    /// the decoded-token ordinal instead. The recorder is write-only:
    /// traced and untraced runs produce bit-identical tokens and exit
    /// layers.
    pub fn set_recorder(&mut self, recorder: Option<Recorder>) {
        self.trace = recorder;
    }

    /// Takes the recorder (and its events) back out of the engine.
    pub fn take_recorder(&mut self) -> Option<Recorder> {
        self.trace.take()
    }

    /// Borrows the model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Mutably borrows the model.
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Selects the model's compute backend (see
    /// [`specee_tensor::BackendKind`]). With the blocked backend, dense
    /// models produce bit-identical tokens and exit layers to the
    /// reference backend; the scalar oracle stays the default.
    pub fn set_backend(&mut self, backend: specee_tensor::BackendKind) {
        self.model.set_backend(backend);
    }

    /// The schedule engine (average-active statistics).
    pub fn schedule(&self) -> &ScheduleEngine {
        &self.schedule
    }

    /// Generates `gen_len` tokens with speculative early exiting.
    ///
    /// The first token comes out of the full-depth prefill; every later
    /// token runs the per-layer exit scan (draft → schedule gate →
    /// predictor → full-LM-head verification) and records the layer it
    /// actually executed to in [`GenOutput::exit_layers`].
    ///
    /// # Examples
    ///
    /// ```
    /// use specee_core::engine::SpecEeEngine;
    /// use specee_core::predictor::{PredictorBank, PredictorConfig};
    /// use specee_core::{ScheduleEngine, SpecEeConfig};
    /// use specee_model::ModelConfig;
    /// use specee_synth::{DatasetProfile, OracleDraft, SyntheticLmBuilder};
    /// use specee_tensor::rng::Pcg;
    ///
    /// let cfg = ModelConfig { n_layers: 8, ..ModelConfig::tiny() };
    /// let lm = SyntheticLmBuilder::new(cfg.clone(), DatasetProfile::qa()).seed(1).build();
    /// let draft = OracleDraft::new(*lm.language(), 0.9, &cfg, 2);
    /// let pcfg = PredictorConfig { hidden_dim: 16, ..PredictorConfig::default() };
    /// let bank = PredictorBank::new(8, &pcfg, &mut Pcg::seed(3));
    /// let config = SpecEeConfig { predictor: pcfg, ..SpecEeConfig::default() };
    /// let mut engine =
    ///     SpecEeEngine::new(lm, draft, bank, ScheduleEngine::all_layers(8), config);
    ///
    /// let out = engine.generate(&[1, 2, 3], 6);
    /// assert_eq!(out.tokens.len(), 6);
    /// assert_eq!(out.exit_layers.len(), 6);
    /// assert!(out.exit_layers.iter().all(|&l| (1..=8).contains(&l)));
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `prompt` is empty or `gen_len` is zero.
    pub fn generate(&mut self, prompt: &[TokenId], gen_len: usize) -> GenOutput {
        assert!(!prompt.is_empty(), "prompt must be non-empty");
        assert!(gen_len > 0, "gen_len must be positive");
        let n_layers = self.model.config().n_layers;
        let spec_k = self.config.predictor.spec_k;
        let mut meter = Meter::new();
        self.model.reset();
        self.draft.reset();

        let mut tokens = Vec::with_capacity(gen_len);
        let mut exit_layers = Vec::with_capacity(gen_len);
        let mut ce_sum = 0.0f64;

        // First token comes out of the (full-depth) prefill.
        let mut prefill_meter = Meter::new();
        let h0 = prefill(&mut self.model, prompt, &mut prefill_meter);
        let logits = self.model.final_logits(&h0, &mut meter);
        let mut t = ops::argmax(&logits).expect("logits") as TokenId;
        ce_sum += f64::from(-ops::log_softmax(&logits)[t as usize]);
        tokens.push(t);
        exit_layers.push(n_layers);
        meter.mark_token();

        let mut ctx = prompt.to_vec();
        let mut scan = ExitScan::new();

        while tokens.len() < gen_len {
            ctx.push(t);
            let spec = self.draft.propose(&ctx, spec_k, &mut meter);
            let pos = self.model.kv_len();
            let mut h = self.model.begin_token(t, &mut meter);
            scan.begin_token();

            if let Some(rec) = self.trace.as_mut() {
                // No simulated clock at batch 1: stamp the token ordinal.
                rec.set_clock(tokens.len() as f64);
                rec.set_seq(Some(tokens.len() as u64));
            }
            let mut exit: Option<(TokenId, Vec<f32>)> = None;
            let mut executed = n_layers;
            for layer in 0..n_layers {
                h = self.model.forward_layer(layer, &h, pos, &mut meter);
                if let Some((tok, full)) = scan.check_with_sink(
                    &mut self.model,
                    &self.bank,
                    &self.schedule,
                    &h,
                    &spec,
                    layer,
                    &mut meter,
                    &mut self.trace,
                ) {
                    self.model.fill_skipped_kv(
                        layer + 1,
                        &h,
                        pos,
                        self.config.skip_kv_policy,
                        &mut meter,
                    );
                    executed = layer + 1;
                    exit = Some((tok, full));
                    break;
                }
            }
            let (next, full) = match exit {
                Some(x) => x,
                None => {
                    let full = self.model.final_logits(&h, &mut meter);
                    let tok = ops::argmax(&full).expect("logits") as TokenId;
                    (tok, full)
                }
            };
            ce_sum += f64::from(-ops::log_softmax(&full)[next as usize]);
            self.schedule.note_exit(executed.saturating_sub(1));
            tokens.push(next);
            exit_layers.push(executed);
            meter.mark_token();
            meter.mark_host_step();
            t = next;
        }

        GenOutput {
            tokens,
            exit_layers,
            ce_sum,
            meter,
            predictor_calls: scan.predictor_calls(),
            verify_calls: scan.verify_calls(),
            rounds: 0,
            draft_calls: self.draft.forward_calls(),
            self_draft_calls: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::{collect_training_data, train_bank};
    use crate::config::SchedulingMode;
    use crate::engine::DenseEngine;
    use crate::output::agreement;
    use crate::predictor::PredictorConfig;
    use specee_model::ModelConfig;
    use specee_nn::TrainConfig;
    use specee_synth::{DatasetProfile, OracleDraft, SyntheticLm, SyntheticLmBuilder};
    use specee_tensor::rng::Pcg;

    fn cfg() -> ModelConfig {
        ModelConfig {
            n_layers: 12,
            vocab_size: 512,
            ..ModelConfig::tiny()
        }
    }

    fn build_lm(seed: u64) -> SyntheticLm {
        SyntheticLmBuilder::new(cfg(), DatasetProfile::qa())
            .seed(seed)
            .build()
    }

    fn trained_engine(seed: u64, mode: SchedulingMode) -> SpecEeEngine<SyntheticLm, OracleDraft> {
        let mut lm = build_lm(seed);
        let mut draft = OracleDraft::new(*lm.language(), 0.9, &cfg(), 21);
        let prompts: Vec<(Vec<TokenId>, usize)> = (0..16)
            .map(|i| (vec![2 + i, 7 + (i % 5), 1 + i], 14usize))
            .collect();
        let report = collect_training_data(&mut lm, &mut draft, &prompts, 4);
        let pcfg = PredictorConfig {
            hidden_dim: 32,
            ..PredictorConfig::default()
        };
        let mut bank = PredictorBank::new(12, &pcfg, &mut Pcg::seed(seed));
        train_bank(
            &mut bank,
            &report.samples,
            1.0,
            &TrainConfig {
                epochs: 24,
                lr: 3e-3,
                ..Default::default()
            },
            seed,
        );
        let config = SpecEeConfig {
            predictor: pcfg,
            scheduling: mode,
            offline_keep: 6,
            ..SpecEeConfig::default()
        };
        let schedule = config.build_schedule(12, Some(&report.exit_frequencies));
        SpecEeEngine::new(build_lm(seed), draft, bank, schedule, config)
    }

    #[test]
    fn exits_early_and_matches_dense() {
        let mut engine = trained_engine(31, SchedulingMode::AllLayers);
        let prompt = vec![4u32, 2, 9];
        let out = engine.generate(&prompt, 16);
        assert_eq!(out.tokens.len(), 16);
        assert!(out.avg_layers() < 12.0, "avg layers {}", out.avg_layers());
        assert!(out.predictor_calls > 0);

        let mut dense = DenseEngine::new(build_lm(31));
        let reference = dense.generate(&prompt, 16);
        let agr = agreement(&out.tokens, &reference.tokens);
        assert!(agr >= 0.8, "agreement {agr}");
    }

    #[test]
    fn two_level_scheduling_reduces_predictor_calls() {
        let prompt = vec![4u32, 2, 9];
        let out_all = trained_engine(33, SchedulingMode::AllLayers).generate(&prompt, 20);
        let out_two = trained_engine(33, SchedulingMode::TwoLevel).generate(&prompt, 20);
        assert!(
            out_two.predictor_calls < out_all.predictor_calls,
            "two-level {} vs all {}",
            out_two.predictor_calls,
            out_all.predictor_calls
        );
        // exits should not regress catastrophically
        assert!(out_two.avg_layers() <= out_all.avg_layers() + 2.0);
    }

    #[test]
    fn traced_generate_is_bit_identical_and_emits_exit_instants() {
        use specee_obs::{EventKind, Recorder};
        let prompt = vec![4u32, 2, 9];
        let base = trained_engine(31, SchedulingMode::AllLayers).generate(&prompt, 16);
        let mut traced_engine_ = trained_engine(31, SchedulingMode::AllLayers);
        traced_engine_.set_recorder(Some(Recorder::new()));
        let traced = traced_engine_.generate(&prompt, 16);
        // Tracing must not perturb anything observable: tokens, exit
        // layers, even the metered op totals are bit-identical.
        assert_eq!(base.tokens, traced.tokens);
        assert_eq!(base.exit_layers, traced.exit_layers);
        assert_eq!(base.meter, traced.meter);

        let events = traced_engine_.take_recorder().unwrap().into_events();
        let accepts = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::ExitDecision { accepted: true, .. }))
            .count();
        let early = traced.exit_layers.iter().filter(|&&l| l < 12).count();
        assert!(early > 0, "run must actually exit early to test anything");
        assert_eq!(
            accepts, early,
            "one accepted exit-decision instant per early-exited token"
        );
    }

    #[test]
    fn sampled_and_capped_recorder_is_still_a_pure_observer() {
        use specee_obs::Recorder;
        let prompt = vec![4u32, 2, 9];
        let base = trained_engine(31, SchedulingMode::AllLayers).generate(&prompt, 16);
        let mut engine = trained_engine(31, SchedulingMode::AllLayers);
        engine.set_recorder(Some(Recorder::new().with_sample_every(3).with_budget(8)));
        let traced = engine.generate(&prompt, 16);
        // Dropping events (whether to the sampling rate or the budget
        // cap) is invisible to the decode itself.
        assert_eq!(base.tokens, traced.tokens);
        assert_eq!(base.exit_layers, traced.exit_layers);
        assert_eq!(base.meter, traced.meter);

        let rec = engine.take_recorder().unwrap();
        assert!(rec.dropped_events() > 0, "cap must actually bite");
        assert!(rec.into_events().len() <= 8);
    }

    #[test]
    fn kv_stays_consistent_after_exits() {
        let mut engine = trained_engine(35, SchedulingMode::AllLayers);
        let out = engine.generate(&[1, 2, 3], 10);
        // every committed position must have KV in layer 0 (3 prompt + 9 fed)
        assert_eq!(engine.model().kv_len(), 3 + 9);
        assert_eq!(out.exit_layers.len(), 10);
    }

    #[test]
    #[should_panic(expected = "one predictor per non-final layer")]
    fn bank_size_validated() {
        let lm = build_lm(1);
        let draft = OracleDraft::new(*lm.language(), 0.9, &cfg(), 1);
        let bank = PredictorBank::new(4, &PredictorConfig::default(), &mut Pcg::seed(1));
        let config = SpecEeConfig::default();
        let schedule = config.build_schedule(12, None);
        let _ = SpecEeEngine::new(lm, draft, bank, schedule, config);
    }
}
