//! Tree-based speculative decoding (EAGLE stand-in) with optional
//! hyper-token early exiting (T3).
//!
//! Each round: the draft proposes a token tree; the target model runs the
//! previous bonus token plus the whole tree through its layers with a tree
//! attention mask; greedy verification walks the tree accepting the
//! longest matching path and produces the next bonus token. With T3
//! enabled, scheduled predictors score every pending node per layer
//! against its own candidate set, nodes *fire* sticky, and the whole batch
//! exits at the rearmost-ready layer (the Cannikin position of the merged
//! hyper-tokens).
//!
//! Handing the engine a [`specee_draft::SelfDraft`] source instead of a
//! separate draft network switches it to *self-speculative* rounds: the
//! draft pass runs the target's own shallow layers and the verify pass
//! resumes from the exit-layer hidden states (see
//! [`crate::engine::selfdraft`]).

use specee_draft::{SelfDraftSpec, SpeculativeSource};
use specee_metrics::Meter;
use specee_model::{prefill, LayeredLm, TokenId};
use specee_tensor::ops;

use crate::config::SpecEeConfig;
use crate::engine::selfdraft::{deep_sweep, self_draft_pass, verify_commit};
use crate::features::FeatureTracker;
use crate::mapping::TreeExitState;
use crate::output::GenOutput;
use crate::predictor::PredictorBank;
use crate::scheduler::ScheduleEngine;
use crate::verify::verify_exit;

/// Speculative decoding engine; `bank = None` is the EAGLE baseline,
/// `Some(bank)` with `config.tree_early_exit` is SpecEE+EAGLE.
#[derive(Debug, Clone)]
pub struct SpeculativeEngine<M, D> {
    model: M,
    draft: D,
    bank: Option<PredictorBank>,
    schedule: ScheduleEngine,
    config: SpecEeConfig,
}

impl<M: LayeredLm, D: SpeculativeSource> SpeculativeEngine<M, D> {
    /// EAGLE-style baseline without early exiting.
    pub fn baseline(model: M, draft: D, config: SpecEeConfig) -> Self {
        let n_layers = model.config().n_layers;
        SpeculativeEngine {
            model,
            draft,
            bank: None,
            schedule: ScheduleEngine::all_layers(n_layers),
            config: SpecEeConfig {
                tree_early_exit: false,
                ..config
            },
        }
    }

    /// SpecEE+EAGLE with trained predictors.
    ///
    /// # Panics
    ///
    /// Panics if the bank size does not match the model depth.
    pub fn with_early_exit(
        model: M,
        draft: D,
        bank: PredictorBank,
        schedule: ScheduleEngine,
        config: SpecEeConfig,
    ) -> Self {
        assert_eq!(
            bank.len(),
            model.config().n_layers - 1,
            "one predictor per non-final layer"
        );
        SpeculativeEngine {
            model,
            draft,
            bank: Some(bank),
            schedule,
            config: SpecEeConfig {
                tree_early_exit: true,
                ..config
            },
        }
    }

    /// Borrows the model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Generates at least `gen_len` tokens (truncated to exactly
    /// `gen_len`).
    ///
    /// # Panics
    ///
    /// Panics if `prompt` is empty or `gen_len` is zero.
    pub fn generate(&mut self, prompt: &[TokenId], gen_len: usize) -> GenOutput {
        assert!(!prompt.is_empty(), "prompt must be non-empty");
        assert!(gen_len > 0, "gen_len must be positive");
        if let Some(spec) = self.draft.self_spec().cloned() {
            return self.generate_self_draft(prompt, gen_len, &spec);
        }
        let n_layers = self.model.config().n_layers;
        let spec_k = self.config.predictor.spec_k;
        let early_exit = self.config.tree_early_exit && self.bank.is_some();
        let mut meter = Meter::new();
        let draft_calls_base = self.draft.forward_calls();
        self.model.reset();
        self.draft.reset();

        let mut tokens = Vec::with_capacity(gen_len + 8);
        let mut exit_layers = Vec::with_capacity(gen_len + 8);
        let mut ce_sum = 0.0f64;
        let (mut predictor_calls, mut verify_calls, mut rounds) = (0u64, 0u64, 0u64);

        let mut prefill_meter = Meter::new();
        let h0 = prefill(&mut self.model, prompt, &mut prefill_meter);
        let logits = self.model.final_logits(&h0, &mut meter);
        let mut bonus = ops::argmax(&logits).expect("logits") as TokenId;
        ce_sum += f64::from(-ops::log_softmax(&logits)[bonus as usize]);
        tokens.push(bonus);
        exit_layers.push(n_layers);
        meter.mark_token();

        let mut ctx = prompt.to_vec();

        while tokens.len() < gen_len {
            rounds += 1;
            meter.mark_host_step();
            let mut draft_ctx = ctx.clone();
            draft_ctx.push(bonus);
            let mut tree = self
                .draft
                .propose_tree(&draft_ctx, &self.config.tree_shape, &mut meter);
            if let Some(budget) = self.config.tree_budget {
                // EAGLE-2-style dynamic tree: verify only the highest
                // joint-probability nodes.
                tree = tree.prune_to_budget(budget);
            }

            // Node batch: index 0 is the pending bonus token; tree nodes
            // follow shifted by one, roots hanging off the bonus.
            let mut node_tokens = vec![bonus];
            let mut node_parents: Vec<Option<usize>> = vec![None];
            for n in tree.nodes() {
                node_tokens.push(n.token);
                node_parents.push(Some(n.parent.map_or(0, |p| p + 1)));
            }
            let n_nodes = node_tokens.len();
            let mut children: Vec<Vec<usize>> = vec![Vec::new(); n_nodes];
            for (j, p) in node_parents.iter().enumerate() {
                if let Some(p) = *p {
                    children[p].push(j);
                }
            }
            // Candidate set per node: the draft's top-K continuations of
            // the node's path (already computed during tree drafting, so
            // the cached lookup is free). The set always has K entries so
            // the predictor's feature dimension is fixed.
            let mut node_cands: Vec<Vec<TokenId>> = Vec::with_capacity(n_nodes);
            for i in 0..n_nodes {
                let mut path_ctx = ctx.clone();
                let mut chain = Vec::new();
                let mut cur = Some(i);
                while let Some(n) = cur {
                    chain.push(node_tokens[n]);
                    cur = node_parents[n];
                }
                chain.reverse();
                path_ctx.extend_from_slice(&chain);
                node_cands.push(self.draft.cached_candidates(&path_ctx, spec_k, &mut meter));
            }

            let mut hs = self
                .model
                .begin_tree(&node_tokens, &node_parents, &mut meter);
            let mut kvs = Vec::with_capacity(n_layers);
            let mut exit_state = TreeExitState::new(&node_parents);
            let mut trackers: Vec<FeatureTracker> = vec![FeatureTracker::new(); n_nodes];
            let mut executed = n_layers;
            let mut exit_logits: Option<Vec<Vec<f32>>> = None;
            for layer in 0..n_layers {
                let (out, kv) =
                    self.model
                        .forward_layer_tree(layer, &hs, &node_parents, &mut meter);
                hs = out;
                kvs.push(kv);
                if !early_exit || layer + 1 >= n_layers || !self.schedule.is_active(layer) {
                    continue;
                }
                let bank = self.bank.as_ref().expect("early exit requires bank");
                // Hyper-token feature extraction: ONE grouped GEMM over all
                // pending nodes' candidate slices (Fig. 13), then ONE
                // batched predictor kernel.
                let pending = exit_state.pending();
                if pending.is_empty() {
                    continue;
                }
                let h_refs: Vec<&[f32]> = pending.iter().map(|&i| hs[i].as_slice()).collect();
                let cand_refs: Vec<&[TokenId]> =
                    pending.iter().map(|&i| node_cands[i].as_slice()).collect();
                let logits_per_node = self
                    .model
                    .grouped_slice_logits(&h_refs, &cand_refs, &mut meter);
                let feats: Vec<_> = pending
                    .iter()
                    .zip(logits_per_node)
                    .map(|(&i, logits)| trackers[i].update(logits))
                    .collect();
                predictor_calls += pending.len() as u64;
                let scores = bank.layer(layer).score_batch(&feats, &mut meter);
                let threshold = bank.layer(layer).threshold();
                for (&i, score) in pending.iter().zip(scores) {
                    if score > threshold {
                        exit_state.note_fired(i, layer);
                    }
                }
                // Exit check: once some hyper-token is predictor-ready,
                // run the verification of §4.3.3 over the whole batch and
                // trial-walk the acceptance chain. The batch exits only
                // when the chain that WOULD be accepted consists entirely
                // of fired + verified nodes and ends naturally (a draft
                // miss) — the Cannikin position of the real accepted
                // hyper-token, not of an arbitrary ready path.
                if exit_state.any_path_ready() {
                    let fulls = self.model.final_logits_batch(&hs, &mut meter);
                    verify_calls += 1;
                    let trusted = |j: usize| {
                        exit_state.fired(j) && verify_exit(&fulls[j], &node_cands[j]).is_some()
                    };
                    if trusted(0) {
                        let mut cur = 0usize;
                        let mut complete = true;
                        loop {
                            let pred = ops::argmax(&fulls[cur]).expect("logits") as TokenId;
                            match children[cur].iter().find(|&&j| node_tokens[j] == pred) {
                                Some(&j) if trusted(j) => cur = j,
                                Some(_) => {
                                    complete = false;
                                    break;
                                }
                                None => break,
                            }
                        }
                        if complete {
                            executed = layer + 1;
                            exit_logits = Some(fulls);
                            break;
                        }
                    }
                }
            }

            // Verification: all node logits come from ONE batched LM-head
            // GEMM (how EAGLE verifies a tree), then a greedy walk from the
            // bonus node accepts the longest matching path. After an early
            // exit, the walk only trusts nodes whose predictor fired — an
            // unfired node's logits may not have stabilized, so the chain
            // is cut before emitting its prediction.
            // The exit check already computed (and paid for) the batched
            // verification head; reuse its logits. Full-depth rounds
            // compute them now.
            let exited_early = exit_logits.is_some();
            let node_logits = match exit_logits {
                Some(logits) => logits,
                None => {
                    verify_calls += 1;
                    self.model.final_logits_batch(&hs, &mut meter)
                }
            };
            let trusted: Vec<bool> = (0..n_nodes)
                .map(|j| {
                    !exited_early
                        || (exit_state.fired(j)
                            && verify_exit(&node_logits[j], &node_cands[j]).is_some())
                })
                .collect();
            let mut accepted = vec![0usize];
            let mut emitted: Vec<(TokenId, f64)> = Vec::new();
            let mut cur = 0usize;
            let next_bonus;
            loop {
                let full = &node_logits[cur];
                let pred = ops::argmax(full).expect("logits") as TokenId;
                let ce = f64::from(-ops::log_softmax(full)[pred as usize]);
                emitted.push((pred, ce));
                let next = children[cur]
                    .iter()
                    .find(|&&j| node_tokens[j] == pred)
                    .copied()
                    .filter(|&j| trusted[j]);
                match next {
                    Some(j) => {
                        accepted.push(j);
                        cur = j;
                    }
                    None => {
                        next_bonus = pred;
                        break;
                    }
                }
            }
            let base_kv = self.model.kv_len();

            for (layer, kv) in kvs.iter().enumerate() {
                self.model.commit_tree_kv(layer, kv, &accepted);
            }
            if executed < n_layers {
                for (ord, &idx) in accepted.iter().enumerate() {
                    self.model.fill_skipped_kv(
                        executed,
                        &hs[idx],
                        base_kv + ord,
                        self.config.skip_kv_policy,
                        &mut meter,
                    );
                }
            }
            let accepted_tokens: Vec<TokenId> = accepted.iter().map(|&i| node_tokens[i]).collect();
            self.model.accept_tokens(&accepted_tokens);
            ctx.extend_from_slice(&accepted_tokens);

            for (tok, ce) in emitted {
                tokens.push(tok);
                exit_layers.push(executed);
                ce_sum += ce;
                meter.mark_token();
            }
            self.schedule.note_exit(executed.saturating_sub(1));
            bonus = next_bonus;
        }

        tokens.truncate(gen_len);
        exit_layers.truncate(gen_len);
        GenOutput {
            tokens,
            exit_layers,
            ce_sum,
            meter,
            predictor_calls,
            verify_calls,
            rounds,
            draft_calls: self.draft.forward_calls() - draft_calls_base,
            self_draft_calls: 0,
        }
    }

    /// Self-speculative rounds: shallow draft pass → deep verify sweep →
    /// split KV commit, all through [`crate::engine::selfdraft`].
    ///
    /// # Panics
    ///
    /// Panics if the spec's exit layer is not below the model depth, or if
    /// the engine was built with T3 early exit or a tree budget — neither
    /// composes with self-draft (the draft tree is grown inside the target,
    /// so there is no separate proposal to prune, and the shallow pass
    /// already plays the role the exit predictors would).
    fn generate_self_draft(
        &mut self,
        prompt: &[TokenId],
        gen_len: usize,
        spec: &SelfDraftSpec,
    ) -> GenOutput {
        let n_layers = self.model.config().n_layers;
        if let Err(e) = spec.validate_for_depth(n_layers) {
            panic!("{e}");
        }
        assert!(
            self.bank.is_none() && !self.config.tree_early_exit,
            "self-draft does not compose with T3 tree early exit \
             (the shallow pass already fills the predictors' role)"
        );
        assert!(
            self.config.tree_budget.is_none(),
            "self-draft does not compose with a tree budget: the tree is \
             grown inside the target, not pruned from a separate proposal"
        );
        let mut meter = Meter::new();
        self.model.reset();

        let mut tokens = Vec::with_capacity(gen_len + 8);
        let mut exit_layers = Vec::with_capacity(gen_len + 8);
        let mut ce_sum = 0.0f64;
        let (mut verify_calls, mut rounds) = (0u64, 0u64);
        let mut self_draft_calls = 0u64;

        let mut prefill_meter = Meter::new();
        let h0 = prefill(&mut self.model, prompt, &mut prefill_meter);
        let logits = self.model.final_logits(&h0, &mut meter);
        let mut bonus = ops::argmax(&logits).expect("logits") as TokenId;
        ce_sum += f64::from(-ops::log_softmax(&logits)[bonus as usize]);
        tokens.push(bonus);
        exit_layers.push(n_layers);
        meter.mark_token();

        while tokens.len() < gen_len {
            rounds += 1;
            meter.mark_host_step();
            let pass = self_draft_pass(&mut self.model, bonus, spec, &mut meter);
            self_draft_calls += pass.shallow_calls;
            let (final_hs, deep_kvs) =
                deep_sweep(&mut self.model, &pass, spec.exit_layer, &mut meter);
            let outcome = verify_commit(&mut self.model, &pass, &final_hs, &deep_kvs, &mut meter);
            verify_calls += 1;
            for (tok, ce) in outcome.emitted {
                tokens.push(tok);
                exit_layers.push(n_layers);
                ce_sum += ce;
                meter.mark_token();
            }
            bonus = outcome.next_bonus;
        }

        tokens.truncate(gen_len);
        exit_layers.truncate(gen_len);
        GenOutput {
            tokens,
            exit_layers,
            ce_sum,
            meter,
            predictor_calls: 0,
            verify_calls,
            rounds,
            draft_calls: 0,
            self_draft_calls,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::{collect_training_data, train_bank};
    use crate::engine::DenseEngine;
    use crate::output::agreement;
    use crate::predictor::PredictorConfig;
    use specee_draft::TreeShape;
    use specee_model::ModelConfig;
    use specee_nn::TrainConfig;
    use specee_synth::{DatasetProfile, OracleDraft, SyntheticLm, SyntheticLmBuilder};
    use specee_tensor::rng::Pcg;

    fn cfg() -> ModelConfig {
        ModelConfig {
            n_layers: 12,
            vocab_size: 512,
            ..ModelConfig::tiny()
        }
    }

    fn build_lm(seed: u64) -> SyntheticLm {
        SyntheticLmBuilder::new(cfg(), DatasetProfile::qa())
            .seed(seed)
            .build()
    }

    fn spec_config() -> SpecEeConfig {
        SpecEeConfig {
            tree_shape: TreeShape::new(vec![2, 2]),
            ..SpecEeConfig::default()
        }
    }

    #[test]
    fn baseline_emits_multiple_tokens_per_round() {
        let lm = build_lm(41);
        let draft = OracleDraft::new(*lm.language(), 0.9, &cfg(), 5);
        let mut engine = SpeculativeEngine::baseline(lm, draft, spec_config());
        let out = engine.generate(&[1, 2, 3], 24);
        assert_eq!(out.tokens.len(), 24);
        assert!(out.rounds > 0);
        let tpr = out.tokens.len() as f64 / out.rounds as f64;
        assert!(tpr > 1.5, "tokens per round {tpr}");
    }

    #[test]
    fn baseline_matches_dense_output() {
        let prompt = vec![3u32, 8, 2];
        let lm = build_lm(43);
        let draft = OracleDraft::new(*lm.language(), 0.9, &cfg(), 5);
        let mut engine = SpeculativeEngine::baseline(lm, draft, spec_config());
        let spec_out = engine.generate(&prompt, 16);

        let mut dense = DenseEngine::new(build_lm(43));
        let dense_out = dense.generate(&prompt, 16);
        let agr = agreement(&spec_out.tokens, &dense_out.tokens);
        assert!(agr >= 0.8, "agreement {agr}");
    }

    #[test]
    fn early_exit_reduces_layers_and_keeps_output() {
        let prompt = vec![5u32, 1, 7];
        // train a bank on collected data
        let mut lm = build_lm(47);
        let mut draft = OracleDraft::new(*lm.language(), 0.9, &cfg(), 5);
        let prompts: Vec<(Vec<TokenId>, usize)> = (0..16)
            .map(|i| (vec![2 + i, 7 + (i % 5), 1 + i], 14usize))
            .collect();
        let report = collect_training_data(&mut lm, &mut draft, &prompts, 4);
        let pcfg = PredictorConfig {
            hidden_dim: 32,
            ..PredictorConfig::default()
        };
        let mut bank = PredictorBank::new(12, &pcfg, &mut Pcg::seed(2));
        train_bank(
            &mut bank,
            &report.samples,
            1.0,
            &TrainConfig {
                epochs: 24,
                lr: 3e-3,
                ..Default::default()
            },
            3,
        );
        let config = SpecEeConfig {
            predictor: pcfg,
            ..spec_config()
        };
        let schedule = config.build_schedule(12, Some(&report.exit_frequencies));
        let mut engine = SpeculativeEngine::with_early_exit(
            build_lm(47),
            OracleDraft::new(*build_lm(47).language(), 0.9, &cfg(), 5),
            bank,
            schedule,
            config,
        );
        let out = engine.generate(&prompt, 20);
        assert_eq!(out.tokens.len(), 20);
        assert!(out.avg_layers() < 12.0, "avg layers {}", out.avg_layers());

        let mut dense = DenseEngine::new(build_lm(47));
        let reference = dense.generate(&prompt, 20);
        let agr = agreement(&out.tokens, &reference.tokens);
        assert!(agr >= 0.7, "agreement {agr}");
    }

    #[test]
    fn kv_commits_match_context() {
        let lm = build_lm(51);
        let draft = OracleDraft::new(*lm.language(), 0.85, &cfg(), 5);
        let mut engine = SpeculativeEngine::baseline(lm, draft, spec_config());
        let out = engine.generate(&[1, 2, 3, 4], 15);
        // committed KV = prompt + all accepted tokens; the engine's context
        // and model's cache must agree.
        let kv = engine.model().kv_len();
        assert!(kv >= 4, "kv {kv}");
        assert!(out.rounds >= 1);
    }

    #[test]
    fn tree_budget_prunes_verification_without_breaking_output() {
        let prompt = vec![2u32, 6, 1];
        let run = |budget: Option<usize>| {
            let lm = build_lm(53);
            let draft = OracleDraft::new(*lm.language(), 0.9, &cfg(), 5);
            let config = SpecEeConfig {
                tree_budget: budget,
                ..spec_config()
            };
            SpeculativeEngine::baseline(lm, draft, config).generate(&prompt, 18)
        };
        let full = run(None);
        let pruned = run(Some(2));
        assert_eq!(pruned.tokens.len(), 18);
        // A 2-node budget verifies fewer tokens per round than the 6-node
        // full tree, so it needs more rounds for the same output length.
        assert!(
            pruned.rounds >= full.rounds,
            "pruned {} vs full {}",
            pruned.rounds,
            full.rounds
        );
        // Greedy verification keeps outputs dense-faithful either way.
        let reference = DenseEngine::new(build_lm(53)).generate(&prompt, 18);
        assert!(agreement(&pruned.tokens, &reference.tokens) >= 0.8);
    }

    fn tf(seed: u64) -> specee_model::Transformer {
        specee_model::Transformer::random(
            ModelConfig {
                n_layers: 6,
                vocab_size: 96,
                ..ModelConfig::tiny()
            },
            &mut Pcg::seed(seed),
        )
    }

    #[test]
    fn self_draft_chain_is_bit_identical_to_dense() {
        use specee_draft::{SelfDraft, SelfDraftSpec};
        let prompt = vec![3u32, 8, 2, 5];
        let draft = SelfDraft::new(SelfDraftSpec::new(2, TreeShape::chain(3)));
        let mut engine = SpeculativeEngine::baseline(tf(77), draft, SpecEeConfig::default());
        let out = engine.generate(&prompt, 20);

        let mut dense = DenseEngine::new(tf(77));
        let reference = dense.generate(&prompt, 20);
        // Self-draft never changes the output: every emitted token is the
        // target's own greedy argmax. Bit-identical, not just agreeing.
        assert_eq!(out.tokens, reference.tokens);
        assert!(out.rounds > 0);
        assert!(out.self_draft_calls > 0, "shallow passes must be metered");
        assert_eq!(out.draft_calls, 0, "no separate draft network ran");
    }

    #[test]
    fn self_draft_commits_split_kv_without_residue() {
        use specee_draft::{SelfDraft, SelfDraftSpec};
        let prompt = vec![1u32, 2, 3];
        let draft = SelfDraft::new(SelfDraftSpec::new(3, TreeShape::new(vec![2, 2])));
        let mut engine = SpeculativeEngine::baseline(tf(81), draft, SpecEeConfig::default());
        let out = engine.generate(&prompt, 16);
        assert_eq!(out.tokens.len(), 16);
        // KV-split invariant at the engine tier: every layer's cache —
        // shallow (committed from draft scratch) and deep (committed from
        // the verify sweep) — holds exactly the committed positions;
        // rejected tree branches left no residue at any layer.
        let kv = engine.model().kv_len();
        assert!(kv > prompt.len());
        for layer in 0..6 {
            assert_eq!(engine.model().cache(layer).len(), kv, "layer {layer}");
        }
        // Shallow work is metered per (node × shallow layer); every round
        // ran at least the bonus node through 3 shallow layers.
        assert!(out.self_draft_calls >= out.rounds * 3);
    }

    #[test]
    fn separate_draft_meters_draft_calls_not_self_draft() {
        use specee_draft::DraftModel;
        let model = tf(83);
        let draft = DraftModel::new(model.config(), &mut Pcg::seed(9));
        let mut engine = SpeculativeEngine::baseline(model, draft, spec_config());
        let out = engine.generate(&[4u32, 1, 6], 12);
        assert!(
            out.draft_calls > 0,
            "separate draft forwards must be metered"
        );
        assert_eq!(out.self_draft_calls, 0);
    }

    #[test]
    #[should_panic(expected = "below the model depth")]
    fn self_draft_exit_beyond_depth_is_rejected() {
        use specee_draft::{SelfDraft, SelfDraftSpec};
        let draft = SelfDraft::new(SelfDraftSpec::new(6, TreeShape::chain(2)));
        let mut engine = SpeculativeEngine::baseline(tf(85), draft, SpecEeConfig::default());
        let _ = engine.generate(&[1, 2], 4);
    }

    #[test]
    #[should_panic(expected = "tree budget")]
    fn self_draft_rejects_tree_budget() {
        use specee_draft::{SelfDraft, SelfDraftSpec};
        let draft = SelfDraft::new(SelfDraftSpec::new(2, TreeShape::chain(2)));
        let config = SpecEeConfig {
            tree_budget: Some(4),
            ..SpecEeConfig::default()
        };
        let mut engine = SpeculativeEngine::baseline(tf(87), draft, config);
        let _ = engine.generate(&[1, 2], 4);
    }

    #[test]
    fn generous_tree_budget_is_identity() {
        let prompt = vec![4u32, 9, 3];
        let run = |budget: Option<usize>| {
            let lm = build_lm(57);
            let draft = OracleDraft::new(*lm.language(), 0.9, &cfg(), 5);
            let config = SpecEeConfig {
                tree_budget: budget,
                ..spec_config()
            };
            SpeculativeEngine::baseline(lm, draft, config).generate(&prompt, 12)
        };
        let full = run(None);
        let capped = run(Some(100));
        assert_eq!(full.tokens, capped.tokens);
        assert_eq!(full.rounds, capped.rounds);
    }
}
