//! The verification algorithm (§4.3.3): local predictions are checked
//! against global information before an exit is taken.

use specee_model::TokenId;
use specee_tensor::ops;

/// Checks a predicted exit against the full-vocabulary logits: the exit is
/// valid only if the global argmax token is one of the speculative
/// candidates, in which case that token is the output.
///
/// Returns `Some(token)` on a verified exit, `None` when the model must
/// proceed to the next layer.
///
/// # Panics
///
/// Panics if `full_logits` is empty.
pub fn verify_exit(full_logits: &[f32], candidates: &[TokenId]) -> Option<TokenId> {
    let global = ops::argmax(full_logits).expect("non-empty logits") as TokenId;
    candidates.contains(&global).then_some(global)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_when_global_in_candidates() {
        let logits = vec![0.1, 0.9, 0.2];
        assert_eq!(verify_exit(&logits, &[1, 2]), Some(1));
    }

    #[test]
    fn rejects_when_global_outside_candidates() {
        let logits = vec![0.9, 0.1, 0.2];
        assert_eq!(verify_exit(&logits, &[1, 2]), None);
    }

    #[test]
    fn output_is_the_global_token_not_the_local_best() {
        // Local candidate order is irrelevant; the verified output is the
        // global argmax (T = T' in Fig. 5's flow chart).
        let logits = vec![0.0, 0.0, 5.0, 0.0];
        assert_eq!(verify_exit(&logits, &[3, 2]), Some(2));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_logits_panic() {
        verify_exit(&[], &[1]);
    }
}
