//! Traffic-class identifiers: the key of the per-class feedback plane.
//!
//! SpecEE's exit profile is workload-dependent — chat traffic settles in
//! the first few layers while reasoning-heavy traffic saturates near the
//! end of the stack — so one blurred controller operating point per
//! engine wastes most of what the feedback stream knows. A
//! [`TrafficClass`] tags a request (and therefore every
//! [`crate::ExitFeedback`] event its decoding produces) with the
//! workload family it belongs to, letting controllers keep per-class
//! state, coordinators merge per-class evidence across workers, and
//! routers price a worker's per-class operating point.
//!
//! Class `0` is the **default class**: untagged traffic lands there and
//! behaves exactly as the pre-class runtime did. Classes derived from a
//! predicted exit depth ([`TrafficClass::from_exit_depth`]) use ids
//! `1..=4`, so hint-derived classes never collide with explicit default
//! traffic.

use std::fmt;

/// Number of depth bands [`TrafficClass::from_exit_depth`] buckets into.
pub const DEPTH_BANDS: u16 = 4;

/// A traffic-class identifier carried by requests and exit feedback.
///
/// Semantically opaque: the runtime only ever compares, sorts and hashes
/// it. Callers mint ids however they like (tenant, prompt domain,
/// depth band) — the one reserved value is `0`, the default class for
/// untagged traffic.
///
/// # Examples
///
/// ```
/// use specee_core::TrafficClass;
///
/// assert!(TrafficClass::DEFAULT.is_default());
/// assert_eq!(TrafficClass::new(3).id(), 3);
/// // Depth-derived classes partition [0, n_layers] into bands 1..=4.
/// let shallow = TrafficClass::from_exit_depth(3.0, 32);
/// let deep = TrafficClass::from_exit_depth(30.0, 32);
/// assert_ne!(shallow, deep);
/// assert!(!shallow.is_default());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct TrafficClass(u16);

impl TrafficClass {
    /// The default class untagged traffic belongs to.
    pub const DEFAULT: TrafficClass = TrafficClass(0);

    /// A class with an explicit id (`0` is [`TrafficClass::DEFAULT`]).
    pub const fn new(id: u16) -> Self {
        TrafficClass(id)
    }

    /// The raw class id.
    pub const fn id(self) -> u16 {
        self.0
    }

    /// Whether this is the default (untagged) class.
    pub const fn is_default(self) -> bool {
        self.0 == 0
    }

    /// Buckets a predicted mean exit depth (layers, as carried by e.g. a
    /// cluster request's `exit_hint`) into one of [`DEPTH_BANDS`] classes
    /// with ids `1..=DEPTH_BANDS`: band 1 is the shallowest quarter of
    /// the stack, band `DEPTH_BANDS` the deepest. Non-finite or negative
    /// depths and a zero-depth stack fall back to the deepest band (the
    /// conservative full-depth assumption routers already make).
    pub fn from_exit_depth(depth: f64, n_layers: usize) -> Self {
        if n_layers == 0 || !depth.is_finite() || depth < 0.0 {
            return TrafficClass(DEPTH_BANDS);
        }
        let frac = (depth / n_layers as f64).clamp(0.0, 1.0);
        let band = (frac * f64::from(DEPTH_BANDS)).floor() as u16;
        TrafficClass(1 + band.min(DEPTH_BANDS - 1))
    }
}

impl fmt::Display for TrafficClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "class{}", self.0)
    }
}

/// A priority lane carried by requests through admission and re-seating.
///
/// Lanes order *scheduling*, classes key *feedback*: a request's
/// [`TrafficClass`] decides which controller adapts on its tokens, while
/// its `Lane` decides who is seated first when slots or KV pages are
/// scarce and who is evicted first when the page pool runs dry. Lower
/// numeric lanes are more important; lane `0` is the default (and
/// highest) lane, so untagged traffic is never preempted in favor of
/// tagged traffic. Ties inside a lane break by request id — admission
/// and preemption order are total and deterministic.
///
/// # Examples
///
/// ```
/// use specee_core::Lane;
///
/// assert!(Lane::DEFAULT < Lane::new(1), "lower lane = higher priority");
/// assert_eq!(Lane::new(3).id(), 3);
/// assert_eq!(Lane::DEFAULT.to_string(), "lane0");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Lane(u8);

impl Lane {
    /// The default (highest-priority) lane untagged traffic rides in.
    pub const DEFAULT: Lane = Lane(0);

    /// A lane with an explicit priority (`0` is [`Lane::DEFAULT`]).
    pub const fn new(id: u8) -> Self {
        Lane(id)
    }

    /// The raw lane id (lower is higher priority).
    pub const fn id(self) -> u8 {
        self.0
    }

    /// Whether this is the default (highest-priority) lane.
    pub const fn is_default(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Lane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lane{}", self.0)
    }
}

/// A small map keyed by [`TrafficClass`], ordered by class id.
///
/// The per-class feedback plane keeps one value per observed class —
/// controller state, predictor banks, evidence accumulators — and every
/// consumer must walk them in the *same* order for runs to stay
/// deterministic. `ClassMap` is a sorted vec: lookups are binary
/// searches, insertion keeps class order, and iteration is always
/// ascending by class id. Entries are created lazily via
/// [`ClassMap::get_or_insert_with`], so a run that never tags traffic
/// never pays for the plane.
///
/// # Examples
///
/// ```
/// use specee_core::traffic::{ClassMap, TrafficClass};
///
/// let mut map: ClassMap<u32> = ClassMap::new();
/// *map.get_or_insert_with(TrafficClass::new(2), || 0) += 5;
/// *map.get_or_insert_with(TrafficClass::DEFAULT, || 0) += 1;
/// let order: Vec<u16> = map.iter().map(|(c, _)| c.id()).collect();
/// assert_eq!(order, [0, 2], "iteration ascends by class id");
/// assert_eq!(map.get(TrafficClass::new(2)), Some(&5));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ClassMap<T> {
    entries: Vec<(TrafficClass, T)>,
}

impl<T> ClassMap<T> {
    /// An empty map.
    pub fn new() -> Self {
        ClassMap {
            entries: Vec::new(),
        }
    }

    /// Number of classes with an entry.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no class has an entry yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entry for `class`, if one exists.
    pub fn get(&self, class: TrafficClass) -> Option<&T> {
        self.entries
            .binary_search_by_key(&class, |(c, _)| *c)
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// Mutable access to the entry for `class`, if one exists.
    pub fn get_mut(&mut self, class: TrafficClass) -> Option<&mut T> {
        self.entries
            .binary_search_by_key(&class, |(c, _)| *c)
            .ok()
            .map(|i| &mut self.entries[i].1)
    }

    /// The entry for `class`, created with `init` on first touch.
    pub fn get_or_insert_with(&mut self, class: TrafficClass, init: impl FnOnce() -> T) -> &mut T {
        let idx = match self.entries.binary_search_by_key(&class, |(c, _)| *c) {
            Ok(i) => i,
            Err(i) => {
                self.entries.insert(i, (class, init()));
                i
            }
        };
        &mut self.entries[idx].1
    }

    /// Iterates entries in ascending class order.
    pub fn iter(&self) -> impl Iterator<Item = (TrafficClass, &T)> {
        self.entries.iter().map(|(c, v)| (*c, v))
    }

    /// Iterates entries mutably, in ascending class order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (TrafficClass, &mut T)> {
        self.entries.iter_mut().map(|(c, v)| (*c, v))
    }

    /// The observed classes, ascending.
    pub fn classes(&self) -> Vec<TrafficClass> {
        self.entries.iter().map(|(c, _)| *c).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_class_zero() {
        assert_eq!(TrafficClass::default(), TrafficClass::DEFAULT);
        assert!(TrafficClass::DEFAULT.is_default());
        assert!(!TrafficClass::new(1).is_default());
        assert_eq!(format!("{}", TrafficClass::new(2)), "class2");
    }

    #[test]
    fn depth_bands_partition_the_stack() {
        let n = 32;
        // Band edges: [0, 8) -> 1, [8, 16) -> 2, [16, 24) -> 3, rest 4.
        assert_eq!(TrafficClass::from_exit_depth(0.0, n).id(), 1);
        assert_eq!(TrafficClass::from_exit_depth(7.9, n).id(), 1);
        assert_eq!(TrafficClass::from_exit_depth(8.0, n).id(), 2);
        assert_eq!(TrafficClass::from_exit_depth(16.0, n).id(), 3);
        assert_eq!(TrafficClass::from_exit_depth(24.0, n).id(), 4);
        assert_eq!(TrafficClass::from_exit_depth(32.0, n).id(), 4);
        // Depth-derived classes never collide with the default class.
        for d in 0..=n {
            assert!(!TrafficClass::from_exit_depth(d as f64, n).is_default());
        }
    }

    #[test]
    fn degenerate_depths_fall_back_to_the_deepest_band() {
        assert_eq!(TrafficClass::from_exit_depth(4.0, 0).id(), DEPTH_BANDS);
        assert_eq!(
            TrafficClass::from_exit_depth(f64::NAN, 32).id(),
            DEPTH_BANDS
        );
        assert_eq!(TrafficClass::from_exit_depth(-1.0, 32).id(), DEPTH_BANDS);
        assert_eq!(TrafficClass::from_exit_depth(1e9, 32).id(), DEPTH_BANDS);
    }

    #[test]
    fn ordering_is_by_id() {
        let mut v = [
            TrafficClass::new(3),
            TrafficClass::DEFAULT,
            TrafficClass::new(1),
        ];
        v.sort();
        assert_eq!(v.map(TrafficClass::id), [0, 1, 3]);
    }

    #[test]
    fn class_map_inserts_lazily_and_iterates_sorted() {
        let mut map: ClassMap<Vec<u32>> = ClassMap::new();
        assert!(map.is_empty());
        assert_eq!(map.get(TrafficClass::new(7)), None);
        map.get_or_insert_with(TrafficClass::new(7), Vec::new)
            .push(1);
        map.get_or_insert_with(TrafficClass::DEFAULT, Vec::new)
            .push(2);
        map.get_or_insert_with(TrafficClass::new(7), Vec::new)
            .push(3);
        assert_eq!(map.len(), 2, "second touch reuses the entry");
        assert_eq!(
            map.classes().iter().map(|c| c.id()).collect::<Vec<_>>(),
            [0, 7]
        );
        assert_eq!(map.get(TrafficClass::new(7)), Some(&vec![1, 3]));
        map.get_mut(TrafficClass::DEFAULT).expect("entry").push(4);
        assert_eq!(map.get(TrafficClass::DEFAULT), Some(&vec![2, 4]));
    }
}
