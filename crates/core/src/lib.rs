//! SpecEE: speculative early exiting for fast LLM inference.
//!
//! This crate implements the paper's contribution on top of the substrate
//! crates:
//!
//! * **T1, algorithm** — [`features`] + [`predictor`] + [`verify`]: a draft
//!   model reduces the predictor's search space from the full vocabulary to
//!   K candidate tokens; a 2-layer MLP scores 12 features per layer and a
//!   full-LM-head verification guards every exit.
//! * **T2, system** — [`scheduler`]: offline (skewed exit distribution) and
//!   online (±2-layer context similarity over the last 5 tokens) predictor
//!   scheduling.
//! * **T3, mapping** — [`mapping`] + the speculative engine: token-tree
//!   paths merge into hyper-tokens whose exit is the rearmost node exit,
//!   turning exponential mapping complexity into linear.
//!
//! [`engine`] hosts the runnable decoders; [`baselines`] the AdaInfer and
//! RAEE comparators; [`collect`] the offline feature-collection and
//! training pipeline of §7.4.4.
//!
//! # Examples
//!
//! ```
//! use specee_core::collect::{collect_training_data, train_bank};
//! use specee_core::engine::SpecEeEngine;
//! use specee_core::predictor::{PredictorBank, PredictorConfig};
//! use specee_core::SpecEeConfig;
//! use specee_model::ModelConfig;
//! use specee_nn::TrainConfig;
//! use specee_synth::{DatasetProfile, OracleDraft, SyntheticLmBuilder};
//! use specee_tensor::rng::Pcg;
//!
//! let cfg = ModelConfig { n_layers: 8, ..ModelConfig::tiny() };
//! let mut lm = SyntheticLmBuilder::new(cfg.clone(), DatasetProfile::qa()).seed(1).build();
//! let mut draft = OracleDraft::new(*lm.language(), 0.9, &cfg, 2);
//!
//! // Offline: collect features, train predictors (§7.4.4).
//! let data = collect_training_data(&mut lm, &mut draft, &[(vec![1, 2, 3], 8)], 4);
//! let pcfg = PredictorConfig { hidden_dim: 32, ..PredictorConfig::default() };
//! let mut bank = PredictorBank::new(8, &pcfg, &mut Pcg::seed(3));
//! train_bank(&mut bank, &data.samples, 1.0, &TrainConfig::default(), 4);
//!
//! // Online: decode with speculative early exiting.
//! let config = SpecEeConfig { predictor: pcfg, ..SpecEeConfig::default() };
//! let schedule = config.build_schedule(8, Some(&data.exit_frequencies));
//! let mut engine = SpecEeEngine::new(lm, draft, bank, schedule, config);
//! let out = engine.generate(&[1, 2, 3], 8);
//! assert_eq!(out.tokens.len(), 8);
//! ```

#![deny(missing_docs)]

pub mod baselines;
pub mod collect;
pub mod config;
pub mod engine;
pub mod features;
pub mod mapping;
pub mod output;
pub mod predictor;
pub mod scheduler;
pub mod skip_layer;
pub mod traffic;
pub mod verify;

pub use config::{SchedulingMode, SpecEeConfig};
pub use engine::{DenseEngine, ExitFeedback, ExitScan, SpecEeEngine, SpeculativeEngine};
pub use features::{ExitFeatures, FeatureTracker};
pub use mapping::{hyper_tokens, HyperToken, TreeExitState};
pub use output::{agreement, GenOutput, RunStats};
pub use predictor::{ExitPredictor, PredictorBank, PredictorConfig};
pub use scheduler::{OfflineScheduler, OnlineScheduler, ScheduleEngine};
pub use skip_layer::{CalmEngine, DLlmEngine, MoDEngine};
pub use traffic::{Lane, TrafficClass};
pub use verify::verify_exit;
