//! Context-aware merged mapping for predictors in speculative decoding
//! (T3, §6).
//!
//! Treating each token-tree node as an independent search space multiplies
//! predictor decision spaces (exponential mapping complexity). SpecEE
//! merges every root-to-leaf path into one *hyper-token* whose exit layer
//! is the rearmost exit of its tokens (the Cannikin law) — linear in the
//! number of paths — and relies on the context similarity of path tokens
//! to keep that rearmost exit early.

use serde::{Deserialize, Serialize};

/// One hyper-token: a root-to-leaf path of node indices.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HyperToken {
    /// Node indices from root to leaf.
    pub path: Vec<usize>,
}

/// Enumerates the hyper-tokens (leaf paths) of a parent-linked node batch.
///
/// # Panics
///
/// Panics if a parent index does not precede its child.
pub fn hyper_tokens(parents: &[Option<usize>]) -> Vec<HyperToken> {
    let mut has_child = vec![false; parents.len()];
    for (i, p) in parents.iter().enumerate() {
        if let Some(p) = *p {
            assert!(p < i, "parents must precede children");
            has_child[p] = true;
        }
    }
    let mut out = Vec::new();
    for (i, &interior) in has_child.iter().enumerate() {
        if interior {
            continue;
        }
        let mut path = Vec::new();
        let mut cur = Some(i);
        while let Some(n) = cur {
            path.push(n);
            cur = parents[n];
        }
        path.reverse();
        out.push(HyperToken { path });
    }
    out
}

/// Per-round early-exit state over a token tree.
///
/// Nodes *fire* (their predictor votes exit and sticks); a hyper-token is
/// ready when all its nodes fired; the whole tree exits at the layer where
/// every hyper-token is ready — the batch-wide rearmost position.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeExitState {
    fired_at: Vec<Option<usize>>,
    hypers: Vec<HyperToken>,
}

impl TreeExitState {
    /// Creates the state for a node batch.
    pub fn new(parents: &[Option<usize>]) -> Self {
        TreeExitState {
            fired_at: vec![None; parents.len()],
            hypers: hyper_tokens(parents),
        }
    }

    /// The hyper-tokens of this batch.
    pub fn hyper_tokens(&self) -> &[HyperToken] {
        &self.hypers
    }

    /// Whether node `node` has fired.
    pub fn fired(&self, node: usize) -> bool {
        self.fired_at[node].is_some()
    }

    /// Marks `node` as fired at `layer` (first firing wins).
    pub fn note_fired(&mut self, node: usize, layer: usize) {
        if self.fired_at[node].is_none() {
            self.fired_at[node] = Some(layer);
        }
    }

    /// Nodes that have not fired yet.
    pub fn pending(&self) -> Vec<usize> {
        self.fired_at
            .iter()
            .enumerate()
            .filter(|(_, f)| f.is_none())
            .map(|(i, _)| i)
            .collect()
    }

    /// Exit layer of one hyper-token: the rearmost (maximum) firing layer
    /// of its nodes, `None` while any node is pending (Cannikin law).
    pub fn hyper_exit_layer(&self, hyper: usize) -> Option<usize> {
        self.hypers[hyper]
            .path
            .iter()
            .map(|&n| self.fired_at[n])
            .try_fold(0usize, |acc, f| f.map(|l| acc.max(l)))
    }

    /// Whether every hyper-token is ready (equivalently, every node fired).
    pub fn all_ready(&self) -> bool {
        self.fired_at.iter().all(Option::is_some)
    }

    /// Whether at least one complete hyper-token is ready. Because path
    /// tokens saturate at correlated depths (context similarity, §5.2),
    /// the first complete path is usually the true continuation; draft
    /// misses on other paths must not stall the whole batch at full depth.
    pub fn any_path_ready(&self) -> bool {
        (0..self.hypers.len()).any(|h| self.hyper_exit_layer(h).is_some())
    }

    /// Indices of the hyper-tokens whose every node has fired.
    pub fn ready_paths(&self) -> Vec<usize> {
        (0..self.hypers.len())
            .filter(|&h| self.hyper_exit_layer(h).is_some())
            .collect()
    }

    /// Mapping complexity of the merged scheme: one decision per
    /// hyper-token (linear), vs the product of per-node decision spaces
    /// for the unmerged mapping (exponential). Returned as
    /// `(merged, unmerged)` counts of predictor search spaces.
    pub fn mapping_complexity(&self, candidates_per_node: usize) -> (u128, u128) {
        let merged = self.hypers.len() as u128;
        let unmerged = (candidates_per_node.max(1) as u128)
            .checked_pow(self.fired_at.len() as u32)
            .unwrap_or(u128::MAX);
        (merged, unmerged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parents() -> Vec<Option<usize>> {
        // bonus(0) -> a(1), b(2); a -> c(3); b -> d(4)
        vec![None, Some(0), Some(0), Some(1), Some(2)]
    }

    #[test]
    fn hyper_tokens_are_leaf_paths() {
        let h = hyper_tokens(&parents());
        assert_eq!(h.len(), 2);
        assert_eq!(h[0].path, vec![0, 1, 3]);
        assert_eq!(h[1].path, vec![0, 2, 4]);
    }

    #[test]
    fn cannikin_law_takes_rearmost() {
        let mut st = TreeExitState::new(&parents());
        st.note_fired(0, 10);
        st.note_fired(1, 22);
        st.note_fired(3, 30);
        assert_eq!(st.hyper_exit_layer(0), Some(30));
        assert_eq!(st.hyper_exit_layer(1), None, "path 0-2-4 still pending");
        assert!(!st.all_ready());
        st.note_fired(2, 12);
        st.note_fired(4, 25);
        assert_eq!(st.hyper_exit_layer(1), Some(25));
        assert!(st.all_ready());
    }

    #[test]
    fn first_firing_sticks() {
        let mut st = TreeExitState::new(&parents());
        st.note_fired(1, 5);
        st.note_fired(1, 9);
        st.note_fired(0, 5);
        st.note_fired(3, 5);
        assert_eq!(st.hyper_exit_layer(0), Some(5));
    }

    #[test]
    fn pending_lists_unfired() {
        let mut st = TreeExitState::new(&parents());
        st.note_fired(0, 1);
        st.note_fired(3, 2);
        assert_eq!(st.pending(), vec![1, 2, 4]);
    }

    #[test]
    fn merged_complexity_is_linear() {
        let st = TreeExitState::new(&parents());
        let (merged, unmerged) = st.mapping_complexity(4);
        assert_eq!(merged, 2);
        assert_eq!(unmerged, 4u128.pow(5));
        assert!(merged < unmerged);
    }

    #[test]
    fn single_chain_has_one_hyper_token() {
        let st = TreeExitState::new(&[None, Some(0), Some(1)]);
        assert_eq!(st.hyper_tokens().len(), 1);
        assert_eq!(st.hyper_tokens()[0].path, vec![0, 1, 2]);
    }
}
