//! Early-exiting baselines: AdaInfer (SVM over full-vocabulary features)
//! and RAEE (retrieval-based exit layers).
//!
//! These exist to reproduce the comparisons of Table 1, Fig. 7 and
//! Table 4. AdaInfer pays a *full LM-head traversal per layer* to build
//! its features — the cost SpecEE's vocabulary-space reduction removes.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use specee_metrics::{Meter, OpKind};
use specee_model::{prefill, LayeredLm, SkipKvPolicy, TokenId};
use specee_nn::LinearSvm;
use specee_tensor::ops;

use crate::output::GenOutput;

/// AdaInfer's per-layer features from the full-vocabulary distribution:
/// top probability and top-2 gap.
pub fn adainfer_features(full_logits: &[f32]) -> Vec<f32> {
    let probs = ops::softmax(full_logits);
    let top = ops::top_k(&probs, 2);
    let p1 = top.first().map_or(0.0, |&i| probs[i]);
    let p2 = top.get(1).map_or(0.0, |&i| probs[i]);
    vec![p1, p1 - p2]
}

/// One collected AdaInfer sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaSample {
    /// Layer index.
    pub layer: usize,
    /// `[top_prob, gap]`.
    pub features: Vec<f32>,
    /// Whether exiting here reproduces the full-depth token.
    pub label: bool,
}

/// Collects AdaInfer training data with dense runs.
///
/// # Panics
///
/// Panics if `prompts` is empty.
pub fn collect_adainfer_data<M: LayeredLm>(
    model: &mut M,
    prompts: &[(Vec<TokenId>, usize)],
) -> Vec<AdaSample> {
    assert!(!prompts.is_empty(), "need prompts");
    let n_layers = model.config().n_layers;
    let mut meter = Meter::new();
    let mut samples = Vec::new();
    for (prompt, gen_len) in prompts {
        model.reset();
        let mut h = prefill(model, prompt, &mut meter);
        let logits = model.final_logits(&h, &mut meter);
        let mut t = ops::argmax(&logits).expect("logits") as TokenId;
        for _ in 1..*gen_len {
            let pos = model.kv_len();
            h = model.begin_token(t, &mut meter);
            let mut per_layer = Vec::new();
            for layer in 0..n_layers {
                h = model.forward_layer(layer, &h, pos, &mut meter);
                if layer + 1 < n_layers {
                    let full = model.final_logits(&h, &mut meter);
                    let tok = ops::argmax(&full).expect("logits") as TokenId;
                    per_layer.push((adainfer_features(&full), tok));
                }
            }
            let full = model.final_logits(&h, &mut meter);
            let final_tok = ops::argmax(&full).expect("logits") as TokenId;
            for (layer, (features, tok)) in per_layer.into_iter().enumerate() {
                samples.push(AdaSample {
                    layer,
                    features,
                    label: tok == final_tok,
                });
            }
            t = final_tok;
        }
    }
    samples
}

/// The AdaInfer engine: a linear SVM after *every* layer, fed by a full
/// LM-head traversal, no draft model and no verification step.
#[derive(Debug, Clone)]
pub struct AdaInferEngine<M> {
    model: M,
    svms: Vec<LinearSvm>,
    skip_policy: SkipKvPolicy,
}

impl<M: LayeredLm> AdaInferEngine<M> {
    /// Builds and trains the per-layer SVMs from collected samples.
    pub fn train(model: M, samples: &[AdaSample], seed: u64) -> Self {
        let n_layers = model.config().n_layers;
        let mut by_layer: Vec<Vec<(Vec<f32>, bool)>> = vec![Vec::new(); n_layers - 1];
        for s in samples {
            if s.layer < n_layers - 1 {
                by_layer[s.layer].push((s.features.clone(), s.label));
            }
        }
        let svms = by_layer
            .iter()
            .map(|data| {
                let mut svm = LinearSvm::new(2, 1e-3);
                if !data.is_empty() {
                    let xs: Vec<Vec<f32>> = data.iter().map(|(f, _)| f.clone()).collect();
                    let ys: Vec<bool> = data.iter().map(|(_, l)| *l).collect();
                    svm.fit(&xs, &ys, 12, seed);
                }
                svm
            })
            .collect();
        AdaInferEngine {
            model,
            svms,
            skip_policy: SkipKvPolicy::ProjectExitHidden,
        }
    }

    /// Borrows the model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Generates with AdaInfer-style early exiting.
    ///
    /// # Panics
    ///
    /// Panics if `prompt` is empty or `gen_len` is zero.
    pub fn generate(&mut self, prompt: &[TokenId], gen_len: usize) -> GenOutput {
        assert!(!prompt.is_empty(), "prompt must be non-empty");
        assert!(gen_len > 0, "gen_len must be positive");
        let n_layers = self.model.config().n_layers;
        let mut meter = Meter::new();
        self.model.reset();

        let mut tokens = Vec::new();
        let mut exit_layers = Vec::new();
        let mut ce_sum = 0.0;
        let mut predictor_calls = 0u64;

        let mut prefill_meter = Meter::new();
        let h0 = prefill(&mut self.model, prompt, &mut prefill_meter);
        let logits = self.model.final_logits(&h0, &mut meter);
        let mut t = ops::argmax(&logits).expect("logits") as TokenId;
        ce_sum += f64::from(-ops::log_softmax(&logits)[t as usize]);
        tokens.push(t);
        exit_layers.push(n_layers);
        meter.mark_token();

        while tokens.len() < gen_len {
            let pos = self.model.kv_len();
            let mut h = self.model.begin_token(t, &mut meter);
            let mut exit: Option<(TokenId, Vec<f32>)> = None;
            let mut executed = n_layers;
            for layer in 0..n_layers {
                h = self.model.forward_layer(layer, &h, pos, &mut meter);
                if layer + 1 >= n_layers {
                    break;
                }
                // AdaInfer reads the FULL vocabulary distribution per layer.
                let full = self.model.final_logits(&h, &mut meter);
                let feats = adainfer_features(&full);
                predictor_calls += 1;
                if self.svms[layer].predict(&feats) {
                    let tok = ops::argmax(&full).expect("logits") as TokenId;
                    self.model
                        .fill_skipped_kv(layer + 1, &h, pos, self.skip_policy, &mut meter);
                    executed = layer + 1;
                    exit = Some((tok, full));
                    break;
                }
            }
            let (next, full) = match exit {
                Some(x) => x,
                None => {
                    let full = self.model.final_logits(&h, &mut meter);
                    (ops::argmax(&full).expect("logits") as TokenId, full)
                }
            };
            ce_sum += f64::from(-ops::log_softmax(&full)[next as usize]);
            tokens.push(next);
            exit_layers.push(executed);
            meter.mark_token();
            meter.mark_host_step();
            t = next;
        }

        GenOutput {
            tokens,
            exit_layers,
            ce_sum,
            meter,
            predictor_calls,
            verify_calls: 0,
            rounds: 0,
            draft_calls: 0,
            self_draft_calls: 0,
        }
    }
}

/// RAEE-style retrieval engine: a database maps a context bucket to the
/// expected exit layer; no per-layer predictor runs, but each token pays a
/// retrieval cost and exits *unverified* at the retrieved layer.
#[derive(Debug, Clone)]
pub struct RaeeEngine<M> {
    model: M,
    db: HashMap<u64, (f64, u64)>,
    default_layer: usize,
    /// Modelled bytes touched per retrieval (the paper notes the database
    /// exceeds several GB; lookups walk an index shard).
    retrieval_bytes: f64,
}

fn bigram_key(ctx: &[TokenId]) -> u64 {
    let a = ctx.len().checked_sub(2).map_or(0, |i| ctx[i]) as u64;
    let b = ctx.last().copied().unwrap_or(0) as u64;
    (a << 32) | b
}

impl<M: LayeredLm> RaeeEngine<M> {
    /// Builds the retrieval database from (context, earliest-correct-layer)
    /// observations.
    pub fn build(model: M, observations: &[(Vec<TokenId>, usize)]) -> Self {
        let n_layers = model.config().n_layers;
        let mut db: HashMap<u64, (f64, u64)> = HashMap::new();
        for (ctx, layer) in observations {
            let e = db.entry(bigram_key(ctx)).or_insert((0.0, 0));
            e.0 += *layer as f64;
            e.1 += 1;
        }
        RaeeEngine {
            model,
            db,
            default_layer: n_layers,
            retrieval_bytes: 256.0 * 1024.0,
        }
    }

    /// Number of database buckets.
    pub fn db_len(&self) -> usize {
        self.db.len()
    }

    fn lookup(&self, ctx: &[TokenId]) -> usize {
        match self.db.get(&bigram_key(ctx)) {
            Some((sum, n)) if *n > 0 => {
                ((sum / *n as f64).round() as usize).clamp(1, self.default_layer)
            }
            _ => self.default_layer,
        }
    }

    /// Generates with retrieval-scheduled exits.
    ///
    /// # Panics
    ///
    /// Panics if `prompt` is empty or `gen_len` is zero.
    pub fn generate(&mut self, prompt: &[TokenId], gen_len: usize) -> GenOutput {
        assert!(!prompt.is_empty(), "prompt must be non-empty");
        assert!(gen_len > 0, "gen_len must be positive");
        let n_layers = self.model.config().n_layers;
        let mut meter = Meter::new();
        self.model.reset();

        let mut tokens = Vec::new();
        let mut exit_layers = Vec::new();
        let mut ce_sum = 0.0;

        let mut prefill_meter = Meter::new();
        let h0 = prefill(&mut self.model, prompt, &mut prefill_meter);
        let logits = self.model.final_logits(&h0, &mut meter);
        let mut t = ops::argmax(&logits).expect("logits") as TokenId;
        ce_sum += f64::from(-ops::log_softmax(&logits)[t as usize]);
        tokens.push(t);
        exit_layers.push(n_layers);
        meter.mark_token();

        let mut ctx = prompt.to_vec();
        while tokens.len() < gen_len {
            ctx.push(t);
            // Retrieval: one index probe per token.
            meter.record(OpKind::Other, 0.0, self.retrieval_bytes, 1);
            let exit_at = self.lookup(&ctx).min(n_layers);
            let pos = self.model.kv_len();
            let mut h = self.model.begin_token(t, &mut meter);
            for layer in 0..exit_at {
                h = self.model.forward_layer(layer, &h, pos, &mut meter);
            }
            if exit_at < n_layers {
                self.model.fill_skipped_kv(
                    exit_at,
                    &h,
                    pos,
                    SkipKvPolicy::ProjectExitHidden,
                    &mut meter,
                );
            }
            let full = self.model.final_logits(&h, &mut meter);
            let next = ops::argmax(&full).expect("logits") as TokenId;
            ce_sum += f64::from(-ops::log_softmax(&full)[next as usize]);
            tokens.push(next);
            exit_layers.push(exit_at);
            meter.mark_token();
            meter.mark_host_step();
            t = next;
        }

        GenOutput {
            tokens,
            exit_layers,
            ce_sum,
            meter,
            predictor_calls: 0,
            verify_calls: 0,
            rounds: 0,
            draft_calls: 0,
            self_draft_calls: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specee_model::ModelConfig;
    use specee_synth::{DatasetProfile, SyntheticLm, SyntheticLmBuilder};

    fn cfg() -> ModelConfig {
        ModelConfig {
            n_layers: 8,
            ..ModelConfig::tiny()
        }
    }

    fn build_lm(seed: u64) -> SyntheticLm {
        SyntheticLmBuilder::new(cfg(), DatasetProfile::qa())
            .seed(seed)
            .build()
    }

    #[test]
    fn adainfer_features_are_top_and_gap() {
        let f = adainfer_features(&[0.0, 3.0, 1.0]);
        assert_eq!(f.len(), 2);
        assert!(f[0] > 0.5, "top prob {}", f[0]);
        assert!(f[1] > 0.0 && f[1] < f[0]);
    }

    #[test]
    fn adainfer_engine_exits_and_pays_full_head_per_layer() {
        let mut lm = build_lm(61);
        let prompts = vec![(vec![1u32, 2, 3], 10usize), (vec![4, 5, 6], 10)];
        let samples = collect_adainfer_data(&mut lm, &prompts);
        assert!(!samples.is_empty());
        let mut engine = AdaInferEngine::train(build_lm(61), &samples, 7);
        let out = engine.generate(&[1, 2, 3], 12);
        assert_eq!(out.tokens.len(), 12);
        // full LM head per evaluated layer: far more full-head kernels than
        // generated tokens
        let full_heads = out.meter.kind(OpKind::LmHeadFull).kernels;
        assert!(full_heads as usize > out.tokens.len() * 2, "{full_heads}");
    }

    #[test]
    fn raee_uses_database_layers() {
        let observations: Vec<(Vec<TokenId>, usize)> = (0..50u32)
            .map(|i| (vec![i % 8, (i + 1) % 8], 5usize))
            .collect();
        let mut engine = RaeeEngine::build(build_lm(63), &observations);
        assert!(engine.db_len() > 0);
        let out = engine.generate(&[1, 2, 3], 10);
        assert_eq!(out.tokens.len(), 10);
        // most tokens exit at the retrieved depth (5) or full depth default
        assert!(out.exit_layers.iter().all(|&l| l == 5 || l == 8));
        assert!(
            out.meter.kind(OpKind::Other).kernels > 0,
            "retrieval metered"
        );
    }

    #[test]
    fn raee_unknown_context_runs_full_depth() {
        let engine_model = build_lm(65);
        let mut engine = RaeeEngine::build(engine_model, &[]);
        let out = engine.generate(&[1, 2], 4);
        assert!(out.exit_layers.iter().skip(1).all(|&l| l == 8));
    }
}
