//! Two-level heuristic predictor scheduling (T2, §5).
//!
//! Not every layer needs a predictor. **Offline scheduling** keeps the
//! layers that historically exit most often (the skewed distribution of
//! Fig. 10). **Online scheduling** maintains a circular queue of the last
//! `N` tokens' exit layers and activates predictors within ±`n` layers of
//! any of them (the context similarity of Fig. 11). The active set is the
//! union of both.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

/// Offline predictor allocation from collected exit-frequency statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OfflineScheduler {
    keep: Vec<bool>,
}

impl OfflineScheduler {
    /// Keeps the `keep_top` most frequently exiting layers.
    ///
    /// # Panics
    ///
    /// Panics if `frequencies` is empty or `keep_top` is zero.
    pub fn from_frequencies(frequencies: &[f64], keep_top: usize) -> Self {
        assert!(!frequencies.is_empty(), "need frequencies");
        assert!(keep_top > 0, "must keep at least one layer");
        let mut idx: Vec<usize> = (0..frequencies.len()).collect();
        idx.sort_by(|&a, &b| {
            frequencies[b]
                .partial_cmp(&frequencies[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut keep = vec![false; frequencies.len()];
        for &i in idx.iter().take(keep_top.min(frequencies.len())) {
            keep[i] = true;
        }
        OfflineScheduler { keep }
    }

    /// Keeps every layer (the no-offline-scheduling configuration).
    pub fn keep_all(n_layers: usize) -> Self {
        OfflineScheduler {
            keep: vec![true; n_layers],
        }
    }

    /// Whether layer `layer` has an offline-allocated predictor.
    pub fn is_kept(&self, layer: usize) -> bool {
        self.keep.get(layer).copied().unwrap_or(false)
    }

    /// Number of kept layers.
    pub fn kept_count(&self) -> usize {
        self.keep.iter().filter(|&&k| k).count()
    }
}

/// Online predictor activation from recent exit positions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineScheduler {
    window: VecDeque<usize>,
    counts: Vec<u32>,
    capacity: usize,
    neighborhood: usize,
}

impl OnlineScheduler {
    /// Creates a scheduler over `n_layers` layers tracking the last
    /// `window` tokens with a ±`neighborhood` activation band.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero or `n_layers` is zero.
    pub fn new(n_layers: usize, window: usize, neighborhood: usize) -> Self {
        assert!(window > 0, "window must be positive");
        assert!(n_layers > 0, "n_layers must be positive");
        OnlineScheduler {
            window: VecDeque::with_capacity(window),
            counts: vec![0; n_layers],
            capacity: window,
            neighborhood,
        }
    }

    fn bump(&mut self, exit_layer: usize, delta: i32) {
        let lo = exit_layer.saturating_sub(self.neighborhood);
        let hi = (exit_layer + self.neighborhood).min(self.counts.len() - 1);
        for l in lo..=hi {
            let c = &mut self.counts[l];
            *c = (*c as i64 + delta as i64).max(0) as u32;
        }
    }

    /// Records the exit layer of the newest token, evicting the oldest.
    pub fn note_exit(&mut self, exit_layer: usize) {
        let exit_layer = exit_layer.min(self.counts.len() - 1);
        if self.window.len() == self.capacity {
            let old = self.window.pop_front().expect("non-empty window");
            self.bump(old, -1);
        }
        self.window.push_back(exit_layer);
        self.bump(exit_layer, 1);
    }

    /// Whether the online set activates layer `layer`. Before any exit is
    /// recorded, every layer is active (cold start).
    pub fn is_active(&self, layer: usize) -> bool {
        if self.window.is_empty() {
            return true;
        }
        self.counts.get(layer).copied().unwrap_or(0) > 0
    }

    /// Number of currently active layers.
    pub fn active_count(&self) -> usize {
        if self.window.is_empty() {
            return self.counts.len();
        }
        self.counts.iter().filter(|&&c| c > 0).count()
    }
}

/// The union scheduler the engine consults per layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleEngine {
    offline: Option<OfflineScheduler>,
    online: Option<OnlineScheduler>,
    n_layers: usize,
    active_samples: u64,
    active_sum: u64,
}

impl ScheduleEngine {
    /// A scheduler that activates every layer (T1-only configuration).
    pub fn all_layers(n_layers: usize) -> Self {
        ScheduleEngine {
            offline: None,
            online: None,
            n_layers,
            active_samples: 0,
            active_sum: 0,
        }
    }

    /// The full two-level scheduler (offline ∪ online).
    pub fn two_level(offline: OfflineScheduler, online: OnlineScheduler) -> Self {
        let n_layers = offline.keep.len();
        ScheduleEngine {
            offline: Some(offline),
            online: Some(online),
            n_layers,
            active_samples: 0,
            active_sum: 0,
        }
    }

    /// Offline-only scheduling (ablation).
    pub fn offline_only(offline: OfflineScheduler) -> Self {
        let n_layers = offline.keep.len();
        ScheduleEngine {
            offline: Some(offline),
            online: None,
            n_layers,
            active_samples: 0,
            active_sum: 0,
        }
    }

    /// Whether a predictor should run after `layer`.
    pub fn is_active(&self, layer: usize) -> bool {
        match (&self.offline, &self.online) {
            (None, None) => true,
            (Some(off), None) => off.is_kept(layer),
            (None, Some(on)) => on.is_active(layer),
            (Some(off), Some(on)) => off.is_kept(layer) || on.is_active(layer),
        }
    }

    /// Records a token's exit layer (feeds the online window and the
    /// active-count statistics).
    pub fn note_exit(&mut self, exit_layer: usize) {
        let active = self.current_active_count();
        self.active_sum += active as u64;
        self.active_samples += 1;
        if let Some(on) = &mut self.online {
            on.note_exit(exit_layer.min(self.n_layers - 1));
        }
    }

    /// Number of layers currently active.
    pub fn current_active_count(&self) -> usize {
        (0..self.n_layers).filter(|&l| self.is_active(l)).count()
    }

    /// Mean number of active predictors per token so far (the paper's
    /// dynamic ~10.2 layers, Fig. 10(d)).
    pub fn avg_active(&self) -> f64 {
        if self.active_samples == 0 {
            self.current_active_count() as f64
        } else {
            self.active_sum as f64 / self.active_samples as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offline_keeps_top_layers() {
        let freq = vec![0.05, 0.30, 0.10, 0.40, 0.15];
        let off = OfflineScheduler::from_frequencies(&freq, 2);
        assert!(off.is_kept(3));
        assert!(off.is_kept(1));
        assert!(!off.is_kept(0));
        assert_eq!(off.kept_count(), 2);
    }

    #[test]
    fn online_cold_start_activates_all() {
        let on = OnlineScheduler::new(8, 5, 2);
        assert!(on.is_active(0));
        assert_eq!(on.active_count(), 8);
    }

    #[test]
    fn online_tracks_neighborhood() {
        let mut on = OnlineScheduler::new(32, 5, 2);
        on.note_exit(20);
        for l in 18..=22 {
            assert!(on.is_active(l), "layer {l}");
        }
        assert!(!on.is_active(17));
        assert!(!on.is_active(23));
        assert_eq!(on.active_count(), 5);
    }

    #[test]
    fn online_evicts_oldest() {
        let mut on = OnlineScheduler::new(32, 2, 1);
        on.note_exit(5);
        on.note_exit(10);
        on.note_exit(25); // evicts 5
        assert!(!on.is_active(5));
        assert!(on.is_active(10));
        assert!(on.is_active(25));
    }

    #[test]
    fn union_covers_both_sets() {
        let freq = vec![0.0; 32];
        let mut freq2 = freq.clone();
        freq2[3] = 1.0;
        let off = OfflineScheduler::from_frequencies(&freq2, 1);
        let mut engine = ScheduleEngine::two_level(off, OnlineScheduler::new(32, 5, 2));
        engine.note_exit(20);
        assert!(engine.is_active(3), "offline layer");
        assert!(engine.is_active(20), "online layer");
        assert!(!engine.is_active(10));
    }

    #[test]
    fn avg_active_shrinks_after_warmup() {
        let off = OfflineScheduler::from_frequencies(&vec![1.0; 32], 6);
        let mut engine = ScheduleEngine::two_level(off, OnlineScheduler::new(32, 5, 2));
        for _ in 0..20 {
            engine.note_exit(20);
        }
        // 6 offline + ≤5 online (overlapping window at one layer)
        assert!(engine.current_active_count() <= 11);
        assert!(engine.avg_active() < 32.0);
    }

    #[test]
    fn all_layers_engine_always_active() {
        let mut engine = ScheduleEngine::all_layers(8);
        for l in 0..8 {
            assert!(engine.is_active(l));
        }
        engine.note_exit(3);
        assert_eq!(engine.current_active_count(), 8);
    }

    #[test]
    fn exit_layer_clamped_to_range() {
        let mut on = OnlineScheduler::new(8, 3, 2);
        on.note_exit(100); // overflow clamps to last layer
        assert!(on.is_active(7));
    }
}
