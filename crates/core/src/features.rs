//! Feature extraction for the speculation-based lightweight predictor (T1).
//!
//! Per layer, the predictor sees only the *reduced* vocabulary — the K
//! speculative tokens — through three feature groups (§4.3.1):
//!
//! 1. **speculative token logits** — the hidden state multiplied with the
//!    K candidate columns of the LM head (`1 × hidden × K` instead of
//!    `1 × hidden × |V|`),
//! 2. **local probabilities** — softmax over those K logits,
//! 3. **probability variation** — the difference from the previous layer's
//!    local probabilities (the probability-shift signal of §4.2).
//!
//! With K = 4 the feature vector is 12-dimensional, the ~10⁴× search-space
//! reduction of Fig. 2(b).

use specee_metrics::Meter;
use specee_model::{LayeredLm, TokenId};
use specee_tensor::ops;

/// The per-layer features of one (token, layer) decision.
#[derive(Debug, Clone, PartialEq)]
pub struct ExitFeatures {
    /// Speculative token logits (length K).
    pub logits: Vec<f32>,
    /// Local probabilities: softmax over `logits` (length K).
    pub probs: Vec<f32>,
    /// Probability variation vs the previous layer (length K; zeros at the
    /// first evaluated layer).
    pub delta: Vec<f32>,
}

impl ExitFeatures {
    /// Flattens to the predictor input layout `[logits | probs | delta]`.
    pub fn to_vec(&self) -> Vec<f32> {
        let mut v = Vec::with_capacity(self.logits.len() * 3);
        v.extend_from_slice(&self.logits);
        v.extend_from_slice(&self.probs);
        v.extend_from_slice(&self.delta);
        v
    }

    /// Feature dimension (3 × K).
    pub fn dim(&self) -> usize {
        self.logits.len() * 3
    }
}

/// Tracks previous-layer local probabilities within one token's forward
/// pass (reset per token).
#[derive(Debug, Clone, Default)]
pub struct FeatureTracker {
    prev_probs: Option<Vec<f32>>,
}

impl FeatureTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        FeatureTracker::default()
    }

    /// Resets the tracker at a token boundary.
    pub fn reset(&mut self) {
        self.prev_probs = None;
    }

    /// Extracts features at the current layer: slices the LM head over the
    /// candidates (metered as [`specee_metrics::OpKind::LmHeadSlice`]),
    /// computes local probabilities and their variation.
    ///
    /// # Panics
    ///
    /// Panics if `candidates` is empty.
    pub fn extract<M: LayeredLm + ?Sized>(
        &mut self,
        model: &mut M,
        h: &[f32],
        candidates: &[TokenId],
        meter: &mut Meter,
    ) -> ExitFeatures {
        assert!(!candidates.is_empty(), "need at least one candidate");
        let logits = model.slice_logits(h, candidates, meter);
        self.update(logits)
    }

    /// Builds features from already-computed candidate logits (the tree
    /// path computes every node's logits with one grouped GEMM and then
    /// feeds each node's tracker here).
    pub fn update(&mut self, logits: Vec<f32>) -> ExitFeatures {
        let probs = ops::softmax(&logits);
        let delta = match &self.prev_probs {
            Some(prev) if prev.len() == probs.len() => {
                probs.iter().zip(prev.iter()).map(|(a, b)| a - b).collect()
            }
            _ => vec![0.0; probs.len()],
        };
        self.prev_probs = Some(probs.clone());
        ExitFeatures {
            logits,
            probs,
            delta,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specee_metrics::OpKind;
    use specee_model::{prefill, ModelConfig, Transformer};
    use specee_tensor::rng::Pcg;

    #[test]
    fn layout_is_logits_probs_delta() {
        let f = ExitFeatures {
            logits: vec![1.0, 2.0],
            probs: vec![0.3, 0.7],
            delta: vec![0.1, -0.1],
        };
        assert_eq!(f.to_vec(), vec![1.0, 2.0, 0.3, 0.7, 0.1, -0.1]);
        assert_eq!(f.dim(), 6);
    }

    #[test]
    fn extract_uses_lm_head_slice_not_full() {
        let mut model = Transformer::random(ModelConfig::tiny(), &mut Pcg::seed(1));
        let mut meter = Meter::new();
        let h = prefill(&mut model, &[1, 2], &mut meter);
        let before_full = meter.kind(OpKind::LmHeadFull).kernels;
        let mut tracker = FeatureTracker::new();
        let f = tracker.extract(&mut model, &h, &[3, 4, 5, 6], &mut meter);
        assert_eq!(f.logits.len(), 4);
        assert_eq!(meter.kind(OpKind::LmHeadFull).kernels, before_full);
        assert!(meter.kind(OpKind::LmHeadSlice).kernels > 0);
    }

    #[test]
    fn first_layer_delta_is_zero_then_tracks() {
        let mut model = Transformer::random(ModelConfig::tiny(), &mut Pcg::seed(2));
        let mut meter = Meter::new();
        let h = prefill(&mut model, &[1], &mut meter);
        let mut tracker = FeatureTracker::new();
        let f1 = tracker.extract(&mut model, &h, &[3, 4], &mut meter);
        assert_eq!(f1.delta, vec![0.0, 0.0]);
        // different hidden → non-zero delta
        let h2: Vec<f32> = h.iter().map(|v| v * -0.5).collect();
        let f2 = tracker.extract(&mut model, &h2, &[3, 4], &mut meter);
        let moved = f2.delta.iter().any(|d| d.abs() > 1e-6);
        assert!(moved, "delta should track probability movement");
        // deltas of a probability vector sum to ~0
        let sum: f32 = f2.delta.iter().sum();
        assert!(sum.abs() < 1e-5);
    }

    #[test]
    fn reset_clears_history() {
        let mut model = Transformer::random(ModelConfig::tiny(), &mut Pcg::seed(3));
        let mut meter = Meter::new();
        let h = prefill(&mut model, &[1], &mut meter);
        let mut tracker = FeatureTracker::new();
        tracker.extract(&mut model, &h, &[3, 4], &mut meter);
        tracker.reset();
        let f = tracker.extract(&mut model, &h, &[3, 4], &mut meter);
        assert_eq!(f.delta, vec![0.0, 0.0]);
    }

    #[test]
    fn probs_are_softmax_of_logits() {
        let mut model = Transformer::random(ModelConfig::tiny(), &mut Pcg::seed(4));
        let mut meter = Meter::new();
        let h = prefill(&mut model, &[7], &mut meter);
        let mut tracker = FeatureTracker::new();
        let f = tracker.extract(&mut model, &h, &[1, 2, 3], &mut meter);
        let expect = ops::softmax(&f.logits);
        for (a, b) in f.probs.iter().zip(expect.iter()) {
            assert!((a - b).abs() < 1e-6);
        }
    }
}
