//! Per-request outputs and aggregated run statistics.

use serde::{Deserialize, Serialize};
use specee_metrics::Meter;
use specee_model::TokenId;

/// Output of one generation request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GenOutput {
    /// Emitted tokens.
    pub tokens: Vec<TokenId>,
    /// Decoder layers executed per emitted token.
    pub exit_layers: Vec<usize>,
    /// Sum of `-log p(token)` under the model's final distribution.
    pub ce_sum: f64,
    /// Recorded op trace.
    pub meter: Meter,
    /// Predictor forwards executed.
    pub predictor_calls: u64,
    /// Verification (full LM head) calls triggered by the predictor.
    pub verify_calls: u64,
    /// Speculative verification rounds (0 for autoregressive decoding).
    pub rounds: u64,
    /// Node-forwards through a *separate* draft network (EAGLE-style
    /// head). Zero for self-draft and non-speculative runs.
    pub draft_calls: u64,
    /// Shallow-target (node × layer) runs executed by *self-draft* draft
    /// passes. Zero for separate-draft and non-speculative runs. Kept
    /// apart from `draft_calls` because the two price differently: the
    /// shallow target shares weights with verification, a separate draft
    /// network streams its own.
    pub self_draft_calls: u64,
}

impl GenOutput {
    /// Mean executed layers per token.
    pub fn avg_layers(&self) -> f64 {
        if self.exit_layers.is_empty() {
            0.0
        } else {
            self.exit_layers.iter().sum::<usize>() as f64 / self.exit_layers.len() as f64
        }
    }
}

/// Aggregate statistics over a workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    /// Requests aggregated.
    pub requests: usize,
    /// Total emitted tokens.
    pub tokens: u64,
    /// Mean executed layers per token.
    pub avg_layers: f64,
    /// Histogram of executed-layer counts.
    pub layer_histogram: Vec<u64>,
    /// Merged op trace.
    pub meter: Meter,
    /// Total predictor forwards.
    pub predictor_calls: u64,
    /// Total verification calls.
    pub verify_calls: u64,
    /// Total speculative rounds.
    pub rounds: u64,
    /// Total separate-draft node-forwards.
    pub draft_calls: u64,
    /// Total self-draft shallow (node × layer) runs.
    pub self_draft_calls: u64,
    /// Sum of cross-entropies (perplexity = `exp(ce_sum / tokens)`).
    pub ce_sum: f64,
}

impl RunStats {
    /// Aggregates a batch of outputs.
    ///
    /// # Panics
    ///
    /// Panics if `outputs` is empty.
    pub fn aggregate(outputs: &[GenOutput]) -> Self {
        assert!(!outputs.is_empty(), "no outputs to aggregate");
        let max_layers = outputs
            .iter()
            .flat_map(|o| o.exit_layers.iter().copied())
            .max()
            .unwrap_or(0);
        let mut stats = RunStats {
            requests: outputs.len(),
            tokens: 0,
            avg_layers: 0.0,
            layer_histogram: vec![0; max_layers + 1],
            meter: Meter::new(),
            predictor_calls: 0,
            verify_calls: 0,
            rounds: 0,
            draft_calls: 0,
            self_draft_calls: 0,
            ce_sum: 0.0,
        };
        let mut layer_sum = 0u64;
        for o in outputs {
            stats.tokens += o.tokens.len() as u64;
            for &l in &o.exit_layers {
                layer_sum += l as u64;
                stats.layer_histogram[l] += 1;
            }
            stats.meter.merge(&o.meter);
            stats.predictor_calls += o.predictor_calls;
            stats.verify_calls += o.verify_calls;
            stats.rounds += o.rounds;
            stats.draft_calls += o.draft_calls;
            stats.self_draft_calls += o.self_draft_calls;
            stats.ce_sum += o.ce_sum;
        }
        if stats.tokens > 0 {
            stats.avg_layers = layer_sum as f64 / stats.tokens as f64;
        }
        stats
    }

    /// Perplexity under the model's own final distributions.
    pub fn ppl(&self) -> f64 {
        if self.tokens == 0 {
            f64::NAN
        } else {
            (self.ce_sum / self.tokens as f64).exp()
        }
    }

    /// Mean emitted tokens per speculative round (≥ 1 when speculative).
    pub fn tokens_per_round(&self) -> f64 {
        if self.rounds == 0 {
            1.0
        } else {
            self.tokens as f64 / self.rounds as f64
        }
    }
}

/// Token-level agreement between two generations (the accuracy-preservation
/// measure: SpecEE vs the dense reference).
///
/// Compares up to the shorter length; returns 1.0 for two empty slices.
pub fn agreement(a: &[TokenId], b: &[TokenId]) -> f64 {
    let n = a.len().min(b.len());
    if n == 0 {
        return 1.0;
    }
    let same = a.iter().zip(b.iter()).filter(|(x, y)| x == y).count();
    same as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn output(layers: Vec<usize>, ce: f64) -> GenOutput {
        GenOutput {
            tokens: vec![0; layers.len()],
            exit_layers: layers,
            ce_sum: ce,
            meter: Meter::new(),
            predictor_calls: 2,
            verify_calls: 1,
            rounds: 0,
            draft_calls: 3,
            self_draft_calls: 5,
        }
    }

    #[test]
    fn aggregate_sums_and_averages() {
        let stats = RunStats::aggregate(&[output(vec![4, 8], 1.0), output(vec![6], 0.5)]);
        assert_eq!(stats.tokens, 3);
        assert!((stats.avg_layers - 6.0).abs() < 1e-9);
        assert_eq!(stats.layer_histogram[8], 1);
        assert_eq!(stats.predictor_calls, 4);
        assert_eq!(stats.draft_calls, 6);
        assert_eq!(stats.self_draft_calls, 10);
        assert!((stats.ce_sum - 1.5).abs() < 1e-12);
    }

    #[test]
    fn ppl_is_exp_mean_ce() {
        let stats = RunStats::aggregate(&[output(vec![1, 1], 2.0)]);
        assert!((stats.ppl() - (1.0f64).exp()).abs() < 1e-9);
    }

    #[test]
    fn agreement_counts_matches() {
        assert_eq!(agreement(&[1, 2, 3], &[1, 2, 4]), 2.0 / 3.0);
        assert_eq!(agreement(&[], &[]), 1.0);
        assert_eq!(agreement(&[1], &[1, 2]), 1.0);
    }

    #[test]
    fn tokens_per_round_defaults_to_one() {
        let stats = RunStats::aggregate(&[output(vec![4], 0.0)]);
        assert_eq!(stats.tokens_per_round(), 1.0);
    }
}
