//! PI control of per-layer thresholds toward a target false-exit rate.

use specee_core::ExitFeedback;

use crate::classed::ClassEvidence;
use crate::controller::{mean_threshold, Controller, ControllerSummary, FeedbackCounters};

/// Gains and target for [`PidController`].
///
/// The controlled variable is the per-layer **false-exit rate** — the
/// fraction of predictor fires the full-LM-head verifier rejects,
/// tracked as an exponentially weighted moving average. Rejections above
/// the target raise that layer's threshold (the predictor is firing too
/// eagerly and wasting LM-head forwards); rejections below it lower the
/// threshold to harvest exit opportunities the current operating point
/// leaves on the table.
#[derive(Debug, Clone, PartialEq)]
pub struct PidConfig {
    /// Target false-exit rate per layer (fraction of fires rejected).
    pub target_false_exit: f64,
    /// Proportional gain on the error *change* (incremental form).
    pub kp: f64,
    /// Integral gain on the error itself, applied per observation.
    pub ki: f64,
    /// EWMA weight of the newest accept/reject outcome.
    pub ewma_alpha: f64,
    /// Downward threshold drift applied to every layer when a token runs
    /// the full stack without a single predictor fire — the exploration
    /// term that un-sticks thresholds parked above the score
    /// distribution (no fires means no feedback, so the loop would
    /// otherwise stay open forever).
    pub idle_decay: f32,
    /// Lower threshold clamp.
    pub min_threshold: f32,
    /// Upper threshold clamp.
    pub max_threshold: f32,
}

impl Default for PidConfig {
    fn default() -> Self {
        PidConfig {
            target_false_exit: 0.2,
            kp: 0.5,
            ki: 0.06,
            ewma_alpha: 0.2,
            idle_decay: 0.02,
            min_threshold: 0.05,
            max_threshold: 0.95,
        }
    }
}

#[derive(Debug, Clone)]
struct LayerLoop {
    threshold: f32,
    /// EWMA of the reject indicator, initialized at the target so the
    /// loop starts with zero error.
    reject_rate: f64,
    prev_err: f64,
}

/// Per-layer PI threshold control over the verifier's accept/reject
/// stream (the `pid` policy; the derivative term is zero — the EWMA
/// already smooths the measurement).
#[derive(Debug, Clone)]
pub struct PidController {
    config: PidConfig,
    loops: Vec<LayerLoop>,
    counters: FeedbackCounters,
    fires_since_token: u64,
}

impl PidController {
    /// Creates one control loop per predictor layer, all starting at
    /// `base_threshold`.
    pub fn new(n_predictors: usize, base_threshold: f32, config: PidConfig) -> Self {
        let base = base_threshold.clamp(config.min_threshold, config.max_threshold);
        PidController {
            loops: (0..n_predictors)
                .map(|_| LayerLoop {
                    threshold: base,
                    reject_rate: config.target_false_exit,
                    prev_err: 0.0,
                })
                .collect(),
            config,
            counters: FeedbackCounters::default(),
            fires_since_token: 0,
        }
    }
}

impl Controller for PidController {
    fn name(&self) -> &'static str {
        "pid"
    }

    fn observe(&mut self, feedback: &ExitFeedback) {
        self.counters.observe(feedback);
        self.fires_since_token += 1;
        let Some(lp) = self.loops.get_mut(feedback.layer) else {
            return;
        };
        let c = &self.config;
        let x = if feedback.accepted { 0.0 } else { 1.0 };
        lp.reject_rate = (1.0 - c.ewma_alpha) * lp.reject_rate + c.ewma_alpha * x;
        let err = lp.reject_rate - c.target_false_exit;
        let delta = c.kp * (err - lp.prev_err) + c.ki * err;
        lp.prev_err = err;
        lp.threshold = (lp.threshold + delta as f32).clamp(c.min_threshold, c.max_threshold);
    }

    fn note_token(&mut self, executed_layers: usize, n_layers: usize) {
        self.counters.tokens += 1;
        let fired = std::mem::take(&mut self.fires_since_token);
        if fired == 0 && executed_layers >= n_layers {
            // Full depth, zero fires: the loop is open. Drift every
            // threshold down until some predictor speaks again.
            for lp in &mut self.loops {
                lp.threshold =
                    (lp.threshold - self.config.idle_decay).max(self.config.min_threshold);
            }
        }
    }

    fn threshold(&self, layer: usize) -> f32 {
        self.loops[layer].threshold
    }

    fn absorb(&mut self, evidence: &ClassEvidence) {
        // A whole remote window lands at once, so each layer takes one
        // *batched* EWMA step — `n` outcomes at the window's observed
        // reject fraction — followed by one PI correction. Exponent
        // semantics match feeding the same outcomes one at a time when
        // they all agree, and the update is a pure function of the
        // evidence, so gossip preserves bit-level determinism.
        let c = self.config.clone();
        for (layer, lp) in self.loops.iter_mut().enumerate() {
            let a = evidence.layer_accepts.get(layer).copied().unwrap_or(0);
            let r = evidence.layer_rejects.get(layer).copied().unwrap_or(0);
            let n = a + r;
            if n == 0 {
                continue;
            }
            let keep = (1.0 - c.ewma_alpha).powi(n.min(1_000) as i32);
            lp.reject_rate = keep * lp.reject_rate + (1.0 - keep) * (r as f64 / n as f64);
            let err = lp.reject_rate - c.target_false_exit;
            let delta = c.kp * (err - lp.prev_err) + c.ki * err;
            lp.prev_err = err;
            lp.threshold = (lp.threshold + delta as f32).clamp(c.min_threshold, c.max_threshold);
        }
        if evidence.fires() == 0 && evidence.idle_tokens > 0 {
            // The remote window was all full-depth silence: one idle
            // decay step, exactly as a local idle token would apply.
            for lp in &mut self.loops {
                lp.threshold = (lp.threshold - c.idle_decay).max(c.min_threshold);
            }
        }
    }

    fn summary(&self) -> ControllerSummary {
        let thresholds: Vec<f32> = self.loops.iter().map(|l| l.threshold).collect();
        ControllerSummary {
            policy: self.name(),
            mean_threshold: mean_threshold(&thresholds),
            accepts: self.counters.accepts,
            rejects: self.counters.rejects,
            tokens: self.counters.tokens,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fb(layer: usize, accepted: bool) -> ExitFeedback {
        ExitFeedback {
            class: specee_core::TrafficClass::DEFAULT,
            layer,
            score: 0.7,
            threshold: 0.5,
            accepted,
        }
    }

    #[test]
    fn rejects_raise_the_fired_layers_threshold() {
        let mut ctl = PidController::new(8, 0.5, PidConfig::default());
        for _ in 0..20 {
            ctl.observe(&fb(2, false));
        }
        assert!(ctl.threshold(2) > 0.5, "thr {}", ctl.threshold(2));
        assert_eq!(ctl.threshold(5), 0.5, "other layers untouched");
    }

    #[test]
    fn accepts_lower_the_fired_layers_threshold() {
        // A clean accept stream sits below the target false-exit rate:
        // the controller harvests by loosening the threshold.
        let mut ctl = PidController::new(8, 0.5, PidConfig::default());
        for _ in 0..20 {
            ctl.observe(&fb(4, true));
        }
        assert!(ctl.threshold(4) < 0.5, "thr {}", ctl.threshold(4));
    }

    #[test]
    fn converges_near_target_reject_rate() {
        // Feed a stream whose reject probability is a step function of
        // the threshold (reject iff threshold below 0.6): the loop should
        // settle around the boundary instead of railing.
        let mut ctl = PidController::new(4, 0.2, PidConfig::default());
        for i in 0..400 {
            let rejected = ctl.threshold(0) < 0.6 && i % 5 != 0;
            ctl.observe(&fb(0, !rejected));
        }
        let thr = ctl.threshold(0);
        assert!((0.4..=0.8).contains(&thr), "thr {thr}");
    }

    #[test]
    fn idle_full_depth_tokens_decay_thresholds() {
        let mut ctl = PidController::new(4, 0.9, PidConfig::default());
        for _ in 0..40 {
            ctl.note_token(12, 12);
        }
        assert!(ctl.threshold(0) < 0.8, "thr {}", ctl.threshold(0));
        // A token with a fire in it does not decay.
        let before = ctl.threshold(1);
        ctl.observe(&fb(1, true));
        let after_fire = ctl.threshold(1);
        ctl.note_token(12, 12);
        assert_eq!(ctl.threshold(1), after_fire);
        assert!(after_fire <= before);
    }

    #[test]
    fn thresholds_stay_clamped() {
        let cfg = PidConfig::default();
        let mut ctl = PidController::new(2, 0.5, cfg.clone());
        for _ in 0..2000 {
            ctl.observe(&fb(0, false));
        }
        assert!(ctl.threshold(0) <= cfg.max_threshold);
        for _ in 0..2000 {
            ctl.observe(&fb(1, true));
        }
        assert!(ctl.threshold(1) >= cfg.min_threshold);
    }

    #[test]
    fn out_of_range_layer_is_ignored() {
        let mut ctl = PidController::new(2, 0.5, PidConfig::default());
        ctl.observe(&fb(7, false));
        assert_eq!(ctl.summary().rejects, 1);
    }

    #[test]
    fn absorbed_rejects_tighten_like_local_ones() {
        use crate::classed::ClassEvidence;
        use specee_core::TrafficClass;
        let mut ctl = PidController::new(4, 0.5, PidConfig::default());
        let mut evidence = ClassEvidence::empty(TrafficClass::new(1), 4, 12);
        evidence.layer_rejects[2] = 10;
        evidence.tokens = 10;
        evidence.executed_layers = 100;
        for _ in 0..6 {
            ctl.absorb(&evidence);
        }
        assert!(ctl.threshold(2) > 0.5, "thr {}", ctl.threshold(2));
        assert_eq!(ctl.threshold(0), 0.5, "silent layers untouched");
        assert_eq!(ctl.summary().rejects, 0, "remote evidence is not local");

        // A remote all-idle window decays every loop once.
        let mut ctl = PidController::new(4, 0.9, PidConfig::default());
        let mut idle = ClassEvidence::empty(TrafficClass::new(1), 4, 12);
        idle.tokens = 8;
        idle.executed_layers = 96;
        idle.idle_tokens = 8;
        ctl.absorb(&idle);
        let expected = 0.9 - PidConfig::default().idle_decay;
        assert!((ctl.threshold(0) - expected).abs() < 1e-6);
    }
}
