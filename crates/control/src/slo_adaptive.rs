//! The SLO-adaptive controller wrapper: burn-rate pressure bends any
//! policy's operating point.
//!
//! [`SloAdaptive`] wraps another [`Controller`] and consumes the
//! pressure signal a `specee_obs::slo::SloTracker` computes at step
//! boundaries (threaded down through
//! [`Controller::set_slo_pressure`]):
//!
//! * **positive pressure** — a latency objective (e.g. `p99_ttft`) is
//!   burning. The queue is the enemy: the wrapper blends the wrapped
//!   policy's thresholds toward an aggressive *floor* so exits fire
//!   early, steps shorten, and the backlog drains. This is exactly the
//!   move a plain bandit cannot make mid-burst — its exploration happily
//!   parks on the slow exits-off arm while requests pile up.
//! * **negative pressure** — a `false_exit_rate` objective is burning.
//!   The wrapper blends toward a conservative *ceiling* (1.0 disables
//!   exits) until the verifier stops rejecting.
//! * **zero pressure** — exact pass-through: thresholds, `apply`
//!   behavior (including the static policy's no-op `apply`) and
//!   summaries are the wrapped policy's own, bit for bit. An
//!   `SloAdaptive` wrapper whose tracker never fires is invisible.
//!
//! The wrapper holds no windows of its own — the tracker owns the
//! measurement, the wrapper owns the actuation — so wrapping changes
//! nothing about how feedback or gossip are consumed: `observe`,
//! `note_token` and `absorb` delegate untouched.

use specee_core::predictor::PredictorBank;
use specee_core::ExitFeedback;

use crate::classed::ClassEvidence;
use crate::controller::{Controller, ControllerSummary};

/// How far [`SloAdaptive`] may bend the wrapped policy.
#[derive(Debug, Clone, PartialEq)]
pub struct SloAdaptiveConfig {
    /// Aggressive threshold the operating point blends toward under
    /// full positive (latency) pressure.
    pub floor: f32,
    /// Conservative threshold under full negative (false-exit)
    /// pressure; `1.0` disables exits entirely.
    pub ceil: f32,
    /// Pressure multiplier before clamping to `[-1, 1]`; above 1 makes
    /// the wrapper saturate on milder burns.
    pub gain: f64,
}

impl Default for SloAdaptiveConfig {
    fn default() -> Self {
        SloAdaptiveConfig {
            floor: 0.2,
            ceil: 1.0,
            gain: 1.0,
        }
    }
}

/// A [`Controller`] decorator that tightens or relaxes the wrapped
/// policy's operating point from SLO burn-rate pressure. See the module
/// docs for the control direction.
pub struct SloAdaptive {
    inner: Box<dyn Controller>,
    config: SloAdaptiveConfig,
    /// Last pressure received, clamped to `[-1, 1]` (0 = pass-through).
    pressure: f64,
}

impl SloAdaptive {
    /// Wraps `inner` with default bend limits.
    pub fn new(inner: Box<dyn Controller>) -> Self {
        SloAdaptive::with_config(inner, SloAdaptiveConfig::default())
    }

    /// Wraps `inner` with explicit bend limits.
    pub fn with_config(inner: Box<dyn Controller>, config: SloAdaptiveConfig) -> Self {
        SloAdaptive {
            inner,
            config,
            pressure: 0.0,
        }
    }

    /// The effective (gained, clamped) pressure in `[-1, 1]`.
    pub fn effective_pressure(&self) -> f64 {
        (self.pressure * self.config.gain).clamp(-1.0, 1.0)
    }

    /// Blends a base threshold by the current pressure: toward the
    /// floor under positive pressure, toward the ceiling under negative,
    /// untouched at zero. The floor/ceiling never push the point
    /// *away* from safety (a base already below the floor stays put
    /// under positive pressure).
    fn bend(&self, base: f64) -> f64 {
        let p = self.effective_pressure();
        if p > 0.0 {
            let floor = f64::from(self.config.floor).min(base);
            base + (floor - base) * p
        } else if p < 0.0 {
            let ceil = f64::from(self.config.ceil).max(base);
            base + (ceil - base) * (-p)
        } else {
            base
        }
    }
}

impl Controller for SloAdaptive {
    fn name(&self) -> &'static str {
        match self.inner.name() {
            "static" => "slo+static",
            "pid" => "slo+pid",
            "bandit" => "slo+bandit",
            _ => "slo-adaptive",
        }
    }

    fn observe(&mut self, feedback: &ExitFeedback) {
        self.inner.observe(feedback);
    }

    fn note_token(&mut self, executed_layers: usize, n_layers: usize) {
        self.inner.note_token(executed_layers, n_layers);
    }

    fn threshold(&self, layer: usize) -> f32 {
        self.bend(f64::from(self.inner.threshold(layer))) as f32
    }

    fn apply(&self, bank: &mut PredictorBank) {
        if self.effective_pressure() == 0.0 {
            // Exact pass-through, including the static policy's no-op
            // `apply` — an idle wrapper is bit-invisible.
            self.inner.apply(bank);
        } else {
            for layer in 0..bank.len() {
                bank.layer_mut(layer).set_threshold(self.threshold(layer));
            }
        }
    }

    fn absorb(&mut self, evidence: &ClassEvidence) {
        self.inner.absorb(evidence);
    }

    fn set_slo_pressure(&mut self, pressure: f64) {
        self.pressure = pressure.clamp(-1.0, 1.0);
    }

    fn summary(&self) -> ControllerSummary {
        let mut s = self.inner.summary();
        s.policy = self.name();
        s.mean_threshold = self.bend(s.mean_threshold);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::StaticController;
    use crate::ControllerPolicy;
    use specee_core::predictor::PredictorConfig;
    use specee_tensor::rng::Pcg;

    fn wrapped_static(base: f32) -> SloAdaptive {
        SloAdaptive::new(Box::new(StaticController::new(4, base)))
    }

    #[test]
    fn zero_pressure_is_exact_pass_through() {
        let mut bank = PredictorBank::new(5, &PredictorConfig::default(), &mut Pcg::seed(1));
        bank.layer_mut(1).set_threshold(0.9); // deliberately off-base
        let ctl = wrapped_static(0.5);
        assert_eq!(ctl.threshold(0), 0.5);
        ctl.apply(&mut bank);
        // Static's no-op apply must survive the wrapper untouched.
        assert_eq!(bank.layer(1).threshold(), 0.9);
        assert_eq!(ctl.summary().mean_threshold, 0.5);
    }

    #[test]
    fn positive_pressure_bends_toward_the_floor() {
        let mut ctl = wrapped_static(0.6);
        ctl.set_slo_pressure(0.5);
        let t = ctl.threshold(0);
        assert!((t - 0.4).abs() < 1e-6, "halfway to the 0.2 floor: {t}");
        ctl.set_slo_pressure(1.0);
        assert!((ctl.threshold(0) - 0.2).abs() < 1e-6);
        // Applying under pressure writes the bent thresholds even for
        // a wrapped static policy.
        let mut bank = PredictorBank::new(5, &PredictorConfig::default(), &mut Pcg::seed(1));
        ctl.apply(&mut bank);
        assert!((bank.layer(0).threshold() - 0.2).abs() < 1e-6);
    }

    #[test]
    fn negative_pressure_bends_toward_the_ceiling() {
        let mut ctl = wrapped_static(0.6);
        ctl.set_slo_pressure(-1.0);
        assert!((ctl.threshold(0) - 1.0).abs() < 1e-6, "exits disabled");
        ctl.set_slo_pressure(-0.5);
        assert!((ctl.threshold(0) - 0.8).abs() < 1e-6);
    }

    #[test]
    fn floor_never_loosens_an_already_aggressive_base() {
        let mut ctl = wrapped_static(0.1); // below the 0.2 floor
        ctl.set_slo_pressure(1.0);
        assert!((ctl.threshold(0) - 0.1).abs() < 1e-6, "stays at base");
    }

    #[test]
    fn pressure_and_gain_are_clamped() {
        let mut ctl = SloAdaptive::with_config(
            Box::new(StaticController::new(4, 0.6)),
            SloAdaptiveConfig {
                gain: 10.0,
                ..SloAdaptiveConfig::default()
            },
        );
        ctl.set_slo_pressure(0.3);
        assert_eq!(ctl.effective_pressure(), 1.0, "gain saturates");
        ctl.set_slo_pressure(-99.0);
        assert_eq!(ctl.effective_pressure(), -1.0, "pressure clamps");
    }

    #[test]
    fn names_reflect_the_wrapped_policy() {
        for (policy, want) in [
            (ControllerPolicy::Static, "slo+static"),
            (ControllerPolicy::pid(), "slo+pid"),
            (ControllerPolicy::bandit(), "slo+bandit"),
        ] {
            let ctl = SloAdaptive::new(policy.build(4, 0.5));
            assert_eq!(ctl.name(), want);
            assert_eq!(ctl.summary().policy, want);
        }
    }

    #[test]
    fn feedback_and_tokens_delegate_to_the_inner_policy() {
        let mut ctl = wrapped_static(0.5);
        ctl.observe(&ExitFeedback {
            class: specee_core::TrafficClass::DEFAULT,
            layer: 1,
            score: 0.7,
            threshold: 0.5,
            accepted: false,
        });
        ctl.note_token(4, 8);
        let s = ctl.summary();
        assert_eq!((s.accepts, s.rejects, s.tokens), (0, 1, 1));
    }
}
