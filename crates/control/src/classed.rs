//! The class-keyed feedback plane: per-class controller instances and
//! the summarized cross-worker evidence they exchange.
//!
//! A single [`Controller`] blurs mixed traffic into one operating point.
//! [`ClassedController`] keys full controller state — PID loops, bandit
//! posteriors — by [`TrafficClass`] behind a shared
//! [`specee_core::traffic::ClassMap`]: untagged traffic lands in the
//! lazily created default class and behaves exactly as the un-classed
//! runtime did, while tagged traffic gets its own loops/posteriors the
//! first time it is seen. The same structure accumulates per-class
//! [`ClassEvidence`] deltas — the summarized accept/reject/depth record
//! a cluster coordinator gossips between workers so drift observed by
//! one worker is not re-learned from scratch by the others.

use specee_core::predictor::PredictorBank;
use specee_core::traffic::{ClassMap, TrafficClass};
use specee_core::ExitFeedback;

use crate::controller::{Controller, ControllerSummary};
use crate::policy::ControllerPolicy;

/// Summarized per-class feedback evidence, the unit of cross-worker
/// controller gossip.
///
/// One delta covers everything a controller's class observed since the
/// last drain: per-layer verifier accepts/rejects, emitted tokens with
/// their executed-layer total, idle full-depth tokens (no fire — the
/// signal PID's idle decay feeds on), and the operating point the
/// window was earned under (so a bandit on the receiving side can
/// credit the arm the evidence speaks to). Deltas travel **per
/// reporter**: the coordinator never averages two workers' windows into
/// one, because a blended operating point would attribute both workers'
/// outcomes to an arm neither played.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassEvidence {
    /// The traffic class the evidence describes.
    pub class: TrafficClass,
    /// Decoder depth of the reporting engine (denominator of the
    /// work-saved reward).
    pub n_layers: usize,
    /// Verifier accepts per predictor layer.
    pub layer_accepts: Vec<u64>,
    /// Verifier rejects (false exits) per predictor layer.
    pub layer_rejects: Vec<u64>,
    /// Tokens emitted for the class in the window.
    pub tokens: u64,
    /// Total decoder layers those tokens executed.
    pub executed_layers: u64,
    /// Tokens that ran the full stack without a single predictor fire.
    pub idle_tokens: u64,
    /// Mean threshold the reporting controller held for the class when
    /// the window opened (the operating point the evidence speaks to).
    pub mean_threshold: f64,
}

impl ClassEvidence {
    /// An empty delta for `class` on an `n_layers`-deep engine with
    /// `n_predictors` predictor layers.
    pub fn empty(class: TrafficClass, n_predictors: usize, n_layers: usize) -> Self {
        ClassEvidence {
            class,
            n_layers,
            layer_accepts: vec![0; n_predictors],
            layer_rejects: vec![0; n_predictors],
            tokens: 0,
            executed_layers: 0,
            idle_tokens: 0,
            mean_threshold: 0.0,
        }
    }

    /// Total verifier accepts across layers.
    pub fn accepts(&self) -> u64 {
        self.layer_accepts.iter().sum()
    }

    /// Total verifier rejects across layers.
    pub fn rejects(&self) -> u64 {
        self.layer_rejects.iter().sum()
    }

    /// Total predictor fires (accepts + rejects).
    pub fn fires(&self) -> u64 {
        self.accepts() + self.rejects()
    }

    /// Whether the window recorded nothing worth gossiping.
    pub fn is_empty(&self) -> bool {
        self.tokens == 0 && self.fires() == 0
    }
}

/// One class's live state: the policy instance plus the evidence delta
/// accumulated since the last drain.
struct ClassState {
    controller: Box<dyn Controller>,
    delta: ClassEvidence,
    /// Fires observed since the last `note_token`, for idle detection.
    fires_since_token: u64,
}

/// A traffic-class-keyed controller: one full policy instance per
/// observed class, lazily created, all walked in ascending class order.
///
/// This is what runtimes attach to an engine. Feedback events route to
/// their class's instance (the class rides on [`ExitFeedback`] itself),
/// thresholds resolve per `(class, layer)` at step boundaries, and each
/// class's operating point is pushed into that class's predictor bank —
/// one blurred global threshold vector becomes one vector per class.
///
/// Per-class **evidence deltas** accumulate alongside
/// ([`ClassedController::drain_evidence`]) and remote deltas merge back
/// in via [`ClassedController::absorb`] — the cluster coordinator's
/// gossip path. The static policy ignores evidence, so gossip never
/// perturbs a static (parity) run.
///
/// # Examples
///
/// ```
/// use specee_control::ControllerPolicy;
/// use specee_core::{ExitFeedback, TrafficClass};
///
/// let mut ctl = ControllerPolicy::pid().build_classed(8, 0.5);
/// let chat = TrafficClass::new(1);
/// // A rejection burst on the chat class tightens *its* layer-3 loop...
/// for _ in 0..16 {
///     ctl.observe(&ExitFeedback {
///         class: chat,
///         layer: 3,
///         score: 0.6,
///         threshold: 0.5,
///         accepted: false,
///     });
/// }
/// assert!(ctl.threshold(chat, 3) > 0.5);
/// // ...while the default class still sits at its base operating point.
/// assert_eq!(ctl.threshold(TrafficClass::DEFAULT, 3), 0.5);
/// ```
pub struct ClassedController {
    policy: ControllerPolicy,
    n_predictors: usize,
    base_threshold: f32,
    worker: usize,
    /// Per-class base-threshold overrides (e.g. hindsight-oracle pins),
    /// consulted when the class's instance is first created.
    pinned: ClassMap<f32>,
    classes: ClassMap<ClassState>,
    /// Last SLO pressure received; replayed onto lazily created class
    /// instances so a class admitted mid-burn starts bent, not neutral.
    slo_pressure: f64,
}

impl ClassedController {
    /// A classed controller for a single engine (worker 0's seed
    /// stream).
    pub fn new(policy: ControllerPolicy, n_predictors: usize, base_threshold: f32) -> Self {
        ClassedController::for_worker(policy, n_predictors, base_threshold, 0)
    }

    /// A classed controller for cluster worker `worker`: every class
    /// instance draws a seed decorrelated by `(worker, class)`, each
    /// individually reproducible.
    pub fn for_worker(
        policy: ControllerPolicy,
        n_predictors: usize,
        base_threshold: f32,
        worker: usize,
    ) -> Self {
        ClassedController {
            policy,
            n_predictors,
            base_threshold,
            worker,
            pinned: ClassMap::new(),
            classes: ClassMap::new(),
            slo_pressure: 0.0,
        }
    }

    /// The policy every class instance is built from.
    pub fn policy(&self) -> &ControllerPolicy {
        &self.policy
    }

    /// The policy's canonical name.
    pub fn name(&self) -> &'static str {
        self.policy.name()
    }

    /// The base threshold classes start from (unless pinned).
    pub fn base_threshold(&self) -> f32 {
        self.base_threshold
    }

    /// Pins `class`'s starting operating point to `base` instead of the
    /// shared base threshold. Takes effect when the class's instance is
    /// created, so pin before the class sees traffic (pinning an
    /// already-live class only affects a hypothetical rebuild).
    pub fn pin_class_base(&mut self, class: TrafficClass, base: f32) {
        *self.pinned.get_or_insert_with(class, || base) = base;
    }

    /// The classes that have state so far, ascending.
    pub fn classes(&self) -> Vec<TrafficClass> {
        self.classes.classes()
    }

    fn class_base(&self, class: TrafficClass) -> f32 {
        self.pinned
            .get(class)
            .copied()
            .unwrap_or(self.base_threshold)
    }

    /// Lazily creates and returns the state for `class`.
    fn ensure(&mut self, class: TrafficClass) -> &mut ClassState {
        let (policy, n_predictors, worker) = (&self.policy, self.n_predictors, self.worker);
        let base = self.class_base(class);
        let pressure = self.slo_pressure;
        self.classes.get_or_insert_with(class, || {
            let mut controller = policy.build_for_worker_class(n_predictors, base, worker, class);
            if pressure != 0.0 {
                controller.set_slo_pressure(pressure);
            }
            ClassState {
                controller,
                delta: ClassEvidence::empty(class, n_predictors, 0),
                fires_since_token: 0,
            }
        })
    }

    /// Broadcasts the SLO burn-rate pressure signal to every class
    /// instance (and remembers it for classes created later). Plain
    /// policies ignore it; `slo+*` wrappers bend their operating points
    /// at the next step-boundary apply.
    pub fn set_slo_pressure(&mut self, pressure: f64) {
        self.slo_pressure = pressure.clamp(-1.0, 1.0);
        for (_, state) in self.classes.iter_mut() {
            state.controller.set_slo_pressure(self.slo_pressure);
        }
    }

    /// Routes one verifier outcome to its class's instance (the class
    /// rides on the event) and records it in the class's evidence delta.
    pub fn observe(&mut self, feedback: &ExitFeedback) {
        let n_predictors = self.n_predictors;
        let state = self.ensure(feedback.class);
        state.controller.observe(feedback);
        state.fires_since_token += 1;
        if feedback.layer < n_predictors {
            if feedback.accepted {
                state.delta.layer_accepts[feedback.layer] += 1;
            } else {
                state.delta.layer_rejects[feedback.layer] += 1;
            }
        }
    }

    /// Feeds one emitted token of `class` (how many decoder layers it
    /// executed) to the class's instance and evidence delta. The
    /// delta's operating point is stamped when the window *opens* —
    /// stamping at drain time would attribute tokens decoded before an
    /// arm switch to the new arm, and averaging across the window would
    /// credit an in-between arm neither operating point played; both
    /// corrupt a receiving bandit's credit assignment.
    pub fn note_token(&mut self, class: TrafficClass, executed_layers: usize, n_layers: usize) {
        let state = self.ensure(class);
        if state.delta.tokens == 0 {
            state.delta.mean_threshold = state.controller.summary().mean_threshold;
        }
        state.controller.note_token(executed_layers, n_layers);
        state.delta.n_layers = state.delta.n_layers.max(n_layers);
        state.delta.tokens += 1;
        state.delta.executed_layers += executed_layers.min(n_layers) as u64;
        if state.fires_since_token == 0 && executed_layers >= n_layers {
            state.delta.idle_tokens += 1;
        }
        state.fires_since_token = 0;
    }

    /// The current threshold for `(class, layer)` — the class's base
    /// when the class has no state yet.
    pub fn threshold(&self, class: TrafficClass, layer: usize) -> f32 {
        match self.classes.get(class) {
            Some(state) => state.controller.threshold(layer),
            None => self.class_base(class),
        }
    }

    /// Pushes `class`'s operating point into `bank` (the class's own
    /// predictor bank). Delegates to the instance's
    /// [`Controller::apply`], so the static policy stays a strict no-op.
    pub fn apply(&self, class: TrafficClass, bank: &mut PredictorBank) {
        if let Some(state) = self.classes.get(class) {
            state.controller.apply(bank);
        }
    }

    /// Initializes a freshly cloned per-class `bank`: creates the
    /// class's instance, applies a pinned base threshold if one was set,
    /// then lets the instance apply its operating point. For the static
    /// policy (no-op apply) the pin alone takes effect, which is how
    /// hindsight-oracle per-class static operating points are expressed.
    pub fn init_class_bank(&mut self, class: TrafficClass, bank: &mut PredictorBank) {
        if let Some(&pin) = self.pinned.get(class) {
            bank.set_threshold(pin);
        }
        self.ensure(class);
        self.apply(class, bank);
    }

    /// Absorbs one remote evidence delta into its class's instance,
    /// creating the class if this worker has not seen it yet — that is
    /// the gossip payoff: a worker learns a class's operating point
    /// before its first local request of that class.
    pub fn absorb(&mut self, evidence: &ClassEvidence) {
        if evidence.is_empty() {
            return;
        }
        self.ensure(evidence.class).controller.absorb(evidence);
    }

    /// Minimum tokens a class's window must have accumulated before
    /// [`ClassedController::drain_evidence`] releases it. Drains happen
    /// at every cluster arrival frontier — often every token or two —
    /// and a 1-token window's work-saved reward is mostly noise; holding
    /// windows until they carry half an epoch of evidence keeps gossip
    /// informative instead of drowning receivers in ~0.5-reward
    /// fragments.
    pub const MIN_GOSSIP_TOKENS: u64 = 4;

    /// Drains the matured per-class evidence deltas accumulated since
    /// each class's last drain (ascending class order). Windows below
    /// [`ClassedController::MIN_GOSSIP_TOKENS`] keep accumulating and
    /// drain at a later call. Each delta carries the operating point it
    /// was earned under, stamped when its window opened (see
    /// [`ClassedController::note_token`]).
    pub fn drain_evidence(&mut self) -> Vec<ClassEvidence> {
        let n_predictors = self.n_predictors;
        let mut out = Vec::new();
        for (class, state) in self.classes.iter_mut() {
            if state.delta.tokens < Self::MIN_GOSSIP_TOKENS {
                continue;
            }
            out.push(std::mem::replace(
                &mut state.delta,
                ClassEvidence::empty(class, n_predictors, 0),
            ));
        }
        out
    }

    /// Merged counters across classes plus the mean of the per-class
    /// operating points (the single-number view reports already print).
    pub fn summary(&self) -> ControllerSummary {
        if self.classes.is_empty() {
            return ControllerSummary {
                policy: self.name(),
                mean_threshold: f64::from(self.base_threshold),
                accepts: 0,
                rejects: 0,
                tokens: 0,
            };
        }
        let mut merged = ControllerSummary {
            policy: self.name(),
            mean_threshold: 0.0,
            accepts: 0,
            rejects: 0,
            tokens: 0,
        };
        for (_, state) in self.classes.iter() {
            let s = state.controller.summary();
            merged.mean_threshold += s.mean_threshold;
            merged.accepts += s.accepts;
            merged.rejects += s.rejects;
            merged.tokens += s.tokens;
        }
        merged.mean_threshold /= self.classes.len() as f64;
        merged
    }

    /// Per-class summaries, ascending class order.
    pub fn class_summaries(&self) -> Vec<(TrafficClass, ControllerSummary)> {
        self.classes
            .iter()
            .map(|(class, state)| (class, state.controller.summary()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slo_pressure_reaches_every_class_including_late_ones() {
        let policy = ControllerPolicy::Static.slo_adaptive();
        let mut ctl = policy.build_classed(4, 0.6);
        let early = TrafficClass::new(1);
        ctl.observe(&ExitFeedback {
            class: early,
            layer: 0,
            score: 0.7,
            threshold: 0.6,
            accepted: true,
        });
        assert_eq!(ctl.threshold(early, 0), 0.6);
        ctl.set_slo_pressure(1.0);
        assert!(
            (ctl.threshold(early, 0) - 0.2).abs() < 1e-6,
            "existing class bends to the floor"
        );
        // A class first seen *after* the pressure was set starts bent.
        let late = TrafficClass::new(2);
        ctl.note_token(late, 4, 4);
        assert!(
            (ctl.threshold(late, 0) - 0.2).abs() < 1e-6,
            "late class inherits the ambient pressure"
        );
        ctl.set_slo_pressure(0.0);
        assert_eq!(ctl.threshold(early, 0), 0.6);
        assert_eq!(ctl.threshold(late, 0), 0.6);
    }

    fn fb(class: TrafficClass, layer: usize, accepted: bool) -> ExitFeedback {
        ExitFeedback {
            class,
            layer,
            score: 0.7,
            threshold: 0.5,
            accepted,
        }
    }

    #[test]
    fn classes_are_lazy_and_independent() {
        let mut ctl = ControllerPolicy::pid().build_classed(4, 0.5);
        assert!(ctl.classes().is_empty(), "no traffic, no state");
        let (a, b) = (TrafficClass::new(1), TrafficClass::new(2));
        for _ in 0..20 {
            ctl.observe(&fb(a, 1, false)); // rejections: tighten
            ctl.observe(&fb(b, 1, true)); // accepts: harvest
        }
        assert_eq!(ctl.classes(), vec![a, b]);
        assert!(ctl.threshold(a, 1) > 0.5, "a {}", ctl.threshold(a, 1));
        assert!(ctl.threshold(b, 1) < 0.5, "b {}", ctl.threshold(b, 1));
        // An untouched class reports the base operating point.
        assert_eq!(ctl.threshold(TrafficClass::DEFAULT, 1), 0.5);
        let summary = ctl.summary();
        assert_eq!((summary.accepts, summary.rejects), (20, 20));
        assert_eq!(ctl.class_summaries().len(), 2);
    }

    #[test]
    fn empty_controller_summary_reports_base() {
        let ctl = ControllerPolicy::bandit().build_classed(4, 0.5);
        let s = ctl.summary();
        assert_eq!(s.mean_threshold, 0.5);
        assert_eq!((s.accepts, s.rejects, s.tokens), (0, 0, 0));
    }

    #[test]
    fn evidence_accumulates_and_drains_once() {
        let mut ctl = ControllerPolicy::pid().build_classed(4, 0.5);
        let c = TrafficClass::new(3);
        ctl.observe(&fb(c, 2, false));
        ctl.observe(&fb(c, 2, true));
        ctl.note_token(c, 3, 8);
        ctl.observe(&fb(c, 0, true));
        ctl.note_token(c, 8, 8); // full depth, but a fire preceded: not idle
        ctl.note_token(c, 1, 8); // no fire, but exited early: not idle either
        ctl.note_token(TrafficClass::DEFAULT, 8, 8); // idle full-depth token
                                                     // Class 3 sits at 3 tokens, default at 1: neither window has
                                                     // matured, so nothing drains yet.
        assert!(ctl.drain_evidence().is_empty(), "immature windows held");
        ctl.note_token(c, 2, 8);
        let evidence = ctl.drain_evidence();
        assert_eq!(evidence.len(), 1, "only the matured class drains");
        let e = &evidence[0];
        assert_eq!(e.class, c);
        assert_eq!((e.accepts(), e.rejects()), (2, 1));
        assert_eq!(e.layer_rejects[2], 1);
        assert_eq!(e.tokens, 4);
        assert_eq!(e.executed_layers, 3 + 8 + 1 + 2);
        assert_eq!(e.idle_tokens, 0);
        assert_eq!(e.n_layers, 8);
        assert!(e.mean_threshold > 0.0);
        assert!(ctl.drain_evidence().is_empty(), "drained exactly once");
        // The default class's held window keeps accumulating and drains
        // once it matures.
        for _ in 0..3 {
            ctl.note_token(TrafficClass::DEFAULT, 8, 8);
        }
        let evidence = ctl.drain_evidence();
        assert_eq!(evidence.len(), 1);
        assert!(evidence[0].class.is_default());
        assert_eq!(evidence[0].tokens, 4);
        assert_eq!(evidence[0].idle_tokens, 4);
    }

    #[test]
    fn absorb_creates_the_class_before_local_traffic() {
        // The gossip payoff: remote rejection-heavy evidence warms a
        // class this controller has never served.
        let mut ctl = ControllerPolicy::pid().build_classed(4, 0.5);
        let c = TrafficClass::new(2);
        let mut evidence = ClassEvidence::empty(c, 4, 8);
        evidence.layer_rejects[1] = 12;
        evidence.tokens = 12;
        evidence.executed_layers = 12 * 3;
        evidence.mean_threshold = 0.5;
        for _ in 0..8 {
            ctl.absorb(&evidence);
        }
        assert_eq!(ctl.classes(), vec![c]);
        assert!(
            ctl.threshold(c, 1) > 0.5,
            "remote rejects tighten the warmed class: {}",
            ctl.threshold(c, 1)
        );
        // Absorbing empty evidence is a no-op.
        ctl.absorb(&ClassEvidence::empty(TrafficClass::new(7), 4, 8));
        assert_eq!(ctl.classes(), vec![c]);
    }

    #[test]
    fn pinned_base_takes_effect_at_class_creation() {
        let mut ctl = ControllerPolicy::Static.build_classed(4, 0.5);
        let c = TrafficClass::new(1);
        ctl.pin_class_base(c, 0.8);
        assert_eq!(ctl.threshold(c, 0), 0.8, "pin visible before creation");
        let mut bank = PredictorBank::new(
            5,
            &specee_core::predictor::PredictorConfig::default(),
            &mut specee_tensor::rng::Pcg::seed(3),
        );
        ctl.init_class_bank(c, &mut bank);
        assert_eq!(
            bank.layer(0).threshold(),
            0.8,
            "pinned static operating point"
        );
        // The unpinned default class leaves a bank untouched under static.
        let before = bank.layer(1).threshold();
        ctl.init_class_bank(TrafficClass::DEFAULT, &mut bank);
        assert_eq!(bank.layer(1).threshold(), before);
    }

    #[test]
    fn static_ignores_absorbed_evidence() {
        let mut ctl = ControllerPolicy::Static.build_classed(4, 0.5);
        let c = TrafficClass::new(1);
        let mut evidence = ClassEvidence::empty(c, 4, 8);
        evidence.layer_rejects[0] = 50;
        evidence.tokens = 50;
        evidence.mean_threshold = 0.5;
        ctl.absorb(&evidence);
        assert_eq!(ctl.threshold(c, 0), 0.5, "static never moves");
    }
}
