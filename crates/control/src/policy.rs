//! CLI/config-level controller selection.

use crate::bandit::{BanditConfig, BanditController};
use crate::controller::{Controller, StaticController};
use crate::pid::{PidConfig, PidController};

/// A buildable controller choice: what rides in configuration structs
/// (e.g. `ClusterConfig`) and what `--controller <policy>` parses into.
///
/// Each worker/engine builds its *own* controller from the policy
/// ([`ControllerPolicy::build`] / [`ControllerPolicy::build_for_worker`])
/// so controller state is never shared across threads — determinism
/// comes from each instance consuming its own engine's feedback stream
/// in program order.
#[derive(Debug, Clone, PartialEq)]
pub enum ControllerPolicy {
    /// Fixed thresholds — today's behavior, the baseline.
    Static,
    /// Per-layer PI control toward a target false-exit rate.
    Pid(PidConfig),
    /// Thompson sampling over a threshold grid.
    Bandit(BanditConfig),
}

impl ControllerPolicy {
    /// The PID policy with default gains.
    pub fn pid() -> Self {
        ControllerPolicy::Pid(PidConfig::default())
    }

    /// The bandit policy with the default grid and seed.
    pub fn bandit() -> Self {
        ControllerPolicy::Bandit(BanditConfig::default())
    }

    /// All built-in policies with default configurations, in CLI listing
    /// order.
    pub fn all() -> [ControllerPolicy; 3] {
        [
            ControllerPolicy::Static,
            ControllerPolicy::pid(),
            ControllerPolicy::bandit(),
        ]
    }

    /// The policy's canonical CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            ControllerPolicy::Static => "static",
            ControllerPolicy::Pid(_) => "pid",
            ControllerPolicy::Bandit(_) => "bandit",
        }
    }

    /// Parses a CLI name (`static`, `pid`, `bandit`) into the policy
    /// with default configuration.
    pub fn parse(name: &str) -> Option<ControllerPolicy> {
        match name {
            "static" => Some(ControllerPolicy::Static),
            "pid" => Some(ControllerPolicy::pid()),
            "bandit" => Some(ControllerPolicy::bandit()),
            _ => None,
        }
    }

    /// Builds the controller for an engine with `n_predictors` predictor
    /// layers whose bank currently operates at `base_threshold`.
    pub fn build(&self, n_predictors: usize, base_threshold: f32) -> Box<dyn Controller> {
        match self {
            ControllerPolicy::Static => {
                Box::new(StaticController::new(n_predictors, base_threshold))
            }
            ControllerPolicy::Pid(config) => Box::new(PidController::new(
                n_predictors,
                base_threshold,
                config.clone(),
            )),
            ControllerPolicy::Bandit(config) => {
                Box::new(BanditController::new(base_threshold, config.clone()))
            }
        }
    }

    /// [`ControllerPolicy::build`] with a per-worker seed derivation, so
    /// the workers of a cluster run decorrelated (but each individually
    /// deterministic) exploration streams.
    pub fn build_for_worker(
        &self,
        n_predictors: usize,
        base_threshold: f32,
        worker: usize,
    ) -> Box<dyn Controller> {
        match self {
            ControllerPolicy::Bandit(config) => {
                let mut config = config.clone();
                config.seed = config
                    .seed
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(worker as u64);
                Box::new(BanditController::new(base_threshold, config))
            }
            _ => self.build(n_predictors, base_threshold),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip_through_parse() {
        for policy in ControllerPolicy::all() {
            assert_eq!(
                ControllerPolicy::parse(policy.name())
                    .as_ref()
                    .map(|p| p.name()),
                Some(policy.name())
            );
        }
        assert_eq!(ControllerPolicy::parse("nonsense"), None);
    }

    #[test]
    fn build_matches_policy_name() {
        for policy in ControllerPolicy::all() {
            assert_eq!(policy.build(8, 0.5).name(), policy.name());
        }
    }

    #[test]
    fn worker_seeds_diverge_for_bandit_only() {
        let bandit = ControllerPolicy::bandit();
        let mut a = bandit.build_for_worker(8, 0.5, 0);
        let mut b = bandit.build_for_worker(8, 0.5, 1);
        // Same start...
        assert_eq!(a.threshold(0), b.threshold(0));
        // ...but genuinely different exploration streams once epochs
        // begin: drive both through identical mid-reward feedback (so
        // only the Thompson draws differ) and record their trajectories.
        let mut diverged = false;
        for i in 0..400u64 {
            for ctl in [&mut a, &mut b] {
                ctl.note_token(if i % 2 == 0 { 4 } else { 12 }, 12);
            }
            diverged |= a.threshold(0) != b.threshold(0);
        }
        assert!(diverged, "worker seeds must decorrelate bandit arms");
        let pid = ControllerPolicy::pid();
        assert_eq!(pid.build_for_worker(8, 0.5, 3).threshold(2), 0.5);
    }
}
