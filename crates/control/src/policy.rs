//! CLI/config-level controller selection.

use specee_core::traffic::TrafficClass;

use crate::bandit::{BanditConfig, BanditController};
use crate::classed::ClassedController;
use crate::controller::{Controller, StaticController};
use crate::pid::{PidConfig, PidController};
use crate::slo_adaptive::{SloAdaptive, SloAdaptiveConfig};

/// A buildable controller choice: what rides in configuration structs
/// (e.g. `ClusterConfig`) and what `--controller <policy>` parses into.
///
/// Each worker/engine builds its *own* controller from the policy
/// ([`ControllerPolicy::build`] / [`ControllerPolicy::build_for_worker`])
/// so controller state is never shared across threads — determinism
/// comes from each instance consuming its own engine's feedback stream
/// in program order.
#[derive(Debug, Clone, PartialEq)]
pub enum ControllerPolicy {
    /// Fixed thresholds — today's behavior, the baseline.
    Static,
    /// Per-layer PI control toward a target false-exit rate.
    Pid(PidConfig),
    /// Thompson sampling over a threshold grid.
    Bandit(BanditConfig),
    /// Any policy wrapped in the SLO burn-rate decorator (what
    /// `--slo ...` turns the chosen policy into).
    SloAdaptive {
        /// The wrapped policy.
        inner: Box<ControllerPolicy>,
        /// Bend limits for the wrapper.
        config: SloAdaptiveConfig,
    },
}

impl ControllerPolicy {
    /// The PID policy with default gains.
    pub fn pid() -> Self {
        ControllerPolicy::Pid(PidConfig::default())
    }

    /// The bandit policy with the default grid and seed.
    pub fn bandit() -> Self {
        ControllerPolicy::Bandit(BanditConfig::default())
    }

    /// All built-in policies with default configurations, in CLI listing
    /// order.
    pub fn all() -> [ControllerPolicy; 3] {
        [
            ControllerPolicy::Static,
            ControllerPolicy::pid(),
            ControllerPolicy::bandit(),
        ]
    }

    /// Wraps this policy in the SLO burn-rate decorator with default
    /// bend limits.
    pub fn slo_adaptive(self) -> Self {
        ControllerPolicy::SloAdaptive {
            inner: Box::new(self),
            config: SloAdaptiveConfig::default(),
        }
    }

    /// The policy's canonical CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            ControllerPolicy::Static => "static",
            ControllerPolicy::Pid(_) => "pid",
            ControllerPolicy::Bandit(_) => "bandit",
            ControllerPolicy::SloAdaptive { inner, .. } => match inner.name() {
                "static" => "slo+static",
                "pid" => "slo+pid",
                "bandit" => "slo+bandit",
                _ => "slo-adaptive",
            },
        }
    }

    /// Parses a CLI name (`static`, `pid`, `bandit`, or any of those
    /// prefixed with `slo+`) into the policy with default configuration.
    pub fn parse(name: &str) -> Option<ControllerPolicy> {
        if let Some(inner) = name.strip_prefix("slo+") {
            return ControllerPolicy::parse(inner).map(ControllerPolicy::slo_adaptive);
        }
        match name {
            "static" => Some(ControllerPolicy::Static),
            "pid" => Some(ControllerPolicy::pid()),
            "bandit" => Some(ControllerPolicy::bandit()),
            _ => None,
        }
    }

    /// Builds the controller for an engine with `n_predictors` predictor
    /// layers whose bank currently operates at `base_threshold`.
    pub fn build(&self, n_predictors: usize, base_threshold: f32) -> Box<dyn Controller> {
        match self {
            ControllerPolicy::Static => {
                Box::new(StaticController::new(n_predictors, base_threshold))
            }
            ControllerPolicy::Pid(config) => Box::new(PidController::new(
                n_predictors,
                base_threshold,
                config.clone(),
            )),
            ControllerPolicy::Bandit(config) => {
                Box::new(BanditController::new(base_threshold, config.clone()))
            }
            ControllerPolicy::SloAdaptive { inner, config } => Box::new(SloAdaptive::with_config(
                inner.build(n_predictors, base_threshold),
                config.clone(),
            )),
        }
    }

    /// [`ControllerPolicy::build`] with a per-worker seed derivation, so
    /// the workers of a cluster run decorrelated (but each individually
    /// deterministic) exploration streams.
    pub fn build_for_worker(
        &self,
        n_predictors: usize,
        base_threshold: f32,
        worker: usize,
    ) -> Box<dyn Controller> {
        self.build_for_worker_class(n_predictors, base_threshold, worker, TrafficClass::DEFAULT)
    }

    /// [`ControllerPolicy::build_for_worker`] additionally decorrelated
    /// per traffic class: the bandit instance serving `(worker, class)`
    /// draws its own exploration stream — reproducible for the pair,
    /// distinct across workers *and* across the classes of one worker.
    /// The default class reproduces [`ControllerPolicy::build_for_worker`]
    /// exactly, and `(worker 0, default class)` reproduces
    /// [`ControllerPolicy::build`] — a solo engine and a one-worker
    /// cluster draw the same exploration stream.
    pub fn build_for_worker_class(
        &self,
        n_predictors: usize,
        base_threshold: f32,
        worker: usize,
        class: TrafficClass,
    ) -> Box<dyn Controller> {
        match self {
            ControllerPolicy::Bandit(config) => {
                let mut config = config.clone();
                if worker != 0 {
                    config.seed = config
                        .seed
                        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                        .wrapping_add(worker as u64);
                }
                if !class.is_default() {
                    // The class id is offset past any plausible worker
                    // index before mixing, so `(worker 0, class k)` can
                    // never collide with `(worker k, default class)` —
                    // both would otherwise reduce to one multiply-add
                    // of the same small integer.
                    config.seed = config
                        .seed
                        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                        .wrapping_add((1u64 << 32) | u64::from(class.id()));
                }
                Box::new(BanditController::new(base_threshold, config))
            }
            // The wrapper is stateless w.r.t. seeding: the inner policy
            // does the (worker, class) decorrelation, the wrapper rides
            // on top of whichever instance comes out.
            ControllerPolicy::SloAdaptive { inner, config } => Box::new(SloAdaptive::with_config(
                inner.build_for_worker_class(n_predictors, base_threshold, worker, class),
                config.clone(),
            )),
            _ => self.build(n_predictors, base_threshold),
        }
    }

    /// Builds the traffic-class-keyed controller runtimes attach: one
    /// full policy instance per observed class behind a shared
    /// `ClassMap`, lazily created (untagged traffic lands in the default
    /// class and behaves exactly like [`ControllerPolicy::build`]'s
    /// single instance).
    pub fn build_classed(&self, n_predictors: usize, base_threshold: f32) -> ClassedController {
        ClassedController::new(self.clone(), n_predictors, base_threshold)
    }

    /// [`ControllerPolicy::build_classed`] for cluster worker `worker`:
    /// class instances draw `(worker, class)`-decorrelated seeds via
    /// [`ControllerPolicy::build_for_worker_class`].
    pub fn build_classed_for_worker(
        &self,
        n_predictors: usize,
        base_threshold: f32,
        worker: usize,
    ) -> ClassedController {
        ClassedController::for_worker(self.clone(), n_predictors, base_threshold, worker)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip_through_parse() {
        for policy in ControllerPolicy::all() {
            assert_eq!(
                ControllerPolicy::parse(policy.name())
                    .as_ref()
                    .map(|p| p.name()),
                Some(policy.name())
            );
        }
        assert_eq!(ControllerPolicy::parse("nonsense"), None);
    }

    #[test]
    fn build_matches_policy_name() {
        for policy in ControllerPolicy::all() {
            assert_eq!(policy.build(8, 0.5).name(), policy.name());
        }
    }

    #[test]
    fn worker_seeds_diverge_for_bandit_only() {
        let bandit = ControllerPolicy::bandit();
        let mut a = bandit.build_for_worker(8, 0.5, 0);
        let mut b = bandit.build_for_worker(8, 0.5, 1);
        // Same start...
        assert_eq!(a.threshold(0), b.threshold(0));
        // ...but genuinely different exploration streams once epochs
        // begin: drive both through identical mid-reward feedback (so
        // only the Thompson draws differ) and record their trajectories.
        let mut diverged = false;
        for i in 0..400u64 {
            for ctl in [&mut a, &mut b] {
                ctl.note_token(if i % 2 == 0 { 4 } else { 12 }, 12);
            }
            diverged |= a.threshold(0) != b.threshold(0);
        }
        assert!(diverged, "worker seeds must decorrelate bandit arms");
        let pid = ControllerPolicy::pid();
        assert_eq!(pid.build_for_worker(8, 0.5, 3).threshold(2), 0.5);
    }

    /// Drives a controller through a fixed mid-reward feedback script and
    /// records the arm-threshold trajectory (the Thompson draws are the
    /// only variation source).
    fn trajectory(ctl: &mut Box<dyn crate::Controller>) -> Vec<f32> {
        let mut out = Vec::new();
        for i in 0..400u64 {
            ctl.note_token(if i % 2 == 0 { 4 } else { 12 }, 12);
            out.push(ctl.threshold(0));
        }
        out
    }

    #[test]
    fn same_worker_id_is_reproducible() {
        let bandit = ControllerPolicy::bandit();
        for worker in [0usize, 3] {
            let a = trajectory(&mut bandit.build_for_worker(8, 0.5, worker));
            let b = trajectory(&mut bandit.build_for_worker(8, 0.5, worker));
            assert_eq!(a, b, "worker {worker} must reproduce its own stream");
        }
    }

    #[test]
    fn classes_of_one_worker_decorrelate_and_reproduce() {
        use specee_core::TrafficClass;
        let bandit = ControllerPolicy::bandit();
        let run =
            |class: TrafficClass| trajectory(&mut bandit.build_for_worker_class(8, 0.5, 2, class));
        // Reproducible per (worker, class)...
        assert_eq!(run(TrafficClass::new(1)), run(TrafficClass::new(1)));
        // ...default class identical to the class-less worker build...
        assert_eq!(
            run(TrafficClass::DEFAULT),
            trajectory(&mut bandit.build_for_worker(8, 0.5, 2))
        );
        // ...and distinct classes explore distinctly.
        assert_ne!(
            run(TrafficClass::new(1)),
            run(TrafficClass::new(2)),
            "class seeds must decorrelate bandit arms"
        );
        // (worker 0, class k) must not alias (worker k, default class):
        // both reduce to one multiply-add of k without the class offset.
        assert_ne!(
            trajectory(&mut bandit.build_for_worker_class(8, 0.5, 0, TrafficClass::new(3))),
            trajectory(&mut bandit.build_for_worker(8, 0.5, 3)),
            "class and worker mixes must not collide"
        );
    }
}
