//! Online adaptive exit-threshold control for SpecEE runtimes.
//!
//! SpecEE's speedup sits on predictor thresholds tuned offline, but
//! serving traffic drifts — prompt domain, sequence length, batch mix —
//! so a static operating point either leaks accuracy (thresholds too
//! loose for the new traffic) or leaves exit opportunities on the table
//! (too strict). This crate closes the loop at serve time: a
//! [`Controller`] consumes the deterministic feedback streams the decode
//! loop already produces — the verifier's per-fire accept/reject
//! outcomes ([`specee_core::ExitFeedback`], emitted by
//! [`specee_core::ExitScan`]) and per-token executed depths — and steers
//! the per-layer thresholds of a [`specee_core::PredictorBank`] while
//! decoding runs.
//!
//! Three policies ship behind [`ControllerPolicy`]:
//!
//! * **`static`** — thresholds never move; its `apply` is a no-op, so a
//!   batch-1 run with a static controller is bit-identical to an
//!   uncontrolled run (asserted in `specee-batch`'s parity tests).
//! * **`pid`** — per-layer PI loops tracking a target *false-exit rate*
//!   (fraction of predictor fires the full-LM-head verifier rejects),
//!   with a small downward drift on idle full-depth tokens so a
//!   too-strict threshold cannot starve the loop of feedback forever.
//! * **`bandit`** — Thompson sampling over a small threshold grid
//!   (including a `1.0` safety arm that disables exits), one decision
//!   epoch every few tokens; reward is work saved per token centered at
//!   the no-exit baseline (rejected fires priced in, so bleeding arms
//!   score *below* "exits off"), zeroed whenever the verifier accept
//!   rate undercuts an accuracy floor — the EESD-style control
//!   mechanism.
//!
//! Any of the three can additionally be wrapped in [`SloAdaptive`]
//! (`slo+static`, `slo+pid`, `slo+bandit`; what the CLI's `--slo`
//! builds): the serving tier's burn-rate tracker
//! (`specee_obs::slo::SloTracker`) pushes a pressure signal in
//! `[-1, 1]` down through [`Controller::set_slo_pressure`], and the
//! wrapper bends the wrapped policy's operating point toward an
//! aggressive floor while a latency SLO burns (drain the queue) or
//! toward exits-off while a false-exit SLO burns — and is exact
//! pass-through at zero pressure.
//!
//! Controller state is keyed by **traffic class**: runtimes attach a
//! [`ClassedController`] ([`ControllerPolicy::build_classed`]) holding
//! one full policy instance per observed [`specee_core::TrafficClass`]
//! behind a shared `ClassMap` — untagged traffic lands in the lazily
//! created default class and behaves exactly like a single instance,
//! while mixed traffic gets per-class PID loops / bandit posteriors
//! instead of one blurred operating point. Per-class evidence deltas
//! ([`ClassEvidence`]) drain out of the same structure for cross-worker
//! gossip, and remote deltas merge back in via [`Controller::absorb`].
//!
//! Runtimes consume controllers per engine: `specee-batch`'s
//! `BatchedEngine` drains each seated sequence's feedback after every
//! lock-step decode step (per class, in slot order) and re-applies each
//! class's thresholds at the step boundary; `specee-cluster` builds one
//! classed controller per worker
//! ([`ControllerPolicy::build_classed_for_worker`], with
//! `(worker, class)`-decorrelated bandit seeds) whose state advances
//! inside the worker's deterministic serving loop, so adaptation — and
//! the coordinator's evidence gossip — rides the arrival-frontier
//! protocol unchanged. The CLI exposes everything as
//! `specee generate/serve --controller <policy>`.
//!
//! # Examples
//!
//! ```
//! use specee_control::{Controller, ControllerPolicy};
//! use specee_core::predictor::{PredictorBank, PredictorConfig};
//! use specee_core::{ExitFeedback, TrafficClass};
//! use specee_tensor::rng::Pcg;
//!
//! let pcfg = PredictorConfig::default();
//! let mut bank = PredictorBank::new(8, &pcfg, &mut Pcg::seed(1));
//! let mut ctl = ControllerPolicy::pid().build(bank.len(), pcfg.threshold);
//!
//! // The serving loop feeds verify outcomes; a rejection-heavy stream
//! // at layer 2 tightens that layer's threshold.
//! for _ in 0..12 {
//!     ctl.observe(&ExitFeedback {
//!         class: TrafficClass::DEFAULT,
//!         layer: 2,
//!         score: 0.6,
//!         threshold: 0.5,
//!         accepted: false,
//!     });
//!     ctl.note_token(3, 8);
//! }
//! ctl.apply(&mut bank);
//! assert!(bank.layer(2).threshold() > pcfg.threshold);
//! assert_eq!(ctl.summary().rejects, 12);
//! ```

#![deny(missing_docs)]

mod bandit;
mod classed;
mod controller;
mod pid;
mod policy;
mod slo_adaptive;

pub use bandit::{BanditConfig, BanditController};
pub use classed::{ClassEvidence, ClassedController};
pub use controller::{Controller, ControllerSummary, StaticController};
pub use pid::{PidConfig, PidController};
pub use policy::ControllerPolicy;
pub use slo_adaptive::{SloAdaptive, SloAdaptiveConfig};
